// Ablation A6 — memory backends. The paper's WCL theorems assume only that
// an LLC fill completes within the requester's TDM slot, with the memory
// term of that constraint supplied by the backend model
// (mem/memory_backend.h). This bench sweeps every registered backend —
// fixed-latency (paper), bank/row-conflict open- and closed-page, and the
// batched write-queue — over the Figure 8 workloads and compares, per
// backend: the analytical system WCL against the observed worst service
// latency, and the backend's exported worst-case access latency against the
// worst access latency it actually served. Because the slot absorbs every
// backend's worst case, system timing must be backend-invariant — checked
// as a claim; what changes across backends is the slot-width requirement
// and the memory-level behavior (row hits, queue depth, back-pressure).
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "core/wcl_analysis.h"
#include "mem/memory_backend.h"
#include "sim/experiment.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] =
    "Ablation: memory backends — analytical WCL vs observed worst latency";
constexpr char kReference[] =
    "system-model slot constraint of Section 3; backend sensitivity per "
    "Bansal et al. (Cache Where you Want!) and Pedroni 2026";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  // The Figure 8 workload grid (fig8_common.h): same seed, ranges, write
  // fraction, over the 2-core and 4-core capacity-matched panels.
  SweepOptions options;
  options.accesses_per_core = ctx.pick(20000, 4000);
  if (ctx.quick()) {
    options.address_ranges = {1024, 8192, 65536};
  }
  options.write_fraction = 0.25;
  options.seed = 8;
  options.threads = ctx.threads;
  const std::vector<SweepConfig> configs = {
      {"SS(32,2,2)", 2}, {"NSS(32,2,2)", 2}, {"P(8,2)", 2},
      {"SS(32,2,4)", 4}, {"NSS(32,2,4)", 4}, {"P(8,2)", 4},
  };

  results::BenchResult res(
      ctx.make_meta("ablation_dram_backend", kTitle, kReference));
  res.meta().set_param("seed", std::to_string(options.seed));
  res.meta().set_param("accesses_per_core",
                       std::to_string(options.accesses_per_core));

  auto& wcl_series = res.add_series(
      "backend_wcl",
      {{"backend", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cores", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"backend_worst_case", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"required_slot_width", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"slot_slack", results::ColumnType::kInt, results::ColumnKind::kExact,
        "cycles"},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"observed_mem_latency", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"}});
  auto& behavior_series = res.add_series(
      "mem_behavior",
      {{"backend", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cores", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"row_hits", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""},
       {"row_misses", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""},
       {"queued_writes", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"drained_writes", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"write_stalls", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"max_queue_depth", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""}});

  bool all_completed = true;
  bool system_bounds_hold = true;
  bool memory_bounds_hold = true;
  bool timing_backend_invariant = true;
  std::vector<SweepResult> per_backend;
  const std::vector<mem::BackendVariant> variants =
      mem::registered_backend_variants();
  per_backend.reserve(variants.size());

  for (const mem::BackendVariant& variant : variants) {
    SweepOptions backend_options = options;
    backend_options.dram = variant.config;
    const Cycle worst_case = variant.config.worst_case_latency();
    per_backend.push_back(run_sweep(configs, backend_options));
    const SweepResult& result = per_backend.back();

    for (int c = 0; c < static_cast<int>(configs.size()); ++c) {
      // Aggregate per configuration: the worst observation over the whole
      // address-range axis, against the (range-independent) bounds.
      Cycle observed_wcl = 0;
      Cycle observed_mem = 0;
      bool completed = true;
      mem::MemoryCounters totals;
      for (int r = 0; r < static_cast<int>(result.ranges.size()); ++r) {
        const RunMetrics& m = result.cell(r, c).metrics;
        completed = completed && m.completed;
        observed_wcl = std::max(observed_wcl, m.observed_wcl);
        observed_mem = std::max(observed_mem, m.memory.max_latency);
        totals.row_hits += m.memory.row_hits;
        totals.row_misses += m.memory.row_misses;
        totals.queued_writes += m.memory.queued_writes;
        totals.drained_writes += m.memory.drained_writes;
        totals.write_stalls += m.memory.write_stalls;
        totals.max_queue_depth =
            std::max(totals.max_queue_depth, m.memory.max_queue_depth);
        system_bounds_hold = system_bounds_hold && m.completed &&
                             m.observed_wcl <= m.analytical_wcl;
        memory_bounds_hold =
            memory_bounds_hold && m.memory.max_latency <= worst_case;
      }
      all_completed = all_completed && completed;

      const SweepConfig& config = configs[static_cast<std::size_t>(c)];
      core::ExperimentSetup setup =
          core::make_paper_setup(config.notation, config.active_cores);
      setup.config.dram = variant.config;
      wcl_series.add_row(
          {results::Value::of_text(variant.label),
           results::Value::of_text(config.notation),
           results::Value::of_int(config.active_cores),
           results::Value::of_int(worst_case),
           results::Value::of_int(core::required_slot_width(setup.config)),
           results::Value::of_int(core::slot_slack(setup.config)),
           results::Value::of_int(result.cell(0, c).metrics.analytical_wcl),
           results::Value::of_cycles(observed_wcl, completed),
           results::Value::of_cycles(observed_mem, completed)});
      behavior_series.add_row({results::Value::of_text(variant.label),
                               results::Value::of_text(config.notation),
                               results::Value::of_int(config.active_cores),
                               results::Value::of_int(totals.row_hits),
                               results::Value::of_int(totals.row_misses),
                               results::Value::of_int(totals.queued_writes),
                               results::Value::of_int(totals.drained_writes),
                               results::Value::of_int(totals.write_stalls),
                               results::Value::of_int(totals.max_queue_depth)});
    }
  }

  // The system-model claim behind the whole backend abstraction: once the
  // slot absorbs the backend's worst case, bus-level timing is identical
  // across backends (the traces are identical by construction).
  const SweepResult& baseline = per_backend.front();
  for (std::size_t b = 1; b < per_backend.size(); ++b) {
    const SweepResult& other = per_backend[b];
    for (std::size_t i = 0; i < baseline.cells.size(); ++i) {
      timing_backend_invariant =
          timing_backend_invariant &&
          baseline.cells[i].metrics.makespan == other.cells[i].metrics.makespan &&
          baseline.cells[i].metrics.observed_wcl ==
              other.cells[i].metrics.observed_wcl;
    }
  }

  res.add_claim("all configurations completed", all_completed);
  res.add_claim("observed WCL <= analytical bound for every backend",
                system_bounds_hold);
  res.add_claim("observed memory latency <= backend worst case",
                memory_bounds_hold);
  res.add_claim("system timing is backend-invariant",
                timing_backend_invariant);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(ablation_dram_backend, run)
