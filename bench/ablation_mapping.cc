// Ablation A5 — set-index mapping. The paper's related-work section claims
// the analysis "does not rely on certain type of address mapping". This
// bench runs the conflict-heavy workload under modulo and XOR-fold set
// mappings and shows the observed WCL stays within the (mapping-
// independent) analytical bound for both; average execution time differs
// because the mappings spread the working set differently.
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "core/system.h"
#include "core/wcl_analysis.h"
#include "sim/workload.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

constexpr char kTitle[] = "Ablation: set-index mapping independence";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, Section 2 (mapping-agnostic analysis)";

struct Row {
  Cycle observed = 0;
  Cycle bound = 0;
  Cycle makespan = 0;
  bool ok = false;
};

Row run_one(const char* notation, llc::SetMapping mapping, std::int64_t range,
            int accesses) {
  ExperimentSetup setup = make_paper_setup(notation, 4);
  // Rebuild the partition map with the requested mapping.
  llc::PartitionMap remapped(setup.config.llc.geometry);
  for (int p = 0; p < setup.partitions().num_partitions(); ++p) {
    llc::PartitionSpec spec = setup.partitions().spec(p);
    spec.mapping = mapping;
    remapped.add_partition(spec, setup.partitions().sharers(p));
  }
  System system(setup.config, std::move(remapped));
  sim::RandomWorkloadOptions workload;
  workload.range_bytes = range;
  workload.accesses = accesses;
  workload.write_fraction = 0.25;
  const auto traces = sim::make_disjoint_random_workload(4, workload, 51);
  for (int c = 0; c < 4; ++c) {
    system.set_trace(CoreId{c}, traces[static_cast<std::size_t>(c)]);
  }
  Row row;
  const auto result = system.run(2'000'000'000);
  row.bound = analytical_wcl_cycles(setup, CoreId{0});
  row.observed = system.tracker().max_service_latency();
  row.makespan = result.all_done ? system.makespan() : 0;
  row.ok = result.all_done && row.observed <= row.bound;
  return row;
}

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);
  const int accesses = ctx.pick(15000, 3000);

  results::BenchResult res(
      ctx.make_meta("ablation_mapping", kTitle, kReference));
  res.meta().set_param("seed", "51");
  res.meta().set_param("accesses_per_core", std::to_string(accesses));
  auto& series = res.add_series(
      "mapping_wcl",
      {{"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"mapping", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"range_bytes", results::ColumnType::kInt,
        results::ColumnKind::kExact, "bytes"},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"}});
  bool all_ok = true;
  for (const char* notation : {"SS(2,4,4)", "NSS(2,4,4)", "SS(32,4,4)"}) {
    for (const auto mapping :
         {llc::SetMapping::kModulo, llc::SetMapping::kXorFold}) {
      for (const std::int64_t range : {4096, 32768}) {
        const Row row = run_one(notation, mapping, range, accesses);
        all_ok = all_ok && row.ok;
        series.add_row({results::Value::of_text(notation),
                        results::Value::of_text(to_string(mapping)),
                        results::Value::of_int(range),
                        results::Value::of_int(row.observed),
                        results::Value::of_int(row.bound),
                        results::Value::of_cycles(row.makespan,
                                                  row.makespan > 0)});
      }
    }
  }
  res.add_claim("bounds hold under both mappings", all_ok);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(ablation_mapping, run)
