// Ablation A1 — replacement policy. The paper's analysis (Section 4.3)
// claims the bounds are agnostic of the replacement policy ("a replacement
// policy that can select any of the cache lines"). This bench runs the
// conflict-heavy Figure 7 workload under five policies and shows the
// observed WCL stays within the (policy-independent) analytical bound for
// each.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "sim/workload.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

int run() {
  bench::print_header("Ablation: replacement policy independence",
                      "Wu & Patel, DAC'22, Section 4.3 (policy-agnostic "
                      "analysis)");

  RandomWorkloadOptions workload;
  workload.range_bytes = 16384;
  workload.accesses = 20000;
  workload.write_fraction = 0.25;

  const mem::ReplacementKind kinds[] = {
      mem::ReplacementKind::kLru, mem::ReplacementKind::kFifo,
      mem::ReplacementKind::kRandom, mem::ReplacementKind::kNmru,
      mem::ReplacementKind::kTreePlru};
  const std::pair<const char*, int> configs[] = {{"SS(1,4,4)", 4},
                                                 {"NSS(1,4,4)", 4},
                                                 {"P(1,4)", 4}};
  Table table({"config", "policy", "observed WCL", "analytical WCL",
               "makespan", "bound holds"});
  bool all_hold = true;
  for (const auto& [notation, cores] : configs) {
    for (const auto kind : kinds) {
      auto setup = core::make_paper_setup(notation, cores);
      setup.config.llc.replacement = kind;
      const auto traces = make_disjoint_random_workload(cores, workload, 21);
      const RunMetrics metrics = run_experiment(setup, traces);
      const bool holds =
          metrics.completed && metrics.observed_wcl <= metrics.analytical_wcl;
      all_hold = all_hold && holds;
      table.add_row({notation, to_string(kind),
                     format_cycles(metrics.observed_wcl),
                     format_cycles(metrics.analytical_wcl),
                     format_cycles(metrics.makespan),
                     holds ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  bench::save_csv(table, "ablation_replacement");
  std::printf("claim check: bounds hold under every policy: %s\n",
              all_hold ? "PASS" : "FAIL");
  return all_hold ? 0 : 1;
}

}  // namespace

int main() { return run(); }
