// Ablation A1 — replacement policy. The paper's analysis (Section 4.3)
// claims the bounds are agnostic of the replacement policy ("a replacement
// policy that can select any of the cache lines"). This bench runs the
// conflict-heavy Figure 7 workload under five policies and shows the
// observed WCL stays within the (policy-independent) analytical bound for
// each.
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "sim/runner.h"
#include "sim/workload.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] = "Ablation: replacement policy independence";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, Section 4.3 (policy-agnostic analysis)";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  RandomWorkloadOptions workload;
  workload.range_bytes = 16384;
  workload.accesses = ctx.pick(20000, 4000);
  workload.write_fraction = 0.25;

  const mem::ReplacementKind kinds[] = {
      mem::ReplacementKind::kLru, mem::ReplacementKind::kFifo,
      mem::ReplacementKind::kRandom, mem::ReplacementKind::kNmru,
      mem::ReplacementKind::kTreePlru};
  const std::pair<const char*, int> configs[] = {{"SS(1,4,4)", 4},
                                                 {"NSS(1,4,4)", 4},
                                                 {"P(1,4)", 4}};

  results::BenchResult res(
      ctx.make_meta("ablation_replacement", kTitle, kReference));
  res.meta().set_param("seed", "21");
  res.meta().set_param("accesses_per_core",
                       std::to_string(workload.accesses));
  auto& series = res.add_series(
      "policy_wcl",
      {{"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"policy", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"bound_holds", results::ColumnType::kText,
        results::ColumnKind::kExact, ""}});
  bool all_hold = true;
  for (const auto& [notation, cores] : configs) {
    for (const auto kind : kinds) {
      auto setup = core::make_paper_setup(notation, cores);
      setup.config.llc.replacement = kind;
      const auto traces = make_disjoint_random_workload(cores, workload, 21);
      const RunMetrics metrics = run_experiment(setup, traces);
      const bool holds =
          metrics.completed && metrics.observed_wcl <= metrics.analytical_wcl;
      all_hold = all_hold && holds;
      series.add_row({results::Value::of_text(notation),
                      results::Value::of_text(to_string(kind)),
                      results::Value::of_cycles(metrics.observed_wcl,
                                                metrics.completed),
                      results::Value::of_int(metrics.analytical_wcl),
                      results::Value::of_cycles(metrics.makespan,
                                                metrics.completed),
                      results::Value::of_text(holds ? "yes" : "NO")});
    }
  }
  res.add_claim("bounds hold under every policy", all_hold);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(ablation_replacement, run)
