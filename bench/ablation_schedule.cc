// Ablation A4 — extension beyond the paper: does the set sequencer bound
// the WCL even under weighted (non-1S) TDM schedules? The paper only proves
// Theorem 4.8 for 1S-TDM; empirically, FIFO ordering alone excludes the
// Section 4.1 starvation pattern. This bench sweeps interferer slot weights
// and compares NSS (starves) against SS (bounded wait).
#include <string>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "core/system.h"
#include "sim/workload.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

constexpr char kTitle[] =
    "Ablation: set sequencer under weighted (non-1S) TDM schedules";
constexpr char kReference[] =
    "extension of Wu & Patel, DAC'22, Sections 4.1-4.2";

struct Outcome {
  bool completed = false;
  Cycle wait = 0;
  std::size_t interferer_ops = 0;
};

Outcome run_variant(llc::ContentionMode mode, int interferer_weight,
                    std::int64_t horizon_slots) {
  SystemConfig config;
  config.num_cores = 2;
  config.mode = mode;
  config.keep_request_records = true;
  config.schedule_slots.clear();
  config.schedule_slots.emplace_back(0);
  for (int k = 0; k < interferer_weight; ++k) {
    config.schedule_slots.emplace_back(1);
  }
  llc::PartitionMap partitions = llc::make_shared_partition(
      config.llc.geometry, {CoreId{0}, CoreId{1}}, 1, 2);
  System system(config, std::move(partitions));
  // cua: one delayed request; interferer: endless conflict stream.
  system.set_trace(CoreId{0},
                   Trace{MemOp{0x100000ULL * 64, AccessType::kRead, 289}});
  Trace interferer;
  for (int i = 0; i < (1 << 20); ++i) {
    interferer.push_back(
        MemOp{(0x200000ULL + static_cast<Addr>(i)) * 64});
  }
  system.set_trace(CoreId{1}, std::move(interferer));
  system.run_slots(horizon_slots);
  Outcome outcome;
  outcome.completed =
      system.tracker().service_latency(CoreId{0}).count() > 0;
  outcome.wait = outcome.completed
                     ? system.tracker().service_latency(CoreId{0}).max()
                     : system.now();
  outcome.interferer_ops = system.core(CoreId{1}).ops_completed();
  return outcome;
}

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);
  const std::int64_t horizon = ctx.pick<std::int64_t>(20000, 8000);

  results::BenchResult res(
      ctx.make_meta("ablation_schedule", kTitle, kReference));
  res.meta().set_param("horizon_slots", std::to_string(horizon));
  auto& series = res.add_series(
      "weighted_tdm",
      {{"interferer_slots", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"mode", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cua_completed", results::ColumnType::kText,
        results::ColumnKind::kExact, ""},
       {"cua_wait", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"interferer_ops", results::ColumnType::kInt,
        results::ColumnKind::kTiming, ""}});
  bool nss_starves = true;
  bool ss_bounded = true;
  for (const int weight : {1, 2, 3, 4}) {
    for (const auto mode : {llc::ContentionMode::kBestEffort,
                            llc::ContentionMode::kSetSequencer}) {
      const Outcome outcome = run_variant(mode, weight, horizon);
      series.add_row(
          {results::Value::of_int(weight),
           results::Value::of_text(to_string(mode)),
           results::Value::of_text(outcome.completed ? "yes"
                                                     : "NO (starving)"),
           results::Value::of_int(static_cast<std::int64_t>(outcome.wait)),
           results::Value::of_int(
               static_cast<std::int64_t>(outcome.interferer_ops))});
      if (mode == llc::ContentionMode::kBestEffort && weight > 1) {
        nss_starves = nss_starves && !outcome.completed;
      }
      if (mode == llc::ContentionMode::kSetSequencer) {
        ss_bounded = ss_bounded && outcome.completed;
      }
    }
  }
  res.add_claim("NSS starves for every multi-slot weight", nss_starves);
  res.add_claim("SS completes for every weight", ss_bounded);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(ablation_schedule, run)
