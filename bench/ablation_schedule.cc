// Ablation A4 — extension beyond the paper: does the set sequencer bound
// the WCL even under weighted (non-1S) TDM schedules? The paper only proves
// Theorem 4.8 for 1S-TDM; empirically, FIFO ordering alone excludes the
// Section 4.1 starvation pattern. This bench sweeps interferer slot weights
// and compares NSS (starves) against SS (bounded wait).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/system.h"
#include "sim/workload.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

struct Outcome {
  bool completed = false;
  Cycle wait = 0;
  std::size_t interferer_ops = 0;
};

Outcome run_variant(llc::ContentionMode mode, int interferer_weight,
                    std::int64_t horizon_slots) {
  SystemConfig config;
  config.num_cores = 2;
  config.mode = mode;
  config.keep_request_records = true;
  config.schedule_slots.clear();
  config.schedule_slots.emplace_back(0);
  for (int k = 0; k < interferer_weight; ++k) {
    config.schedule_slots.emplace_back(1);
  }
  llc::PartitionMap partitions = llc::make_shared_partition(
      config.llc.geometry, {CoreId{0}, CoreId{1}}, 1, 2);
  System system(config, std::move(partitions));
  // cua: one delayed request; interferer: endless conflict stream.
  system.set_trace(CoreId{0},
                   Trace{MemOp{0x100000ULL * 64, AccessType::kRead, 289}});
  Trace interferer;
  for (int i = 0; i < (1 << 20); ++i) {
    interferer.push_back(
        MemOp{(0x200000ULL + static_cast<Addr>(i)) * 64});
  }
  system.set_trace(CoreId{1}, std::move(interferer));
  system.run_slots(horizon_slots);
  Outcome outcome;
  outcome.completed =
      system.tracker().service_latency(CoreId{0}).count() > 0;
  outcome.wait = outcome.completed
                     ? system.tracker().service_latency(CoreId{0}).max()
                     : system.now();
  outcome.interferer_ops = system.core(CoreId{1}).ops_completed();
  return outcome;
}

int run() {
  bench::print_header(
      "Ablation: set sequencer under weighted (non-1S) TDM schedules",
      "extension of Wu & Patel, DAC'22, Sections 4.1-4.2");

  Table table({"interferer slots/period", "mode", "cua completed",
               "cua wait (cycles)"});
  bool nss_starves = true;
  bool ss_bounded = true;
  for (const int weight : {1, 2, 3, 4}) {
    for (const auto mode : {llc::ContentionMode::kBestEffort,
                            llc::ContentionMode::kSetSequencer}) {
      const Outcome outcome = run_variant(mode, weight, 20000);
      table.add_row({std::to_string(weight), to_string(mode),
                     outcome.completed ? "yes" : "NO (starving)",
                     format_cycles(outcome.wait)});
      if (mode == llc::ContentionMode::kBestEffort && weight > 1) {
        nss_starves = nss_starves && !outcome.completed;
      }
      if (mode == llc::ContentionMode::kSetSequencer) {
        ss_bounded = ss_bounded && outcome.completed;
      }
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  bench::save_csv(table, "ablation_schedule");
  std::printf("claim check: NSS starves for every multi-slot weight: %s\n",
              nss_starves ? "PASS" : "FAIL");
  std::printf("claim check: SS completes for every weight: %s\n",
              ss_bounded ? "PASS" : "FAIL");
  return nss_starves && ss_bounded ? 0 : 1;
}

}  // namespace

int main() { return run(); }
