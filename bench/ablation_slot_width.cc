// Ablation A2 — TDM slot width. The analytical WCLs scale linearly with
// S_W (Theorems 4.7/4.8 count slots); a narrower slot lowers latency bounds
// but must still absorb an LLC fill (lookup + DRAM). This bench sweeps S_W
// and reports bounds, observed WCL, and execution time.
#include <string>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "sim/runner.h"
#include "sim/workload.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] = "Ablation: TDM slot width sweep";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, system model Section 3 (slot-based bounds)";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  RandomWorkloadOptions workload;
  workload.range_bytes = 8192;
  workload.accesses = ctx.pick(15000, 3000);
  workload.write_fraction = 0.25;

  results::BenchResult res(
      ctx.make_meta("ablation_slot_width", kTitle, kReference));
  res.meta().set_param("seed", "31");
  res.meta().set_param("accesses_per_core",
                       std::to_string(workload.accesses));
  auto& series = res.add_series(
      "slot_width",
      {{"slot_width", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"bound_holds", results::ColumnType::kText,
        results::ColumnKind::kExact, ""}});
  bool all_hold = true;
  for (const Cycle slot_width : {35, 50, 75, 100, 200}) {
    auto setup = core::make_paper_setup("SS(1,4,4)", 4);
    setup.config.slot_width = slot_width;
    const auto traces = make_disjoint_random_workload(4, workload, 31);
    const RunMetrics metrics = run_experiment(setup, traces);
    const bool holds =
        metrics.completed && metrics.observed_wcl <= metrics.analytical_wcl;
    all_hold = all_hold && holds;
    series.add_row({results::Value::of_int(slot_width),
                    results::Value::of_int(metrics.analytical_wcl),
                    results::Value::of_cycles(metrics.observed_wcl,
                                              metrics.completed),
                    results::Value::of_cycles(metrics.makespan,
                                              metrics.completed),
                    results::Value::of_text(holds ? "yes" : "NO")});
  }
  res.add_claim("bounds scale with S_W and hold", all_hold);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(ablation_slot_width, run)
