// Ablation A2 — TDM slot width. The analytical WCLs scale linearly with
// S_W (Theorems 4.7/4.8 count slots); a narrower slot lowers latency bounds
// but must still absorb an LLC fill (lookup + DRAM). This bench sweeps S_W
// and reports bounds, observed WCL, and execution time.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "sim/workload.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

int run() {
  bench::print_header("Ablation: TDM slot width sweep",
                      "Wu & Patel, DAC'22, system model Section 3 (slot-"
                      "based bounds)");

  RandomWorkloadOptions workload;
  workload.range_bytes = 8192;
  workload.accesses = 15000;
  workload.write_fraction = 0.25;

  Table table({"S_W (cycles)", "analytical WCL (SS)", "observed WCL",
               "makespan", "bound holds"});
  bool all_hold = true;
  for (const Cycle slot_width : {35, 50, 75, 100, 200}) {
    auto setup = core::make_paper_setup("SS(1,4,4)", 4);
    setup.config.slot_width = slot_width;
    const auto traces = make_disjoint_random_workload(4, workload, 31);
    const RunMetrics metrics = run_experiment(setup, traces);
    const bool holds =
        metrics.completed && metrics.observed_wcl <= metrics.analytical_wcl;
    all_hold = all_hold && holds;
    table.add_row({std::to_string(slot_width),
                   format_cycles(metrics.analytical_wcl),
                   format_cycles(metrics.observed_wcl),
                   format_cycles(metrics.makespan),
                   holds ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_text().c_str());
  bench::save_csv(table, "ablation_slot_width");
  std::printf("claim check: bounds scale with S_W and hold: %s\n",
              all_hold ? "PASS" : "FAIL");
  return all_hold ? 0 : 1;
}

}  // namespace

int main() { return run(); }
