// Ablation A3 — clean back-invalidations. The paper's figures charge a
// write-back slot for *every* back-invalidation (paper mode). A plausible
// hardware optimization acknowledges clean private copies silently. This
// bench compares both modes: latency improves (especially for read-heavy
// workloads), and the paper-mode analytical bounds remain conservative.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/runner.h"
#include "sim/workload.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

int run() {
  bench::print_header(
      "Ablation: clean back-invalidation costs a slot (paper) vs silent ack",
      "model decision from Figures 2-4 (every eviction shows 'WB l')");

  RandomWorkloadOptions workload;
  workload.range_bytes = 16384;
  workload.accesses = 20000;
  workload.write_fraction = 0.1;  // read-heavy: most copies are clean

  const std::pair<const char*, int> configs[] = {{"SS(1,4,4)", 4},
                                                 {"NSS(1,4,4)", 4},
                                                 {"P(1,4)", 4}};
  Table table({"config", "clean WB mode", "observed WCL", "analytical WCL",
               "makespan"});
  bool bounds_hold = true;
  bool silent_not_slower = true;
  for (const auto& [notation, cores] : configs) {
    Cycle paper_makespan = 0;
    for (const bool costs_slot : {true, false}) {
      auto setup = core::make_paper_setup(notation, cores);
      setup.config.llc.clean_back_inval_costs_slot = costs_slot;
      const auto traces = make_disjoint_random_workload(cores, workload, 41);
      const RunMetrics metrics = run_experiment(setup, traces);
      bounds_hold = bounds_hold && metrics.completed &&
                    metrics.observed_wcl <= metrics.analytical_wcl;
      if (costs_slot) {
        paper_makespan = metrics.makespan;
      } else {
        silent_not_slower =
            silent_not_slower && metrics.makespan <= paper_makespan;
      }
      table.add_row({notation, costs_slot ? "slot (paper)" : "silent",
                     format_cycles(metrics.observed_wcl),
                     format_cycles(metrics.analytical_wcl),
                     format_cycles(metrics.makespan)});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  bench::save_csv(table, "ablation_writeback");
  std::printf("claim check: paper-mode bounds stay conservative: %s\n",
              bounds_hold ? "PASS" : "FAIL");
  std::printf("claim check: silent acks never slower: %s\n",
              silent_not_slower ? "PASS" : "FAIL");
  return bounds_hold ? 0 : 1;
}

}  // namespace

int main() { return run(); }
