// Ablation A3 — clean back-invalidations. The paper's figures charge a
// write-back slot for *every* back-invalidation (paper mode). A plausible
// hardware optimization acknowledges clean private copies silently. This
// bench compares both modes: latency improves (especially for read-heavy
// workloads), and the paper-mode analytical bounds remain conservative.
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "sim/runner.h"
#include "sim/workload.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] =
    "Ablation: clean back-invalidation costs a slot (paper) vs silent ack";
constexpr char kReference[] =
    "model decision from Figures 2-4 (every eviction shows 'WB l')";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  RandomWorkloadOptions workload;
  workload.range_bytes = 16384;
  workload.accesses = ctx.pick(20000, 4000);
  workload.write_fraction = 0.1;  // read-heavy: most copies are clean

  const std::pair<const char*, int> configs[] = {{"SS(1,4,4)", 4},
                                                 {"NSS(1,4,4)", 4},
                                                 {"P(1,4)", 4}};

  results::BenchResult res(
      ctx.make_meta("ablation_writeback", kTitle, kReference));
  res.meta().set_param("seed", "41");
  res.meta().set_param("accesses_per_core",
                       std::to_string(workload.accesses));
  auto& series = res.add_series(
      "clean_writeback",
      {{"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"clean_wb_mode", results::ColumnType::kText,
        results::ColumnKind::kExact, ""},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"}});
  bool bounds_hold = true;
  bool silent_not_slower = true;
  for (const auto& [notation, cores] : configs) {
    Cycle paper_makespan = 0;
    for (const bool costs_slot : {true, false}) {
      auto setup = core::make_paper_setup(notation, cores);
      setup.config.llc.clean_back_inval_costs_slot = costs_slot;
      const auto traces = make_disjoint_random_workload(cores, workload, 41);
      const RunMetrics metrics = run_experiment(setup, traces);
      bounds_hold = bounds_hold && metrics.completed &&
                    metrics.observed_wcl <= metrics.analytical_wcl;
      if (costs_slot) {
        paper_makespan = metrics.makespan;
      } else {
        silent_not_slower =
            silent_not_slower && metrics.makespan <= paper_makespan;
      }
      series.add_row({results::Value::of_text(notation),
                      results::Value::of_text(costs_slot ? "slot (paper)"
                                                         : "silent"),
                      results::Value::of_cycles(metrics.observed_wcl,
                                                metrics.completed),
                      results::Value::of_int(metrics.analytical_wcl),
                      results::Value::of_cycles(metrics.makespan,
                                                metrics.completed)});
    }
  }
  res.add_claim("paper-mode bounds stay conservative", bounds_hold);
  res.add_claim("silent acks never slower", silent_not_slower);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(ablation_writeback, run)
