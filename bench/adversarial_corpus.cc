// Adversarial corpus — the WCL bound under active attack. Runs the
// adversarial trace search (sim/adversary.h): every attack pattern
// (conflict strides, writeback storms, slot-aligned bursts, repartition-
// window bursts against two-mode partition programs) against every
// partition configuration, hill-climbing on the lowest-slack cells, and
// gates the paper's central claim in its strongest form: the observed
// worst-case latency stays at or below the analytical bound (Wu & Patel,
// DAC'22, Theorems 4.7/4.8 + the private bound; the transient bound for
// dynamic-program cells) over the *full searched grid* — workloads
// constructed to maximize conflict, writeback and slot-alignment pressure,
// not just the benign figure sweeps.
//
// The search is track-sharded: one (pattern x config) track per work unit
// (sim/shard.h), each track an independent serial hill-climb with a fixed
// cell count, so global row ordinals are computable per shard and
// tools/results_merge reassembles partial stores bit-identical to an
// unsharded run.
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "results/merge.h"
#include "sim/adversary.h"
#include "sim/shard.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] =
    "Adversarial corpus: attack patterns x partition configurations";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, Theorems 4.7/4.8 under adversarial workloads";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  AdversaryOptions options;
  options.seed = 42;
  options.ops_per_core = ctx.pick(3000, 300);
  options.rounds = ctx.pick(2, 1);
  options.survivors = ctx.pick(2, 1);
  options.mutants = ctx.pick(3, 2);
  options.threads = ctx.threads;
  options.configs = {{"SS(32,2,2)", 2}, {"NSS(32,2,2)", 2}, {"P(8,2)", 2}};
  if (!ctx.quick()) {
    options.configs.push_back({"SS(32,2,4)", 4});
    options.configs.push_back({"NSS(32,2,4)", 4});
    options.configs.push_back({"P(8,2)", 4});
  }

  const std::size_t num_tracks =
      options.kinds.size() * options.configs.size();
  const auto cells_per_track =
      static_cast<std::size_t>(options.cells_per_track());

  // Track-level work-unit plan: unit ordinal k * C + c is the row-group
  // order of both series (cells_per_track rows in adversary_cells, one row
  // in adversary_tracks), so merged rows land exactly where an unsharded
  // run emits them.
  std::vector<std::pair<std::string, std::string>> grid_params = {
      {"profile", bench::to_string(ctx.profile)},
      {"seed", std::to_string(options.seed)},
      {"ops", std::to_string(options.ops_per_core)},
      {"rounds", std::to_string(options.rounds)},
      {"survivors", std::to_string(options.survivors)},
      {"mutants", std::to_string(options.mutants)}};
  ShardPlan plan("adversarial_corpus", std::move(grid_params),
                 ctx.sharded() ? ctx.shard_count : 1);
  for (const AttackKind kind : options.kinds) {
    for (const SweepConfig& config : options.configs) {
      plan.add_unit("adversarial_corpus", track_key(kind, config));
    }
  }

  std::vector<bool> mask;
  const std::vector<bool>* mask_ptr = nullptr;
  std::vector<std::size_t> owned;
  if (ctx.sharded()) {
    const ShardSpec spec{ctx.shard_index, ctx.shard_count};
    if (!ctx.manifest_path.empty()) {
      plan.write_or_verify(ctx.manifest_path);
    }
    owned = plan.owned_ordinals(spec);
    std::printf("[shard] %d/%d: %zu of %zu tracks\n", ctx.shard_index,
                ctx.shard_count, owned.size(), plan.units().size());
    if (owned.empty()) {
      std::printf("[shard] nothing to run on this shard\n");
      return 0;
    }
    mask.assign(num_tracks, false);
    for (const std::size_t ordinal : owned) {
      mask[ordinal] = true;
    }
    mask_ptr = &mask;
  }

  const AdversaryResult result = run_adversary_search(options, mask_ptr);

  results::BenchResult res(
      ctx.make_meta("adversarial_corpus", kTitle, kReference));
  res.meta().set_param("seed", std::to_string(options.seed));
  res.meta().set_param("ops", std::to_string(options.ops_per_core));
  res.meta().set_param("rounds", std::to_string(options.rounds));
  res.meta().set_param("survivors", std::to_string(options.survivors));
  res.meta().set_param("mutants", std::to_string(options.mutants));
  res.meta().set_param("near_miss_slack",
                       std::to_string(options.near_miss_slack));

  auto& cells_series = res.add_series(
      "adversary_cells",
      {{"pattern", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cores", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"cell", results::ColumnType::kText, results::ColumnKind::kExact, ""},
       {"round", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"backend", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"slack", results::ColumnType::kReal, results::ColumnKind::kTiming,
        ""},
       {"llc_requests", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"bound_ok", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""}});
  auto& tracks_series = res.add_series(
      "adversary_tracks",
      {{"pattern", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cores", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"cells", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"min_slack", results::ColumnType::kReal,
        results::ColumnKind::kTiming, ""},
       {"near_misses", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"violations", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""}});

  std::vector<std::size_t> cell_ordinals;
  std::vector<std::size_t> track_ordinals;
  bool all_completed = true;
  bool bounds_hold = true;
  for (std::size_t t = 0; t < result.tracks.size(); ++t) {
    const AdversaryTrack& track = result.tracks[t];
    if (!track.ran) {
      continue;
    }
    for (std::size_t i = 0; i < track.cells.size(); ++i) {
      const AdversaryCell& cell = track.cells[i];
      const RunMetrics& m = cell.metrics;
      const bool bound_ok = m.completed && !cell.violation;
      all_completed = all_completed && m.completed;
      bounds_hold = bounds_hold && bound_ok;
      cells_series.add_row(
          {results::Value::of_text(to_string(track.kind)),
           results::Value::of_text(track.config.notation),
           results::Value::of_int(track.config.active_cores),
           results::Value::of_text(cell.spec.id()),
           results::Value::of_int(cell.round),
           results::Value::of_text(mem::to_string(cell.spec.backend)),
           results::Value::of_int(m.analytical_wcl),
           results::Value::of_cycles(m.observed_wcl, m.completed),
           results::Value::of_cycles(m.makespan, m.completed),
           results::Value::of_real(cell.slack),
           results::Value::of_int(m.llc_requests),
           results::Value::of_int(bound_ok ? 1 : 0)});
      cell_ordinals.push_back(t * cells_per_track + i);
    }
    tracks_series.add_row(
        {results::Value::of_text(to_string(track.kind)),
         results::Value::of_text(track.config.notation),
         results::Value::of_int(track.config.active_cores),
         results::Value::of_int(static_cast<std::int64_t>(
             track.cells.size())),
         results::Value::of_real(track.min_slack),
         results::Value::of_int(track.near_misses),
         results::Value::of_int(track.violations)});
    track_ordinals.push_back(t);
  }

  res.add_claim("all adversarial cells completed", all_completed);
  res.add_claim(
      "observed WCL <= analytical bound across the searched adversarial "
      "grid",
      bounds_hold);

  if (ctx.sharded()) {
    std::vector<std::string> unit_ids;
    unit_ids.reserve(owned.size());
    for (const std::size_t ordinal : owned) {
      unit_ids.push_back(plan.units()[ordinal].id);
    }
    results::set_shard_provenance(res.meta(), plan.content_hash(),
                                  ctx.shard_index, ctx.shard_count,
                                  unit_ids);
    results::set_shard_rows(res.meta(), "adversary_cells", cell_ordinals);
    results::set_shard_rows(res.meta(), "adversary_tracks", track_ordinals);
  }
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH_SHARDED(adversarial_corpus, run)
