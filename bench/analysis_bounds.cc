// Experiment E7 — the paper's analytical claims, regenerated from the
// closed-form analysis (no simulation):
//  * the Figure 7 analytical lines (5000 / 979250 / 450 cycles);
//  * Section 4.5's set-sequencer improvement for the "4-core, 16-way LLC
//    with 128 cache lines" example, including the paper's (m+1)*w
//    back-of-envelope 2048x versus the exact theorem ratio;
//  * a sweep showing Theorem 4.7 growing with partition size while
//    Theorem 4.8 stays flat (the WCL becomes independent of cache and
//    partition sizes).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/wcl_analysis.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

SharedPartitionScenario scenario(int sets, int ways, int n, int m_cua = 64) {
  SharedPartitionScenario s;
  s.total_cores = 4;
  s.sharers = n;
  s.partition_sets = sets;
  s.partition_ways = ways;
  s.cua_capacity_lines = m_cua;
  return s;
}

int run() {
  bench::print_header("Analytical WCL bounds (Theorems 4.7 / 4.8)",
                      "Wu & Patel, DAC'22, Sections 4.4-4.5 + Figure 7 lines");

  // --- Figure 7 analytical lines ---
  Table lines({"configuration", "bound", "cycles", "paper"});
  lines.add_row({"SS(n=4)", "Thm 4.8",
                 format_cycles(wcl_set_sequencer_cycles(scenario(1, 2, 4))),
                 "5,000"});
  lines.add_row({"NSS(1,16,4) m=16", "Thm 4.7",
                 format_cycles(wcl_1s_tdm_cycles(scenario(1, 16, 4))),
                 "979,250"});
  lines.add_row({"P (private)", "2N+1 slots",
                 format_cycles(wcl_private_cycles(4, kPaperSlotWidth)),
                 "450"});
  std::printf("%s\n", lines.to_text().c_str());
  bench::save_csv(lines, "analysis_fig7_lines");

  // --- Section 4.5 improvement example ---
  auto example = scenario(8, 16, 4, /*m_cua=*/128);  // 128-line 16-way LLC
  std::printf(
      "Section 4.5 example (4 cores, 16-way, 128-line LLC, m = %d):\n"
      "  Thm 4.7 bound: %s cycles\n"
      "  Thm 4.8 bound: %s cycles\n"
      "  exact ratio:   %.1fx   (paper's (m+1)*w back-of-envelope: %dx)\n\n",
      example.m(), format_cycles(wcl_1s_tdm_cycles(example)).c_str(),
      format_cycles(wcl_set_sequencer_cycles(example)).c_str(),
      wcl_improvement_ratio(example),
      (example.m() + 1) * example.partition_ways);

  // --- bound vs partition size sweep ---
  Table sweep({"partition (sets x ways)", "M lines", "Thm 4.7 (cycles)",
               "Thm 4.8 (cycles)", "ratio"});
  for (const auto& [sets, ways] : std::vector<std::pair<int, int>>{
           {1, 2}, {1, 4}, {1, 16}, {4, 4}, {8, 8}, {16, 16}, {32, 16}}) {
    const auto s = scenario(sets, ways, 4);
    sweep.add_row({std::to_string(sets) + "x" + std::to_string(ways),
                   std::to_string(s.partition_lines()),
                   format_cycles(wcl_1s_tdm_cycles(s)),
                   format_cycles(wcl_set_sequencer_cycles(s)),
                   format_double(wcl_improvement_ratio(s), 1)});
  }
  std::printf("%s\n", sweep.to_text().c_str());
  bench::save_csv(sweep, "analysis_bound_sweep");

  // --- sharer count sweep (the cubic term) ---
  Table sharers({"n sharers", "Thm 4.7 (cycles)", "Thm 4.8 (cycles)"});
  for (int n = 2; n <= 4; ++n) {
    const auto s = scenario(1, 4, n);
    sharers.add_row({std::to_string(n),
                     format_cycles(wcl_1s_tdm_cycles(s)),
                     format_cycles(wcl_set_sequencer_cycles(s))});
  }
  std::printf("%s\n", sharers.to_text().c_str());
  bench::save_csv(sharers, "analysis_sharer_sweep");

  const bool exact =
      wcl_set_sequencer_cycles(scenario(1, 2, 4)) == 5000 &&
      wcl_1s_tdm_cycles(scenario(1, 16, 4)) == 979250 &&
      wcl_private_cycles(4, kPaperSlotWidth) == 450;
  std::printf("claim check: Figure 7 analytical lines match exactly: %s\n",
              exact ? "PASS" : "FAIL");
  return exact ? 0 : 1;
}

}  // namespace

int main() { return run(); }
