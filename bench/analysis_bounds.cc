// Experiment E7 — the paper's analytical claims, regenerated from the
// closed-form analysis (no simulation):
//  * the Figure 7 analytical lines (5000 / 979250 / 450 cycles);
//  * Section 4.5's set-sequencer improvement for the "4-core, 16-way LLC
//    with 128 cache lines" example, including the paper's (m+1)*w
//    back-of-envelope 2048x versus the exact theorem ratio;
//  * a sweep showing Theorem 4.7 growing with partition size while
//    Theorem 4.8 stays flat (the WCL becomes independent of cache and
//    partition sizes).
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "core/wcl_analysis.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

constexpr char kTitle[] = "Analytical WCL bounds (Theorems 4.7 / 4.8)";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, Sections 4.4-4.5 + Figure 7 lines";

SharedPartitionScenario scenario(int sets, int ways, int n, int m_cua = 64) {
  SharedPartitionScenario s;
  s.total_cores = 4;
  s.sharers = n;
  s.partition_sets = sets;
  s.partition_ways = ways;
  s.cua_capacity_lines = m_cua;
  return s;
}

// Everything in this bench is closed-form analysis: every column is exact,
// and any drift across commits is a regression in the bounds themselves.
constexpr auto kExact = results::ColumnKind::kExact;
constexpr auto kInt = results::ColumnType::kInt;
constexpr auto kReal = results::ColumnType::kReal;
constexpr auto kText = results::ColumnType::kText;

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  results::BenchResult res(
      ctx.make_meta("analysis_bounds", kTitle, kReference));

  // --- Figure 7 analytical lines ---
  auto& lines = res.add_series("fig7_lines",
                               {{"configuration", kText, kExact, ""},
                                {"bound", kText, kExact, ""},
                                {"cycles", kInt, kExact, "cycles"},
                                {"paper_cycles", kInt, kExact, "cycles"}});
  lines.add_row({results::Value::of_text("SS(n=4)"),
                 results::Value::of_text("Thm 4.8"),
                 results::Value::of_int(
                     wcl_set_sequencer_cycles(scenario(1, 2, 4))),
                 results::Value::of_int(5000)});
  lines.add_row({results::Value::of_text("NSS(1,16,4) m=16"),
                 results::Value::of_text("Thm 4.7"),
                 results::Value::of_int(wcl_1s_tdm_cycles(scenario(1, 16, 4))),
                 results::Value::of_int(979250)});
  lines.add_row({results::Value::of_text("P (private)"),
                 results::Value::of_text("2N+1 slots"),
                 results::Value::of_int(
                     wcl_private_cycles(4, kPaperSlotWidth)),
                 results::Value::of_int(450)});

  // --- Section 4.5 improvement example ---
  const auto example =
      scenario(8, 16, 4, /*m_cua=*/128);  // 128-line 16-way LLC
  auto& improvement =
      res.add_series("improvement_example",
                     {{"m_lines", kInt, kExact, ""},
                      {"thm47_bound", kInt, kExact, "cycles"},
                      {"thm48_bound", kInt, kExact, "cycles"},
                      {"exact_ratio", kReal, kExact, "ratio"},
                      {"paper_envelope", kInt, kExact, "ratio"}});
  improvement.add_row(
      {results::Value::of_int(example.m()),
       results::Value::of_int(wcl_1s_tdm_cycles(example)),
       results::Value::of_int(wcl_set_sequencer_cycles(example)),
       results::Value::of_real(wcl_improvement_ratio(example)),
       results::Value::of_int((example.m() + 1) * example.partition_ways)});
  std::printf(
      "Section 4.5 example (4 cores, 16-way, 128-line LLC, m = %d):\n"
      "  Thm 4.7 bound: %s cycles\n"
      "  Thm 4.8 bound: %s cycles\n"
      "  exact ratio:   %.1fx   (paper's (m+1)*w back-of-envelope: %dx)\n\n",
      example.m(), format_cycles(wcl_1s_tdm_cycles(example)).c_str(),
      format_cycles(wcl_set_sequencer_cycles(example)).c_str(),
      wcl_improvement_ratio(example),
      (example.m() + 1) * example.partition_ways);

  // --- bound vs partition size sweep ---
  auto& sweep = res.add_series("bound_sweep",
                               {{"partition", kText, kExact, ""},
                                {"m_lines", kInt, kExact, ""},
                                {"thm47_bound", kInt, kExact, "cycles"},
                                {"thm48_bound", kInt, kExact, "cycles"},
                                {"ratio", kReal, kExact, "ratio"}});
  for (const auto& [sets, ways] : std::vector<std::pair<int, int>>{
           {1, 2}, {1, 4}, {1, 16}, {4, 4}, {8, 8}, {16, 16}, {32, 16}}) {
    const auto s = scenario(sets, ways, 4);
    sweep.add_row({results::Value::of_text(std::to_string(sets) + "x" +
                                           std::to_string(ways)),
                   results::Value::of_int(s.partition_lines()),
                   results::Value::of_int(wcl_1s_tdm_cycles(s)),
                   results::Value::of_int(wcl_set_sequencer_cycles(s)),
                   results::Value::of_real(wcl_improvement_ratio(s))});
  }

  // --- sharer count sweep (the cubic term) ---
  auto& sharers = res.add_series("sharer_sweep",
                                 {{"sharers", kInt, kExact, ""},
                                  {"thm47_bound", kInt, kExact, "cycles"},
                                  {"thm48_bound", kInt, kExact, "cycles"}});
  for (int n = 2; n <= 4; ++n) {
    const auto s = scenario(1, 4, n);
    sharers.add_row({results::Value::of_int(n),
                     results::Value::of_int(wcl_1s_tdm_cycles(s)),
                     results::Value::of_int(wcl_set_sequencer_cycles(s))});
  }

  const bool exact =
      wcl_set_sequencer_cycles(scenario(1, 2, 4)) == 5000 &&
      wcl_1s_tdm_cycles(scenario(1, 16, 4)) == 979250 &&
      wcl_private_cycles(4, kPaperSlotWidth) == 450;
  res.add_claim("Figure 7 analytical lines match exactly", exact);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(analysis_bounds, run)
