// Shared main() for the standalone per-bench executables. Each bench
// target links exactly one bench translation unit (which registers itself)
// plus this file; run_all links every bench with its own driver instead.
#include "bench/registry.h"

int main(int argc, char** argv) {
  return psllc::bench::bench_single_main(argc, argv);
}
