// Shared helpers for the figure/ablation bench executables. CSV/JSON
// emission goes through the result store (see bench/registry.h and
// src/results/result_store.h); this header keeps only console helpers.
#ifndef PSLLC_BENCH_BENCH_UTIL_H_
#define PSLLC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace psllc::bench {

inline void print_header(const std::string& title,
                         const std::string& reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", reference.c_str());
  std::printf("==============================================================\n");
}

}  // namespace psllc::bench

#endif  // PSLLC_BENCH_BENCH_UTIL_H_
