// Shared helpers for the figure/ablation bench executables.
#ifndef PSLLC_BENCH_BENCH_UTIL_H_
#define PSLLC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/table.h"

namespace psllc::bench {

inline void print_header(const std::string& title,
                         const std::string& reference) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", reference.c_str());
  std::printf("==============================================================\n");
}

/// Writes `table` to bench_results/<name>.csv next to the working directory
/// (best effort: failures are reported but not fatal so benches stay
/// usable in read-only checkouts).
inline void save_csv(const Table& table, const std::string& name) {
  try {
    std::filesystem::create_directories("bench_results");
    const std::string path = "bench_results/" + name + ".csv";
    table.write_csv(path);
    std::printf("[csv] %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("[csv] skipped (%s)\n", e.what());
  }
}

}  // namespace psllc::bench

#endif  // PSLLC_BENCH_BENCH_UTIL_H_
