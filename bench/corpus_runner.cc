// Corpus runner — trace-driven workloads at scale. Replays a corpus of
// recorded traces (a directory of .trace/.pslt files named by
// $PSLLC_CORPUS_DIR, or the deterministic built-in demo corpus) across a
// grid of partition configurations through sim::run_batch, and checks the
// paper's central claim per (trace, configuration) cell: the observed
// worst-case service latency never exceeds the analytical WCL bound
// (Wu & Patel, DAC'22, Theorems 4.7/4.8). Because the built-in corpus and
// the files `trace_convert --demo` emits are identical, running this bench
// against a converted on-disk corpus (the corpus-smoke CI job) must
// reproduce the committed golden baseline bit for bit — which gates the
// whole text->binary->mmap ingestion pipeline, not just the simulator.
//
// Traces stream per entry: each batch job loads its own trace, so the
// peak resident set is the batch concurrency, not the corpus size. With
// --shard-index/--shard-count the (trace x config) cells are enumerated
// as work units (sim/shard.h), only the owned cells execute, and the
// result store is a partial tagged with shard.* provenance that
// tools/results_merge reassembles bit-identically to an unsharded run.
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/assert.h"
#include "bench/registry.h"
#include "results/merge.h"
#include "sim/corpus.h"
#include "sim/shard.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] =
    "Corpus runner: recorded traces x partition configurations";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, Section 5 methodology over recorded traces";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  const int accesses = ctx.pick(4000, 400);
  std::string corpus_source = "builtin";
  std::vector<CorpusSource> corpus;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env; nothing calls setenv
  if (const char* dir = std::getenv("PSLLC_CORPUS_DIR");
      dir != nullptr && *dir != '\0') {
    corpus_source = dir;
    corpus = corpus_dir_sources(dir);
  } else {
    corpus = demo_corpus_sources(accesses);
  }

  // Mirrored replay (the default) needs shiftable addresses; recorded
  // traces touching the top of the address space select solo replay here.
  CorpusReplay replay = CorpusReplay::kMirrored;
  std::string replay_name = "mirrored";
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env; nothing calls setenv
  if (const char* env = std::getenv("PSLLC_CORPUS_REPLAY");
      env != nullptr && *env != '\0') {
    replay_name = env;
    if (replay_name == "solo") {
      replay = CorpusReplay::kSolo;
    } else {
      PSLLC_CONFIG_CHECK(replay_name == "mirrored",
                         "PSLLC_CORPUS_REPLAY must be 'mirrored' or "
                         "'solo', got '"
                             << replay_name << "'");
    }
  }

  SweepOptions options;
  options.threads = ctx.threads;
  std::vector<SweepConfig> configs = {
      {"SS(32,2,2)", 2}, {"NSS(32,2,2)", 2}, {"P(8,2)", 2}};
  if (!ctx.quick()) {
    configs.push_back({"SS(32,2,4)", 4});
    configs.push_back({"NSS(32,2,4)", 4});
    configs.push_back({"P(8,2)", 4});
  }

  const std::size_t num_entries = corpus.size();
  const std::size_t num_configs = configs.size();

  // Cell-level work-unit plan: unit ordinal e * C + c, the row order of
  // the corpus_wcl series, so merged rows land exactly where an unsharded
  // run emits them.
  std::vector<std::pair<std::string, std::string>> grid_params = {
      {"profile", bench::to_string(ctx.profile)},
      {"corpus", corpus_source},
      {"replay", replay_name}};
  if (corpus_source == "builtin") {
    grid_params.emplace_back("accesses", std::to_string(accesses));
  }
  ShardPlan plan("corpus_runner", std::move(grid_params),
                 ctx.sharded() ? ctx.shard_count : 1);
  for (const CorpusSource& source : corpus) {
    for (const SweepConfig& config : configs) {
      plan.add_unit("corpus_runner", source.name + "|" + config.notation);
    }
  }

  std::vector<bool> mask;
  const std::vector<bool>* mask_ptr = nullptr;
  std::vector<std::size_t> owned;
  if (ctx.sharded()) {
    const ShardSpec spec{ctx.shard_index, ctx.shard_count};
    if (!ctx.manifest_path.empty()) {
      plan.write_or_verify(ctx.manifest_path);
    }
    owned = plan.owned_ordinals(spec);
    std::printf("[shard] %d/%d: %zu of %zu cells\n", ctx.shard_index,
                ctx.shard_count, owned.size(), plan.units().size());
    if (owned.empty()) {
      // More shards than cells: this shard owes the merge nothing, so
      // (like run_all) it succeeds without emitting a partial store.
      std::printf("[shard] nothing to run on this shard\n");
      return 0;
    }
    mask.assign(num_entries * num_configs, false);
    for (const std::size_t ordinal : owned) {
      mask[ordinal] = true;
    }
    mask_ptr = &mask;
  }

  const CorpusResult result =
      run_corpus(corpus, configs, options, replay, mask_ptr);

  results::BenchResult res(
      ctx.make_meta("corpus_runner", kTitle, kReference));
  res.meta().set_param("corpus", corpus_source);
  res.meta().set_param("entries", std::to_string(corpus.size()));
  // The accesses knob sizes only the built-in demo corpus; directory
  // traces define their own sizes (recorded in corpus_traces).
  if (corpus_source == "builtin") {
    res.meta().set_param("accesses", std::to_string(accesses));
  }
  res.meta().set_param("replay", replay_name);

  auto& traces_series = res.add_series(
      "corpus_traces",
      {{"trace", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"ops", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"reads", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"writes", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""},
       {"ifetches", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""},
       {"distinct_lines", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""}});
  std::vector<std::size_t> traces_ordinals;
  for (std::size_t e = 0; e < num_entries; ++e) {
    if (!result.entry_ran[e]) {
      continue;
    }
    const TraceStats& stats = result.entry_stats[e];
    traces_series.add_row({results::Value::of_text(result.names[e]),
                           results::Value::of_int(stats.ops),
                           results::Value::of_int(stats.reads),
                           results::Value::of_int(stats.writes),
                           results::Value::of_int(stats.ifetches),
                           results::Value::of_int(stats.distinct_lines)});
    traces_ordinals.push_back(e);
  }

  auto& wcl_series = res.add_series(
      "corpus_wcl",
      {{"trace", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cores", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"llc_requests", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"bound_ok", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""}});

  std::vector<std::size_t> wcl_ordinals;
  bool all_completed = true;
  bool bounds_hold = true;
  for (int e = 0; e < static_cast<int>(result.names.size()); ++e) {
    for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
      const CorpusCell& cell = result.cell(e, c);
      if (!cell.ran) {
        continue;
      }
      const RunMetrics& m = cell.metrics;
      // The per-cell claim check: diffable as an exact column, aggregated
      // below into the bench-level claims.
      const bool bound_ok = m.completed && m.observed_wcl <= m.analytical_wcl;
      all_completed = all_completed && m.completed;
      bounds_hold = bounds_hold && bound_ok;
      wcl_series.add_row(
          {results::Value::of_text(cell.trace_name),
           results::Value::of_text(cell.config.notation),
           results::Value::of_int(cell.config.active_cores),
           results::Value::of_int(m.analytical_wcl),
           results::Value::of_cycles(m.observed_wcl, m.completed),
           results::Value::of_cycles(m.makespan, m.completed),
           results::Value::of_int(m.llc_requests),
           results::Value::of_int(bound_ok ? 1 : 0)});
      wcl_ordinals.push_back(static_cast<std::size_t>(e) * num_configs +
                             static_cast<std::size_t>(c));
    }
  }

  res.add_claim("all corpus cells completed", all_completed);
  res.add_claim("observed WCL <= analytical bound for every trace/config",
                bounds_hold);

  if (ctx.sharded()) {
    std::vector<std::string> unit_ids;
    unit_ids.reserve(owned.size());
    for (const std::size_t ordinal : owned) {
      unit_ids.push_back(plan.units()[ordinal].id);
    }
    results::set_shard_provenance(res.meta(), plan.content_hash(),
                                  ctx.shard_index, ctx.shard_count,
                                  unit_ids);
    results::set_shard_rows(res.meta(), "corpus_traces", traces_ordinals);
    results::set_shard_rows(res.meta(), "corpus_wcl", wcl_ordinals);
  }
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH_SHARDED(corpus_runner, run)
