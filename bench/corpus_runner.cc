// Corpus runner — trace-driven workloads at scale. Replays a corpus of
// recorded traces (a directory of .trace/.pslt files named by
// $PSLLC_CORPUS_DIR, or the deterministic built-in demo corpus) across a
// grid of partition configurations through sim::run_batch, and checks the
// paper's central claim per (trace, configuration) cell: the observed
// worst-case service latency never exceeds the analytical WCL bound
// (Wu & Patel, DAC'22, Theorems 4.7/4.8). Because the built-in corpus and
// the files `trace_convert --demo` emits are identical, running this bench
// against a converted on-disk corpus (the corpus-smoke CI job) must
// reproduce the committed golden baseline bit for bit — which gates the
// whole text->binary->mmap ingestion pipeline, not just the simulator.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/assert.h"
#include "bench/registry.h"
#include "sim/corpus.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] =
    "Corpus runner: recorded traces x partition configurations";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, Section 5 methodology over recorded traces";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  const int accesses = ctx.pick(4000, 400);
  std::string corpus_source = "builtin";
  std::vector<CorpusEntry> corpus;
  if (const char* dir = std::getenv("PSLLC_CORPUS_DIR");
      dir != nullptr && *dir != '\0') {
    corpus_source = dir;
    corpus = load_corpus_dir(dir);
  } else {
    corpus = make_demo_corpus(accesses);
  }

  // Mirrored replay (the default) needs shiftable addresses; recorded
  // traces touching the top of the address space select solo replay here.
  CorpusReplay replay = CorpusReplay::kMirrored;
  std::string replay_name = "mirrored";
  if (const char* env = std::getenv("PSLLC_CORPUS_REPLAY");
      env != nullptr && *env != '\0') {
    replay_name = env;
    if (replay_name == "solo") {
      replay = CorpusReplay::kSolo;
    } else {
      PSLLC_CONFIG_CHECK(replay_name == "mirrored",
                         "PSLLC_CORPUS_REPLAY must be 'mirrored' or "
                         "'solo', got '"
                             << replay_name << "'");
    }
  }

  SweepOptions options;
  options.threads = ctx.threads;
  std::vector<SweepConfig> configs = {
      {"SS(32,2,2)", 2}, {"NSS(32,2,2)", 2}, {"P(8,2)", 2}};
  if (!ctx.quick()) {
    configs.push_back({"SS(32,2,4)", 4});
    configs.push_back({"NSS(32,2,4)", 4});
    configs.push_back({"P(8,2)", 4});
  }

  const CorpusResult result = run_corpus(corpus, configs, options, replay);

  results::BenchResult res(
      ctx.make_meta("corpus_runner", kTitle, kReference));
  res.meta().set_param("corpus", corpus_source);
  res.meta().set_param("entries", std::to_string(corpus.size()));
  // The accesses knob sizes only the built-in demo corpus; directory
  // traces define their own sizes (recorded in corpus_traces).
  if (corpus_source == "builtin") {
    res.meta().set_param("accesses", std::to_string(accesses));
  }
  res.meta().set_param("replay", replay_name);

  auto& traces_series = res.add_series(
      "corpus_traces",
      {{"trace", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"ops", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"reads", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"writes", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""},
       {"ifetches", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""},
       {"distinct_lines", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""}});
  for (const CorpusEntry& entry : corpus) {
    const TraceStats stats = compute_trace_stats(entry.trace);
    traces_series.add_row(
        {results::Value::of_text(entry.name),
         results::Value::of_int(static_cast<std::int64_t>(entry.trace.size())),
         results::Value::of_int(stats.reads),
         results::Value::of_int(stats.writes),
         results::Value::of_int(stats.ifetches),
         results::Value::of_int(stats.distinct_lines)});
  }

  auto& wcl_series = res.add_series(
      "corpus_wcl",
      {{"trace", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cores", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"llc_requests", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"bound_ok", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""}});

  bool all_completed = true;
  bool bounds_hold = true;
  for (int e = 0; e < static_cast<int>(result.names.size()); ++e) {
    for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
      const CorpusCell& cell = result.cell(e, c);
      const RunMetrics& m = cell.metrics;
      // The per-cell claim check: diffable as an exact column, aggregated
      // below into the bench-level claims.
      const bool bound_ok = m.completed && m.observed_wcl <= m.analytical_wcl;
      all_completed = all_completed && m.completed;
      bounds_hold = bounds_hold && bound_ok;
      wcl_series.add_row(
          {results::Value::of_text(cell.trace_name),
           results::Value::of_text(cell.config.notation),
           results::Value::of_int(cell.config.active_cores),
           results::Value::of_int(m.analytical_wcl),
           results::Value::of_cycles(m.observed_wcl, m.completed),
           results::Value::of_cycles(m.makespan, m.completed),
           results::Value::of_int(m.llc_requests),
           results::Value::of_int(bound_ok ? 1 : 0)});
    }
  }

  res.add_claim("all corpus cells completed", all_completed);
  res.add_claim("observed WCL <= analytical bound for every trace/config",
                bounds_hold);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(corpus_runner, run)
