// Figure 7 — observed worst-case latency of SS / NSS / P configurations
// with one-set partitions, across address ranges 1 KiB .. 256 KiB.
//
// Paper claims reproduced here:
//  * every observed WCL stays below its analytical bound
//    (SS: Theorem 4.8 = 5000 cycles; NSS: Theorem 4.7, quoted as 979250
//    cycles for the 1-set 16-way partition; P: 450 cycles);
//  * NSS shows a higher observed WCL than SS across all address ranges
//    (distance can increase, Observation 3);
//  * the distinct partition P yields the lowest WCL.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "core/wcl_analysis.h"
#include "sim/experiment.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] =
    "Figure 7: observed WCL vs analytical bounds (1-set partitions)";
constexpr char kReference[] = "Wu & Patel, DAC'22, Section 5.1, Figure 7";

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  SweepOptions options;
  options.accesses_per_core = ctx.pick(20000, 4000);
  if (ctx.quick()) {
    options.address_ranges = {1024, 8192, 65536};
  }
  options.write_fraction = 0.25;
  options.seed = 7;
  options.threads = ctx.threads;
  const std::vector<SweepConfig> configs = {
      {"SS(1,2,4)", 4}, {"SS(1,4,4)", 4}, {"NSS(1,2,4)", 4},
      {"NSS(1,4,4)", 4}, {"P(1,2)", 4},   {"P(1,4)", 4},
  };
  const SweepResult result = run_sweep(configs, options);

  results::BenchResult res(ctx.make_meta("fig7_wcl", kTitle, kReference));
  res.meta().set_param("seed", std::to_string(options.seed));
  res.meta().set_param("accesses_per_core",
                       std::to_string(options.accesses_per_core));
  res.add_series(observed_wcl_series(result));
  res.add_series(analytical_wcl_series(result));

  // The paper's quoted analytical lines for the figure.
  core::SharedPartitionScenario nss_quoted;
  nss_quoted.partition_ways = 16;  // 1-set, full-associativity partition
  std::printf("Paper analytical lines: SS %s | NSS %s | P %s cycles\n",
              format_cycles(core::wcl_set_sequencer_cycles(nss_quoted)).c_str(),
              format_cycles(core::wcl_1s_tdm_cycles(nss_quoted)).c_str(),
              format_cycles(core::wcl_private_cycles(4, 50)).c_str());

  // Check the claims programmatically and report.
  bool bounds_hold = true;
  bool nss_above_ss = true;
  for (int r = 0; r < static_cast<int>(result.ranges.size()); ++r) {
    for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
      const auto& m = result.cell(r, c).metrics;
      bounds_hold = bounds_hold && m.completed &&
                    m.observed_wcl <= m.analytical_wcl;
    }
    nss_above_ss = nss_above_ss &&
                   result.cell(r, 2).metrics.observed_wcl >=
                       result.cell(r, 0).metrics.observed_wcl &&
                   result.cell(r, 3).metrics.observed_wcl >=
                       result.cell(r, 1).metrics.observed_wcl;
  }
  res.add_claim("observed <= analytical everywhere", bounds_hold);
  res.add_claim("NSS observed >= SS observed (per range/ways)",
                nss_above_ss);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(fig7_wcl, run)
