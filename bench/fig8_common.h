// Shared harness for the four Figure 8 panels: execution time of the
// synthetic workload under a fixed total cache capacity, shared (SS/NSS)
// vs private (P) partitions.
#ifndef PSLLC_BENCH_FIG8_COMMON_H_
#define PSLLC_BENCH_FIG8_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "sim/experiment.h"

namespace psllc::bench {

struct Fig8Panel {
  std::string bench_name;  ///< result-store directory name
  std::string title;
  std::string reference;
  std::vector<sim::SweepConfig> configs;
  /// Pairs (shared config, P baseline) whose mean speedup is reported, as
  /// in the paper's "SS achieves an average speedup of X x".
  std::vector<std::pair<std::string, std::string>> speedups;
};

inline int run_fig8_panel(const Fig8Panel& panel, BenchContext& ctx) {
  print_header(panel.title, panel.reference);
  sim::SweepOptions options;
  options.accesses_per_core = ctx.pick(20000, 4000);
  if (ctx.quick()) {
    options.address_ranges = {1024, 8192, 65536};
  }
  options.write_fraction = 0.25;
  options.seed = 8;
  options.threads = ctx.threads;
  const sim::SweepResult result = sim::run_sweep(panel.configs, options);

  results::BenchResult res(
      ctx.make_meta(panel.bench_name, panel.title, panel.reference));
  res.meta().set_param("seed", std::to_string(options.seed));
  res.meta().set_param("accesses_per_core",
                       std::to_string(options.accesses_per_core));
  res.add_series(sim::exec_time_series(result));
  if (!panel.speedups.empty()) {
    res.add_series(sim::speedup_series(result, panel.speedups));
  }

  bool all_completed = true;
  for (const auto& cell : result.cells) {
    all_completed = all_completed && cell.metrics.completed;
  }
  res.add_claim("all configurations completed", all_completed);
  // The paper's equality claim: while the address range fits the per-core
  // share of the capacity, all configurations behave identically.
  const auto& first_range_ss = result.cell(0, 0).metrics;
  bool small_range_equal = true;
  for (int c = 1; c < static_cast<int>(result.configs.size()); ++c) {
    small_range_equal = small_range_equal &&
                        result.cell(0, c).metrics.makespan ==
                            first_range_ss.makespan;
  }
  res.add_claim("identical execution time at 1 KiB range",
                small_range_equal);
  return finish_bench(ctx, res);
}

}  // namespace psllc::bench

#endif  // PSLLC_BENCH_FIG8_COMMON_H_
