// Shared harness for the four Figure 8 panels: execution time of the
// synthetic workload under a fixed total cache capacity, shared (SS/NSS)
// vs private (P) partitions.
#ifndef PSLLC_BENCH_FIG8_COMMON_H_
#define PSLLC_BENCH_FIG8_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "sim/experiment.h"

namespace psllc::bench {

struct Fig8Panel {
  std::string title;
  std::string reference;
  std::string csv_name;
  std::vector<sim::SweepConfig> configs;
  /// Pairs (shared config, P baseline) whose mean speedup is reported, as
  /// in the paper's "SS achieves an average speedup of X x".
  std::vector<std::pair<std::string, std::string>> speedups;
};

inline int run_fig8_panel(const Fig8Panel& panel) {
  print_header(panel.title, panel.reference);
  sim::SweepOptions options;
  options.accesses_per_core = 20000;
  options.write_fraction = 0.25;
  options.seed = 8;
  const sim::SweepResult result = sim::run_sweep(panel.configs, options);
  const Table table = sim::exec_time_table(result);
  std::printf("%s\n", table.to_text().c_str());
  save_csv(table, panel.csv_name);

  bool all_completed = true;
  for (const auto& cell : result.cells) {
    all_completed = all_completed && cell.metrics.completed;
  }
  for (const auto& [shared, baseline] : panel.speedups) {
    std::printf("mean speedup of %s over %s: %.2fx\n", shared.c_str(),
                baseline.c_str(),
                sim::mean_speedup(result, shared, baseline));
  }
  // The paper's equality claim: while the address range fits the per-core
  // share of the capacity, all configurations behave identically.
  const auto& first_range_ss = result.cell(0, 0).metrics;
  bool small_range_equal = true;
  for (int c = 1; c < static_cast<int>(result.configs.size()); ++c) {
    small_range_equal = small_range_equal &&
                        result.cell(0, c).metrics.makespan ==
                            first_range_ss.makespan;
  }
  std::printf("claim check: identical execution time at 1 KiB range: %s\n",
              small_range_equal ? "PASS" : "FAIL");
  return all_completed ? 0 : 1;
}

}  // namespace psllc::bench

#endif  // PSLLC_BENCH_FIG8_COMMON_H_
