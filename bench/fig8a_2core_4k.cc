// Figure 8a — 2 cores, 4096 B total capacity: SS(32,2,2) vs NSS(32,2,2)
// vs P(8,2).
//
// Note on the P baseline: the paper's caption says P(8,2) (1024 B per
// core), but its text states the curves coincide at both 1 KiB *and* 2 KiB
// ranges, which matches a capacity-equal split P(16,2) (2048 B per core).
// Both baselines are reported; see EXPERIMENTS.md.
#include "bench/fig8_common.h"

namespace {

int run(psllc::bench::BenchContext& ctx) {
  psllc::bench::Fig8Panel panel;
  panel.bench_name = "fig8a_2core_4k";
  panel.title = "Figure 8a: execution time, 2-core, 4096 B partition";
  panel.reference = "Wu & Patel, DAC'22, Section 5.2, Figure 8a";
  panel.configs = {{"SS(32,2,2)", 2},
                   {"NSS(32,2,2)", 2},
                   {"P(8,2)", 2},
                   {"P(16,2)", 2}};
  panel.speedups = {{"SS(32,2,2)", "P(8,2)"},
                    {"SS(32,2,2)", "P(16,2)"},
                    {"SS(32,2,2)", "NSS(32,2,2)"}};
  return psllc::bench::run_fig8_panel(panel, ctx);
}

}  // namespace

PSLLC_REGISTER_BENCH(fig8a_2core_4k, run)
