// Figure 8b — 2 cores, 8192 B total capacity: SS(32,4,2) vs NSS(32,4,2)
// vs P(8,4) (caption) and P(16,4) (capacity-equal split, see fig8a note).
#include "bench/fig8_common.h"

namespace {

int run(psllc::bench::BenchContext& ctx) {
  psllc::bench::Fig8Panel panel;
  panel.bench_name = "fig8b_2core_8k";
  panel.title = "Figure 8b: execution time, 2-core, 8192 B partition";
  panel.reference = "Wu & Patel, DAC'22, Section 5.2, Figure 8b";
  panel.configs = {{"SS(32,4,2)", 2},
                   {"NSS(32,4,2)", 2},
                   {"P(8,4)", 2},
                   {"P(16,4)", 2}};
  panel.speedups = {{"SS(32,4,2)", "P(8,4)"},
                    {"SS(32,4,2)", "P(16,4)"},
                    {"SS(32,4,2)", "NSS(32,4,2)"}};
  return psllc::bench::run_fig8_panel(panel, ctx);
}

}  // namespace

PSLLC_REGISTER_BENCH(fig8b_2core_8k, run)
