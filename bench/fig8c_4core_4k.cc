// Figure 8c — 4 cores, 4096 B total capacity: SS(32,2,4) vs NSS(32,2,4)
// vs P(8,2). Here the caption's P(8,2) x 4 = 4096 B is capacity-equal.
#include "bench/fig8_common.h"

namespace {

int run(psllc::bench::BenchContext& ctx) {
  psllc::bench::Fig8Panel panel;
  panel.bench_name = "fig8c_4core_4k";
  panel.title = "Figure 8c: execution time, 4-core, 4096 B partition";
  panel.reference = "Wu & Patel, DAC'22, Section 5.2, Figure 8c";
  panel.configs = {{"SS(32,2,4)", 4}, {"NSS(32,2,4)", 4}, {"P(8,2)", 4}};
  panel.speedups = {{"SS(32,2,4)", "P(8,2)"},
                    {"SS(32,2,4)", "NSS(32,2,4)"}};
  return psllc::bench::run_fig8_panel(panel, ctx);
}

}  // namespace

PSLLC_REGISTER_BENCH(fig8c_4core_4k, run)
