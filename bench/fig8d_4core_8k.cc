// Figure 8d — 4 cores, 8192 B total capacity: SS(32,4,4) vs NSS(32,4,4)
// vs P(8,4). The caption's P(8,4) x 4 = 8192 B is capacity-equal.
#include "bench/fig8_common.h"

namespace {

int run(psllc::bench::BenchContext& ctx) {
  psllc::bench::Fig8Panel panel;
  panel.bench_name = "fig8d_4core_8k";
  panel.title = "Figure 8d: execution time, 4-core, 8192 B partition";
  panel.reference = "Wu & Patel, DAC'22, Section 5.2, Figure 8d";
  panel.configs = {{"SS(32,4,4)", 4}, {"NSS(32,4,4)", 4}, {"P(8,4)", 4}};
  panel.speedups = {{"SS(32,4,4)", "P(8,4)"},
                    {"SS(32,4,4)", "NSS(32,4,4)"}};
  return psllc::bench::run_fig8_panel(panel, ctx);
}

}  // namespace

PSLLC_REGISTER_BENCH(fig8d_4core_8k, run)
