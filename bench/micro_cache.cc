// Google-benchmark microbenchmarks for the hot data structures: cache
// lookup/fill, replacement victim selection, and the set sequencer.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "llc/set_sequencer.h"
#include "mem/replacement.h"
#include "mem/set_assoc_cache.h"

namespace {

using namespace psllc;  // NOLINT

void BM_CacheAccessHit(benchmark::State& state) {
  mem::SetAssocCache cache({32, 16, 64}, mem::ReplacementKind::kLru);
  for (LineAddr line = 0; line < 32 * 16; ++line) {
    cache.fill(line, false);
  }
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(32 * 16), false));
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheFillEvict(benchmark::State& state) {
  mem::SetAssocCache cache({32, 16, 64}, mem::ReplacementKind::kLru);
  LineAddr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(line++, false));
  }
}
BENCHMARK(BM_CacheFillEvict);

void BM_VictimSelection(benchmark::State& state) {
  const auto kind = static_cast<mem::ReplacementKind>(state.range(0));
  auto policy = mem::make_replacement_policy(kind, 16, 7);
  for (int w = 0; w < 16; ++w) {
    policy->on_insert(w);
  }
  const std::vector<bool> eligible(16, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->select_victim(eligible));
  }
}
BENCHMARK(BM_VictimSelection)
    ->Arg(static_cast<int>(mem::ReplacementKind::kLru))
    ->Arg(static_cast<int>(mem::ReplacementKind::kFifo))
    ->Arg(static_cast<int>(mem::ReplacementKind::kRandom))
    ->Arg(static_cast<int>(mem::ReplacementKind::kTreePlru));

void BM_SetSequencerCycle(benchmark::State& state) {
  llc::SetSequencer sequencer(4, 4);
  const llc::SetKey key{0, 3};
  for (auto _ : state) {
    sequencer.enqueue(key, CoreId{0});
    sequencer.enqueue(key, CoreId{1});
    benchmark::DoNotOptimize(sequencer.is_head(key, CoreId{1}));
    sequencer.dequeue_head(key, CoreId{0});
    sequencer.dequeue_head(key, CoreId{1});
  }
}
BENCHMARK(BM_SetSequencerCycle);

}  // namespace

BENCHMARK_MAIN();
