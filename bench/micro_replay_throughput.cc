// micro_replay_throughput — wall-clock replay throughput (trace ops/sec)
// of the tight struct-of-arrays kernel vs the legacy core::System slot
// loop, over workload regimes chosen to span the kernel's win profile:
// solo replay on a multi-core system and think-time gaps (many idle slots
// the kernel skips outright), a cache-resident footprint (local fast
// path), and dense bus-saturated traffic (worst case, near parity).
//
// The result store stays byte-deterministic — wall-clock numbers are
// printed to the console only; the stored series carries the simulated
// metrics and the per-workload engine-agreement verdict, and the claims
// record that (a) the engines agreed bit-for-bit everywhere and (b) the
// kernel replayed at >= 2x the legacy aggregate ops/sec.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "sim/replay.h"
#include "sim/workload.h"

namespace {

using namespace psllc;  // NOLINT

bool metrics_equal(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  return a.completed == b.completed && a.end_cycle == b.end_cycle &&
         a.makespan == b.makespan && a.observed_wcl == b.observed_wcl &&
         a.analytical_wcl == b.analytical_wcl &&
         a.llc_requests == b.llc_requests &&
         a.per_core_finish == b.per_core_finish &&
         a.per_core_l1_hits == b.per_core_l1_hits &&
         a.per_core_l2_hits == b.per_core_l2_hits &&
         a.per_core_misses == b.per_core_misses &&
         a.llc_stats.hit_presentations == b.llc_stats.hit_presentations &&
         a.llc_stats.blocked_presentations ==
             b.llc_stats.blocked_presentations &&
         a.llc_stats.fills == b.llc_stats.fills &&
         a.llc_stats.evictions_started == b.llc_stats.evictions_started &&
         a.llc_stats.immediate_frees == b.llc_stats.immediate_frees &&
         a.llc_stats.voluntary_writebacks ==
             b.llc_stats.voluntary_writebacks &&
         a.llc_stats.freeing_writebacks == b.llc_stats.freeing_writebacks &&
         a.llc_stats.steals == b.llc_stats.steals &&
         a.llc_stats.shared_write_flags == b.llc_stats.shared_write_flags &&
         a.memory.reads == b.memory.reads &&
         a.memory.writes == b.memory.writes &&
         a.memory.max_latency == b.memory.max_latency &&
         a.dram_reads == b.dram_reads && a.dram_writes == b.dram_writes;
}

struct EngineRun {
  sim::RunMetrics metrics;  ///< from the warmup replay
  double seconds = 0;       ///< wall time of the timed repetitions
};

EngineRun run_engine(const sim::ReplayRequest& base, sim::ReplayEngine engine,
                     int reps) {
  sim::ReplayRequest request = base;
  request.engine = engine;
  EngineRun run;
  run.metrics = sim::replay(request).metrics;  // warmup + verdict capture
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    (void)sim::replay(request);
  }
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

int run(bench::BenchContext& ctx) {
  bench::print_header(
      "Replay kernel throughput: SoA kernel vs legacy slot loop",
      "repo evaluation; kernel contract in src/sim/kernel.h");

  const int accesses = ctx.pick(60000, 12000);
  const int reps = ctx.pick(5, 2);

  struct Workload {
    const char* name = "";
    const char* notation = "";  ///< LLC partition notation (4 active cores)
    int cores = 0;              ///< traces generated; the system has 4 cores
    std::int64_t range_bytes = 0;
    double write_fraction = 0;
    Cycle gap = 0;
  };
  // Periodic safety-critical tasks spend most bus slots idle: activation
  // gaps of hundreds of slot widths between accesses (tens of us at
  // realistic clocks), a solo criticality level on a multi-core system, a
  // cache-resident working set. Those are the regimes the kernel's exact
  // slot-skip targets; dense keeps the claim honest at the bus-saturated
  // end where slot-skipping buys nothing. Gaps are sized so every run
  // finishes inside the default 2e9-cycle horizon at the full profile.
  const Workload workloads[] = {
      {"solo_periodic", "SS(1,4,4)", 1, 32768, 0.25, 20000},
      {"periodic", "SS(1,4,4)", 4, 32768, 0.25, 24000},
      {"resident_gap", "P(32,4)", 4, 2048, 0.25, 4000},
      {"dense", "SS(1,4,4)", 4, 65536, 0.5, 0},
  };

  results::BenchResult res(ctx.make_meta(
      "micro_replay_throughput",
      "Replay kernel throughput: SoA kernel vs legacy slot loop",
      "repo evaluation; kernel contract in src/sim/kernel.h"));
  res.meta().set_param("accesses", std::to_string(accesses));
  res.meta().set_param("reps", std::to_string(reps));
  results::Series& series = res.add_series(
      "replay_cells",
      {{"workload", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"ops", results::ColumnType::kInt, results::ColumnKind::kExact,
        "ops"},
       {"llc_requests", results::ColumnType::kInt,
        results::ColumnKind::kExact, "requests"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kExact,
        "cycles"},
       {"engines_match", results::ColumnType::kInt,
        results::ColumnKind::kExact, "bool"}});

  bool all_match = true;
  double kernel_seconds = 0;
  double legacy_seconds = 0;
  for (const Workload& workload : workloads) {
    sim::RandomWorkloadOptions options;
    options.range_bytes = workload.range_bytes;
    options.accesses = accesses;
    options.write_fraction = workload.write_fraction;
    options.gap = workload.gap;
    const std::vector<core::Trace> traces = sim::make_disjoint_random_workload(
        workload.cores, options, 0x7e9);
    const core::ExperimentSetup setup =
        core::make_paper_setup(workload.notation, 4);
    sim::ReplayRequest request;
    request.setup = &setup;
    request.workload.per_core = &traces;

    const EngineRun kernel =
        run_engine(request, sim::ReplayEngine::kKernel, reps);
    const EngineRun legacy =
        run_engine(request, sim::ReplayEngine::kLegacy, reps);
    const bool match = metrics_equal(kernel.metrics, legacy.metrics);
    all_match = all_match && match;
    kernel_seconds += kernel.seconds;
    legacy_seconds += legacy.seconds;

    const std::int64_t ops =
        static_cast<std::int64_t>(workload.cores) * accesses;
    const double kernel_rate =
        kernel.seconds > 0 ? ops * reps / kernel.seconds : 0;
    const double legacy_rate =
        legacy.seconds > 0 ? ops * reps / legacy.seconds : 0;
    std::printf("%-10s %9.2f Mops/s kernel | %9.2f Mops/s legacy | %5.2fx%s\n",
                workload.name, kernel_rate / 1e6, legacy_rate / 1e6,
                kernel_rate > 0 && legacy_rate > 0
                    ? legacy.seconds / kernel.seconds
                    : 0.0,
                match ? "" : "  METRICS MISMATCH");

    series.add_row({results::Value::of_text(workload.name),
                    results::Value::of_int(ops),
                    results::Value::of_int(kernel.metrics.llc_requests),
                    results::Value::of_int(
                        static_cast<std::int64_t>(kernel.metrics.makespan)),
                    results::Value::of_int(match ? 1 : 0)});
  }

  const double speedup =
      kernel_seconds > 0 ? legacy_seconds / kernel_seconds : 0;
  std::printf("aggregate: %.2fx kernel over legacy (%.3fs vs %.3fs wall)\n",
              speedup, kernel_seconds, legacy_seconds);

  // --- parallel engine regime ---------------------------------------------
  // Dense, compose-eligible cell (private set-disjoint partitions, disjoint
  // per-lane data, fixed-latency DRAM): the parallel engine's solo
  // pre-pass + one verification round must beat the serial kernel by
  // >= 1.5x at 4 worker threads. Wall-clock goes to the console only; the
  // stored row carries the simulated metrics and the reconciliation
  // accounting, all deterministic.
  results::Series& parallel_series = res.add_series(
      "parallel_replay",
      {{"workload", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"ops", results::ColumnType::kInt, results::ColumnKind::kExact,
        "ops"},
       {"llc_requests", results::ColumnType::kInt,
        results::ColumnKind::kExact, "requests"},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kExact,
        "cycles"},
       {"segments", results::ColumnType::kInt, results::ColumnKind::kExact,
        "segments"},
       {"reexecutions", results::ColumnType::kInt,
        results::ColumnKind::kExact, "runs"},
       {"engines_match", results::ColumnType::kInt,
        results::ColumnKind::kExact, "bool"}});
  {
    sim::RandomWorkloadOptions options;
    options.range_bytes = 65536;
    options.accesses = accesses;
    options.write_fraction = 0.4;
    const std::vector<core::Trace> traces =
        sim::make_disjoint_random_workload(4, options, 0x7e9);
    const core::ExperimentSetup setup = core::make_paper_setup("P(8,4)", 4);
    sim::ReplayRequest request;
    request.setup = &setup;
    request.workload.per_core = &traces;

    const EngineRun serial =
        run_engine(request, sim::ReplayEngine::kKernel, reps);
    request.options.cell_threads = 4;
    const EngineRun parallel =
        run_engine(request, sim::ReplayEngine::kParallel, reps);
    const bool match = metrics_equal(parallel.metrics, serial.metrics);
    const double parallel_speedup =
        parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0;
    // The speedup gate needs 4 hardware threads and an uninstrumented
    // build to mean anything (sanitizer interceptors serialize enough to
    // drown the parallelism); otherwise the claim records the (vacuous)
    // pass and the console line says why. The correctness claims stay
    // unconditional.
    bool instrumented = false;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    instrumented = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
    instrumented = true;
#endif
#endif
    const unsigned hw = std::thread::hardware_concurrency();
    const bool measurable = hw >= 4 && !instrumented;
    std::printf(
        "parallel_dense: %.2fx over serial kernel at 4 threads "
        "(%.3fs vs %.3fs wall, %lld segments, %lld re-executions)%s%s\n",
        parallel_speedup, parallel.seconds, serial.seconds,
        static_cast<long long>(parallel.metrics.parallel_segments),
        static_cast<long long>(parallel.metrics.parallel_reexecutions),
        measurable ? ""
                   : "  [speedup gate skipped: < 4 hardware threads or "
                     "sanitizer build]",
        match ? "" : "  METRICS MISMATCH");

    const std::int64_t ops = static_cast<std::int64_t>(4) * accesses;
    parallel_series.add_row(
        {results::Value::of_text("parallel_dense"),
         results::Value::of_int(ops),
         results::Value::of_int(parallel.metrics.llc_requests),
         results::Value::of_int(
             static_cast<std::int64_t>(parallel.metrics.makespan)),
         results::Value::of_int(parallel.metrics.parallel_segments),
         results::Value::of_int(parallel.metrics.parallel_reexecutions),
         results::Value::of_int(match ? 1 : 0)});
    res.add_claim("parallel_matches_serial",
                  match && parallel.metrics.parallel_reexecutions == 0);
    res.add_claim("parallel_speedup_1_5x",
                  !measurable || parallel_speedup >= 1.5);
  }

  res.add_claim("kernel_matches_legacy", all_match);
  res.add_claim("kernel_speedup_2x", speedup >= 2.0);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(micro_replay_throughput, run)
