// Google-benchmark microbenchmark: whole-system simulation throughput
// (slots per second) for representative configurations.
#include <benchmark/benchmark.h>

#include "core/system.h"
#include "sim/workload.h"

namespace {

using namespace psllc;  // NOLINT

void BM_SimulateSlots(benchmark::State& state) {
  const char* notation = state.range(0) == 0 ? "SS(32,4,4)" : "NSS(1,4,4)";
  const auto setup = core::make_paper_setup(notation, 4);
  sim::RandomWorkloadOptions workload;
  workload.range_bytes = 16384;
  workload.accesses = 1 << 20;  // effectively endless for the benchmark
  const auto traces = sim::make_disjoint_random_workload(4, workload, 5);
  core::System system(setup);
  for (int c = 0; c < 4; ++c) {
    system.set_trace(CoreId{c}, traces[static_cast<std::size_t>(c)]);
  }
  for (auto _ : state) {
    system.step_slot();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(notation);
}
BENCHMARK(BM_SimulateSlots)->Arg(0)->Arg(1);

void BM_FullRunSmall(benchmark::State& state) {
  const auto setup = core::make_paper_setup("SS(32,2,2)", 2);
  sim::RandomWorkloadOptions workload;
  workload.range_bytes = 4096;
  workload.accesses = 1000;
  const auto traces = sim::make_disjoint_random_workload(2, workload, 9);
  for (auto _ : state) {
    core::System system(setup);
    for (int c = 0; c < 2; ++c) {
      system.set_trace(CoreId{c}, traces[static_cast<std::size_t>(c)]);
    }
    const auto result = system.run(1'000'000'000);
    benchmark::DoNotOptimize(result.all_done);
  }
  state.SetItemsProcessed(state.iterations() * 2000);  // accesses per run
}
BENCHMARK(BM_FullRunSmall);

}  // namespace

BENCHMARK_MAIN();
