#include "bench/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>

#include "common/assert.h"
#include "common/string_util.h"

namespace psllc::bench {

std::string to_string(Profile profile) {
  switch (profile) {
    case Profile::kFull:
      return "full";
    case Profile::kQuick:
      return "quick";
  }
  return "?";
}

Profile profile_from_string(const std::string& text) {
  if (iequals(text, "full")) {
    return Profile::kFull;
  }
  if (iequals(text, "quick")) {
    return Profile::kQuick;
  }
  throw ConfigError("unknown profile '" + text + "' (use full or quick)");
}

results::RunMeta BenchContext::make_meta(std::string bench,
                                         std::string title,
                                         std::string reference) const {
  results::RunMeta meta;
  meta.bench = std::move(bench);
  meta.title = std::move(title);
  meta.reference = std::move(reference);
  meta.set_param("profile", to_string(profile));
  meta.set_param("commit", results::current_commit_id());
  for (const auto& [key, value] : provenance) {
    meta.set_param(key, value);
  }
  return meta;
}

int finish_bench(const BenchContext& ctx,
                 const results::BenchResult& result) {
  for (const results::Series& series : result.series()) {
    std::printf("-- %s --\n%s\n", series.name().c_str(),
                series.to_table().to_text().c_str());
  }
  for (const results::Claim& claim : result.claims()) {
    std::printf("claim check: %s: %s\n", claim.name.c_str(),
                claim.pass ? "PASS" : "FAIL");
  }
  try {
    result.write(ctx.results_root, ctx.write_csv);
    std::printf("[results] %s\n",
                (ctx.results_root / result.meta().bench / "result.json")
                    .string()
                    .c_str());
  } catch (const std::exception& e) {
    std::printf("[results] skipped (%s)\n", e.what());
  }
  return result.all_claims_pass() ? 0 : 1;
}

namespace {

std::vector<BenchInfo>& mutable_registry() {
  static std::vector<BenchInfo> registry;
  return registry;
}

}  // namespace

void register_bench(const char* name, BenchFn fn, bool shardable) {
  mutable_registry().push_back(BenchInfo{name, fn, shardable});
}

std::vector<BenchInfo> registered_benches() {
  std::vector<BenchInfo> benches = mutable_registry();
  std::sort(benches.begin(), benches.end(),
            [](const BenchInfo& a, const BenchInfo& b) {
              return std::strcmp(a.name, b.name) < 0;
            });
  return benches;
}

const BenchInfo* find_bench(const std::string& name) {
  for (const BenchInfo& bench : mutable_registry()) {
    if (name == bench.name) {
      return &bench;
    }
  }
  return nullptr;
}

namespace {

int parse_positive_int(const char* text, const char* flag) {
  return static_cast<int>(cli::parse_int_in(text, flag, 0, 4096));
}

}  // namespace

bool parse_common_flag(cli::ArgCursor& args, BenchContext& ctx) {
  const std::string arg = args.arg();
  if (arg == "--threads") {
    ctx.threads = parse_positive_int(args.value(), "--threads");
    return true;
  }
  if (arg == "--profile") {
    ctx.profile = profile_from_string(args.value());
    return true;
  }
  if (arg == "--results-dir") {
    ctx.results_root = results::resolve_results_root(args.value());
    return true;
  }
  if (arg == "--no-csv") {
    ctx.write_csv = false;
    args.advance();
    return true;
  }
  if (arg == "--shard-index") {
    ctx.shard_index = parse_positive_int(args.value(), "--shard-index");
    if (ctx.shard_count == 0) {
      ctx.shard_count = 1;  // sharded mode even before --shard-count parses
    }
    return true;
  }
  if (arg == "--shard-count") {
    ctx.shard_count = parse_positive_int(args.value(), "--shard-count");
    PSLLC_CONFIG_CHECK(ctx.shard_count >= 1,
                       "--shard-count needs an integer >= 1");
    return true;
  }
  if (arg == "--manifest") {
    ctx.manifest_path = args.value();
    return true;
  }
  return false;
}

const char* common_flags_help() {
  return "  --threads N        sweep worker threads (0 = hardware concurrency)\n"
         "  --profile P        workload profile: full (paper grid) or quick (CI grid)\n"
         "  --results-dir DIR  result-store root (default: $PSLLC_RESULTS_DIR or ./bench_results)\n"
         "  --no-csv           write only result.json, no per-series CSVs\n"
         "  --shard-index I    run only work units of shard I (with --shard-count)\n"
         "  --shard-count N    shard the grid into N partial stores (merge with results_merge)\n"
         "  --manifest FILE    write (or verify) the shard manifest at FILE\n";
}

int bench_single_main(int argc, char** argv) {
  const std::vector<BenchInfo> benches = registered_benches();
  PSLLC_ASSERT(benches.size() == 1,
               "single-bench main linked with " << benches.size()
                                                << " registered benches");
  const BenchInfo& bench = benches.front();
  BenchContext ctx;
  try {
    cli::ArgCursor args(bench.name, argc, argv);
    while (!args.done()) {
      if (args.is_help()) {
        std::printf("usage: %s [options]\n%s", bench.name,
                    common_flags_help());
        return 0;
      }
      if (!parse_common_flag(args, ctx)) {
        return args.unknown_flag();
      }
    }
    if (ctx.sharded()) {
      PSLLC_CONFIG_CHECK(bench.shardable,
                         "bench '" << bench.name
                                   << "' does not support --shard-count; "
                                      "shard whole benches via run_all");
      PSLLC_CONFIG_CHECK(ctx.shard_index < ctx.shard_count,
                         "--shard-index " << ctx.shard_index
                                          << " out of range [0, "
                                          << ctx.shard_count << ")");
    }
    return bench.fn(ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", bench.name, e.what());
    return 2;
  }
}

}  // namespace psllc::bench
