// Bench registry: every figure/ablation bench registers a run function so
// the same code serves both the standalone per-bench executable (linked
// with bench_main.cc) and the batched run_all driver. Benches receive a
// BenchContext carrying the workload profile, the sweep thread budget and
// the result-store root, and emit their artifacts through finish_bench.
#ifndef PSLLC_BENCH_REGISTRY_H_
#define PSLLC_BENCH_REGISTRY_H_

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "results/result_store.h"
#include "tools/cli.h"

namespace psllc::bench {

/// Workload sizing: kFull reproduces the paper's grids; kQuick is the
/// CI-sized grid diffed against the committed golden baseline under
/// bench/golden (same claims, fewer ranges/accesses).
enum class Profile { kFull, kQuick };

[[nodiscard]] std::string to_string(Profile profile);
[[nodiscard]] Profile profile_from_string(const std::string& text);

struct BenchContext {
  Profile profile = Profile::kFull;
  /// Sweep worker budget, forwarded into SweepOptions::threads by
  /// sweep-based benches. 0 = hardware concurrency.
  int threads = 0;
  /// Where bench_results/<bench>/ artifacts land; resolved from
  /// --results-dir / PSLLC_RESULTS_DIR / ./bench_results.
  std::filesystem::path results_root = results::resolve_results_root();
  bool write_csv = true;
  /// Cross-process sharding (--shard-index/--shard-count): shard_count 0
  /// means an unsharded run. Benches registered shardable read these,
  /// execute only the work units of their shard and emit a partial result
  /// store (see src/sim/shard.h, src/results/merge.h).
  int shard_index = 0;
  int shard_count = 0;
  /// Optional --manifest path: the shard plan is written there (or
  /// verified against an existing manifest) by the sharding driver.
  std::filesystem::path manifest_path;
  /// Extra RunMeta params appended by make_meta right after the standard
  /// ones — run_all's shard mode injects shard.* provenance here.
  std::vector<std::pair<std::string, std::string>> provenance;

  [[nodiscard]] bool sharded() const { return shard_count > 0; }
  [[nodiscard]] bool quick() const { return profile == Profile::kQuick; }
  /// Profile-dependent workload sizing, e.g. ctx.pick(20000, 4000).
  template <typename T>
  [[nodiscard]] T pick(T full, T quick_value) const {
    return quick() ? quick_value : full;
  }

  /// RunMeta pre-filled with the bench identity plus profile and commit
  /// parameters; benches append their grid parameters (seed, accesses...).
  [[nodiscard]] results::RunMeta make_meta(std::string bench,
                                           std::string title,
                                           std::string reference) const;
};

/// Prints every series (pretty table) and claim check, writes the result
/// into the store, and returns the bench exit code: 0 iff all claims
/// passed. Store write failures are reported but not fatal, so benches
/// stay usable in read-only checkouts.
int finish_bench(const BenchContext& ctx, const results::BenchResult& result);

using BenchFn = int (*)(BenchContext&);

struct BenchInfo {
  const char* name = nullptr;
  BenchFn fn = nullptr;
  /// True when the bench implements cell-level sharding (reads
  /// BenchContext::shard_* and emits a partial store). bench_single_main
  /// rejects --shard-count on benches that do not.
  bool shardable = false;
};

void register_bench(const char* name, BenchFn fn, bool shardable = false);
/// All registered benches, sorted by name (registration order depends on
/// link order, which must not leak into run_all scheduling).
[[nodiscard]] std::vector<BenchInfo> registered_benches();
[[nodiscard]] const BenchInfo* find_bench(const std::string& name);

/// Parses the common flags (--threads N, --profile full|quick,
/// --results-dir PATH, --no-csv, --shard-index N, --shard-count N,
/// --manifest PATH) at the cursor. Returns true (cursor advanced past the
/// flag and its value) when the current argument was a common flag, false
/// (cursor untouched) otherwise. Throws ConfigError on a malformed value.
bool parse_common_flag(cli::ArgCursor& args, BenchContext& ctx);

/// Usage text for the common flags (one indented line per flag).
[[nodiscard]] const char* common_flags_help();

/// main() body for single-bench executables: parses common flags and runs
/// the exactly-one registered bench.
int bench_single_main(int argc, char** argv);

}  // namespace psllc::bench

/// Registers `fn` under `bench_name` (also the bench_results/ directory
/// name) at static-init time.
#define PSLLC_REGISTER_BENCH(bench_name, fn)                   \
  namespace {                                                  \
  const bool psllc_bench_registered_##bench_name =             \
      (::psllc::bench::register_bench(#bench_name, fn), true); \
  }

/// As PSLLC_REGISTER_BENCH, for benches implementing cell-level sharding.
#define PSLLC_REGISTER_BENCH_SHARDED(bench_name, fn)                 \
  namespace {                                                        \
  const bool psllc_bench_registered_##bench_name =                   \
      (::psllc::bench::register_bench(#bench_name, fn, true), true); \
  }

#endif  // PSLLC_BENCH_REGISTRY_H_
