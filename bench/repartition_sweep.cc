// Repartition sweep — dynamic repartitioning under load. Runs two-transition
// partition programs (initial -> way-bounced -> restored) over a grid of
// way-bounce counts x trigger cadences x app-class clusterings, replaying
// every cell on BOTH engines, and gates the two dynamic-repartitioning
// claims: the observed transient WCL (requests in flight across a
// drain/flush window) stays at or below the analytical transient bound
// (core/wcl_analysis transient_wcl_cycles), and the struct-of-arrays replay
// kernel stays bit-identical to the legacy core::System slot loop across
// every transition.
//
// The sweep is cell-sharded: one work unit per grid cell (sim/shard.h),
// one row per cell, so global row ordinals equal cell ordinals and
// tools/results_merge reassembles partial stores bit-identical to an
// unsharded run.
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "core/system_config.h"
#include "llc/partition.h"
#include "results/merge.h"
#include "sim/replay.h"
#include "sim/shard.h"
#include "sim/workload.h"

namespace {

using namespace psllc;       // NOLINT
using namespace psllc::sim;  // NOLINT

constexpr char kTitle[] =
    "Repartition sweep: transient WCL bound across mode transitions";
constexpr char kReference[] =
    "Wu & Patel, DAC'22, Theorems 4.7/4.8 extended to dynamic "
    "repartitioning transients";

struct GridConfig {
  const char* notation = "";
  int cores = 0;
};

/// How app-class labels cluster across the cores of one cell.
enum class Clustering { kClustered, kMixed };

[[nodiscard]] const char* to_string(Clustering c) {
  return c == Clustering::kClustered ? "clustered" : "mixed";
}

[[nodiscard]] llc::AppClass class_of(Clustering clustering, int core) {
  if (clustering == Clustering::kClustered) {
    return llc::AppClass::kStreaming;
  }
  switch (core % 3) {
    case 0:
      return llc::AppClass::kSensitive;
    case 1:
      return llc::AppClass::kLight;
    default:
      return llc::AppClass::kStreaming;
  }
}

/// Class-shaped per-core traces on disjoint address ranges: sensitive cores
/// pointer-chase a hot working set, streaming cores write-heavy random over
/// a wide range, light cores read-mostly random over a narrow one.
[[nodiscard]] std::vector<core::Trace> make_cell_traces(
    const std::vector<llc::AppClass>& classes, int accesses,
    std::uint64_t seed) {
  std::vector<core::Trace> traces;
  traces.reserve(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const Addr base = static_cast<Addr>(c) * 65536;
    switch (classes[c]) {
      case llc::AppClass::kSensitive:
        traces.push_back(
            make_pointer_chase_trace(base, 64, accesses, seed + c));
        break;
      case llc::AppClass::kStreaming: {
        RandomWorkloadOptions options;
        options.range_bytes = 32768;
        options.accesses = accesses;
        options.write_fraction = 0.6;
        traces.push_back(make_uniform_random_trace(base, options, seed + c));
        break;
      }
      case llc::AppClass::kLight: {
        RandomWorkloadOptions options;
        options.range_bytes = 4096;
        options.accesses = accesses;
        options.write_fraction = 0.1;
        traces.push_back(make_uniform_random_trace(base, options, seed + c));
        break;
      }
    }
  }
  return traces;
}

/// The fields the engine contract pins: everything RunMetrics carries that
/// both engines fill. A mismatch in any of them fails the bit-identity
/// claim for the cell.
[[nodiscard]] bool metrics_identical(const RunMetrics& a,
                                     const RunMetrics& b) {
  return a.completed == b.completed && a.end_cycle == b.end_cycle &&
         a.makespan == b.makespan && a.observed_wcl == b.observed_wcl &&
         a.analytical_wcl == b.analytical_wcl &&
         a.observed_transient_wcl == b.observed_transient_wcl &&
         a.transient_analytical_wcl == b.transient_analytical_wcl &&
         a.llc_requests == b.llc_requests &&
         a.per_core_finish == b.per_core_finish &&
         a.per_core_l1_hits == b.per_core_l1_hits &&
         a.per_core_l2_hits == b.per_core_l2_hits &&
         a.per_core_misses == b.per_core_misses &&
         a.dram_reads == b.dram_reads && a.dram_writes == b.dram_writes &&
         a.llc_stats.hit_presentations == b.llc_stats.hit_presentations &&
         a.llc_stats.blocked_presentations ==
             b.llc_stats.blocked_presentations &&
         a.llc_stats.fills == b.llc_stats.fills &&
         a.llc_stats.evictions_started == b.llc_stats.evictions_started &&
         a.llc_stats.voluntary_writebacks ==
             b.llc_stats.voluntary_writebacks &&
         a.llc_stats.freeing_writebacks == b.llc_stats.freeing_writebacks &&
         a.llc_stats.steals == b.llc_stats.steals &&
         a.llc_stats.repartitions == b.llc_stats.repartitions &&
         a.llc_stats.drain_writebacks == b.llc_stats.drain_writebacks &&
         a.llc_stats.drain_back_invals == b.llc_stats.drain_back_invals;
}

[[nodiscard]] std::string cell_key(const GridConfig& config, int way_bounce,
                                   int cadence_slots, Clustering clustering) {
  return std::string(config.notation) + "|c" +
         std::to_string(config.cores) + "|b" + std::to_string(way_bounce) +
         "|cad" + std::to_string(cadence_slots) + "|" +
         to_string(clustering);
}

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  const int accesses = ctx.pick(3000, 600);
  const std::uint64_t seed = 97;
  std::vector<GridConfig> configs = {
      {"SS(32,2,2)", 2}, {"NSS(32,2,2)", 2}, {"P(8,2)", 2}};
  if (!ctx.quick()) {
    configs.push_back({"SS(32,2,4)", 4});
    configs.push_back({"NSS(32,2,4)", 4});
    configs.push_back({"P(8,2)", 4});
  }
  const std::vector<int> way_bounces = ctx.quick()
                                           ? std::vector<int>{1, 2}
                                           : std::vector<int>{1, 2, 4};
  const std::vector<int> cadences = ctx.quick()
                                        ? std::vector<int>{12, 32}
                                        : std::vector<int>{12, 32, 96};
  const Clustering clusterings[] = {Clustering::kClustered,
                                    Clustering::kMixed};

  // Cell-level work-unit plan: unit ordinal == row ordinal (one row per
  // cell), so merged rows land exactly where an unsharded run emits them.
  std::vector<std::pair<std::string, std::string>> grid_params = {
      {"profile", bench::to_string(ctx.profile)},
      {"seed", std::to_string(seed)},
      {"accesses", std::to_string(accesses)}};
  ShardPlan plan("repartition_sweep", std::move(grid_params),
                 ctx.sharded() ? ctx.shard_count : 1);
  for (const GridConfig& config : configs) {
    for (const int way_bounce : way_bounces) {
      for (const int cadence : cadences) {
        for (const Clustering clustering : clusterings) {
          plan.add_unit("repartition_sweep",
                        cell_key(config, way_bounce, cadence, clustering));
        }
      }
    }
  }

  std::vector<bool> mask;
  std::vector<std::size_t> owned;
  if (ctx.sharded()) {
    const ShardSpec spec{ctx.shard_index, ctx.shard_count};
    if (!ctx.manifest_path.empty()) {
      plan.write_or_verify(ctx.manifest_path);
    }
    owned = plan.owned_ordinals(spec);
    std::printf("[shard] %d/%d: %zu of %zu cells\n", ctx.shard_index,
                ctx.shard_count, owned.size(), plan.units().size());
    if (owned.empty()) {
      std::printf("[shard] nothing to run on this shard\n");
      return 0;
    }
    mask.assign(plan.units().size(), false);
    for (const std::size_t ordinal : owned) {
      mask[ordinal] = true;
    }
  }

  results::BenchResult res(
      ctx.make_meta("repartition_sweep", kTitle, kReference));
  res.meta().set_param("seed", std::to_string(seed));
  res.meta().set_param("accesses", std::to_string(accesses));

  auto& series = res.add_series(
      "repartition_cells",
      {{"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"cores", results::ColumnType::kInt, results::ColumnKind::kExact, ""},
       {"way_bounce", results::ColumnType::kInt, results::ColumnKind::kExact,
        ""},
       {"cadence_slots", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"clustering", results::ColumnType::kText,
        results::ColumnKind::kExact, ""},
       {"analytical_wcl", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"transient_bound", results::ColumnType::kInt,
        results::ColumnKind::kExact, "cycles"},
       {"observed_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"observed_transient_wcl", results::ColumnType::kInt,
        results::ColumnKind::kTiming, "cycles"},
       {"repartitions", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"drain_writebacks", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"drain_back_invals", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"makespan", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"llc_requests", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"engines_match", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"transient_ok", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""}});

  std::vector<std::size_t> row_ordinals;
  bool all_completed = true;
  bool transient_bounds_hold = true;
  bool engines_identical = true;
  bool transitions_fired = true;
  std::size_t ordinal = 0;
  for (const GridConfig& config : configs) {
    for (const int way_bounce : way_bounces) {
      for (const int cadence : cadences) {
        for (const Clustering clustering : clusterings) {
          const std::size_t cell = ordinal++;
          if (ctx.sharded() && !mask[cell]) {
            continue;
          }
          core::ExperimentSetup setup =
              core::make_paper_setup(config.notation, config.cores);
          const llc::PartitionMap initial = setup.partitions();
          std::vector<llc::AppClass> classes;
          classes.reserve(static_cast<std::size_t>(config.cores));
          for (int c = 0; c < config.cores; ++c) {
            classes.push_back(class_of(clustering, c));
          }
          const Cycle epoch =
              Cycle(cadence) * setup.config.slot_width;
          llc::PartitionProgram program(initial);
          program.add_mode(llc::make_way_bounced_map(initial, way_bounce),
                           epoch, classes, "bounce");
          program.add_mode(initial, 2 * epoch, classes, "restore");
          setup.program = std::move(program);

          const auto traces =
              make_cell_traces(classes, accesses, seed + cell);
          ReplayRequest request;
          request.setup = &setup;
          request.workload.per_core = &traces;
          request.engine = ReplayEngine::kKernel;
          const RunMetrics kernel = replay(request).metrics;
          request.engine = ReplayEngine::kLegacy;
          const RunMetrics legacy = replay(request).metrics;

          const bool match = metrics_identical(kernel, legacy);
          const bool observed_transient =
              kernel.observed_transient_wcl != kNoCycle;
          const bool transient_ok =
              !observed_transient ||
              kernel.observed_transient_wcl <=
                  kernel.transient_analytical_wcl;
          all_completed =
              all_completed && kernel.completed && legacy.completed;
          transient_bounds_hold = transient_bounds_hold && transient_ok;
          engines_identical = engines_identical && match;
          transitions_fired =
              transitions_fired && kernel.llc_stats.repartitions >= 1;
          series.add_row(
              {results::Value::of_text(config.notation),
               results::Value::of_int(config.cores),
               results::Value::of_int(way_bounce),
               results::Value::of_int(cadence),
               results::Value::of_text(to_string(clustering)),
               results::Value::of_int(kernel.analytical_wcl),
               results::Value::of_int(kernel.transient_analytical_wcl),
               results::Value::of_cycles(kernel.observed_wcl,
                                         kernel.completed),
               results::Value::of_cycles(kernel.observed_transient_wcl,
                                         observed_transient),
               results::Value::of_int(kernel.llc_stats.repartitions),
               results::Value::of_int(kernel.llc_stats.drain_writebacks),
               results::Value::of_int(kernel.llc_stats.drain_back_invals),
               results::Value::of_cycles(kernel.makespan, kernel.completed),
               results::Value::of_int(kernel.llc_requests),
               results::Value::of_int(match ? 1 : 0),
               results::Value::of_int(transient_ok ? 1 : 0)});
          row_ordinals.push_back(cell);
        }
      }
    }
  }

  res.add_claim("all repartition cells completed on both engines",
                all_completed);
  res.add_claim("every cell began at least one mode transition",
                transitions_fired);
  res.add_claim(
      "observed transient WCL <= analytical transient bound across the "
      "sweep grid",
      transient_bounds_hold);
  res.add_claim(
      "kernel and legacy replay bit-identical across every transition",
      engines_identical);

  if (ctx.sharded()) {
    std::vector<std::string> unit_ids;
    unit_ids.reserve(owned.size());
    for (const std::size_t o : owned) {
      unit_ids.push_back(plan.units()[o].id);
    }
    results::set_shard_provenance(res.meta(), plan.content_hash(),
                                  ctx.shard_index, ctx.shard_count,
                                  unit_ids);
    results::set_shard_rows(res.meta(), "repartition_cells", row_ordinals);
  }
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH_SHARDED(repartition_sweep, run)
