// run_all — batched driver for every registered bench. Runs the full
// evaluation (Fig. 7, all Fig. 8 panels, the ablations and the analytical
// bounds) through the src/sim batch scheduler behind one shared worker-
// thread budget, with per-job progress and fail-fast error aggregation.
// Artifacts land in the result store exactly as when each bench binary is
// run individually (run_sweep output is thread-count independent).
//
// With --shard-index/--shard-count the selected benches are enumerated as
// whole-bench work units (sim/shard.h): each shard executes only its
// benches into its own --results-dir, tagged with shard.* provenance, and
// tools/results_merge joins the partial stores into one artifact
// bit-identical to an unsharded run. --manifest writes (or verifies) the
// shard manifest; --plan-only stops after that.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench/registry.h"
#include "common/assert.h"
#include "common/string_util.h"
#include "results/merge.h"
#include "sim/batch.h"
#include "sim/shard.h"
#include "tools/cli.h"

namespace {

using namespace psllc;  // NOLINT

void print_usage() {
  std::printf(
      "usage: run_all [options]\n"
      "%s"
      "  --jobs N           benches running at once (default 1; >1 interleaves output)\n"
      "  --only A,B,...     run only the named benches\n"
      "  --keep-going       do not stop scheduling after the first failure\n"
      "  --plan-only        write the shard manifest (--manifest) and exit\n"
      "  --list             list registered benches and exit\n",
      bench::common_flags_help());
}

int run(int argc, char** argv) {
  bench::BenchContext base;
  sim::BatchOptions batch;
  std::vector<std::string> only;
  bool list_only = false;
  bool plan_only = false;

  cli::ArgCursor args("run_all", argc, argv);
  while (!args.done()) {
    const std::string arg = args.arg();
    if (args.is_help()) {
      print_usage();
      return 0;
    }
    if (arg == "--jobs") {
      batch.max_concurrent_jobs =
          static_cast<int>(cli::parse_int_in(args.value(), "--jobs", 1, 256));
      continue;
    }
    if (arg == "--only") {
      for (const std::string& name : split(args.value(), ',')) {
        if (!name.empty()) {
          only.push_back(name);
        }
      }
      continue;
    }
    if (arg == "--keep-going") {
      batch.fail_fast = false;
      args.advance();
      continue;
    }
    if (arg == "--plan-only") {
      plan_only = true;
      args.advance();
      continue;
    }
    if (arg == "--list") {
      list_only = true;
      args.advance();
      continue;
    }
    if (!bench::parse_common_flag(args, base)) {
      return args.unknown_flag();
    }
  }

  std::vector<bench::BenchInfo> selected;
  if (only.empty()) {
    selected = bench::registered_benches();
  } else {
    for (const std::string& name : only) {
      const bench::BenchInfo* info = bench::find_bench(name);
      PSLLC_CONFIG_CHECK(info != nullptr, "unknown bench '" << name << "'");
      // A bench repeated in --only would race two jobs onto the same
      // result-store files; run it once.
      bool already = false;
      for (const bench::BenchInfo& seen : selected) {
        already = already || std::string(seen.name) == name;
      }
      if (!already) {
        selected.push_back(*info);
      }
    }
  }
  if (list_only) {
    for (const bench::BenchInfo& info : selected) {
      std::printf("%s\n", info.name);
    }
    return 0;
  }

  // Whole-bench work units in registry (= execution) order. The plan is
  // deterministic, so every shard of a run recomputes the identical
  // manifest from the same flags.
  sim::ShardPlan plan(
      "run_all", {{"profile", bench::to_string(base.profile)}},
      base.sharded() ? base.shard_count : 1);
  std::vector<std::size_t> unit_of_bench;
  for (const bench::BenchInfo& info : selected) {
    unit_of_bench.push_back(plan.add_unit(info.name, ""));
  }

  if (base.sharded() || plan_only) {
    if (!base.manifest_path.empty()) {
      plan.write_or_verify(base.manifest_path);
      std::printf("[shard] manifest %s (%zu units, hash %s)\n",
                  base.manifest_path.string().c_str(), plan.units().size(),
                  plan.content_hash().c_str());
    } else {
      PSLLC_CONFIG_CHECK(!plan_only,
                         "--plan-only needs --manifest FILE to write to");
    }
  }
  if (plan_only) {
    return 0;
  }

  if (base.sharded()) {
    const sim::ShardSpec spec{base.shard_index, base.shard_count};
    const std::vector<std::size_t> owned = plan.owned_ordinals(spec);
    std::vector<bench::BenchInfo> owned_benches;
    for (const std::size_t ordinal : owned) {
      owned_benches.push_back(selected[ordinal]);
    }
    std::printf("[shard] %d/%d: %zu of %zu benches\n", base.shard_index,
                base.shard_count, owned_benches.size(), selected.size());
    if (owned_benches.empty()) {
      std::printf("[shard] nothing to run on this shard\n");
      return 0;
    }
    // Every bench this shard runs carries the provenance results_merge
    // validates coverage with; the unit id is per bench.
    base.provenance = {
        {std::string(results::kShardManifestParam), plan.content_hash()},
        {std::string(results::kShardIndexParam),
         std::to_string(base.shard_index)},
        {std::string(results::kShardCountParam),
         std::to_string(base.shard_count)}};
    std::vector<std::size_t> owned_units = owned;
    selected = std::move(owned_benches);
    unit_of_bench = std::move(owned_units);
  }

  // The batch budget doubles as the per-sweep budget: with the default
  // --jobs 1 every bench gets the full pool, exactly like running the
  // binaries one after another.
  batch.threads = base.threads;
  batch.progress = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  };

  std::vector<sim::BatchJob> jobs;
  jobs.reserve(selected.size());
  for (std::size_t b = 0; b < selected.size(); ++b) {
    const bench::BenchInfo& info = selected[b];
    const std::string unit_id =
        plan.units()[unit_of_bench[b]].id;
    sim::BatchJob job;
    job.name = info.name;
    job.run = [info, unit_id, &base](int threads_granted) {
      bench::BenchContext ctx = base;
      ctx.threads = threads_granted;
      // run_all shards at bench granularity: a bench it runs is one whole
      // work unit and must not additionally cell-shard itself.
      ctx.shard_index = 0;
      ctx.shard_count = 0;
      ctx.manifest_path.clear();
      if (base.sharded()) {
        ctx.provenance.emplace_back(
            std::string(results::kShardUnitsParam), unit_id);
      }
      const int rc = info.fn(ctx);
      if (rc != 0) {
        throw std::runtime_error("exited with code " + std::to_string(rc) +
                                 " (claim check failed)");
      }
    };
    jobs.push_back(std::move(job));
  }

  const sim::BatchReport report = sim::run_batch(std::move(jobs), batch);

  std::printf("\n=== run_all summary ===\n");
  for (const sim::JobOutcome& job : report.jobs) {
    const char* state = job.state == sim::JobState::kOk       ? "ok"
                        : job.state == sim::JobState::kFailed ? "FAILED"
                                                              : "skipped";
    std::printf("%-24s %-8s %.2fs (threads=%d)%s%s\n", job.name.c_str(),
                state, job.seconds, job.threads,
                job.error.empty() ? "" : "  ", job.error.c_str());
  }
  std::printf("%d ok, %d failed, %d skipped; results in %s\n",
              report.count(sim::JobState::kOk),
              report.count(sim::JobState::kFailed),
              report.count(sim::JobState::kSkipped),
              base.results_root.string().c_str());
  if (!report.all_ok()) {
    std::fprintf(stderr, "run_all: failures:\n%s",
                 report.error_summary().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_all: %s\n", e.what());
    return 2;
  }
}
