// run_all — batched driver for every registered bench. Runs the full
// evaluation (Fig. 7, all Fig. 8 panels, the ablations and the analytical
// bounds) through the src/sim batch scheduler behind one shared worker-
// thread budget, with per-job progress and fail-fast error aggregation.
// Artifacts land in the result store exactly as when each bench binary is
// run individually (run_sweep output is thread-count independent).
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/registry.h"
#include "common/assert.h"
#include "common/string_util.h"
#include "sim/batch.h"

namespace {

using namespace psllc;  // NOLINT

void print_usage() {
  std::printf(
      "usage: run_all [options]\n"
      "%s"
      "  --jobs N           benches running at once (default 1; >1 interleaves output)\n"
      "  --only A,B,...     run only the named benches\n"
      "  --keep-going       do not stop scheduling after the first failure\n"
      "  --list             list registered benches and exit\n",
      bench::common_flags_help());
}

int run(int argc, char** argv) {
  bench::BenchContext base;
  sim::BatchOptions batch;
  std::vector<std::string> only;
  bool list_only = false;

  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--jobs") {
      PSLLC_CONFIG_CHECK(i + 1 < argc, "--jobs needs a value");
      const auto parsed = parse_i64(argv[i + 1]);
      PSLLC_CONFIG_CHECK(parsed.has_value() && *parsed >= 1 &&
                             *parsed <= 256,
                         "--jobs needs an integer in [1, 256]");
      batch.max_concurrent_jobs = static_cast<int>(*parsed);
      i += 2;
      continue;
    }
    if (arg == "--only") {
      PSLLC_CONFIG_CHECK(i + 1 < argc, "--only needs a value");
      for (const std::string& name : split(argv[i + 1], ',')) {
        if (!name.empty()) {
          only.push_back(name);
        }
      }
      i += 2;
      continue;
    }
    if (arg == "--keep-going") {
      batch.fail_fast = false;
      ++i;
      continue;
    }
    if (arg == "--list") {
      list_only = true;
      ++i;
      continue;
    }
    const int consumed = bench::parse_common_flag(argc, argv, i, base);
    if (consumed == 0) {
      std::fprintf(stderr, "run_all: unknown flag '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
    i += consumed;
  }

  std::vector<bench::BenchInfo> selected;
  if (only.empty()) {
    selected = bench::registered_benches();
  } else {
    for (const std::string& name : only) {
      const bench::BenchInfo* info = bench::find_bench(name);
      PSLLC_CONFIG_CHECK(info != nullptr, "unknown bench '" << name << "'");
      // A bench repeated in --only would race two jobs onto the same
      // result-store files; run it once.
      bool already = false;
      for (const bench::BenchInfo& seen : selected) {
        already = already || std::string(seen.name) == name;
      }
      if (!already) {
        selected.push_back(*info);
      }
    }
  }
  if (list_only) {
    for (const bench::BenchInfo& info : selected) {
      std::printf("%s\n", info.name);
    }
    return 0;
  }

  // The batch budget doubles as the per-sweep budget: with the default
  // --jobs 1 every bench gets the full pool, exactly like running the
  // binaries one after another.
  batch.threads = base.threads;
  batch.progress = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  };

  std::vector<sim::BatchJob> jobs;
  jobs.reserve(selected.size());
  for (const bench::BenchInfo& info : selected) {
    sim::BatchJob job;
    job.name = info.name;
    job.run = [info, &base](int threads_granted) {
      bench::BenchContext ctx = base;
      ctx.threads = threads_granted;
      const int rc = info.fn(ctx);
      if (rc != 0) {
        throw std::runtime_error("exited with code " + std::to_string(rc) +
                                 " (claim check failed)");
      }
    };
    jobs.push_back(std::move(job));
  }

  const sim::BatchReport report = sim::run_batch(std::move(jobs), batch);

  std::printf("\n=== run_all summary ===\n");
  for (const sim::JobOutcome& job : report.jobs) {
    const char* state = job.state == sim::JobState::kOk       ? "ok"
                        : job.state == sim::JobState::kFailed ? "FAILED"
                                                              : "skipped";
    std::printf("%-24s %-8s %.2fs (threads=%d)%s%s\n", job.name.c_str(),
                state, job.seconds, job.threads,
                job.error.empty() ? "" : "  ", job.error.c_str());
  }
  std::printf("%d ok, %d failed, %d skipped; results in %s\n",
              report.count(sim::JobState::kOk),
              report.count(sim::JobState::kFailed),
              report.count(sim::JobState::kSkipped),
              base.results_root.string().c_str());
  if (!report.all_ok()) {
    std::fprintf(stderr, "run_all: failures:\n%s",
                 report.error_summary().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_all: %s\n", e.what());
    return 2;
  }
}
