// Experiment E6 — Section 4.1 / Figure 2: with a shared partition,
// best-effort contention, and a TDM schedule granting the interfering core
// two slots per period, the core under analysis is starved forever. The
// same trace under (a) a 1S-TDM schedule or (b) the set sequencer completes
// within its analytical bound.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/critical_instance.h"
#include "core/wcl_analysis.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

struct Variant {
  const char* name;
  llc::ContentionMode mode;
  bool one_slot;
};

int run() {
  bench::print_header(
      "Unbounded WCL scenario (shared partition, multi-slot TDM)",
      "Wu & Patel, DAC'22, Section 4.1, Figure 2");

  const Variant variants[] = {
      {"NSS + {cua,ci,ci}", llc::ContentionMode::kBestEffort, false},
      {"NSS + 1S-TDM", llc::ContentionMode::kBestEffort, true},
      {"SS  + {cua,ci,ci}", llc::ContentionMode::kSetSequencer, false},
  };
  Table table({"variant", "slots simulated", "cua completed",
               "cua wait (cycles)", "interferer ops done"});
  bool starved_as_expected = false;
  bool bounded_as_expected = true;
  for (const Variant& variant : variants) {
    for (std::int64_t horizon : {1000, 4000, 16000}) {
      auto scenario =
          make_unbounded_scenario(variant.mode, variant.one_slot, 1 << 20);
      scenario.system->run_slots(horizon);
      const bool completed =
          scenario.system->tracker().service_latency(scenario.cua).count() >
          0;
      const Cycle wait =
          completed
              ? scenario.system->tracker().service_latency(scenario.cua).max()
              : scenario.system->now();
      table.add_row({variant.name, std::to_string(horizon),
                     completed ? "yes" : "NO (still starving)",
                     format_cycles(wait),
                     std::to_string(scenario.system
                                        ->core(scenario.interferer)
                                        .ops_completed())});
      if (!variant.one_slot &&
          variant.mode == llc::ContentionMode::kBestEffort) {
        starved_as_expected = !completed;  // at every horizon
      } else {
        bounded_as_expected = bounded_as_expected && completed;
      }
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  bench::save_csv(table, "unbounded_wcl");
  std::printf(
      "claim check: cua starves under NSS + multi-slot TDM at every "
      "horizon: %s\n",
      starved_as_expected ? "PASS" : "FAIL");
  std::printf(
      "claim check: 1S-TDM and the set sequencer both bound the wait: %s\n",
      bounded_as_expected ? "PASS" : "FAIL");
  return starved_as_expected && bounded_as_expected ? 0 : 1;
}

}  // namespace

int main() { return run(); }
