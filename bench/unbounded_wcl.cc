// Experiment E6 — Section 4.1 / Figure 2: with a shared partition,
// best-effort contention, and a TDM schedule granting the interfering core
// two slots per period, the core under analysis is starved forever. The
// same trace under (a) a 1S-TDM schedule or (b) the set sequencer completes
// within its analytical bound.
#include <string>

#include "bench/bench_util.h"
#include "bench/registry.h"
#include "core/critical_instance.h"
#include "core/wcl_analysis.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

constexpr char kTitle[] =
    "Unbounded WCL scenario (shared partition, multi-slot TDM)";
constexpr char kReference[] = "Wu & Patel, DAC'22, Section 4.1, Figure 2";

struct Variant {
  const char* name = nullptr;
  llc::ContentionMode mode = llc::ContentionMode::kSetSequencer;
  bool one_slot = true;
};

int run(bench::BenchContext& ctx) {
  bench::print_header(kTitle, kReference);

  const Variant variants[] = {
      {"NSS + {cua,ci,ci}", llc::ContentionMode::kBestEffort, false},
      {"NSS + 1S-TDM", llc::ContentionMode::kBestEffort, true},
      {"SS  + {cua,ci,ci}", llc::ContentionMode::kSetSequencer, false},
  };
  results::BenchResult res(
      ctx.make_meta("unbounded_wcl", kTitle, kReference));
  auto& series = res.add_series(
      "starvation",
      {{"variant", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"slots_simulated", results::ColumnType::kInt,
        results::ColumnKind::kExact, ""},
       {"cua_completed", results::ColumnType::kText,
        results::ColumnKind::kExact, ""},
       {"cua_wait", results::ColumnType::kInt, results::ColumnKind::kTiming,
        "cycles"},
       {"interferer_ops", results::ColumnType::kInt,
        results::ColumnKind::kTiming, ""}});
  bool starved_as_expected = false;
  bool bounded_as_expected = true;
  for (const Variant& variant : variants) {
    for (std::int64_t horizon : {1000, 4000, 16000}) {
      auto scenario =
          make_unbounded_scenario(variant.mode, variant.one_slot, 1 << 20);
      scenario.system->run_slots(horizon);
      const bool completed =
          scenario.system->tracker().service_latency(scenario.cua).count() >
          0;
      const Cycle wait =
          completed
              ? scenario.system->tracker().service_latency(scenario.cua).max()
              : scenario.system->now();
      series.add_row(
          {results::Value::of_text(variant.name),
           results::Value::of_int(horizon),
           results::Value::of_text(completed ? "yes" : "NO (still starving)"),
           results::Value::of_int(static_cast<std::int64_t>(wait)),
           results::Value::of_int(static_cast<std::int64_t>(
               scenario.system->core(scenario.interferer).ops_completed()))});
      if (!variant.one_slot &&
          variant.mode == llc::ContentionMode::kBestEffort) {
        starved_as_expected = !completed;  // at every horizon
      } else {
        bounded_as_expected = bounded_as_expected && completed;
      }
    }
  }
  res.add_claim("cua starves under NSS + multi-slot TDM at every horizon",
                starved_as_expected);
  res.add_claim("1S-TDM and the set sequencer both bound the wait",
                bounded_as_expected);
  return bench::finish_bench(ctx, res);
}

}  // namespace

PSLLC_REGISTER_BENCH(unbounded_wcl, run)
