# End-to-end smoke of the adversarial pipeline, run via
#   cmake -DADVERSARY_SEARCH_BIN=... -DADVERSARIAL_CORPUS_BIN=... \
#         -DCORPUS_RUNNER_BIN=... -DRESULTS_DIFF_BIN=... \
#         -DTRACES_DIR=... -DGOLDEN_ROOT=... -DADV_GOLDEN_ROOT=... \
#         -DWORK_DIR=... -P adversary_smoke.cmake
#
# Three gates:
#  1. a quick-budget adversary_search over the full pattern x config grid —
#     a nonzero exit means a generated workload pushed observed WCL above
#     the analytical bound (the regression this tool exists to catch);
#  2. the adversarial_corpus bench on the quick profile, diffed against its
#     committed golden (bench/golden/adversarial_corpus);
#  3. the committed near-miss traces under tests/traces/adversarial
#     replayed by corpus_runner and diffed against their golden baseline
#     (bench/golden_adversarial/corpus_runner), so the promoted traces
#     keep reproducing the same latencies bit for bit.

foreach(var ADVERSARY_SEARCH_BIN ADVERSARIAL_CORPUS_BIN CORPUS_RUNNER_BIN
        RESULTS_DIFF_BIN TRACES_DIR GOLDEN_ROOT ADV_GOLDEN_ROOT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "adversary_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# 1. Quick-budget search across every attack pattern and the default
# config grid. Exit 1 = bound violated, 2 = usage/internal error.
execute_process(
  COMMAND "${ADVERSARY_SEARCH_BIN}" --ops 300 --rounds 1 --survivors 1
          --mutants 2 --threads 2
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "adversary_search exited with ${rc} — analytical WCL bound "
          "violated or search failed\n${out}\n${err}")
endif()

# 2. The registered bench on the quick profile, against its golden.
execute_process(
  COMMAND "${ADVERSARIAL_CORPUS_BIN}" --profile quick --threads 2
          --results-dir "${WORK_DIR}/bench_results"
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "adversarial_corpus exited with ${rc} — a claim failed\n${out}\n${err}")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}/bench_golden/adversarial_corpus")
file(COPY "${GOLDEN_ROOT}/adversarial_corpus/"
     DESTINATION "${WORK_DIR}/bench_golden/adversarial_corpus")
execute_process(
  COMMAND "${RESULTS_DIFF_BIN}" "${WORK_DIR}/bench_golden"
          "${WORK_DIR}/bench_results"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "results_diff: adversarial_corpus drifted from its quick golden "
          "(${rc})\n${out}\n${err}")
endif()

# 3. Replay the committed near-miss corpus on the CI grid.
file(GLOB promoted_traces "${TRACES_DIR}/*.pslt")
list(LENGTH promoted_traces n_traces)
if(n_traces EQUAL 0)
  message(FATAL_ERROR "no committed .pslt traces under ${TRACES_DIR}")
endif()
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env "PSLLC_CORPUS_DIR=${TRACES_DIR}"
          "${CORPUS_RUNNER_BIN}" --profile quick --threads 2
          --results-dir "${WORK_DIR}/results"
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corpus_runner exited with ${rc}\n${out}\n${err}")
endif()

# 4. Diff against the committed adversarial golden baseline.
file(MAKE_DIRECTORY "${WORK_DIR}/golden/corpus_runner")
file(COPY "${ADV_GOLDEN_ROOT}/corpus_runner/"
     DESTINATION "${WORK_DIR}/golden/corpus_runner")
execute_process(
  COMMAND "${RESULTS_DIFF_BIN}" "${WORK_DIR}/golden" "${WORK_DIR}/results"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "results_diff found regressions (${rc})\n${out}\n${err}")
endif()

message(STATUS
        "adversary smoke: bound held on the quick grid, bench golden "
        "reproduced, ${n_traces} promoted trace(s) reproduced their "
        "golden baseline")
