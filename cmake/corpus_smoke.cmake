# End-to-end smoke of the trace-ingestion pipeline, run via
#   cmake -DTRACE_CONVERT_BIN=... -DCORPUS_RUNNER_BIN=... \
#         -DRESULTS_DIFF_BIN=... -DGOLDEN_DIR=... -DWORK_DIR=... \
#         -P corpus_smoke.cmake
#
# Emits the demo corpus as text traces, converts each to the PSLT binary
# format, replays the on-disk binary corpus with corpus_runner (quick
# profile) and diffs the result store against the committed golden
# baseline. The golden was produced from the in-memory built-in corpus, so
# a pass certifies text emission, text parsing, binary encoding and the
# mmap decode path all reproduce the same workloads bit for bit.

foreach(var TRACE_CONVERT_BIN CORPUS_RUNNER_BIN RESULTS_DIFF_BIN GOLDEN_DIR
        WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "corpus_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# 1. Demo corpus as text traces (the quick-profile sizing, 400 accesses).
execute_process(
  COMMAND "${TRACE_CONVERT_BIN}" --demo text_corpus --accesses 400
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_convert --demo exited with ${rc}\n${out}\n${err}")
endif()

# 2. Convert every text trace to binary (with --validate as a parse gate).
file(GLOB text_traces "${WORK_DIR}/text_corpus/*.trace")
list(LENGTH text_traces n_traces)
if(n_traces EQUAL 0)
  message(FATAL_ERROR "trace_convert --demo wrote no .trace files")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}/bin_corpus")
foreach(text_trace IN LISTS text_traces)
  get_filename_component(stem "${text_trace}" NAME_WE)
  execute_process(
    COMMAND "${TRACE_CONVERT_BIN}" --validate "${text_trace}"
            "bin_corpus/${stem}.pslt"
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "trace_convert ${stem} exited with ${rc}\n${out}\n${err}")
  endif()
endforeach()

# 3. Replay the on-disk binary corpus on the CI grid.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env "PSLLC_CORPUS_DIR=${WORK_DIR}/bin_corpus"
          "${CORPUS_RUNNER_BIN}" --profile quick --threads 2
          --results-dir "${WORK_DIR}/results"
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corpus_runner exited with ${rc}\n${out}\n${err}")
endif()

# 4. Diff against the committed golden baseline (restricted to the
# corpus_runner result: the candidate store holds nothing else).
file(MAKE_DIRECTORY "${WORK_DIR}/golden/corpus_runner")
file(COPY "${GOLDEN_DIR}/" DESTINATION "${WORK_DIR}/golden/corpus_runner")
execute_process(
  COMMAND "${RESULTS_DIFF_BIN}" "${WORK_DIR}/golden" "${WORK_DIR}/results"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "results_diff found regressions (${rc})\n${out}\n${err}")
endif()

message(STATUS
        "corpus smoke: ${n_traces} traces text->binary->mmap replayed, "
        "golden baseline reproduced")
