# Smoke test for the fig7_wcl bench executable, run via
#   cmake -DFIG7_BIN=<path> -DWORK_DIR=<dir> -P fig7_smoke.cmake
# Asserts the process exits 0, prints PASS for both programmatic claim
# checks, and writes bench_results/fig7_wcl.csv in the working directory.

if(NOT DEFINED FIG7_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "fig7_smoke.cmake needs -DFIG7_BIN=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${FIG7_BIN}"
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig7_wcl exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

foreach(claim
        "claim check: observed <= analytical everywhere: PASS"
        "claim check: NSS observed >= SS observed (per range/ways): PASS")
  string(FIND "${out}" "${claim}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "missing expected line '${claim}'\nstdout:\n${out}")
  endif()
endforeach()

if(NOT EXISTS "${WORK_DIR}/bench_results/fig7_wcl.csv")
  message(FATAL_ERROR "fig7_wcl did not write bench_results/fig7_wcl.csv")
endif()

file(READ "${WORK_DIR}/bench_results/fig7_wcl.csv" csv)
string(LENGTH "${csv}" csv_len)
if(csv_len EQUAL 0)
  message(FATAL_ERROR "bench_results/fig7_wcl.csv is empty")
endif()

message(STATUS "fig7_wcl smoke: both claim checks PASS, CSV written (${csv_len} bytes)")
