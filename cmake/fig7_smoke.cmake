# Smoke test for the fig7_wcl bench executable, run via
#   cmake -DFIG7_BIN=<path> -DWORK_DIR=<dir> -P fig7_smoke.cmake
# Asserts the process exits 0, prints PASS for both programmatic claim
# checks, and writes the result-store artifacts
# bench_results/fig7_wcl/{result.json,observed_wcl.csv}.

if(NOT DEFINED FIG7_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "fig7_smoke.cmake needs -DFIG7_BIN=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --results-dir is passed explicitly so an inherited PSLLC_RESULTS_DIR
# cannot redirect the artifacts outside WORK_DIR.
execute_process(
  COMMAND "${FIG7_BIN}" --results-dir bench_results
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fig7_wcl exited with ${rc}\nstdout:\n${out}\nstderr:\n${err}")
endif()

foreach(claim
        "claim check: observed <= analytical everywhere: PASS"
        "claim check: NSS observed >= SS observed (per range/ways): PASS")
  string(FIND "${out}" "${claim}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "missing expected line '${claim}'\nstdout:\n${out}")
  endif()
endforeach()

foreach(artifact fig7_wcl/result.json fig7_wcl/observed_wcl.csv
        fig7_wcl/analytical_wcl.csv)
  if(NOT EXISTS "${WORK_DIR}/bench_results/${artifact}")
    message(FATAL_ERROR "fig7_wcl did not write bench_results/${artifact}")
  endif()
endforeach()

file(READ "${WORK_DIR}/bench_results/fig7_wcl/observed_wcl.csv" csv)
string(LENGTH "${csv}" csv_len)
if(csv_len EQUAL 0)
  message(FATAL_ERROR "bench_results/fig7_wcl/observed_wcl.csv is empty")
endif()

message(STATUS "fig7_wcl smoke: both claim checks PASS, result store written (${csv_len} bytes of CSV)")
