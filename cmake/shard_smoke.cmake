# End-to-end smoke of the cross-process sharding protocol, run via
#   cmake -DRUN_ALL_BIN=... -DRESULTS_MERGE_BIN=... \
#         -DUNSHARDED_DIR=... -DWORK_DIR=... -P shard_smoke.cmake
#
# For N in {1, 2, 3, 7}: runs the quick-profile grid as N run_all shards
# (each into its own partial store, all sharing one manifest), merges the
# partials with results_merge, and byte-compares every file (result.json
# and per-series CSVs) of the merged store against UNSHARDED_DIR — the
# store the smoke_run_all fixture produced with a plain unsharded run. A
# single differing byte fails. Finally checks the refusal paths: merging
# with a partial store repeated (duplicate work units) or omitted (missing
# work units) must exit nonzero and name a unit id.

foreach(var RUN_ALL_BIN RESULTS_MERGE_BIN UNSHARDED_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

if(NOT IS_DIRECTORY "${UNSHARDED_DIR}")
  message(FATAL_ERROR
          "unsharded baseline ${UNSHARDED_DIR} missing (run smoke_run_all "
          "first; CTest orders this via the run_all_results fixture)")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

file(GLOB_RECURSE expected_files RELATIVE "${UNSHARDED_DIR}"
     "${UNSHARDED_DIR}/*")
list(SORT expected_files)
list(LENGTH expected_files n_expected)
if(n_expected EQUAL 0)
  message(FATAL_ERROR "unsharded baseline ${UNSHARDED_DIR} is empty")
endif()

foreach(shard_count 1 2 3 7)
  set(n_dir "${WORK_DIR}/n${shard_count}")
  set(manifest "${n_dir}/manifest.json")
  set(partial_dirs "")
  math(EXPR last_shard "${shard_count} - 1")
  foreach(shard_index RANGE ${last_shard})
    set(partial "${n_dir}/shard_${shard_index}")
    execute_process(
      COMMAND "${RUN_ALL_BIN}" --profile quick --threads 2
              --shard-count ${shard_count} --shard-index ${shard_index}
              --manifest "${manifest}" --results-dir "${partial}"
      OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "run_all shard ${shard_index}/${shard_count} exited with "
              "${rc}\n${out}\n${err}")
    endif()
    if(IS_DIRECTORY "${partial}")
      list(APPEND partial_dirs "${partial}")
    endif()
  endforeach()

  set(merged "${n_dir}/merged")
  execute_process(
    COMMAND "${RESULTS_MERGE_BIN}" --manifest "${manifest}"
            --out "${merged}" ${partial_dirs}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "results_merge (${shard_count} shards) exited with "
            "${rc}\n${out}\n${err}")
  endif()

  # Bit-identical both ways: same file set, same bytes per file.
  file(GLOB_RECURSE merged_files RELATIVE "${merged}" "${merged}/*")
  list(SORT merged_files)
  if(NOT merged_files STREQUAL expected_files)
    message(FATAL_ERROR
            "merged store (${shard_count} shards) file set differs from "
            "the unsharded run:\nmerged:   ${merged_files}\n"
            "unsharded: ${expected_files}")
  endif()
  foreach(rel_file IN LISTS expected_files)
    execute_process(
      COMMAND "${CMAKE_COMMAND}" -E compare_files
              "${UNSHARDED_DIR}/${rel_file}" "${merged}/${rel_file}"
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "merged store (${shard_count} shards) differs from the "
              "unsharded run at ${rel_file}")
    endif()
  endforeach()
  message(STATUS
          "shard smoke: ${shard_count} shard(s) merged bit-identical "
          "(${n_expected} files)")
endforeach()

# Refusal: a partial store passed twice claims every one of its work units
# twice -> nonzero exit naming a duplicate unit.
execute_process(
  COMMAND "${RESULTS_MERGE_BIN}" --manifest "${WORK_DIR}/n3/manifest.json"
          --out "${WORK_DIR}/dup_merged"
          "${WORK_DIR}/n3/shard_0" "${WORK_DIR}/n3/shard_0"
          "${WORK_DIR}/n3/shard_1" "${WORK_DIR}/n3/shard_2"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "results_merge accepted duplicate work units")
endif()
if(NOT err MATCHES "duplicate work unit")
  message(FATAL_ERROR
          "duplicate-unit refusal did not name the unit:\n${err}")
endif()

# Refusal: omitting a shard leaves its work units uncovered -> nonzero
# exit naming a missing unit.
execute_process(
  COMMAND "${RESULTS_MERGE_BIN}" --manifest "${WORK_DIR}/n3/manifest.json"
          --out "${WORK_DIR}/missing_merged"
          "${WORK_DIR}/n3/shard_0" "${WORK_DIR}/n3/shard_2"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "results_merge accepted a missing shard")
endif()
if(NOT err MATCHES "missing work unit")
  message(FATAL_ERROR
          "missing-unit refusal did not name the unit:\n${err}")
endif()

message(STATUS "shard smoke: duplicate/missing-unit refusals verified")
