# Smoke of the wcl_calculator example's argument contract, run via
#   cmake -DWCL_CALCULATOR_BIN=... -P wcl_calculator_smoke.cmake
#
# Pins the repo-wide CLI convention onto the example: a valid invocation
# exits 0, and every malformed argument exits 2 with a diagnostic — the
# regression here was std::atoi silently turning garbage like "four" into
# 0 cores.

if(NOT DEFINED WCL_CALCULATOR_BIN)
  message(FATAL_ERROR "wcl_calculator_smoke.cmake needs -DWCL_CALCULATOR_BIN=...")
endif()

# Valid: notation + cores + slot width.
execute_process(
  COMMAND "${WCL_CALCULATOR_BIN}" "SS(32,4,4)" 4 50
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "valid invocation exited with ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "Theorem 4.7")
  message(FATAL_ERROR "valid invocation printed no bound:\n${out}")
endif()

# Valid: --repartition with two notations prints the transient bound and
# its term breakdown.
execute_process(
  COMMAND "${WCL_CALCULATOR_BIN}" --repartition "SS(32,4,4)" "SS(32,2,4)" 4 50
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--repartition invocation exited with ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "transient WCL bound")
  message(FATAL_ERROR "--repartition printed no transient bound:\n${out}")
endif()
if(NOT out MATCHES "drain bound")
  message(FATAL_ERROR "--repartition printed no term breakdown:\n${out}")
endif()

# Malformed arguments: each must exit 2 with a diagnostic on stderr
# ('|'-separated here because ';' is the cmake list separator).
set(bad_invocations
    "SS(32,4,4)|four|50"      # non-numeric cores (the old atoi -> 0 bug)
    "SS(32,4,4)|4|zero"       # non-numeric slot width
    "SS(32,4,4)|0|50"         # out-of-range cores
    "NOT_A_NOTATION"          # unparsable notation
    "--repartition|SS(32,4,4)"                 # missing target notation
    "--repartition|SS(32,4,4)|NOT_A_NOTATION"  # unparsable target
    "--repartition|SS(32,4,4)|SS(32,2,4)|four" # non-numeric cores
    "--repartition|SS(32,4,4)|SS(32,2,2)|4")   # sharer/core mismatch
foreach(invocation IN LISTS bad_invocations)
  string(REPLACE "|" " " pretty "${invocation}")
  string(REPLACE "|" ";" invocation_args "${invocation}")
  execute_process(
    COMMAND "${WCL_CALCULATOR_BIN}" ${invocation_args}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR
            "wcl_calculator ${pretty} exited with ${rc}, want 2\n${out}\n${err}")
  endif()
  if(NOT err MATCHES "wcl_calculator: ")
    message(FATAL_ERROR
            "wcl_calculator ${pretty} printed no diagnostic:\n${err}")
  endif()
endforeach()

message(STATUS "wcl_calculator smoke: valid run ok, bad arguments exit 2")
