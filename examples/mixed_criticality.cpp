// Mixed-criticality consolidation — the deployment the paper's conclusion
// envisions: high-criticality tasks keep *private* LLC partitions (lowest
// WCL), while lower-criticality tasks *share* a partition through the set
// sequencer (better utilization, still bounded).
//
// Scenario (automotive flavour, ISO 26262):
//   c0 — ASIL-D brake controller     -> private P-style partition
//   c1 — ASIL-B camera preprocessing -> shared partition (SS)
//   c2 — ASIL-B radar tracking       -> shared partition (SS)
//   c3 — QM infotainment             -> shared partition (SS)
#include <cstdio>

#include "common/rng.h"
#include "core/system.h"
#include "core/wcl_analysis.h"
#include "sim/workload.h"

int main() {
  using namespace psllc;  // NOLINT

  core::SystemConfig config;
  config.num_cores = 4;

  // Partition plan on the 32-set x 16-way LLC:
  //   c0: sets 0..7, ways 0..15 (8 KiB private)
  //   c1-c3: sets 8..31, ways 0..15 (24 KiB shared, set sequencer).
  llc::PartitionMap partitions(config.llc.geometry);
  partitions.add_partition(llc::PartitionSpec{0, 8, 0, 16}, {CoreId{0}});
  partitions.add_partition(llc::PartitionSpec{8, 24, 0, 16},
                           {CoreId{1}, CoreId{2}, CoreId{3}});
  config.mode = llc::ContentionMode::kSetSequencer;

  // Analytical guarantees, per core, before running anything.
  const Cycle wcl_private =
      core::wcl_private_cycles(config.num_cores, config.slot_width);
  core::SharedPartitionScenario shared;
  shared.total_cores = config.num_cores;
  shared.sharers = 3;
  shared.partition_sets = 24;
  shared.partition_ways = 16;
  shared.cua_capacity_lines = config.private_caches.l2.capacity_lines();
  const Cycle wcl_shared = core::wcl_set_sequencer_cycles(shared);
  std::printf("Analytical per-request WCL guarantees:\n");
  std::printf("  c0 (ASIL-D, private 8 KiB)     : %5lld cycles\n",
              static_cast<long long>(wcl_private));
  std::printf("  c1-c3 (shared 24 KiB, SS, n=3) : %5lld cycles\n\n",
              static_cast<long long>(wcl_shared));

  // Workloads: the brake controller runs a small, tight loop; the shared
  // cores run bigger working sets that profit from the pooled capacity.
  core::System system(config, std::move(partitions));
  system.set_trace(CoreId{0},
                   sim::make_pointer_chase_trace(0x0, 96, 20000, 1));
  sim::RandomWorkloadOptions big;
  big.range_bytes = 12 * 1024;
  big.accesses = 15000;
  big.write_fraction = 0.3;
  for (int c = 1; c < 4; ++c) {
    system.set_trace(
        CoreId{c},
        sim::make_uniform_random_trace(
            0x100000ULL + static_cast<Addr>(c) * 0x40000ULL, big,
            mix_seed(99, static_cast<std::uint64_t>(c))));
  }

  const core::RunResult result = system.run(2'000'000'000);
  if (!result.all_done) {
    std::printf("simulation did not complete\n");
    return 1;
  }

  std::printf("Observed (max / mean service latency per core):\n");
  bool all_hold = true;
  for (int c = 0; c < 4; ++c) {
    const auto& latencies = system.tracker().service_latency(CoreId{c});
    const Cycle bound = c == 0 ? wcl_private : wcl_shared;
    const bool holds = latencies.count() == 0 || latencies.max() <= bound;
    all_hold = all_hold && holds;
    std::printf("  c%d: max %5lld, mean %7.1f cycles over %6lld LLC "
                "requests — bound %5lld: %s\n",
                c,
                static_cast<long long>(
                    latencies.count() > 0 ? latencies.max() : 0),
                latencies.count() > 0 ? latencies.mean() : 0.0,
                static_cast<long long>(latencies.count()),
                static_cast<long long>(bound), holds ? "OK" : "VIOLATED");
  }
  std::printf("\nIsolation check: the ASIL-D core's partition is untouched "
              "by the shared cores\n(back-invalidations never cross "
              "partitions; see tests/test_system.cc).\n");
  return all_hold ? 0 : 1;
}
