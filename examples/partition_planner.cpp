// Partition planning for a consolidated ECU — the workflow the paper's
// conclusion envisions: decide which tasks need private LLC partitions and
// which can share one (through the set sequencer), from their timing
// requirements alone, then validate the plan on the simulator.
#include <cstdio>

#include "core/system.h"
#include "rt/partition_planner.h"
#include "sim/workload.h"

int main() {
  using namespace psllc;  // NOLINT

  // A consolidated automotive task set, one task per core. Miss bounds
  // would come from static cache analysis of each task binary.
  std::vector<rt::Task> tasks(4);
  tasks[0] = {"brake-ctrl", rt::Criticality::kHigh, /*compute=*/40'000,
              /*misses=*/120, /*period=*/200'000};
  tasks[1] = {"steering", rt::Criticality::kHigh, 30'000, 60, 500'000};
  tasks[2] = {"lane-assist", rt::Criticality::kLow, 150'000, 400,
              5'000'000};
  tasks[3] = {"infotainment", rt::Criticality::kLow, 80'000, 900,
              20'000'000};

  core::SystemConfig config;
  config.num_cores = 4;

  std::printf("Planning LLC partitions for 4 consolidated tasks on the "
              "paper's platform\n(32-set x 16-way LLC, 50-cycle TDM "
              "slots)...\n\n");
  const rt::PartitionPlan plan = rt::plan_partitions(tasks, config);
  std::printf("%s\n", plan.describe().c_str());
  if (!plan.feasible) {
    std::printf("No feasible plan — relax periods or add capacity.\n");
    return 1;
  }

  // Validate the plan empirically: run a conflict-heavy synthetic workload
  // on the planned partitions and confirm the per-core service latencies.
  std::printf("Validating on the simulator...\n");
  core::System system(config, *plan.partitions);
  sim::RandomWorkloadOptions workload;
  workload.range_bytes = 8192;
  workload.accesses = 8000;
  workload.write_fraction = 0.3;
  const auto traces = sim::make_disjoint_random_workload(4, workload, 1234);
  for (int c = 0; c < 4; ++c) {
    system.set_trace(CoreId{c}, traces[static_cast<std::size_t>(c)]);
  }
  if (!system.run(2'000'000'000).all_done) {
    std::printf("validation run did not complete\n");
    return 1;
  }
  for (int c = 0; c < 4; ++c) {
    const auto& latency = system.tracker().service_latency(CoreId{c});
    std::printf("  %-12s max observed service latency %5lld cycles over "
                "%6lld LLC requests\n",
                tasks[static_cast<std::size_t>(c)].name.c_str(),
                static_cast<long long>(
                    latency.count() > 0 ? latency.max() : 0),
                static_cast<long long>(latency.count()));
  }
  std::printf("\nPlan validated: isolated cores keep their low bounds while "
              "the sharers pool %d sets.\n",
              plan.cores.back().partition.sets);
  return 0;
}
