// Quickstart: simulate four cores sharing one LLC partition through the
// set sequencer, and compare every request's latency against the paper's
// analytical worst-case bound.
//
//   $ ./quickstart
#include <cstdio>

#include "core/system.h"
#include "core/wcl_analysis.h"
#include "sim/runner.h"
#include "sim/workload.h"

int main() {
  using namespace psllc;  // NOLINT

  // 1. The paper's platform with an SS(32,4,4) shared partition: 32 sets x
  //    4 ways (8 KiB) shared by all four cores, ordered by the set
  //    sequencer. "SS(32,4,4)" is the notation from Section 5 of the paper.
  const core::ExperimentSetup setup = core::make_paper_setup("SS(32,4,4)", 4);

  // 2. Synthetic workload: each core issues 10,000 uniformly random
  //    accesses within its own 16 KiB address range (disjoint per core).
  sim::RandomWorkloadOptions workload;
  workload.range_bytes = 16 * 1024;
  workload.accesses = 10000;
  workload.write_fraction = 0.25;
  const std::vector<core::Trace> traces =
      sim::make_disjoint_random_workload(4, workload, /*seed=*/2024);

  // 3. Run to completion.
  const sim::RunMetrics metrics = sim::run_experiment(setup, traces);
  if (!metrics.completed) {
    std::printf("simulation did not complete within the horizon\n");
    return 1;
  }

  // 4. Report: observed worst-case latency vs Theorem 4.8's bound.
  std::printf("configuration      : %s, %d cores, %lld-cycle TDM slots\n",
              setup.notation.to_string().c_str(), setup.config.num_cores,
              static_cast<long long>(setup.config.slot_width));
  std::printf("execution time     : %lld cycles\n",
              static_cast<long long>(metrics.makespan));
  std::printf("LLC requests       : %lld\n",
              static_cast<long long>(metrics.llc_requests));
  std::printf("observed WCL       : %lld cycles\n",
              static_cast<long long>(metrics.observed_wcl));
  std::printf("analytical WCL     : %lld cycles (Theorem 4.8)\n",
              static_cast<long long>(metrics.analytical_wcl));
  std::printf("bound holds        : %s\n",
              metrics.observed_wcl <= metrics.analytical_wcl ? "yes" : "NO");
  for (int c = 0; c < 4; ++c) {
    std::printf("  c%d finished at %lld cycles (L1 hits %lld, L2 hits %lld, "
                "LLC requests %lld)\n",
                c,
                static_cast<long long>(
                    metrics.per_core_finish[static_cast<std::size_t>(c)]),
                static_cast<long long>(
                    metrics.per_core_l1_hits[static_cast<std::size_t>(c)]),
                static_cast<long long>(
                    metrics.per_core_l2_hits[static_cast<std::size_t>(c)]),
                static_cast<long long>(
                    metrics.per_core_misses[static_cast<std::size_t>(c)]));
  }
  return metrics.observed_wcl <= metrics.analytical_wcl ? 0 : 1;
}
