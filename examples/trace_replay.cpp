// Trace replay — run recorded memory traces (one file per core) through a
// chosen partition configuration and print per-core latency histograms.
//
//   $ ./trace_replay "SS(32,4,2)" core0.trace core1.trace
//   $ ./trace_replay          # self-demo with generated traces
//
// Trace format (see src/sim/trace_io.h):  R|W|I <addr> [gap]
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/system.h"
#include "core/wcl_analysis.h"
#include "sim/trace_io.h"
#include "sim/workload.h"

namespace {

using namespace psllc;  // NOLINT

int replay(const std::string& notation,
           const std::vector<core::Trace>& traces) {
  const int cores = static_cast<int>(traces.size());
  const core::ExperimentSetup setup = core::make_paper_setup(notation, cores);
  core::System system(setup);
  // Histogram per core, sized by the analytical bound.
  const Cycle bound = core::analytical_wcl_cycles(setup, CoreId{0});
  std::vector<Histogram> histograms;
  for (int c = 0; c < cores; ++c) {
    histograms.emplace_back(bound + 1, 20);
    system.set_trace(CoreId{c}, traces[static_cast<std::size_t>(c)]);
  }
  system.add_slot_observer([&](const core::SlotEvent& event) {
    if (event.action == core::SlotEvent::Action::kRequest &&
        event.request_completed) {
      // Service latency of the request that just completed: recover from
      // the tracker's per-core summary delta is awkward; use the worst
      // record instead after the run. Here we only count slots.
      (void)event;
    }
  });
  const core::RunResult result = system.run(2'000'000'000);
  if (!result.all_done) {
    std::printf("replay did not complete\n");
    return 1;
  }
  std::printf("config %s | %d cores | executed %lld slots | makespan %lld "
              "cycles\n\n",
              notation.c_str(), cores,
              static_cast<long long>(result.slots_executed),
              static_cast<long long>(system.makespan()));
  for (int c = 0; c < cores; ++c) {
    const auto& summary = system.tracker().service_latency(CoreId{c});
    std::printf("c%d: %lld LLC requests", c,
                static_cast<long long>(summary.count()));
    if (summary.count() > 0) {
      std::printf(", service latency min/mean/max = %lld / %.1f / %lld "
                  "cycles (bound %lld)",
                  static_cast<long long>(summary.min()), summary.mean(),
                  static_cast<long long>(summary.max()),
                  static_cast<long long>(bound));
    }
    std::printf("\n");
  }
  const auto& worst = system.tracker().worst_request();
  std::printf("\nworst request: %s line 0x%llx, service %lld cycles, %d "
              "presentations, %d own write-backs in flight\n",
              to_string(worst.core).c_str(),
              static_cast<unsigned long long>(worst.line),
              static_cast<long long>(worst.service_latency()),
              worst.presentations, worst.writebacks_during);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3) {
      const std::string notation = argv[1];
      std::vector<core::Trace> traces;
      for (int i = 2; i < argc; ++i) {
        traces.push_back(sim::read_trace_file(argv[i]));
      }
      return replay(notation, traces);
    }
    // Self-demo: generate two traces, write them through the text format
    // (round trip exercises trace_io), then replay.
    std::printf("no trace files given — running the self-demo\n\n");
    sim::RandomWorkloadOptions options;
    options.range_bytes = 8192;
    options.accesses = 5000;
    options.write_fraction = 0.2;
    const auto generated = sim::make_disjoint_random_workload(2, options, 77);
    const auto dir = std::filesystem::temp_directory_path();
    std::vector<core::Trace> traces;
    for (std::size_t c = 0; c < generated.size(); ++c) {
      const std::string path =
          (dir / ("psllc_demo_core" + std::to_string(c) + ".trace")).string();
      sim::write_trace_file(path, generated[c]);
      traces.push_back(sim::read_trace_file(path));
      std::printf("wrote + reloaded %s (%zu entries)\n", path.c_str(),
                  traces.back().size());
    }
    std::printf("\n");
    return replay("SS(32,4,2)", traces);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
