// Narrated replay of the paper's Figure 2: why naive TDM sharing is
// unbounded, slot by slot. Prints the first periods of the starvation loop,
// then contrasts the 1S-TDM and set-sequencer fixes.
#include <cstdio>

#include "core/critical_instance.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

const char* action_name(SlotEvent::Action action) {
  switch (action) {
    case SlotEvent::Action::kIdle: return "idle";
    case SlotEvent::Action::kRequest: return "Req ";
    case SlotEvent::Action::kWriteBack: return "WB  ";
  }
  return "?";
}

void narrate(const char* title, llc::ContentionMode mode, bool one_slot,
             int slots_to_show, std::int64_t horizon) {
  std::printf("--- %s ---\n", title);
  auto scenario = make_unbounded_scenario(mode, one_slot, 1 << 20);
  System& system = *scenario.system;
  int shown = 0;
  system.add_slot_observer([&](const SlotEvent& event) {
    if (shown >= slots_to_show) {
      return;
    }
    ++shown;
    std::printf("  slot %3lld  %s  %s", static_cast<long long>(
                                            event.slot_index),
                to_string(event.owner).c_str(), action_name(event.action));
    if (event.action != SlotEvent::Action::kIdle) {
      std::printf(" line=0x%llx", static_cast<unsigned long long>(event.line));
      if (event.request_completed) {
        std::printf("  -> RESPONSE");
      }
      if (event.writeback_frees) {
        std::printf("  -> frees LLC entry");
      }
    }
    std::printf("\n");
  });
  system.run_slots(horizon);
  const auto& latency = system.tracker().service_latency(scenario.cua);
  if (latency.count() > 0) {
    std::printf("  ... cua's request completed: service latency %lld "
                "cycles\n\n",
                static_cast<long long>(latency.max()));
  } else {
    std::printf("  ... after %lld slots cua is STILL waiting — the paper's "
                "unbounded scenario\n\n",
                static_cast<long long>(horizon));
  }
}

}  // namespace

int main() {
  std::printf(
      "Figure 2 (Wu & Patel, DAC'22): two cores share a 1-set, 2-way LLC\n"
      "partition. The interferer ci owns two TDM slots per period; cua owns\n"
      "one. Every period: cua's miss evicts one of ci's lines, ci writes it\n"
      "back (freeing the entry), and ci's next request re-occupies it before\n"
      "cua's slot returns. cua starves forever.\n\n");
  narrate("naive TDM {cua, ci, ci}, best effort (paper Figure 2)",
          llc::ContentionMode::kBestEffort, /*one_slot=*/false, 24, 12000);
  narrate("fix 1: 1S-TDM schedule {cua, ci} (Definition 4.1)",
          llc::ContentionMode::kBestEffort, /*one_slot=*/true, 16, 12000);
  narrate("fix 2: set sequencer (Section 4.5), even with {cua, ci, ci}",
          llc::ContentionMode::kSetSequencer, /*one_slot=*/false, 16, 12000);
  return 0;
}
