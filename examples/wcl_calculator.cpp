// WCL calculator — evaluate the paper's analytical bounds for a
// configuration given on the command line, the way a system integrator
// would size partitions:
//
//   $ ./wcl_calculator "SS(8,4,3)" 4          # notation, cores on the bus
//   $ ./wcl_calculator "NSS(1,16,4)" 4 50     # + slot width
//   $ ./wcl_calculator                        # table of common configs
//   $ ./wcl_calculator --repartition "SS(32,4,4)" "SS(32,2,4)" 4 50
//                                             # transient bound across a
//                                             # dynamic repartitioning step
#include <cstdio>
#include <string>

#include "common/assert.h"
#include "common/table.h"
#include "core/system_config.h"
#include "core/wcl_analysis.h"
#include "tools/cli.h"

namespace {

using namespace psllc;        // NOLINT
using namespace psllc::core;  // NOLINT

void print_for(const PartitionNotation& notation, int total_cores,
               Cycle slot_width) {
  std::printf("configuration : %s on %d cores, S_W = %lld cycles\n",
              notation.to_string().c_str(), total_cores,
              static_cast<long long>(slot_width));
  if (!notation.is_shared()) {
    std::printf("private partition bound: %lld cycles (%lld slots)\n",
                static_cast<long long>(
                    wcl_private_cycles(total_cores, slot_width)),
                static_cast<long long>(wcl_private_slots(total_cores)));
    return;
  }
  SharedPartitionScenario scenario;
  scenario.total_cores = total_cores;
  scenario.sharers = notation.sharers;
  scenario.partition_sets = notation.sets;
  scenario.partition_ways = notation.ways;
  scenario.cua_capacity_lines = SystemConfig{}.private_caches.l2
                                    .capacity_lines();
  scenario.slot_width = slot_width;
  std::printf("  m = min(m_cua=%d, M=%d) = %d lines\n",
              scenario.cua_capacity_lines, scenario.partition_lines(),
              scenario.m());
  std::printf("  Theorem 4.7 (1S-TDM, no sequencer): %s cycles (%lld slots)\n",
              format_cycles(wcl_1s_tdm_cycles(scenario)).c_str(),
              static_cast<long long>(wcl_1s_tdm_slots(scenario)));
  std::printf("  Theorem 4.8 (set sequencer)       : %s cycles (%lld slots)\n",
              format_cycles(wcl_set_sequencer_cycles(scenario)).c_str(),
              static_cast<long long>(wcl_set_sequencer_slots(scenario)));
  std::printf("  sequencer improvement             : %.1fx\n",
              wcl_improvement_ratio(scenario));
}

/// --repartition mode: the transient WCL bound for the drain/flush window
/// of a from -> to partition change, with the per-term breakdown an
/// integrator needs to size trigger cadences.
void print_repartition(int argc, char** argv) {
  PSLLC_CONFIG_CHECK(argc >= 4,
                     "--repartition needs two notations: --repartition "
                     "\"<from>\" \"<to>\" [cores] [slot_width]");
  const auto from_notation = PartitionNotation::parse(argv[2]);
  const auto to_notation = PartitionNotation::parse(argv[3]);
  const int cores =
      argc > 4
          ? static_cast<int>(cli::parse_int_in(argv[4], "cores", 1, 1024))
          : (from_notation.is_shared() ? from_notation.sharers : 4);
  const Cycle slot_width =
      argc > 5 ? cli::parse_int_in(argv[5], "slot_width", 1, 1'000'000'000)
               : core::kPaperSlotWidth;

  ExperimentSetup from_setup = make_paper_setup(argv[2], cores);
  ExperimentSetup to_setup = make_paper_setup(argv[3], cores);
  SystemConfig config = from_setup.config;
  config.slot_width = slot_width;
  const TransientWclTerms terms = transient_wcl_terms(
      config, from_setup.partitions(), to_setup.partitions(), CoreId{0});

  std::printf("repartition   : %s -> %s on %d cores, S_W = %lld cycles\n",
              from_notation.to_string().c_str(),
              to_notation.to_string().c_str(), cores,
              static_cast<long long>(slot_width));
  std::printf("  moved slot entries     : %d\n", terms.moved_entries);
  std::printf("  drain bound            : %s cycles\n",
              format_cycles(terms.drain_bound).c_str());
  std::printf("  transient slot width   : %lld cycles (requeue bound %s)\n",
              static_cast<long long>(terms.slot_width),
              format_cycles(terms.requeue_bound).c_str());
  std::printf("  sharer delta           : %+d over the target mode\n",
              terms.sharer_delta);
  std::printf("  steady bound (widened) : %s cycles\n",
              format_cycles(terms.steady_bound).c_str());
  std::printf("  transient WCL bound    : %s cycles\n",
              format_cycles(terms.total()).c_str());
}

void print_default_table() {
  Table table({"configuration", "cores", "Thm 4.7", "Thm 4.8 / P bound"});
  const std::pair<const char*, int> configs[] = {
      {"SS(1,2,4)", 4},  {"SS(1,4,4)", 4},  {"NSS(1,16,4)", 4},
      {"SS(32,4,2)", 2}, {"SS(32,4,4)", 4}, {"P(8,2)", 4},
  };
  for (const auto& [text, cores] : configs) {
    const auto notation = PartitionNotation::parse(text);
    if (!notation.is_shared()) {
      table.add_row({text, std::to_string(cores), "-",
                     format_cycles(wcl_private_cycles(cores, 50))});
      continue;
    }
    SharedPartitionScenario scenario;
    scenario.total_cores = cores;
    scenario.sharers = notation.sharers;
    scenario.partition_sets = notation.sets;
    scenario.partition_ways = notation.ways;
    table.add_row({text, std::to_string(cores),
                   format_cycles(wcl_1s_tdm_cycles(scenario)),
                   format_cycles(wcl_set_sequencer_cycles(scenario))});
  }
  std::printf("%s", table.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      std::printf("usage: %s \"SS(s,w,n)|NSS(s,w,n)|P(s,w)\" [cores] "
                  "[slot_width]\n       %s --repartition \"<from>\" "
                  "\"<to>\" [cores] [slot_width]\n\n"
                  "Common configurations (S_W = 50):\n",
                  argv[0], argv[0]);
      print_default_table();
      return 0;
    }
    if (std::string(argv[1]) == "--repartition") {
      print_repartition(argc, argv);
      return 0;
    }
    const auto notation = core::PartitionNotation::parse(argv[1]);
    // Validated parses, not atoi: garbage like "four" must exit 2 with a
    // diagnostic, never silently become 0 cores.
    const int cores =
        argc > 2 ? static_cast<int>(cli::parse_int_in(argv[2], "cores", 1,
                                                      1024))
                 : (notation.is_shared() ? notation.sharers : 4);
    const Cycle slot_width =
        argc > 3 ? cli::parse_int_in(argv[3], "slot_width", 1,
                                     1'000'000'000)
                 : core::kPaperSlotWidth;
    print_for(notation, cores, slot_width);
    return 0;
  } catch (const ConfigError& e) {
    // The repo-wide CLI contract: bad arguments exit 2.
    std::fprintf(stderr, "wcl_calculator: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
