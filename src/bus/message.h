// Messages exchanged on the shared L2<->LLC bus.
#ifndef PSLLC_BUS_MESSAGE_H_
#define PSLLC_BUS_MESSAGE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/types.h"

namespace psllc::bus {

enum class MessageKind : std::uint8_t {
  kRequest,    ///< L2 miss: fetch a line from the LLC
  kWriteBack,  ///< write-back (voluntary dirty eviction or forced/back-inval)
};

/// One bus transfer. A core's L2 controller places exactly one message on
/// the bus at the start of its TDM slot (paper Section 3).
struct BusMessage {
  MessageKind kind = MessageKind::kRequest;
  CoreId source;
  LineAddr line = 0;

  // --- request fields ---
  AccessType access = AccessType::kRead;
  std::uint64_t request_id = 0;  ///< tracker handle, assigned by the system

  // --- write-back fields ---
  bool carries_dirty_data = false;  ///< dirty data travels with the WB
  /// True when this write-back answers an LLC back-invalidation: its arrival
  /// frees the LLC entry (the paper's "WB l" that turns an entry into "-").
  bool frees_llc_entry = false;

  Cycle enqueued_at = kNoCycle;

  [[nodiscard]] std::string to_string() const {
    std::string out = kind == MessageKind::kRequest ? "Req" : "WB";
    out += "(" + psllc::to_string(source) + ", line=0x";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(line));
    out += buf;
    if (kind == MessageKind::kWriteBack && frees_llc_entry) {
      out += ", frees";
    }
    out += ")";
    return out;
  }
};

/// True iff the two messages are observably identical — equal in every field
/// except `request_id`, which is a tracker bookkeeping handle with no effect
/// on timing or cache state. The parallel replay engine compares speculative
/// boundary states with this so differently-numbered but behaviorally equal
/// in-flight messages do not force a segment re-execution.
[[nodiscard]] inline bool same_observable(const BusMessage& a,
                                          const BusMessage& b) {
  return a.kind == b.kind && a.source == b.source && a.line == b.line &&
         a.access == b.access && a.carries_dirty_data == b.carries_dirty_data &&
         a.frees_llc_entry == b.frees_llc_entry &&
         a.enqueued_at == b.enqueued_at;
}

}  // namespace psllc::bus

#endif  // PSLLC_BUS_MESSAGE_H_
