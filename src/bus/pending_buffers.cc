#include "bus/pending_buffers.h"

#include <utility>

#include "common/assert.h"

namespace psllc::bus {

PendingBuffers::PendingBuffers(int pwb_capacity) : pwb_(pwb_capacity) {}

const BusMessage& PendingBuffers::request() const {
  PSLLC_ASSERT(request_.has_value(), "PRB is empty");
  return *request_;
}

void PendingBuffers::set_request(BusMessage message) {
  PSLLC_ASSERT(!request_.has_value(),
               "PRB already holds a request (one outstanding request per "
               "core, paper Section 3)");
  PSLLC_ASSERT(message.kind == MessageKind::kRequest,
               "PRB accepts only requests");
  request_ = std::move(message);
}

void PendingBuffers::clear_request() {
  PSLLC_ASSERT(request_.has_value(), "clearing empty PRB");
  request_.reset();
}

void PendingBuffers::push_writeback(BusMessage message) {
  PSLLC_ASSERT(message.kind == MessageKind::kWriteBack,
               "PWB accepts only write-backs");
  PSLLC_ASSERT(!has_writeback_for(message.line),
               "duplicate write-back for line 0x" << std::hex << message.line);
  pwb_.push(std::move(message));
}

bool PendingBuffers::has_writeback_for(LineAddr line) const {
  return pwb_.find_if([line](const BusMessage& m) {
           return m.line == line;
         }) >= 0;
}

bool PendingBuffers::upgrade_writeback_to_forced(LineAddr line) {
  const int pos = pwb_.find_if(
      [line](const BusMessage& m) { return m.line == line; });
  if (pos < 0) {
    return false;
  }
  pwb_.at_mut(pos).frees_llc_entry = true;
  return true;
}

std::optional<BusMessage> PendingBuffers::cancel_writeback(LineAddr line) {
  const int pos = pwb_.find_if([line](const BusMessage& m) {
    return m.line == line && !m.frees_llc_entry;
  });
  if (pos < 0) {
    return std::nullopt;
  }
  BusMessage msg = pwb_.at(pos);
  pwb_.erase_at(pos);
  return msg;
}

PendingBuffers::Pick PendingBuffers::pick(Cycle slot_start) {
  const bool req = has_request() && request_->enqueued_at <= slot_start;
  // PWB is FIFO: only the head write-back can be sent.
  const bool wb = has_writeback() && pwb_.front().enqueued_at <= slot_start;
  if (!req && !wb) {
    return Pick::kNone;
  }
  Pick choice;
  if (req && wb) {
    choice = prefer_writeback_ ? Pick::kWriteBack : Pick::kRequest;
  } else {
    choice = req ? Pick::kRequest : Pick::kWriteBack;
  }
  // Alternate: whoever was served yields preference to the other.
  prefer_writeback_ = (choice == Pick::kRequest);
  return choice;
}

BusMessage PendingBuffers::pop_writeback() {
  PSLLC_ASSERT(has_writeback(), "PWB is empty");
  return pwb_.pop();
}

bool PendingBuffers::same_state(const PendingBuffers& other) const {
  if (prefer_writeback_ != other.prefer_writeback_ ||
      request_.has_value() != other.request_.has_value() ||
      pwb_.size() != other.pwb_.size()) {
    return false;
  }
  if (request_.has_value() && !same_observable(*request_, *other.request_)) {
    return false;
  }
  // Compare the PWB logically (front to back) so equal contents match even
  // when the ring-buffer head offsets differ between the two histories.
  for (int i = 0; i < pwb_.size(); ++i) {
    if (!same_observable(pwb_.at(i), other.pwb_.at(i))) {
      return false;
    }
  }
  return true;
}

}  // namespace psllc::bus
