// Pending Request Buffer (PRB) and Pending Write-back Buffer (PWB) of one
// core's L2 cache controller, with the predictable round-robin arbitration
// between them (paper Section 3).
//
// The PRB holds at most one entry (the paper assumes one outstanding request
// per core). The PWB is a FIFO of bounded capacity holding voluntary
// (dirty-victim) and forced (back-invalidation) write-backs.
//
// Round-robin discipline: when both buffers are non-empty the controller
// alternates between them; picking from one buffer makes the other preferred
// next time. This is the "predictable arbitration such as round-robin"
// assumed by the analysis; it guarantees a request is never presented while
// older write-backs could starve it indefinitely, and yields the private-
// partition WCL bound of (2N+1)*S_W.
#ifndef PSLLC_BUS_PENDING_BUFFERS_H_
#define PSLLC_BUS_PENDING_BUFFERS_H_

#include <cstdint>
#include <optional>

#include "bus/message.h"
#include "common/fixed_queue.h"

namespace psllc::bus {

class PendingBuffers {
 public:
  /// Which buffer the round-robin pick selected.
  enum class Pick : std::uint8_t { kNone, kRequest, kWriteBack };

  explicit PendingBuffers(int pwb_capacity = 16);

  // --- PRB (single outstanding request) ---
  [[nodiscard]] bool has_request() const { return request_.has_value(); }
  [[nodiscard]] const BusMessage& request() const;
  void set_request(BusMessage message);
  void clear_request();

  // --- PWB ---
  [[nodiscard]] bool has_writeback() const { return !pwb_.empty(); }
  [[nodiscard]] int writeback_count() const { return pwb_.size(); }
  [[nodiscard]] int pwb_capacity() const { return pwb_.capacity(); }
  void push_writeback(BusMessage message);

  /// True if a write-back for `line` is queued.
  [[nodiscard]] bool has_writeback_for(LineAddr line) const;

  /// Head of the PWB (the message the next kWriteBack pick would send).
  /// Precondition: has_writeback().
  [[nodiscard]] const BusMessage& front_writeback() const {
    return pwb_.front();
  }

  /// Upgrades a queued write-back for `line` (if any) so that its arrival
  /// frees the LLC entry — used when the LLC back-invalidates a line whose
  /// voluntary write-back is already in flight. Returns true if upgraded.
  bool upgrade_writeback_to_forced(LineAddr line);

  /// Removes and returns a queued *voluntary* write-back for `line` — used
  /// when the core re-fetches a line whose dirty victim write-back has not
  /// left the PWB yet (the dirtiness folds back into the refilled copy).
  /// Freeing (forced) write-backs are never cancelled; returns nullopt when
  /// no cancellable entry exists.
  std::optional<BusMessage> cancel_writeback(LineAddr line);

  /// Round-robin choice at the start of this core's slot (`slot_start`).
  /// Only messages enqueued at or before the slot start are eligible (a
  /// message created mid-slot waits for the next slot). Returns which buffer
  /// to send from (kNone when nothing is eligible) and updates the
  /// alternation state. The caller then sends `request()` or
  /// `pop_writeback()`.
  Pick pick(Cycle slot_start);

  /// Dequeues the head write-back after it was placed on the bus.
  BusMessage pop_writeback();

  /// True iff the two buffers hold observably identical state: the same
  /// arbitration preference, the same PRB occupancy, and PWB entries equal
  /// element-by-element in queue order. Messages are compared with
  /// same_observable() (request ids are bookkeeping, not behavior). Used by
  /// the parallel replay engine's boundary reconciliation.
  [[nodiscard]] bool same_state(const PendingBuffers& other) const;

 private:
  std::optional<BusMessage> request_;
  FixedQueue<BusMessage> pwb_;
  /// True when a write-back should win the next tie.
  bool prefer_writeback_ = false;
};

}  // namespace psllc::bus

#endif  // PSLLC_BUS_PENDING_BUFFERS_H_
