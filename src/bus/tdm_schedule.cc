#include "bus/tdm_schedule.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace psllc::bus {

TdmSchedule TdmSchedule::one_slot(int num_cores, Cycle slot_width) {
  PSLLC_CONFIG_CHECK(num_cores > 0, "need >=1 core, got " << num_cores);
  std::vector<CoreId> slots;
  slots.reserve(static_cast<std::size_t>(num_cores));
  for (int c = 0; c < num_cores; ++c) {
    slots.emplace_back(c);
  }
  return TdmSchedule(std::move(slots), slot_width);
}

TdmSchedule TdmSchedule::from_slots(std::vector<CoreId> slots,
                                    Cycle slot_width) {
  return TdmSchedule(std::move(slots), slot_width);
}

TdmSchedule TdmSchedule::weighted(const std::vector<int>& weights,
                                  Cycle slot_width) {
  std::vector<CoreId> slots;
  for (std::size_t c = 0; c < weights.size(); ++c) {
    PSLLC_CONFIG_CHECK(weights[c] > 0, "weight of core " << c
                                                         << " must be >=1");
    for (int k = 0; k < weights[c]; ++k) {
      slots.emplace_back(static_cast<int>(c));
    }
  }
  return TdmSchedule(std::move(slots), slot_width);
}

TdmSchedule::TdmSchedule(std::vector<CoreId> slots, Cycle slot_width)
    : slots_(std::move(slots)), slot_width_(slot_width) {
  PSLLC_CONFIG_CHECK(slot_width_ > 0, "slot width must be positive");
  PSLLC_CONFIG_CHECK(!slots_.empty(), "schedule needs at least one slot");
  int max_id = -1;
  for (CoreId c : slots_) {
    PSLLC_CONFIG_CHECK(c.valid(), "schedule contains an invalid core id");
    max_id = std::max(max_id, c.value);
  }
  num_cores_ = max_id + 1;
  std::vector<int> count(static_cast<std::size_t>(num_cores_), 0);
  for (CoreId c : slots_) {
    ++count[static_cast<std::size_t>(c.value)];
  }
  for (int c = 0; c < num_cores_; ++c) {
    PSLLC_CONFIG_CHECK(count[static_cast<std::size_t>(c)] > 0,
                       "core " << c << " owns no slot");
  }
}

bool TdmSchedule::is_one_slot_tdm() const {
  return slots_per_period() == num_cores_;
}

CoreId TdmSchedule::owner_of_slot(std::int64_t slot_index) const {
  PSLLC_ASSERT(slot_index >= 0, "negative slot index");
  return slots_[static_cast<std::size_t>(
      slot_index % static_cast<std::int64_t>(slots_.size()))];
}

std::int64_t TdmSchedule::slot_at(Cycle cycle) const {
  PSLLC_ASSERT(cycle >= 0, "negative cycle");
  return cycle / slot_width_;
}

Cycle TdmSchedule::slot_start(std::int64_t slot_index) const {
  PSLLC_ASSERT(slot_index >= 0, "negative slot index");
  return slot_index * slot_width_;
}

std::int64_t TdmSchedule::next_slot_of(CoreId core,
                                       std::int64_t from_slot) const {
  PSLLC_ASSERT(core.valid() && core.value < num_cores_,
               "unknown core " << core.value);
  for (std::int64_t s = from_slot;
       s < from_slot + static_cast<std::int64_t>(slots_.size()); ++s) {
    if (owner_of_slot(s) == core) {
      return s;
    }
  }
  PSLLC_ASSERT(false, "core " << core.value << " not found in one period");
  return -1;
}

int TdmSchedule::position_of(CoreId core) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i] == core) {
      return static_cast<int>(i);
    }
  }
  PSLLC_ASSERT(false, "core " << core.value << " not in schedule");
  return -1;
}

int TdmSchedule::distance(CoreId from, CoreId to) const {
  PSLLC_ASSERT(is_one_slot_tdm(),
               "Definition 4.2 distance requires a 1S-TDM schedule");
  const int n = slots_per_period();
  const int pos_from = position_of(from);
  const int pos_to = position_of(to);
  // Slots strictly after pos_from until and including to's next slot.
  const int dist = (pos_to - pos_from + n - 1) % n + 1;
  PSLLC_AUDIT(dist >= 1 && dist <= n,
              "Definition 4.2 distance " << dist << " outside [1, " << n
                                         << "]");
  return dist;
}

int TdmSchedule::sharer_distance(CoreId from, CoreId to,
                                 const std::vector<CoreId>& sharers) const {
  PSLLC_ASSERT(is_one_slot_tdm(),
               "sharer distance requires a 1S-TDM schedule");
  // Rank the sharers by their slot position.
  std::vector<std::pair<int, CoreId>> ranked;
  ranked.reserve(sharers.size());
  for (CoreId c : sharers) {
    ranked.emplace_back(position_of(c), c);
  }
  std::sort(ranked.begin(), ranked.end());
  const int n = static_cast<int>(ranked.size());
  int rank_from = -1;
  int rank_to = -1;
  for (int i = 0; i < n; ++i) {
    if (ranked[static_cast<std::size_t>(i)].second == from) {
      rank_from = i;
    }
    if (ranked[static_cast<std::size_t>(i)].second == to) {
      rank_to = i;
    }
  }
  PSLLC_ASSERT(rank_from >= 0, "core " << from.value << " not a sharer");
  PSLLC_ASSERT(rank_to >= 0, "core " << to.value << " not a sharer");
  const int dist = (rank_to - rank_from + n - 1) % n + 1;
  PSLLC_AUDIT(dist >= 1 && dist <= n, "sharer distance " << dist
                                          << " outside [1, " << n << "]");
  return dist;
}

std::string TdmSchedule::to_string() const {
  std::ostringstream oss;
  oss << "{";
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i != 0) {
      oss << ", ";
    }
    oss << psllc::to_string(slots_[i]);
  }
  oss << "} x " << slot_width_ << " cycles";
  return oss.str();
}

}  // namespace psllc::bus
