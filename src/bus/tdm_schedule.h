// TDM bus schedules and the paper's distance calculus.
//
// A schedule is a cyclic sequence of slots, each owned by one core. The
// paper's Definition 4.1 (1S-TDM) requires exactly one slot per core per
// period; Definition 4.2 defines the *distance* between cores used
// throughout the WCL analysis, and Corollary 4.3 bounds it to [1, N].
// General (non-1S) schedules are representable so the unbounded-WCL scenario
// of Section 4.1 can be simulated.
#ifndef PSLLC_BUS_TDM_SCHEDULE_H_
#define PSLLC_BUS_TDM_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace psllc::bus {

class TdmSchedule {
 public:
  /// Builds the canonical 1S-TDM schedule {c0, c1, ..., c(N-1)}.
  static TdmSchedule one_slot(int num_cores, Cycle slot_width);

  /// Builds an arbitrary schedule from an explicit slot->core assignment.
  /// Cores are numbered densely from 0; every core in [0, max_id] must own
  /// at least one slot (throws ConfigError otherwise).
  static TdmSchedule from_slots(std::vector<CoreId> slots, Cycle slot_width);

  /// Builds a weighted schedule, e.g. weights {1, 2} -> {c0, c1, c1}.
  static TdmSchedule weighted(const std::vector<int>& weights,
                              Cycle slot_width);

  [[nodiscard]] Cycle slot_width() const { return slot_width_; }
  [[nodiscard]] int slots_per_period() const {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] Cycle period_cycles() const {
    return slot_width_ * slots_per_period();
  }
  [[nodiscard]] int num_cores() const { return num_cores_; }

  /// Definition 4.1: exactly one slot per core per period.
  [[nodiscard]] bool is_one_slot_tdm() const;

  /// Owner of the (global, 0-based) slot index.
  [[nodiscard]] CoreId owner_of_slot(std::int64_t slot_index) const;

  /// Global index of the slot containing `cycle`.
  [[nodiscard]] std::int64_t slot_at(Cycle cycle) const;

  /// First cycle of global slot `slot_index`.
  [[nodiscard]] Cycle slot_start(std::int64_t slot_index) const;

  /// First global slot index >= `from_slot` owned by `core`.
  [[nodiscard]] std::int64_t next_slot_of(CoreId core,
                                          std::int64_t from_slot) const;

  /// Definition 4.2 — number of slots between the start of `from`'s slot and
  /// the start of `to`'s next slot. Requires a 1S-TDM schedule. Satisfies
  /// Corollary 4.3: 1 <= distance <= N (distance(c, c) == N).
  [[nodiscard]] int distance(CoreId from, CoreId to) const;

  /// Distance restricted to a subset of cores sharing a partition: the rank
  /// of `to`'s next slot among the sharers' slots after `from`'s slot. Used
  /// by the analysis when n < N cores share a partition (ranges in [1, n]).
  [[nodiscard]] int sharer_distance(CoreId from, CoreId to,
                                    const std::vector<CoreId>& sharers) const;

  /// Position of the core's (first) slot within the period.
  [[nodiscard]] int position_of(CoreId core) const;

  [[nodiscard]] const std::vector<CoreId>& slots() const { return slots_; }
  [[nodiscard]] std::string to_string() const;

 private:
  TdmSchedule(std::vector<CoreId> slots, Cycle slot_width);

  std::vector<CoreId> slots_;
  Cycle slot_width_;
  int num_cores_;
};

}  // namespace psllc::bus

#endif  // PSLLC_BUS_TDM_SCHEDULE_H_
