#include "common/assert.h"

#include <sstream>

namespace psllc::detail {

void assertion_failed(const char* expr, const char* file, int line,
                      const std::string& message) {
  std::ostringstream oss;
  oss << "PSLLC_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw AssertionError(oss.str());
}

}  // namespace psllc::detail
