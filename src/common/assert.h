// Always-on invariant checking for the simulator.
//
// Simulation correctness bugs silently corrupt measured latencies, so the
// model checks its invariants in every build type. `PSLLC_ASSERT` is for
// internal invariants (model bugs); configuration errors raised on behalf of
// the user throw `psllc::ConfigError` instead (see check.h usage pattern).
#ifndef PSLLC_COMMON_ASSERT_H_
#define PSLLC_COMMON_ASSERT_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace psllc {

/// Thrown when a user-supplied configuration is invalid.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown by PSLLC_ASSERT on internal invariant violation. Tests for failure
/// injection catch this type.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace psllc

/// Always-on assertion with streamed context:
///   PSLLC_ASSERT(x < n, "way index " << x << " out of range " << n);
#define PSLLC_ASSERT(cond, ...)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream psllc_assert_oss_;                              \
      psllc_assert_oss_ << __VA_ARGS__;                                  \
      ::psllc::detail::assertion_failed(#cond, __FILE__, __LINE__,       \
                                        psllc_assert_oss_.str());        \
    }                                                                    \
  } while (false)

/// Configuration validation helper: throws ConfigError with message.
#define PSLLC_CONFIG_CHECK(cond, ...)                    \
  do {                                                   \
    if (!(cond)) {                                       \
      std::ostringstream psllc_cfg_oss_;                 \
      psllc_cfg_oss_ << __VA_ARGS__;                     \
      throw ::psllc::ConfigError(psllc_cfg_oss_.str());  \
    }                                                    \
  } while (false)

#endif  // PSLLC_COMMON_ASSERT_H_
