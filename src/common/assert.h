// Invariant checking for the simulator.
//
// Simulation correctness bugs silently corrupt measured latencies, so the
// model checks its invariants in every build type. `PSLLC_ASSERT` is for
// internal invariants (model bugs); configuration errors raised on behalf of
// the user throw `psllc::ConfigError` instead (see check.h usage pattern).
// `PSLLC_AUDIT` is the third tier: hot-path contracts too expensive for
// release builds (per-request partition containment, per-slot schedule
// bounds). Audits compile to nothing unless the build defines
// PSLLC_AUDIT_ENABLED (the `audit` preset / -DPSLLC_AUDIT=ON), where they
// behave exactly like PSLLC_ASSERT.
#ifndef PSLLC_COMMON_ASSERT_H_
#define PSLLC_COMMON_ASSERT_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace psllc {

/// Thrown when a user-supplied configuration is invalid.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown by PSLLC_ASSERT on internal invariant violation. Tests for failure
/// injection catch this type.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& message);
}  // namespace detail

/// True when this build evaluates PSLLC_AUDIT checks (the `audit` preset).
[[nodiscard]] constexpr bool audit_enabled() {
#ifdef PSLLC_AUDIT_ENABLED
  return true;
#else
  return false;
#endif
}

}  // namespace psllc

/// Always-on assertion with streamed context:
///   PSLLC_ASSERT(x < n, "way index " << x << " out of range " << n);
#define PSLLC_ASSERT(cond, ...)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream psllc_assert_oss_;                              \
      psllc_assert_oss_ << __VA_ARGS__;                                  \
      ::psllc::detail::assertion_failed(#cond, __FILE__, __LINE__,       \
                                        psllc_assert_oss_.str());        \
    }                                                                    \
  } while (false)

/// Audit-tier contract: like PSLLC_ASSERT, but only evaluated when the build
/// defines PSLLC_AUDIT_ENABLED. In other builds the condition and message
/// are parsed (so they cannot rot) yet never evaluated, and the whole check
/// folds away.
#ifdef PSLLC_AUDIT_ENABLED
#define PSLLC_AUDIT(cond, ...) PSLLC_ASSERT(cond, __VA_ARGS__)
#else
#define PSLLC_AUDIT(cond, ...)                    \
  do {                                            \
    if (false) {                                  \
      (void)(cond);                               \
      std::ostringstream psllc_audit_oss_;        \
      psllc_audit_oss_ << __VA_ARGS__;            \
    }                                             \
  } while (false)
#endif

/// Configuration validation helper: throws ConfigError with message.
#define PSLLC_CONFIG_CHECK(cond, ...)                    \
  do {                                                   \
    if (!(cond)) {                                       \
      std::ostringstream psllc_cfg_oss_;                 \
      psllc_cfg_oss_ << __VA_ARGS__;                     \
      throw ::psllc::ConfigError(psllc_cfg_oss_.str());  \
    }                                                    \
  } while (false)

#endif  // PSLLC_COMMON_ASSERT_H_
