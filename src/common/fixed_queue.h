// Bounded FIFO queue backed by a ring buffer.
//
// Models hardware queues (pending write-back buffers, set-sequencer queues)
// whose capacity is a physical resource: exceeding it is a model invariant
// violation, checked by PSLLC_ASSERT rather than silently growing.
#ifndef PSLLC_COMMON_FIXED_QUEUE_H_
#define PSLLC_COMMON_FIXED_QUEUE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace psllc {

template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(int capacity)
      : slots_(static_cast<std::size_t>(capacity)) {
    PSLLC_ASSERT(capacity > 0, "queue capacity must be positive");
  }

  [[nodiscard]] int capacity() const {
    return static_cast<int>(slots_.size());
  }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == capacity(); }

  /// Enqueues at the tail. Precondition: !full().
  void push(T value) {
    PSLLC_ASSERT(!full(), "push to full queue (capacity " << capacity() << ")");
    slots_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
  }

  /// Dequeues from the head. Precondition: !empty().
  T pop() {
    PSLLC_ASSERT(!empty(), "pop from empty queue");
    T value = std::move(slots_[head_]);
    head_ = next(head_);
    --size_;
    return value;
  }

  /// Head element without removing it. Precondition: !empty().
  [[nodiscard]] const T& front() const {
    PSLLC_ASSERT(!empty(), "front of empty queue");
    return slots_[head_];
  }

  [[nodiscard]] T& front() {
    PSLLC_ASSERT(!empty(), "front of empty queue");
    return slots_[head_];
  }

  /// Element at FIFO position i (0 == head). Precondition: i < size().
  [[nodiscard]] const T& at(int i) const {
    PSLLC_ASSERT(i >= 0 && i < size_, "queue index " << i << " size " << size_);
    return slots_[(head_ + static_cast<std::size_t>(i)) % slots_.size()];
  }

  /// Mutable element at FIFO position i. Precondition: i < size().
  [[nodiscard]] T& at_mut(int i) {
    PSLLC_ASSERT(i >= 0 && i < size_, "queue index " << i << " size " << size_);
    return slots_[(head_ + static_cast<std::size_t>(i)) % slots_.size()];
  }

  /// Removes the element at FIFO position i, preserving order of the rest.
  /// Models a CAM-style invalidate+compact; O(size).
  void erase_at(int i) {
    PSLLC_ASSERT(i >= 0 && i < size_, "queue index " << i << " size " << size_);
    for (int j = i; j + 1 < size_; ++j) {
      slots_[(head_ + static_cast<std::size_t>(j)) % slots_.size()] =
          std::move(slots_[(head_ + static_cast<std::size_t>(j) + 1) %
                           slots_.size()]);
    }
    tail_ = (head_ + static_cast<std::size_t>(size_) - 1) % slots_.size();
    --size_;
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

  /// First FIFO position whose element satisfies `pred`, or -1.
  template <typename Pred>
  [[nodiscard]] int find_if(Pred pred) const {
    for (int i = 0; i < size_; ++i) {
      if (pred(at(i))) {
        return i;
      }
    }
    return -1;
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const {
    return (i + 1) % slots_.size();
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  int size_ = 0;
};

}  // namespace psllc

#endif  // PSLLC_COMMON_FIXED_QUEUE_H_
