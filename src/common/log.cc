#include "common/log.h"

#include <cstdio>
#include <utility>

namespace psllc {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() = default;

Logger::Sink Logger::set_sink(Sink sink) {
  Sink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (sink_) {
    sink_(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
}

}  // namespace psllc
