// Minimal leveled logger.
//
// The simulator logs slot-by-slot traces at kTrace which tests use to replay
// the paper's figures; benches run at kWarn to keep output clean. The logger
// is a process-wide singleton guarded for single-threaded simulation use
// (the simulator itself is deterministic and single-threaded).
#ifndef PSLLC_COMMON_LOG_H_
#define PSLLC_COMMON_LOG_H_

#include <functional>
#include <sstream>
#include <string>

namespace psllc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* to_string(LogLevel level);

/// Process-wide logging configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Replaces the output sink (default: stderr). Pass nullptr to restore the
  /// default. Returns the previous sink so tests can scope their capture.
  Sink set_sink(Sink sink);

  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

}  // namespace psllc

#define PSLLC_LOG(level, ...)                                      \
  do {                                                             \
    if (::psllc::Logger::instance().enabled(level)) {              \
      std::ostringstream psllc_log_oss_;                           \
      psllc_log_oss_ << __VA_ARGS__;                               \
      ::psllc::Logger::instance().write(level, psllc_log_oss_.str()); \
    }                                                              \
  } while (false)

#define PSLLC_TRACE(...) PSLLC_LOG(::psllc::LogLevel::kTrace, __VA_ARGS__)
#define PSLLC_DEBUG(...) PSLLC_LOG(::psllc::LogLevel::kDebug, __VA_ARGS__)
#define PSLLC_INFO(...) PSLLC_LOG(::psllc::LogLevel::kInfo, __VA_ARGS__)
#define PSLLC_WARN(...) PSLLC_LOG(::psllc::LogLevel::kWarn, __VA_ARGS__)
#define PSLLC_ERROR(...) PSLLC_LOG(::psllc::LogLevel::kError, __VA_ARGS__)

#endif  // PSLLC_COMMON_LOG_H_
