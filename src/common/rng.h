// Deterministic pseudo-random number generation for workload synthesis.
//
// Experiments must be exactly reproducible across machines and standard
// library versions, so we ship our own generators instead of relying on
// std::mt19937 + distribution implementations (whose outputs are not
// portable for all distributions):
//   * SplitMix64 — seeding / hashing stage.
//   * Xoshiro256** — main stream generator (Blackman & Vigna).
#ifndef PSLLC_COMMON_RNG_H_
#define PSLLC_COMMON_RNG_H_

#include <array>
#include <cstdint>

#include "common/assert.h"

namespace psllc {

/// SplitMix64: tiny, fast, used to expand a 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 — all-purpose 64-bit generator with 2^256-1 period.
class Rng {
 public:
  /// Seeds the stream deterministically from a single 64-bit seed.
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) {
      word = sm.next();
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    PSLLC_ASSERT(bound > 0, "next_below requires positive bound");
    // Rejection sampling on the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    PSLLC_ASSERT(lo <= hi, "next_in_range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Two generators are equal iff they will produce the same stream —
  /// exactly the state identity the parallel-replay reconciliation needs.
  [[nodiscard]] bool operator==(const Rng&) const = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable 64-bit mix of several seed components (e.g. {base_seed, core,
/// address_range}) so every (experiment, core) pair gets an independent
/// stream.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t a,
                                               std::uint64_t b = 0,
                                               std::uint64_t c = 0) {
  SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                (c * 0xd1b54a32d192ed03ULL));
  return sm.next();
}

}  // namespace psllc

#endif  // PSLLC_COMMON_RNG_H_
