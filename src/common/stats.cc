#include "common/stats.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace psllc {

void Summary::add(std::int64_t sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void Summary::reset() { *this = Summary{}; }

std::int64_t Summary::min() const {
  PSLLC_ASSERT(count_ > 0, "min() on empty summary");
  return min_;
}

std::int64_t Summary::max() const {
  PSLLC_ASSERT(count_ > 0, "max() on empty summary");
  return max_;
}

double Summary::mean() const {
  PSLLC_ASSERT(count_ > 0, "mean() on empty summary");
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

Histogram::Histogram(std::int64_t upper, int buckets)
    : upper_(upper), width_((upper + buckets - 1) / buckets) {
  PSLLC_ASSERT(upper > 0, "histogram upper bound must be positive");
  PSLLC_ASSERT(buckets > 0, "histogram needs at least one bucket");
  counts_.assign(static_cast<std::size_t>(buckets) + 1, 0);
}

void Histogram::add(std::int64_t sample) {
  summary_.add(sample);
  if (sample < 0) {
    sample = 0;
  }
  std::size_t idx = (sample >= upper_)
                        ? counts_.size() - 1
                        : static_cast<std::size_t>(sample / width_);
  ++counts_[idx];
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  summary_.reset();
}

std::int64_t Histogram::bucket(int i) const {
  PSLLC_ASSERT(i >= 0 && i < bucket_count(), "bucket index " << i);
  return counts_[static_cast<std::size_t>(i)];
}

std::int64_t Histogram::bucket_lo(int i) const {
  PSLLC_ASSERT(i >= 0 && i < bucket_count(), "bucket index " << i);
  if (i == bucket_count() - 1) {
    return upper_;
  }
  return width_ * i;
}

std::int64_t Histogram::bucket_hi(int i) const {
  PSLLC_ASSERT(i >= 0 && i < bucket_count(), "bucket index " << i);
  if (i == bucket_count() - 1) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return width_ * (i + 1);
}

std::int64_t Histogram::approx_quantile(double q) const {
  PSLLC_ASSERT(q > 0.0 && q <= 1.0, "quantile must be in (0,1], got " << q);
  const std::int64_t total = summary_.count();
  PSLLC_ASSERT(total > 0, "quantile on empty histogram");
  const auto target = static_cast<std::int64_t>(q * static_cast<double>(total));
  std::int64_t seen = 0;
  for (int i = 0; i < bucket_count(); ++i) {
    seen += bucket(i);
    if (seen >= target) {
      return bucket_hi(i) == std::numeric_limits<std::int64_t>::max()
                 ? summary_.max()
                 : bucket_hi(i) - 1;
    }
  }
  return summary_.max();
}

std::string Histogram::to_ascii(int width) const {
  std::ostringstream oss;
  std::int64_t peak = 1;
  for (int i = 0; i < bucket_count(); ++i) {
    peak = std::max(peak, bucket(i));
  }
  for (int i = 0; i < bucket_count(); ++i) {
    if (bucket(i) == 0) {
      continue;
    }
    const auto bar =
        static_cast<int>(bucket(i) * width / peak);
    oss << '[' << bucket_lo(i) << ", ";
    if (i == bucket_count() - 1) {
      oss << "inf";
    } else {
      oss << bucket_hi(i);
    }
    oss << ") " << std::string(static_cast<std::size_t>(std::max(bar, 1)), '#')
        << ' ' << bucket(i) << '\n';
  }
  return oss.str();
}

}  // namespace psllc
