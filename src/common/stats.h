// Lightweight statistics gathered during simulation: counters, running
// summaries (min/max/mean), and fixed-bucket histograms used for latency
// distributions in benches and examples.
#ifndef PSLLC_COMMON_STATS_H_
#define PSLLC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.h"

namespace psllc {

/// Running summary of a stream of int64 samples.
class Summary {
 public:
  void add(std::int64_t sample);
  void merge(const Summary& other);
  void reset();

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const;
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const;

  [[nodiscard]] bool operator==(const Summary&) const = default;

 private:
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Histogram over [0, upper) with `buckets` equal-width buckets plus an
/// overflow bucket. Also retains an exact Summary.
class Histogram {
 public:
  Histogram(std::int64_t upper, int buckets);

  void add(std::int64_t sample);
  void reset();

  [[nodiscard]] const Summary& summary() const { return summary_; }
  [[nodiscard]] int bucket_count() const {
    return static_cast<int>(counts_.size());
  }
  /// Count in bucket `i`; the last bucket is the overflow bucket.
  [[nodiscard]] std::int64_t bucket(int i) const;
  /// Inclusive lower bound of bucket `i`.
  [[nodiscard]] std::int64_t bucket_lo(int i) const;
  /// Exclusive upper bound of bucket `i` (INT64_MAX for overflow bucket).
  [[nodiscard]] std::int64_t bucket_hi(int i) const;

  /// Smallest sample value `v` such that at least `q` (0..1] of the samples
  /// are <= bucket containing v. Approximate (bucket resolution).
  [[nodiscard]] std::int64_t approx_quantile(double q) const;

  /// Multi-line ASCII rendering, for example tools.
  [[nodiscard]] std::string to_ascii(int width = 50) const;

 private:
  std::int64_t upper_;
  std::int64_t width_;
  std::vector<std::int64_t> counts_;
  Summary summary_;
};

}  // namespace psllc

#endif  // PSLLC_COMMON_STATS_H_
