#include "common/string_util.h"

#include <cctype>
#include <charconv>

namespace psllc {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  int base = 10;
  if (starts_with(text, "0x") || starts_with(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
    if (text.empty()) {
      return std::nullopt;
    }
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return std::nullopt;
  }
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace psllc
