// Small string helpers for trace parsing and config notation parsing.
#ifndef PSLLC_COMMON_STRING_UTIL_H_
#define PSLLC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace psllc {

/// Splits on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Parses a decimal or 0x-prefixed hexadecimal unsigned integer.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Parses a signed decimal integer.
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view text);

/// Case-insensitive ASCII comparison.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace psllc

#endif  // PSLLC_COMMON_STRING_UTIL_H_
