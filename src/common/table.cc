#include "common/table.h"

#include <iomanip>
#include <sstream>
#include <utility>

#include "common/assert.h"

namespace psllc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PSLLC_ASSERT(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PSLLC_ASSERT(cells.size() == header_.size(),
               "row has " << cells.size() << " cells, expected "
                          << header_.size());
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(int i) const {
  PSLLC_ASSERT(i >= 0 && i < num_rows(), "row index " << i);
  return rows_[static_cast<std::size_t>(i)];
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c == 0) {
        oss << std::left << std::setw(static_cast<int>(widths[c]))
            << cells[c];
      } else {
        oss << "  " << std::right << std::setw(static_cast<int>(widths[c]))
            << cells[c];
      }
    }
    oss << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) {
    total += w + 2;
  }
  oss << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
  return oss.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        oss << ',';
      }
      oss << csv_escape(cells[c]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return oss.str();
}

std::string format_double(double v, int digits) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(digits) << v;
  return oss.str();
}

std::string format_cycles(std::int64_t cycles) {
  const bool negative = cycles < 0;
  std::string digits = std::to_string(negative ? -cycles : cycles);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  if (negative) {
    out.push_back('-');
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace psllc
