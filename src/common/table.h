// Aligned-text and CSV table rendering used by the benchmark harnesses to
// print the same rows/series the paper's figures report.
#ifndef PSLLC_COMMON_TABLE_H_
#define PSLLC_COMMON_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace psllc {

/// A simple column-oriented table: set a header, append rows of cells, then
/// render as aligned text (stdout) or CSV (machine-readable artifacts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] int num_rows() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] int num_cols() const {
    return static_cast<int>(header_.size());
  }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row(int i) const;

  /// Renders with space padding; columns right-aligned except the first.
  [[nodiscard]] std::string to_text() const;
  /// RFC-4180-ish CSV (cells containing comma/quote/newline are quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals (fixed notation).
[[nodiscard]] std::string format_double(double v, int digits = 2);

/// Formats cycles with thousands separators for readability, e.g. 979,250.
[[nodiscard]] std::string format_cycles(std::int64_t cycles);

}  // namespace psllc

#endif  // PSLLC_COMMON_TABLE_H_
