// Fundamental value types shared by every psllc subsystem.
//
// The simulator measures time in *cycles* (signed 64-bit, see C++ Core
// Guidelines ES.102: use signed types for arithmetic) and identifies
// hardware agents with small integer ids wrapped in distinct structs so the
// compiler rejects accidental mixing (e.g. passing a way index where a core
// id is expected).
#ifndef PSLLC_COMMON_TYPES_H_
#define PSLLC_COMMON_TYPES_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace psllc {

/// Simulation time in clock cycles.
using Cycle = std::int64_t;

/// Sentinel for "no cycle" / "not yet happened".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::min();

/// A byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// A cache-line-granular address: `Addr >> log2(line_size)`.
using LineAddr = std::uint64_t;

/// Identifies a core (0-based). Wrapped so it cannot be confused with set or
/// way indices in call sites.
struct CoreId {
  int value = -1;

  constexpr CoreId() = default;
  constexpr explicit CoreId(int v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value >= 0; }
  constexpr auto operator<=>(const CoreId&) const = default;
};

/// Sentinel core id meaning "no core".
inline constexpr CoreId kNoCore{};

/// Returns a printable form, e.g. "c2" (or "c?" for the sentinel).
[[nodiscard]] inline std::string to_string(CoreId c) {
  return c.valid() ? "c" + std::to_string(c.value) : "c?";
}

/// Memory operation kind as seen by a core's load/store unit.
enum class AccessType : std::uint8_t {
  kRead,    ///< data load
  kWrite,   ///< data store (write-allocate)
  kIfetch,  ///< instruction fetch (read-only, goes through L1I)
};

[[nodiscard]] constexpr const char* to_string(AccessType t) {
  switch (t) {
    case AccessType::kRead: return "R";
    case AccessType::kWrite: return "W";
    case AccessType::kIfetch: return "I";
  }
  return "?";
}

/// True if the access may mark a cache line dirty.
[[nodiscard]] constexpr bool is_write(AccessType t) {
  return t == AccessType::kWrite;
}

/// Returns true iff `v` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two. Precondition: is_pow2(v).
[[nodiscard]] constexpr int log2_exact(std::uint64_t v) {
  int n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

}  // namespace psllc

template <>
struct std::hash<psllc::CoreId> {
  std::size_t operator()(const psllc::CoreId& c) const noexcept {
    return std::hash<int>{}(c.value);
  }
};

#endif  // PSLLC_COMMON_TYPES_H_
