#include "core/critical_instance.h"

#include "common/assert.h"

namespace psllc::core {

namespace {

/// Byte address of line-granular address `line` for the default 64 B lines.
Addr addr_of_line(LineAddr line) { return line * 64; }

SystemConfig scenario_base_config() {
  SystemConfig config;
  config.num_cores = 4;
  config.slot_width = kPaperSlotWidth;
  config.keep_request_records = true;
  return config;
}

}  // namespace

UnboundedScenario make_unbounded_scenario(llc::ContentionMode mode,
                                          bool one_slot_tdm,
                                          int interferer_accesses) {
  PSLLC_CONFIG_CHECK(interferer_accesses > 2, "need a miss stream");
  SystemConfig config = scenario_base_config();
  config.num_cores = 2;
  config.mode = mode;
  if (!one_slot_tdm) {
    // The paper's Figure 2 schedule: one slot for cua, two for ci.
    config.schedule_slots = {CoreId{0}, CoreId{1}, CoreId{1}};
  }
  // Both cores share a single-set, two-way partition: every access
  // conflicts.
  llc::PartitionMap partitions = llc::make_shared_partition(
      config.llc.geometry, {CoreId{0}, CoreId{1}}, /*num_sets=*/1,
      /*num_ways=*/2);

  UnboundedScenario scenario;
  scenario.system = std::make_unique<System>(config, std::move(partitions));

  // cua: one request to X, delayed so the interferer has filled both
  // partition ways first (the figure's precondition: set_LLC(X) is full
  // with ci's lines). The interferer streams distinct lines, all mapping to
  // the single partition set, so each access misses everywhere, evicts (the
  // victims are its own recent lines), and re-occupies freed entries within
  // its extra slot.
  const LineAddr x = 0x100000;
  scenario.system->set_trace(scenario.cua,
                             Trace{MemOp{addr_of_line(x), AccessType::kRead,
                                         /*gap=*/289}});
  Trace interferer_trace;
  interferer_trace.reserve(static_cast<std::size_t>(interferer_accesses));
  for (int i = 0; i < interferer_accesses; ++i) {
    interferer_trace.push_back(
        MemOp{addr_of_line(0x200000 + static_cast<LineAddr>(i))});
  }
  scenario.system->set_trace(scenario.interferer, std::move(interferer_trace));
  return scenario;
}

Fig3Scenario make_fig3_scenario() {
  SystemConfig config = scenario_base_config();
  config.mode = llc::ContentionMode::kBestEffort;  // the analysis setting
  llc::PartitionMap partitions = llc::make_shared_partition(
      config.llc.geometry,
      {CoreId{0}, CoreId{1}, CoreId{2}, CoreId{3}},
      /*num_sets=*/1, /*num_ways=*/2);

  Fig3Scenario scenario;
  scenario.system = std::make_unique<System>(config, std::move(partitions));
  scenario.l1 = 0x10;
  scenario.l2 = 0x11;
  scenario.x = 0x12;
  scenario.y = 0x13;
  scenario.z = 0x14;

  // Initial state (figure): both ways of set_LLC(X) privately cached by c3;
  // preload order makes l1 the LRU victim.
  scenario.system->preload_owned_line(scenario.c3, scenario.l1);
  scenario.system->preload_owned_line(scenario.c3, scenario.l2);

  // cua's request issues at cycle 11 (L1+L2 tag checks) and is first
  // presented in its second slot — the figure's s_t is sim slot 4. c4's
  // Req Y is delayed (gap) so it reaches the bus in its slot of the same
  // period, *after* c3's freeing write-back, exactly as in the figure.
  scenario.system->set_trace(scenario.cua,
                             Trace{MemOp{addr_of_line(scenario.x)}});
  scenario.system->set_trace(
      scenario.c4, Trace{MemOp{addr_of_line(scenario.y), AccessType::kRead,
                               /*gap=*/289},
                         MemOp{addr_of_line(scenario.z)}});
  scenario.lead_in_slots = 4;
  // 13 slots of service latency: presented at slot 4, response at the end
  // of slot 16.
  scenario.expected_completion = 13 * config.slot_width;
  return scenario;
}

Fig4Scenario make_fig4_scenario() {
  SystemConfig config = scenario_base_config();
  config.mode = llc::ContentionMode::kBestEffort;
  llc::PartitionMap partitions = llc::make_shared_partition(
      config.llc.geometry,
      {CoreId{0}, CoreId{1}, CoreId{2}, CoreId{3}},
      /*num_sets=*/2, /*num_ways=*/2);

  Fig4Scenario scenario;
  scenario.system = std::make_unique<System>(config, std::move(partitions));
  // Even lines map to partition set 0, odd to set 1.
  scenario.l1 = 0x20;  // set 0, owned by c4 (LRU victim)
  scenario.l2 = 0x22;  // set 0, owned by c4
  scenario.x = 0x24;   // set 0, requested by cua
  scenario.y = 0x26;   // set 0, requested by c2
  scenario.l = 0x21;   // set 1, owned by cua (LRU victim)
  scenario.m = 0x23;   // set 1, owned by c2 (fills the set)
  scenario.a = 0x25;   // set 1, requested by c3

  scenario.system->preload_owned_line(scenario.c4, scenario.l1);
  scenario.system->preload_owned_line(scenario.c4, scenario.l2);
  scenario.system->preload_owned_line(scenario.cua, scenario.l);
  scenario.system->preload_owned_line(scenario.c2, scenario.m);

  // Arrival order on the bus must match the figure: cua first (its slot 4),
  // then c2 (slot 5), then c3 (slot 6); the gaps delay c2/c3 past their
  // period-0 slots.
  scenario.system->set_trace(scenario.cua,
                             Trace{MemOp{addr_of_line(scenario.x)}});
  scenario.system->set_trace(
      scenario.c2, Trace{MemOp{addr_of_line(scenario.y), AccessType::kRead,
                               /*gap=*/150}});
  scenario.system->set_trace(
      scenario.c3, Trace{MemOp{addr_of_line(scenario.a), AccessType::kRead,
                               /*gap=*/200}});
  scenario.lead_in_slots = 4;
  // Presented at slot 4; cua's second slot (sim slot 8) is consumed by the
  // forced write-back of l; response at the end of sim slot 12 — 9 slots of
  // service latency.
  scenario.expected_completion = 9 * config.slot_width;
  return scenario;
}

}  // namespace psllc::core
