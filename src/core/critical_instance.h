// Constructors for the paper's adversarial scenarios, replayed exactly by
// integration tests and the unbounded-WCL bench:
//
//  * Figure 2 (Section 4.1): with a multi-slot TDM schedule ({cua, ci, ci})
//    and best-effort sharing, ci frees and re-occupies the conflicting
//    set's entry every period — cua's request never completes.
//  * Figure 3 (Section 4.3): 4 cores, 2-way shared set initially owned by
//    c3; cua's request completes in its 4th slot after the distance of both
//    ways decays (Observations 1/2).
//  * Figure 4 (Section 4.3): cua is forced to write back (c3's request
//    evicts cua's line) and c2 occupies the entry freed by c4 — the
//    distance increases (Observation 3).
#ifndef PSLLC_CORE_CRITICAL_INSTANCE_H_
#define PSLLC_CORE_CRITICAL_INSTANCE_H_

#include <memory>

#include "core/system.h"

namespace psllc::core {

/// Figure 2. `one_slot_tdm` false reproduces the unbounded scenario
/// ({cua, ci, ci}); true shows 1S-TDM bounds it. `mode` kBestEffort is the
/// paper's scenario; kSetSequencer shows FIFO ordering also prevents it.
struct UnboundedScenario {
  std::unique_ptr<System> system;
  CoreId cua{0};
  CoreId interferer{1};
};
UnboundedScenario make_unbounded_scenario(llc::ContentionMode mode,
                                          bool one_slot_tdm,
                                          int interferer_accesses = 4096);

/// Figure 3. Expected: cua's Req X completes at the end of its 4th
/// presented slot (13 slots = 650 cycles of service latency at the paper's
/// 50-cycle slots); intermediate LLC ownership states match the figure.
/// The figure's slot s_t is sim slot `lead_in_slots` (requests issue a few
/// cycles into slot 0 and are first presented one period later).
struct Fig3Scenario {
  std::unique_ptr<System> system;
  CoreId cua{0};
  CoreId c3{2};
  CoreId c4{3};
  LineAddr x = 0, y = 0, z = 0, l1 = 0, l2 = 0;
  Cycle expected_completion = 0;  ///< expected service latency (cycles)
  int lead_in_slots = 0;
};
Fig3Scenario make_fig3_scenario();

/// Figure 4. Expected: cua spends its second slot writing back `l` (evicted
/// by c3's request to A), c2 occupies the entry freed by c4's WB of l1
/// (distance increases 1 -> 3), and Req X completes at the end of cua's
/// third slot (450 cycles).
struct Fig4Scenario {
  std::unique_ptr<System> system;
  CoreId cua{0};
  CoreId c2{1};
  CoreId c3{2};
  CoreId c4{3};
  LineAddr x = 0, y = 0, a = 0, l1 = 0, l2 = 0, l = 0, m = 0;
  Cycle expected_completion = 0;  ///< expected service latency (cycles)
  int lead_in_slots = 0;
};
Fig4Scenario make_fig4_scenario();

}  // namespace psllc::core

#endif  // PSLLC_CORE_CRITICAL_INSTANCE_H_
