#include "core/distance_monitor.h"

#include "common/assert.h"

namespace psllc::core {

DistanceMonitor::DistanceMonitor(const System& system, CoreId cua)
    : system_(&system), cua_(cua) {
  PSLLC_ASSERT(cua.valid() && cua.value < system.config().num_cores,
               "bad cua " << cua.value);
}

std::vector<int> DistanceMonitor::snapshot() const {
  const llc::PartitionedLlc& llc = system_->llc();
  PSLLC_ASSERT(llc.has_pending_request(cua_), "snapshot without pending");
  const LineAddr line = llc.pending_line(cua_);
  const llc::SetKey key = llc.key_for(cua_, line);
  const llc::PartitionSpec& spec = llc.partitions().spec(key.partition);
  const std::vector<CoreId>& sharers = llc.partitions().sharers(key.partition);

  std::vector<int> distances;
  distances.reserve(static_cast<std::size_t>(spec.num_ways));
  for (int w = spec.first_way; w < spec.first_way + spec.num_ways; ++w) {
    const llc::PartitionedLlc::EntryView entry =
        llc.entry(key.physical_set, w);
    const std::size_t index = static_cast<std::size_t>(w - spec.first_way);
    int distance = 0;
    if (entry.valid) {
      // Owned line: distance of the core(s) privately caching it
      // (Definition 4.2, restricted to the partition sharers). A valid but
      // unowned line (voluntarily abandoned) counts as 0 — outside the
      // observations' model, any successor is legal.
      for (CoreId owner : entry.sharers) {
        distance = std::max(
            distance,
            system_->schedule().sharer_distance(owner, cua_, sharers));
      }
    } else if (previous_ && index < previous_->size()) {
      // Freed entry (back-invalidation completed): retain the evicted
      // owner's distance — the paper compares the occupant before the free
      // with the occupant after (Figure 4: l1 goes c4 -> freed -> c2, a
      // 1 -> 3 increase).
      distance = (*previous_)[index];
    }
    distances.push_back(distance);
  }
  return distances;
}

void DistanceMonitor::on_slot(const SlotEvent& event) {
  const bool cua_slot = event.owner == cua_;
  if (cua_slot && event.action == SlotEvent::Action::kWriteBack) {
    // Lemma 4.6 window opens: cua spent its slot writing back, so a core
    // with a larger distance may claim a free entry before cua's next slot.
    write_back_window_ = true;
  }

  const llc::PartitionedLlc& llc = system_->llc();
  if (!llc.has_pending_request(cua_)) {
    previous_.reset();
    write_back_window_ = false;
    return;
  }
  const LineAddr line = llc.pending_line(cua_);
  if (previous_ && line != observed_line_) {
    previous_.reset();  // new request, new window
    write_back_window_ = false;
  }
  observed_line_ = line;

  const std::vector<int> current = snapshot();
  if (previous_) {
    if (!write_back_window_) {
      ++windows_checked_;
    }
    for (std::size_t w = 0; w < current.size(); ++w) {
      const int before = (*previous_)[w];
      const int after = current[w];
      if (after > before && before > 0) {
        if (write_back_window_) {
          ++increases_after_writeback_;  // Observation 3 witness
        } else {
          const llc::SetKey key = llc.key_for(cua_, line);
          const llc::PartitionSpec& spec =
              llc.partitions().spec(key.partition);
          violations_.push_back(
              Violation{event.slot_start, key.physical_set,
                        spec.first_way + static_cast<int>(w), before, after});
        }
      }
    }
  }
  previous_ = current;
  // The write-back window extends until cua's next *request* slot: any
  // steal enabled by the write-back happens before cua can present again.
  if (cua_slot && event.action == SlotEvent::Action::kRequest) {
    write_back_window_ = false;
  }
}

}  // namespace psllc::core
