// Runtime checker for the paper's key observations (Section 4.3):
//
//  * Observation 1 / Lemma 4.4: while the core under analysis (cua) has a
//    pending request and performs no write-backs, the distance of the cores
//    caching the lines of the requested set never increases.
//  * Observation 3 / Lemma 4.6: after cua performs a write-back, distances
//    may increase (the monitor counts such witnessed increases instead of
//    flagging them).
//
// Distance of an LLC way = schedule distance (Definition 4.2, restricted to
// the partition's sharers) from the core privately caching the occupant to
// cua; ways that are free or whose occupant has no private copies count as
// distance 0 — an increase *from zero* is always legal (a fresh occupant
// may be anywhere in the schedule).
//
// Intended for data-disjoint workloads (as in the paper's evaluation): with
// read-sharing, a second sharer appearing on a line can raise the max
// distance without any eviction, which the observations do not model.
#ifndef PSLLC_CORE_DISTANCE_MONITOR_H_
#define PSLLC_CORE_DISTANCE_MONITOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"

namespace psllc::core {

class DistanceMonitor {
 public:
  struct Violation {
    Cycle slot_start = 0;
    int physical_set = -1;
    int way = -1;
    int distance_before = 0;
    int distance_after = 0;
  };

  /// Observes `cua`'s pending requests inside `system`. The system must
  /// outlive the monitor; attach with:
  ///   system.add_slot_observer([&m](const SlotEvent& e) { m.on_slot(e); });
  DistanceMonitor(const System& system, CoreId cua);

  void on_slot(const SlotEvent& event);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Number of cua-slot pairs compared under the no-write-back premise.
  [[nodiscard]] std::int64_t windows_checked() const {
    return windows_checked_;
  }
  /// Observation 3 witnesses: distance increases seen right after a cua
  /// write-back.
  [[nodiscard]] std::int64_t increases_after_writeback() const {
    return increases_after_writeback_;
  }

 private:
  /// Distances of all partition ways of cua's pending set. Freed entries
  /// retain the previous owner's distance (the paper compares occupants
  /// across the free); valid-but-unowned lines count 0.
  [[nodiscard]] std::vector<int> snapshot() const;

  const System* system_;
  CoreId cua_;
  std::optional<std::vector<int>> previous_;
  LineAddr observed_line_ = 0;
  bool write_back_window_ = false;
  std::vector<Violation> violations_;
  std::int64_t windows_checked_ = 0;
  std::int64_t increases_after_writeback_ = 0;
};

}  // namespace psllc::core

#endif  // PSLLC_CORE_DISTANCE_MONITOR_H_
