// A single memory operation of a core's trace.
#ifndef PSLLC_CORE_MEM_OP_H_
#define PSLLC_CORE_MEM_OP_H_

#include <vector>

#include "common/types.h"

namespace psllc::core {

/// One trace entry: an access to `addr`, issued `gap` cycles after the
/// previous access completed (compute/think time).
struct MemOp {
  Addr addr = 0;
  AccessType type = AccessType::kRead;
  Cycle gap = 0;
};

using Trace = std::vector<MemOp>;

}  // namespace psllc::core

#endif  // PSLLC_CORE_MEM_OP_H_
