#include "core/request_tracker.h"

#include <algorithm>

#include "common/assert.h"

namespace psllc::core {

RequestTracker::RequestTracker(int num_cores, bool keep_records)
    : keep_records_(keep_records),
      inflight_(static_cast<std::size_t>(num_cores)),
      service_(static_cast<std::size_t>(num_cores)),
      total_(static_cast<std::size_t>(num_cores)) {
  PSLLC_ASSERT(num_cores > 0, "tracker needs >=1 core");
}

std::uint64_t RequestTracker::begin(CoreId core, LineAddr line,
                                    AccessType access, Cycle issued) {
  PSLLC_ASSERT(core.valid() &&
                   core.value < static_cast<int>(inflight_.size()),
               "bad core " << core.value);
  auto& slot = inflight_[static_cast<std::size_t>(core.value)];
  PSLLC_ASSERT(!slot.has_value(),
               to_string(core) << " already has an in-flight request "
                                  "(one outstanding request per core)");
  RequestRecord record;
  record.id = next_id_++;
  record.core = core;
  record.line = line;
  record.access = access;
  record.issued = issued;
  slot = record;
  return record.id;
}

RequestRecord& RequestTracker::inflight_mut(std::uint64_t id) {
  for (auto& slot : inflight_) {
    if (slot && slot->id == id) {
      return *slot;
    }
  }
  PSLLC_ASSERT(false, "unknown in-flight request id " << id);
  // Unreachable; assertion_failed throws.
  return *inflight_.front();
}

void RequestTracker::on_presented(std::uint64_t id, Cycle slot_start) {
  RequestRecord& record = inflight_mut(id);
  if (record.first_presented == kNoCycle) {
    record.first_presented = slot_start;
  }
  ++record.presentations;
}

void RequestTracker::on_completed(std::uint64_t id, Cycle completion) {
  RequestRecord& record = inflight_mut(id);
  PSLLC_ASSERT(record.first_presented != kNoCycle,
               "request completed without ever being presented");
  record.completed = completion;
  const auto core = static_cast<std::size_t>(record.core.value);
  service_[core].add(record.service_latency());
  total_[core].add(record.total_latency());
  ++completed_count_;
  if (!worst_ || record.service_latency() > worst_->service_latency()) {
    worst_ = record;
  }
  if (keep_records_) {
    records_.push_back(record);
  }
  inflight_[core].reset();
}

void RequestTracker::on_writeback_sent(CoreId core) {
  auto& slot = inflight_[static_cast<std::size_t>(core.value)];
  if (slot) {
    ++slot->writebacks_during;
  }
}

bool RequestTracker::has_inflight(CoreId core) const {
  return inflight_[static_cast<std::size_t>(core.value)].has_value();
}

const RequestRecord& RequestTracker::inflight(CoreId core) const {
  const auto& slot = inflight_[static_cast<std::size_t>(core.value)];
  PSLLC_ASSERT(slot.has_value(), "no in-flight request for "
                                     << to_string(core));
  return *slot;
}

const Summary& RequestTracker::service_latency(CoreId core) const {
  return service_[static_cast<std::size_t>(core.value)];
}

const Summary& RequestTracker::total_latency(CoreId core) const {
  return total_[static_cast<std::size_t>(core.value)];
}

Cycle RequestTracker::max_service_latency() const {
  Cycle max = kNoCycle;
  for (const auto& summary : service_) {
    if (summary.count() > 0) {
      max = max == kNoCycle ? summary.max() : std::max(max, summary.max());
    }
  }
  return max;
}

const RequestRecord& RequestTracker::worst_request() const {
  PSLLC_ASSERT(worst_.has_value(), "no completed requests yet");
  return *worst_;
}

const std::vector<RequestRecord>& RequestTracker::records() const {
  PSLLC_ASSERT(keep_records_, "tracker built without keep_records");
  return records_;
}

namespace {

/// Field-wise record equality minus `id` (a bookkeeping handle).
bool same_record(const RequestRecord& a, const RequestRecord& b) {
  return a.core == b.core && a.line == b.line && a.access == b.access &&
         a.issued == b.issued && a.first_presented == b.first_presented &&
         a.completed == b.completed && a.presentations == b.presentations &&
         a.writebacks_during == b.writebacks_during;
}

}  // namespace

bool RequestTracker::same_state(const RequestTracker& other) const {
  if (keep_records_ != other.keep_records_ ||
      completed_count_ != other.completed_count_ ||
      inflight_.size() != other.inflight_.size() ||
      service_ != other.service_ || total_ != other.total_) {
    return false;
  }
  for (std::size_t c = 0; c < inflight_.size(); ++c) {
    if (inflight_[c].has_value() != other.inflight_[c].has_value()) {
      return false;
    }
    if (inflight_[c] && !same_record(*inflight_[c], *other.inflight_[c])) {
      return false;
    }
  }
  // Only the worst service latency is observable (RunMetrics::observed_wcl);
  // which tied record holds it depends on completion order, which the
  // composed guess cannot (and need not) reproduce.
  if (worst_.has_value() != other.worst_.has_value()) {
    return false;
  }
  return !worst_ ||
         worst_->service_latency() == other.worst_->service_latency();
}

void RequestTracker::absorb_solo(const RequestTracker& other) {
  PSLLC_ASSERT(inflight_.size() == other.inflight_.size(),
               "absorb_solo across different core counts");
  completed_count_ += other.completed_count_;
  for (std::size_t c = 0; c < inflight_.size(); ++c) {
    if (other.inflight_[c]) {
      PSLLC_ASSERT(!inflight_[c],
                   "absorb_solo: core " << c << " already has an in-flight "
                                           "request in the composed state");
      inflight_[c] = other.inflight_[c];
    }
    service_[c].merge(other.service_[c]);
    total_[c].merge(other.total_[c]);
  }
  if (other.worst_ &&
      (!worst_ || other.worst_->service_latency() > worst_->service_latency())) {
    worst_ = other.worst_;
  }
  // Keep future ids above both namespaces.
  next_id_ = std::max(next_id_, other.next_id_);
  if (keep_records_) {
    records_.insert(records_.end(), other.records_.begin(),
                    other.records_.end());
  }
}

}  // namespace psllc::core
