// Per-request latency bookkeeping.
//
// Two latencies are recorded per LLC request, matching the paper's
// measurement (Section 5.1):
//  * service latency — from the start of the slot in which the request is
//    FIRST presented on the bus until the response completes. This is what
//    Theorems 4.7/4.8 bound and what Figure 7 plots as "observed WCL".
//  * total latency — from the moment the L2 miss enqueued the request in
//    the PRB until completion (adds the initial wait for a slot).
#ifndef PSLLC_CORE_REQUEST_TRACKER_H_
#define PSLLC_CORE_REQUEST_TRACKER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace psllc::core {

struct RequestRecord {
  std::uint64_t id = 0;
  CoreId core;
  LineAddr line = 0;
  AccessType access = AccessType::kRead;
  Cycle issued = kNoCycle;           ///< entered the PRB
  Cycle first_presented = kNoCycle;  ///< slot start of first bus appearance
  Cycle completed = kNoCycle;
  // psllc-lint: allow-file(TRC-001: in-memory bookkeeping, never serialized)
  int presentations = 0;  ///< bus slots spent presenting (1 + retries)
  int writebacks_during = 0;  ///< own write-backs sent while in flight

  [[nodiscard]] Cycle service_latency() const {
    return completed - first_presented;
  }
  [[nodiscard]] Cycle total_latency() const { return completed - issued; }
};

class RequestTracker {
 public:
  /// `keep_records` retains every finished record (tests, small runs).
  explicit RequestTracker(int num_cores, bool keep_records = false);

  /// Starts tracking a request; returns its id.
  std::uint64_t begin(CoreId core, LineAddr line, AccessType access,
                      Cycle issued);

  /// The request was presented on the bus in the slot starting at
  /// `slot_start` (first call fixes first_presented; later calls count
  /// retries).
  void on_presented(std::uint64_t id, Cycle slot_start);

  /// The request's response completed at `completion`.
  void on_completed(std::uint64_t id, Cycle completion);

  /// `core` sent a write-back; attributed to its in-flight request if any.
  void on_writeback_sent(CoreId core);

  [[nodiscard]] bool has_inflight(CoreId core) const;
  [[nodiscard]] const RequestRecord& inflight(CoreId core) const;

  [[nodiscard]] std::int64_t completed_requests() const {
    return completed_count_;
  }
  /// Service-latency summary for one core (completed requests only).
  [[nodiscard]] const Summary& service_latency(CoreId core) const;
  [[nodiscard]] const Summary& total_latency(CoreId core) const;
  /// Max service latency across all cores; kNoCycle when nothing completed.
  [[nodiscard]] Cycle max_service_latency() const;
  /// The completed request with the largest service latency.
  [[nodiscard]] const RequestRecord& worst_request() const;

  /// All finished records (requires keep_records).
  [[nodiscard]] const std::vector<RequestRecord>& records() const;

  /// True iff the two trackers are observably identical: same completed
  /// counts, per-core latency summaries, worst service latency, and the
  /// same in-flight records field-by-field except `id` (ids are handles and
  /// never influence timing). `next_id_` and retained records are likewise
  /// excluded. Parallel-replay boundary reconciliation.
  [[nodiscard]] bool same_state(const RequestTracker& other) const;

  /// Renumbers future requests to start at `base`. The parallel replay
  /// engine gives each per-lane solo run a disjoint id namespace so that a
  /// composed state never holds two in-flight records with the same id.
  void set_id_base(std::uint64_t base) { next_id_ = base; }

  /// Parallel-replay solo composition: folds a single-lane solo run's
  /// tracker into this one. Adopts the solo run's in-flight records (their
  /// cores must be idle here), merges latency summaries, and keeps the
  /// worse of the two worst-request records.
  void absorb_solo(const RequestTracker& other);

 private:
  RequestRecord& inflight_mut(std::uint64_t id);

  bool keep_records_;
  std::uint64_t next_id_ = 1;
  std::int64_t completed_count_ = 0;
  std::vector<std::optional<RequestRecord>> inflight_;  // per core
  std::vector<Summary> service_;                        // per core
  std::vector<Summary> total_;                          // per core
  std::optional<RequestRecord> worst_;
  std::vector<RequestRecord> records_;
};

}  // namespace psllc::core

#endif  // PSLLC_CORE_REQUEST_TRACKER_H_
