#include "core/system.h"

#include <utility>

#include "common/log.h"
#include "common/rng.h"

namespace psllc::core {

System::System(const SystemConfig& config, llc::PartitionMap partitions)
    : System(config, llc::PartitionProgram(std::move(partitions))) {}

System::System(const SystemConfig& config, llc::PartitionProgram program)
    : config_(config),
      schedule_(config_.make_schedule()),
      memory_(config_.dram.make_backend()),
      llc_(config_.llc, std::move(program), config_.mode, config_.num_cores,
           *memory_),
      tracker_(config_.num_cores, config_.keep_request_records) {
  config_.validate();
  llc_.program().validate(config_.num_cores);
  cores_.reserve(static_cast<std::size_t>(config_.num_cores));
  for (int c = 0; c < config_.num_cores; ++c) {
    cores_.push_back(std::make_unique<TraceCore>(
        CoreId{c}, config_.private_caches, config_.pwb_capacity, tracker_,
        mix_seed(config_.seed, static_cast<std::uint64_t>(c), 0xc04e)));
  }
}

System::System(const ExperimentSetup& setup)
    : System(setup.config, setup.program) {}

void System::set_trace(CoreId core_id, Trace trace) {
  core(core_id).set_trace(std::move(trace));
}

void System::preload_owned_line(CoreId owner, LineAddr line,
                                bool dirty_private) {
  llc_.preload(line, {owner}, /*dirty=*/false);
  core(owner).preload(line, dirty_private);
}

void System::preload_llc_line(CoreId perspective, LineAddr line, bool dirty) {
  PSLLC_ASSERT(llc_.partitions().partition_of(perspective) >= 0,
               "perspective core has no partition");
  llc_.preload(line, {}, dirty);
  (void)perspective;
}

TraceCore& System::core(CoreId id) {
  PSLLC_ASSERT(id.valid() && id.value < config_.num_cores,
               "bad core id " << id.value);
  return *cores_[static_cast<std::size_t>(id.value)];
}

const TraceCore& System::core(CoreId id) const {
  PSLLC_ASSERT(id.valid() && id.value < config_.num_cores,
               "bad core id " << id.value);
  return *cores_[static_cast<std::size_t>(id.value)];
}

void System::step_slot() {
  const Cycle slot_start = now_;
  // 1. Local execution up to the slot boundary.
  for (auto& core_ptr : cores_) {
    core_ptr->run_until(slot_start);
  }
  // 1b. Partition-mode transitions fire at slot boundaries: switch the map,
  // drain incompatible residents (their back-invalidations are delivered
  // like eviction-triggered ones), and fence before releasing new ways.
  for (const auto& binval : llc_.advance_transition(slot_start)) {
    deliver_back_invalidation(binval, slot_start);
  }
  // 2. Slot owner puts one message on the bus.
  const CoreId owner = schedule_.owner_of_slot(slot_index_);
  TraceCore& owner_core = core(owner);
  SlotEvent event;
  event.slot_index = slot_index_;
  event.slot_start = slot_start;
  event.owner = owner;

  switch (owner_core.buffers().pick(slot_start)) {
    case bus::PendingBuffers::Pick::kNone:
      break;
    case bus::PendingBuffers::Pick::kRequest: {
      const bus::BusMessage& msg = owner_core.buffers().request();
      const std::uint64_t request_id = msg.request_id;
      const LineAddr line = msg.line;
      event.action = SlotEvent::Action::kRequest;
      event.line = line;
      tracker_.on_presented(request_id, slot_start);
      const llc::RequestOutcome outcome =
          llc_.handle_request(owner, line, slot_start, msg.access);
      if (outcome.back_invalidation) {
        deliver_back_invalidation(*outcome.back_invalidation, slot_start);
      }
      if (outcome.completed()) {
        const Cycle completion = slot_start + config_.slot_width;
        // A hit may race an in-flight voluntary write-back for the same
        // line (the core re-fetched a line whose dirty victim write-back is
        // still queued). Cancel the write-back and recover its dirtiness
        // into the refilled private copy, keeping the directory exact.
        bool recovered_dirty = false;
        if (const auto cancelled =
                owner_core.buffers().cancel_writeback(line)) {
          recovered_dirty = cancelled->carries_dirty_data;
          ++writebacks_cancelled_;
        }
        const std::optional<mem::Evicted> victim =
            owner_core.on_response(completion, recovered_dirty);
        const Cycle first_presented =
            tracker_.inflight(owner).first_presented;
        if (llc_.overlaps_transition(first_presented, completion)) {
          const Cycle latency = completion - first_presented;
          if (observed_transient_wcl_ == kNoCycle ||
              latency > observed_transient_wcl_) {
            observed_transient_wcl_ = latency;
          }
        }
        tracker_.on_completed(request_id, completion);
        event.request_completed = true;
        if (victim) {
          handle_private_victim(owner_core, *victim, completion);
        }
        PSLLC_TRACE("slot " << slot_index_ << " " << to_string(owner)
                            << " Resp line=0x" << std::hex << line);
      }
      break;
    }
    case bus::PendingBuffers::Pick::kWriteBack: {
      const bus::BusMessage msg = owner_core.buffers().pop_writeback();
      event.action = SlotEvent::Action::kWriteBack;
      event.line = msg.line;
      tracker_.on_writeback_sent(owner);
      const llc::WritebackOutcome outcome = llc_.handle_writeback(
          owner, msg.line, msg.carries_dirty_data, msg.frees_llc_entry,
          slot_start);
      event.writeback_frees = outcome.freed_entry;
      PSLLC_TRACE("slot " << slot_index_ << " " << to_string(owner)
                          << " WB line=0x" << std::hex << msg.line
                          << (outcome.freed_entry ? " (freed)" : ""));
      break;
    }
  }

  for (const auto& observer : observers_) {
    observer(event);
  }
  now_ += config_.slot_width;
  ++slot_index_;
}

void System::deliver_back_invalidation(const llc::BackInvalidation& binval,
                                       Cycle slot_start) {
  for (CoreId owner : binval.owners) {
    TraceCore& owner_core = core(owner);
    const mem::ForcedEviction evicted = owner_core.force_evict(binval.line);
    if (evicted.was_present) {
      PSLLC_ASSERT(!owner_core.buffers().has_writeback_for(binval.line),
                   "core holds line 0x" << std::hex << binval.line
                                        << " while its write-back is queued");
      if (evicted.was_dirty || config_.llc.clean_back_inval_costs_slot) {
        bus::BusMessage wb;
        wb.kind = bus::MessageKind::kWriteBack;
        wb.source = owner;
        wb.line = binval.line;
        wb.carries_dirty_data = evicted.was_dirty;
        wb.frees_llc_entry = true;
        wb.enqueued_at = slot_start;
        owner_core.buffers().push_writeback(wb);
      } else {
        // Clean copy acknowledged without a bus slot (ablation mode).
        (void)llc_.ack_back_invalidation_silent(owner, binval.line,
                                                slot_start);
      }
    } else if (owner_core.buffers().has_writeback_for(binval.line)) {
      // The private copy is gone but its voluntary write-back is still in
      // flight; upgrade it so its arrival frees the LLC entry.
      const bool upgraded =
          owner_core.buffers().upgrade_writeback_to_forced(binval.line);
      PSLLC_ASSERT(upgraded, "upgrade failed despite queued write-back");
    } else {
      PSLLC_ASSERT(false, "directory lists " << to_string(owner)
                                             << " for line 0x" << std::hex
                                             << binval.line
                                             << " but the core has neither "
                                                "the line nor a write-back");
    }
  }
}

void System::handle_private_victim(TraceCore& owner,
                                   const mem::Evicted& victim,
                                   Cycle completion) {
  if (victim.dirty) {
    // Voluntary write-back: the directory keeps the core as sharer until
    // the write-back reaches the LLC.
    bus::BusMessage wb;
    wb.kind = bus::MessageKind::kWriteBack;
    wb.source = owner.id();
    wb.line = victim.line;
    wb.carries_dirty_data = true;
    wb.frees_llc_entry = false;
    wb.enqueued_at = completion;
    owner.buffers().push_writeback(wb);
  } else {
    // Clean victim: drop silently, but keep the directory exact.
    llc_.notify_silent_eviction(owner.id(), victim.line);
  }
}

bool System::all_done() const {
  for (const auto& core_ptr : cores_) {
    if (!core_ptr->trace_done() || core_ptr->buffers().has_request() ||
        core_ptr->buffers().has_writeback()) {
      return false;
    }
  }
  return true;
}

Cycle System::makespan() const {
  Cycle makespan = 0;
  for (const auto& core_ptr : cores_) {
    PSLLC_ASSERT(core_ptr->trace_done(),
                 to_string(core_ptr->id()) << " has not finished its trace");
    makespan = std::max(makespan, core_ptr->finish_time());
  }
  return makespan;
}

RunResult System::run(Cycle max_cycles) {
  while (!all_done() && now_ < max_cycles) {
    step_slot();
  }
  return RunResult{all_done(), now_, slot_index_};
}

RunResult System::run_slots(std::int64_t max_slots) {
  const std::int64_t limit = slot_index_ + max_slots;
  while (!all_done() && slot_index_ < limit) {
    step_slot();
  }
  return RunResult{all_done(), now_, slot_index_};
}

void System::add_slot_observer(std::function<void(const SlotEvent&)> observer) {
  observers_.push_back(std::move(observer));
}

}  // namespace psllc::core
