// The full multicore system model of the paper's Figure 1: N trace-driven
// cores (L1I/L1D + L2 each), a TDM-arbitrated shared bus, the partitioned
// inclusive LLC, and DRAM behind it.
//
// Simulation advances one TDM slot at a time:
//  1. every core executes local work (L1/L2 hits) up to the slot boundary;
//  2. the slot owner's L2 controller round-robin-picks one eligible message
//     (request or write-back) and places it on the bus;
//  3. the LLC services it: hits/fills complete at the end of the slot;
//     blocked requests may trigger an eviction whose back-invalidations are
//     delivered to the owning cores immediately (their freeing write-backs
//     occupy later slots of their own).
#ifndef PSLLC_CORE_SYSTEM_H_
#define PSLLC_CORE_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bus/tdm_schedule.h"
#include "core/request_tracker.h"
#include "core/system_config.h"
#include "core/trace_core.h"
#include "llc/llc.h"
#include "mem/memory_backend.h"

namespace psllc::core {

/// What happened in one bus slot (fed to observers such as the
/// DistanceMonitor).
struct SlotEvent {
  std::int64_t slot_index = 0;
  Cycle slot_start = 0;
  CoreId owner;
  enum class Action : std::uint8_t { kIdle, kRequest, kWriteBack };
  Action action = Action::kIdle;
  LineAddr line = 0;
  bool request_completed = false;  ///< kRequest: hit or filled this slot
  bool writeback_frees = false;    ///< kWriteBack: freed an LLC entry
};

struct RunResult {
  bool all_done = false;
  Cycle end_cycle = 0;
  std::int64_t slots_executed = 0;
};

class System {
 public:
  System(const SystemConfig& config, llc::PartitionMap partitions);
  System(const SystemConfig& config, llc::PartitionProgram program);
  explicit System(const ExperimentSetup& setup);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Assigns `trace` to `core` (before or between runs).
  void set_trace(CoreId core, Trace trace);

  /// Scenario setup: `line` resident in the LLC and privately cached by
  /// `owner` (`dirty_private` marks the private copy dirty). Mirrors the
  /// paper's "l1 : c3" initial states.
  void preload_owned_line(CoreId owner, LineAddr line,
                          bool dirty_private = false);

  /// Scenario setup: `line` resident in the LLC only (no private copies).
  /// Mapped through `perspective`'s partition.
  void preload_llc_line(CoreId perspective, LineAddr line, bool dirty);

  /// Executes one TDM slot.
  void step_slot();

  /// Runs until every trace finished and all buffers drained, or
  /// `max_cycles` elapsed.
  RunResult run(Cycle max_cycles);
  RunResult run_slots(std::int64_t max_slots);

  [[nodiscard]] bool all_done() const;
  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] std::int64_t current_slot() const { return slot_index_; }

  /// Max trace finish time across cores — the execution-time metric of the
  /// paper's Figure 8.
  [[nodiscard]] Cycle makespan() const;

  [[nodiscard]] TraceCore& core(CoreId id);
  [[nodiscard]] const TraceCore& core(CoreId id) const;
  [[nodiscard]] const llc::PartitionedLlc& llc() const { return llc_; }
  [[nodiscard]] llc::PartitionedLlc& llc_mut() { return llc_; }
  [[nodiscard]] const RequestTracker& tracker() const { return tracker_; }
  [[nodiscard]] const bus::TdmSchedule& schedule() const { return schedule_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  /// Read-only query view of the memory backend behind the LLC (selected
  /// by config().dram.backend; owned by this System — see
  /// mem/memory_backend.h for the WCL contract). Only the query surface is
  /// exposed; driving the backend stays internal to the replay engines.
  [[nodiscard]] mem::MemoryView memory() const {
    return mem::MemoryView(*memory_);
  }

  /// Registers a per-slot observer (called after the slot's bus action).
  void add_slot_observer(std::function<void(const SlotEvent&)> observer);

  /// Voluntary write-backs cancelled because the core re-fetched the line
  /// while they were still queued (dirtiness folded back into the refill).
  [[nodiscard]] std::int64_t writebacks_cancelled() const {
    return writebacks_cancelled_;
  }

  /// Max observed service latency over requests whose in-flight interval
  /// overlapped a partition-mode transition window. kNoCycle when no
  /// request overlapped a transition (or the program is static).
  [[nodiscard]] Cycle observed_transient_wcl() const {
    return observed_transient_wcl_;
  }

 private:
  void deliver_back_invalidation(const llc::BackInvalidation& binval,
                                 Cycle slot_start);
  void handle_private_victim(TraceCore& owner, const mem::Evicted& victim,
                             Cycle completion);

  SystemConfig config_;
  bus::TdmSchedule schedule_;
  std::unique_ptr<mem::MemoryBackend> memory_;
  llc::PartitionedLlc llc_;
  RequestTracker tracker_;
  std::vector<std::unique_ptr<TraceCore>> cores_;
  Cycle now_ = 0;
  std::int64_t slot_index_ = 0;
  std::int64_t writebacks_cancelled_ = 0;
  Cycle observed_transient_wcl_ = kNoCycle;
  std::vector<std::function<void(const SlotEvent&)>> observers_;
};

}  // namespace psllc::core

#endif  // PSLLC_CORE_SYSTEM_H_
