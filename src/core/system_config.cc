#include "core/system_config.h"

#include <sstream>

#include "common/assert.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/wcl_analysis.h"

namespace psllc::core {

bus::TdmSchedule SystemConfig::make_schedule() const {
  if (schedule_slots.empty()) {
    return bus::TdmSchedule::one_slot(num_cores, slot_width);
  }
  auto schedule = bus::TdmSchedule::from_slots(schedule_slots, slot_width);
  PSLLC_CONFIG_CHECK(schedule.num_cores() == num_cores,
                     "schedule covers " << schedule.num_cores()
                                        << " cores, system has " << num_cores);
  return schedule;
}

void SystemConfig::validate() const {
  PSLLC_CONFIG_CHECK(num_cores > 0, "need >=1 core");
  PSLLC_CONFIG_CHECK(slot_width > 0, "slot width must be positive");
  private_caches.validate();
  llc.validate();
  dram.validate();
  PSLLC_CONFIG_CHECK(pwb_capacity > 0, "PWB capacity must be >=1");
  PSLLC_CONFIG_CHECK(
      private_caches.l2.line_bytes == llc.geometry.line_bytes,
      "L2 and LLC line sizes differ");
  PSLLC_CONFIG_CHECK(
      dram.line_bytes == llc.geometry.line_bytes,
      "DRAM and LLC line sizes differ");
  // System model (paper Section 3): the LLC responds within the requester's
  // slot, so a miss fill (lookup + memory fetch) must fit in one slot. The
  // memory term is supplied by the selected backend — a backend with a
  // larger worst case (e.g. the open-page bank/row model) needs a wider
  // slot than the fixed-latency model.
  PSLLC_CONFIG_CHECK(
      slot_width >= required_slot_width(*this),
      "slot width " << slot_width << " cannot absorb an LLC fill (lookup "
                    << llc.lookup_latency << " + "
                    << mem::to_string(dram.backend) << " backend worst case "
                    << dram.worst_case_latency() << ")");
  (void)make_schedule();  // throws if the explicit schedule is inconsistent
}

PartitionNotation PartitionNotation::parse(std::string_view text) {
  const std::string_view trimmed = trim(text);
  const std::size_t open = trimmed.find('(');
  PSLLC_CONFIG_CHECK(open != std::string_view::npos && trimmed.back() == ')',
                     "malformed partition notation: '" << trimmed << "'");
  const std::string_view name = trim(trimmed.substr(0, open));
  const std::string_view args =
      trimmed.substr(open + 1, trimmed.size() - open - 2);
  PartitionNotation notation;
  int expected_args = 3;
  if (iequals(name, "SS")) {
    notation.kind = Kind::kSharedSequenced;
  } else if (iequals(name, "NSS")) {
    notation.kind = Kind::kSharedBestEffort;
  } else if (iequals(name, "P")) {
    notation.kind = Kind::kPrivate;
    expected_args = 2;
  } else {
    PSLLC_CONFIG_CHECK(false, "unknown partition notation '" << name << "'");
  }
  const auto fields = split(args, ',');
  PSLLC_CONFIG_CHECK(static_cast<int>(fields.size()) == expected_args,
                     "notation '" << name << "' expects " << expected_args
                                  << " arguments, got " << fields.size());
  auto parse_field = [&](const std::string& field, const char* what) {
    const auto value = parse_i64(field);
    PSLLC_CONFIG_CHECK(value.has_value() && *value > 0,
                       "bad " << what << " in notation: '" << field << "'");
    return static_cast<int>(*value);
  };
  notation.sets = parse_field(fields[0], "set count");
  notation.ways = parse_field(fields[1], "way count");
  if (expected_args == 3) {
    notation.sharers = parse_field(fields[2], "sharer count");
  }
  return notation;
}

std::string PartitionNotation::to_string() const {
  std::ostringstream oss;
  switch (kind) {
    case Kind::kSharedSequenced:
      oss << "SS(" << sets << "," << ways << "," << sharers << ")";
      break;
    case Kind::kSharedBestEffort:
      oss << "NSS(" << sets << "," << ways << "," << sharers << ")";
      break;
    case Kind::kPrivate:
      oss << "P(" << sets << "," << ways << ")";
      break;
  }
  return oss.str();
}

ExperimentSetup make_paper_setup(const PartitionNotation& notation,
                                 int active_cores, std::uint64_t seed) {
  PSLLC_CONFIG_CHECK(active_cores > 0, "need >=1 active core");
  SystemConfig config;
  config.num_cores = active_cores;
  config.seed = seed;
  config.llc.seed = mix_seed(seed, 0x11c);

  if (notation.is_shared()) {
    PSLLC_CONFIG_CHECK(
        notation.sharers == active_cores,
        "paper setup shares among all active cores: notation "
            << notation.to_string() << " vs " << active_cores << " cores");
    config.mode = notation.kind == PartitionNotation::Kind::kSharedSequenced
                      ? llc::ContentionMode::kSetSequencer
                      : llc::ContentionMode::kBestEffort;
    std::vector<CoreId> sharers;
    sharers.reserve(static_cast<std::size_t>(active_cores));
    for (int c = 0; c < active_cores; ++c) {
      sharers.emplace_back(c);
    }
    llc::PartitionMap partitions = llc::make_shared_partition(
        config.llc.geometry, sharers, notation.sets, notation.ways);
    config.validate();
    return ExperimentSetup{
        config, llc::PartitionProgram(std::move(partitions)), notation};
  }

  // Private partitions: contention never arises, so the contention mode is
  // irrelevant; keep the sequencer for uniformity.
  config.mode = llc::ContentionMode::kSetSequencer;
  llc::PartitionMap partitions = llc::make_private_partitions(
      config.llc.geometry, active_cores, notation.sets, notation.ways);
  config.validate();
  return ExperimentSetup{
      config, llc::PartitionProgram(std::move(partitions)), notation};
}

ExperimentSetup make_paper_setup(std::string_view notation, int active_cores,
                                 std::uint64_t seed) {
  return make_paper_setup(PartitionNotation::parse(notation), active_cores,
                          seed);
}

}  // namespace psllc::core
