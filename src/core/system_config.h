// Whole-system configuration and the paper's partition notation.
//
// Section 5 of the paper names configurations:
//   SS(s,w,n)  — partition of s sets x w ways shared by n cores, with the
//                set sequencer;
//   NSS(s,w,n) — the same partition, contending requests serviced best
//                effort (no sequencer);
//   P(s,w)     — a private s x w partition per core.
// make_paper_setup() turns a notation plus the active core count into a
// ready-to-run SystemConfig + PartitionMap with the paper's platform
// defaults (4-way 16-set L2, 16-way 32-set LLC, 64 B lines, 50-cycle TDM
// slots — the slot width recovered from Figure 7's analytical lines, see
// DESIGN.md).
#ifndef PSLLC_CORE_SYSTEM_CONFIG_H_
#define PSLLC_CORE_SYSTEM_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bus/tdm_schedule.h"
#include "llc/llc.h"
#include "llc/partition.h"
#include "mem/dram.h"
#include "mem/private_cache.h"

namespace psllc::core {

/// Paper default slot width (cycles), recovered from the Figure 7
/// analytical WCL lines: 5000 (SS), 979250 (NSS), 450 (P) all divide out at
/// S_W = 50 for the 4-core platform.
inline constexpr Cycle kPaperSlotWidth = 50;

struct SystemConfig {
  int num_cores = 4;
  Cycle slot_width = kPaperSlotWidth;
  /// Explicit slot->core assignment; empty means the canonical 1S-TDM
  /// schedule {c0, ..., c(N-1)}.
  std::vector<CoreId> schedule_slots;
  mem::PrivateCacheConfig private_caches;
  llc::LlcConfig llc;
  llc::ContentionMode mode = llc::ContentionMode::kSetSequencer;
  mem::DramConfig dram;
  int pwb_capacity = 16;
  /// Retain every request record in the tracker (tests / small runs).
  bool keep_request_records = false;
  std::uint64_t seed = 0x5eedULL;

  /// Builds the TDM schedule this config describes.
  [[nodiscard]] bus::TdmSchedule make_schedule() const;

  /// Throws ConfigError on inconsistency. Notably enforces the system-model
  /// requirement that an LLC fill completes within one slot:
  /// slot_width >= llc.lookup_latency + dram.worst_case_latency(), where
  /// the memory term is supplied by the memory backend `dram.backend`
  /// selects (see mem/memory_backend.h).
  void validate() const;
};

/// The paper's SS/NSS/P notation.
struct PartitionNotation {
  enum class Kind : std::uint8_t {
    kSharedSequenced,   ///< SS(s,w,n)
    kSharedBestEffort,  ///< NSS(s,w,n)
    kPrivate,           ///< P(s,w)
  };
  Kind kind = Kind::kSharedSequenced;
  int sets = 1;
  int ways = 1;
  int sharers = 1;  ///< n; ignored for kPrivate

  /// Parses "SS(1,2,4)", "NSS(32,4,2)", "P(8,2)" (case-insensitive).
  /// Throws ConfigError on malformed input.
  static PartitionNotation parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool is_shared() const { return kind != Kind::kPrivate; }
};

/// A ready-to-run configuration for one paper experiment. The partition
/// geometry is a *program* — an ordered schedule of modes. Paper setups are
/// static (one mode); dynamic-repartitioning scenarios append further modes
/// with trigger epochs before constructing the System/kernel.
struct ExperimentSetup {
  SystemConfig config;
  llc::PartitionProgram program;
  PartitionNotation notation;

  /// The initial (mode-0) map — what `partitions` was before the program
  /// refactor; static callers read the whole geometry through this.
  [[nodiscard]] const llc::PartitionMap& partitions() const {
    return program.initial();
  }
};

/// Builds the paper platform for `notation` with `active_cores` cores on
/// the bus. For shared notations, active_cores must equal notation.sharers
/// (the paper's evaluation shares among all active cores). For P, every
/// active core receives its own (sets x ways) partition.
ExperimentSetup make_paper_setup(const PartitionNotation& notation,
                                 int active_cores,
                                 std::uint64_t seed = 0x5eedULL);

/// Convenience: parse + build.
ExperimentSetup make_paper_setup(std::string_view notation, int active_cores,
                                 std::uint64_t seed = 0x5eedULL);

}  // namespace psllc::core

#endif  // PSLLC_CORE_SYSTEM_CONFIG_H_
