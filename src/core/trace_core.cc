#include "core/trace_core.h"

#include <utility>

#include "common/assert.h"

namespace psllc::core {

TraceCore::TraceCore(CoreId id, const mem::PrivateCacheConfig& caches,
                     int pwb_capacity, RequestTracker& tracker,
                     std::uint64_t seed)
    : id_(id), caches_(caches, seed), buffers_(pwb_capacity),
      tracker_(&tracker) {
  PSLLC_ASSERT(id.valid(), "core needs a valid id");
}

void TraceCore::set_trace(Trace trace) {
  PSLLC_ASSERT(!blocked_, "cannot swap trace while a request is outstanding");
  trace_ = std::move(trace);
  pc_ = 0;
  gap_applied_ = false;
}

void TraceCore::run_until(Cycle limit) {
  while (!blocked_ && pc_ < trace_.size()) {
    const MemOp& op = trace_[pc_];
    if (!gap_applied_) {
      next_ready_ += op.gap;
      gap_applied_ = true;
    }
    if (next_ready_ >= limit) {
      return;  // nothing more can start before the slot boundary
    }
    const mem::HitLevel level = caches_.access(op.addr, op.type);
    switch (level) {
      case mem::HitLevel::kL1:
        next_ready_ += caches_.config().l1_hit_latency;
        break;
      case mem::HitLevel::kL2:
        next_ready_ += caches_.config().l1_hit_latency +
                       caches_.config().l2_hit_latency;
        break;
      case mem::HitLevel::kMiss: {
        // Miss detection walks L1 then L2 tags, then enqueues the request.
        const Cycle issue = next_ready_ + caches_.config().l1_hit_latency +
                            caches_.config().l2_hit_latency;
        const LineAddr line = caches_.config().l2.line_of(op.addr);
        const std::uint64_t id =
            tracker_->begin(id_, line, op.type, issue);
        bus::BusMessage msg;
        msg.kind = bus::MessageKind::kRequest;
        msg.source = id_;
        msg.line = line;
        msg.access = op.type;
        msg.request_id = id;
        msg.enqueued_at = issue;
        buffers_.set_request(msg);
        outstanding_ = Outstanding{op.addr, op.type, id};
        blocked_ = true;
        return;
      }
    }
    ++pc_;
    gap_applied_ = false;
    if (pc_ == trace_.size()) {
      finish_time_ = next_ready_;
    }
  }
}

std::optional<mem::Evicted> TraceCore::on_response(Cycle completion,
                                                   bool recovered_dirty) {
  PSLLC_ASSERT(blocked_ && outstanding_.has_value(),
               to_string(id_) << " got a response without a request");
  const Outstanding out = *outstanding_;
  std::optional<mem::Evicted> victim =
      caches_.fill(out.addr, out.type, is_write(out.type) || recovered_dirty);
  outstanding_.reset();
  blocked_ = false;
  buffers_.clear_request();
  next_ready_ = completion;
  ++pc_;
  gap_applied_ = false;
  if (pc_ == trace_.size()) {
    finish_time_ = next_ready_;
  }
  return victim;
}

mem::ForcedEviction TraceCore::force_evict(LineAddr line) {
  return caches_.force_evict(line);
}

std::uint64_t TraceCore::outstanding_request_id() const {
  PSLLC_ASSERT(outstanding_.has_value(), "no outstanding request");
  return outstanding_->tracker_id;
}

}  // namespace psllc::core
