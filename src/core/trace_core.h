// One trace-driven core: in-order, blocking, at most one outstanding LLC
// request (paper Section 3). The core owns its private cache hierarchy and
// its PRB/PWB buffers; the System drives it slot by slot.
#ifndef PSLLC_CORE_TRACE_CORE_H_
#define PSLLC_CORE_TRACE_CORE_H_

#include <cstdint>
#include <optional>

#include "bus/pending_buffers.h"
#include "core/mem_op.h"
#include "core/request_tracker.h"
#include "mem/private_cache.h"

namespace psllc::core {

class TraceCore {
 public:
  TraceCore(CoreId id, const mem::PrivateCacheConfig& caches,
            int pwb_capacity, RequestTracker& tracker, std::uint64_t seed);

  [[nodiscard]] CoreId id() const { return id_; }

  /// Replaces the trace; resets the program counter. Must not be called
  /// while a request is outstanding.
  void set_trace(Trace trace);

  /// All trace entries completed (bus queues may still drain).
  [[nodiscard]] bool trace_done() const {
    return !blocked_ && pc_ >= trace_.size();
  }

  /// Cycle at which the last trace entry completed (valid once trace_done).
  [[nodiscard]] Cycle finish_time() const { return finish_time_; }

  /// Executes local work (L1/L2 hits) up to — but not into — `limit`.
  /// Stops early when an L2 miss enqueues a bus request (core blocks).
  void run_until(Cycle limit);

  /// The LLC response for the outstanding request arrived; `completion` is
  /// the end of the serving slot. Installs the line (`recovered_dirty`
  /// folds the dirtiness of a cancelled in-flight write-back back into the
  /// private copy); returns the L2 capacity victim (if any) whose
  /// write-back / directory notification the caller owns. Unblocks the core.
  std::optional<mem::Evicted> on_response(Cycle completion,
                                          bool recovered_dirty = false);

  /// Back-invalidation from the LLC. Returns presence/dirtiness of the
  /// (now removed) private copy.
  mem::ForcedEviction force_evict(LineAddr line);

  /// Scenario setup: place `line` in this core's L2 (see
  /// PrivateCacheHierarchy::preload).
  void preload(LineAddr line, bool dirty) { caches_.preload(line, dirty); }

  [[nodiscard]] bus::PendingBuffers& buffers() { return buffers_; }
  [[nodiscard]] const bus::PendingBuffers& buffers() const { return buffers_; }
  [[nodiscard]] const mem::PrivateCacheHierarchy& caches() const {
    return caches_;
  }
  [[nodiscard]] bool blocked() const { return blocked_; }
  /// The outstanding request's tracker id (valid while blocked).
  [[nodiscard]] std::uint64_t outstanding_request_id() const;

  /// Progress introspection.
  [[nodiscard]] std::size_t ops_completed() const { return pc_; }
  [[nodiscard]] std::size_t trace_size() const { return trace_.size(); }

 private:
  CoreId id_;
  mem::PrivateCacheHierarchy caches_;
  bus::PendingBuffers buffers_;
  RequestTracker* tracker_;
  Trace trace_;
  std::size_t pc_ = 0;
  Cycle next_ready_ = 0;
  bool gap_applied_ = false;
  bool blocked_ = false;
  Cycle finish_time_ = 0;
  struct Outstanding {
    Addr addr = 0;
    AccessType type = AccessType::kRead;
    std::uint64_t tracker_id = 0;
  };
  std::optional<Outstanding> outstanding_;
};

}  // namespace psllc::core

#endif  // PSLLC_CORE_TRACE_CORE_H_
