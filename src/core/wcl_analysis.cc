#include "core/wcl_analysis.h"

#include <algorithm>

#include "common/assert.h"

namespace psllc::core {

void SharedPartitionScenario::validate() const {
  PSLLC_CONFIG_CHECK(total_cores >= 1, "need >=1 core");
  PSLLC_CONFIG_CHECK(sharers >= 2 && sharers <= total_cores,
                     "shared-partition analysis needs 2 <= n <= N, got n="
                         << sharers << " N=" << total_cores);
  PSLLC_CONFIG_CHECK(partition_sets >= 1 && partition_ways >= 1,
                     "partition must have >=1 set and way");
  PSLLC_CONFIG_CHECK(cua_capacity_lines >= 1,
                     "cua must be able to cache >=1 line");
  PSLLC_CONFIG_CHECK(slot_width > 0, "slot width must be positive");
}

std::int64_t wcl_1s_tdm_slots(const SharedPartitionScenario& scenario) {
  scenario.validate();
  const std::int64_t n = scenario.sharers;
  const std::int64_t w = scenario.partition_ways;
  const std::int64_t big_n = scenario.total_cores;
  const std::int64_t m = scenario.m();
  // A = 2(n-1) * w * (n-1): periods for the distance of all w lines to
  // decay from n to 1, each unit decrement taking 2(n-1) periods
  // (Corollary 4.5).
  const std::int64_t a = 2 * (n - 1) * w * (n - 1);
  return (m + 1) * a * big_n + 1;
}

Cycle wcl_1s_tdm_cycles(const SharedPartitionScenario& scenario) {
  return wcl_1s_tdm_slots(scenario) * scenario.slot_width;
}

std::int64_t wcl_set_sequencer_slots(const SharedPartitionScenario& scenario) {
  scenario.validate();
  const std::int64_t n = scenario.sharers;
  const std::int64_t big_n = scenario.total_cores;
  // Each of the n queued requests (cua last) waits at most 2(n-1) periods
  // for the owning core to drain its write-backs; one final period delivers
  // the response (Theorem 4.8).
  return (2 * (n - 1) * n + 1) * big_n;
}

Cycle wcl_set_sequencer_cycles(const SharedPartitionScenario& scenario) {
  return wcl_set_sequencer_slots(scenario) * scenario.slot_width;
}

std::int64_t wcl_private_slots(int total_cores) {
  PSLLC_CONFIG_CHECK(total_cores >= 1, "need >=1 core");
  // Request slot (triggers the self-eviction), one period to drain the
  // forced write-back, one period to re-present; response completes one
  // slot into the final presentation.
  return 2 * static_cast<std::int64_t>(total_cores) + 1;
}

Cycle wcl_private_cycles(int total_cores, Cycle slot_width) {
  PSLLC_CONFIG_CHECK(slot_width > 0, "slot width must be positive");
  return wcl_private_slots(total_cores) * slot_width;
}

Cycle wcl_private_cycles(const bus::TdmSchedule& schedule, CoreId core) {
  PSLLC_CONFIG_CHECK(core.valid() && core.value < schedule.num_cores(),
                     "core " << core.value << " not in schedule");
  // For every owned slot s: the forced write-back occupies the next owned
  // slot and the retry the one after; the response lands one slot into the
  // retry slot. Take the worst span over a full period of start positions.
  std::int64_t worst_slots = 0;
  const int period = schedule.slots_per_period();
  for (std::int64_t s = 0; s < period; ++s) {
    if (schedule.owner_of_slot(s) != core) {
      continue;
    }
    const std::int64_t wb_slot = schedule.next_slot_of(core, s + 1);
    const std::int64_t retry_slot = schedule.next_slot_of(core, wb_slot + 1);
    worst_slots = std::max(worst_slots, retry_slot - s + 1);
  }
  PSLLC_ASSERT(worst_slots > 0, "core owns no slot");
  return worst_slots * schedule.slot_width();
}

double wcl_improvement_ratio(const SharedPartitionScenario& scenario) {
  return static_cast<double>(wcl_1s_tdm_slots(scenario)) /
         static_cast<double>(wcl_set_sequencer_slots(scenario));
}

Boundedness classify_wcl(const bus::TdmSchedule& schedule,
                         bool partition_shared, llc::ContentionMode mode) {
  if (!partition_shared) {
    return Boundedness::kBounded;
  }
  if (schedule.is_one_slot_tdm()) {
    return Boundedness::kBounded;  // Theorem 4.7 / 4.8
  }
  // Multi-slot schedule with best-effort sharing: the Section 4.1 scenario
  // applies — a core with several slots per period can free and re-occupy
  // an entry before cua's next slot, forever.
  return mode == llc::ContentionMode::kBestEffort ? Boundedness::kUnbounded
                                                  : Boundedness::kBounded;
}

Cycle analytical_wcl_cycles(const ExperimentSetup& setup, CoreId cua) {
  const SystemConfig& config = setup.config;
  const int pid = setup.partitions.partition_of(cua);
  PSLLC_CONFIG_CHECK(pid >= 0, "cua has no partition");
  const llc::PartitionSpec& spec = setup.partitions.spec(pid);
  const int sharers = setup.partitions.sharer_count_of(cua);
  if (sharers == 1) {
    return wcl_private_cycles(config.num_cores, config.slot_width);
  }
  SharedPartitionScenario scenario;
  scenario.total_cores = config.num_cores;
  scenario.sharers = sharers;
  scenario.partition_sets = spec.num_sets;
  scenario.partition_ways = spec.num_ways;
  scenario.cua_capacity_lines = config.private_caches.l2.capacity_lines();
  scenario.slot_width = config.slot_width;
  const Boundedness bounded = classify_wcl(
      config.make_schedule(), /*partition_shared=*/true, config.mode);
  PSLLC_CONFIG_CHECK(bounded == Boundedness::kBounded,
                     "WCL is unbounded for this configuration (Section 4.1)");
  return config.mode == llc::ContentionMode::kSetSequencer
             ? wcl_set_sequencer_cycles(scenario)
             : wcl_1s_tdm_cycles(scenario);
}

Cycle required_slot_width(const SystemConfig& config) {
  return config.llc.lookup_latency + config.dram.worst_case_latency();
}

Cycle slot_slack(const SystemConfig& config) {
  return config.slot_width - required_slot_width(config);
}

}  // namespace psllc::core
