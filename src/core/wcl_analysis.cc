#include "core/wcl_analysis.h"

#include <algorithm>
#include <vector>

#include "common/assert.h"

namespace psllc::core {

void SharedPartitionScenario::validate() const {
  PSLLC_CONFIG_CHECK(total_cores >= 1, "need >=1 core");
  PSLLC_CONFIG_CHECK(sharers >= 2 && sharers <= total_cores,
                     "shared-partition analysis needs 2 <= n <= N, got n="
                         << sharers << " N=" << total_cores);
  PSLLC_CONFIG_CHECK(partition_sets >= 1 && partition_ways >= 1,
                     "partition must have >=1 set and way");
  PSLLC_CONFIG_CHECK(cua_capacity_lines >= 1,
                     "cua must be able to cache >=1 line");
  PSLLC_CONFIG_CHECK(slot_width > 0, "slot width must be positive");
}

std::int64_t wcl_1s_tdm_slots(const SharedPartitionScenario& scenario) {
  scenario.validate();
  const std::int64_t n = scenario.sharers;
  const std::int64_t w = scenario.partition_ways;
  const std::int64_t big_n = scenario.total_cores;
  const std::int64_t m = scenario.m();
  // A = 2(n-1) * w * (n-1): periods for the distance of all w lines to
  // decay from n to 1, each unit decrement taking 2(n-1) periods
  // (Corollary 4.5).
  const std::int64_t a = 2 * (n - 1) * w * (n - 1);
  return (m + 1) * a * big_n + 1;
}

Cycle wcl_1s_tdm_cycles(const SharedPartitionScenario& scenario) {
  return wcl_1s_tdm_slots(scenario) * scenario.slot_width;
}

std::int64_t wcl_set_sequencer_slots(const SharedPartitionScenario& scenario) {
  scenario.validate();
  const std::int64_t n = scenario.sharers;
  const std::int64_t big_n = scenario.total_cores;
  // Each of the n queued requests (cua last) waits at most 2(n-1) periods
  // for the owning core to drain its write-backs; one final period delivers
  // the response (Theorem 4.8).
  return (2 * (n - 1) * n + 1) * big_n;
}

Cycle wcl_set_sequencer_cycles(const SharedPartitionScenario& scenario) {
  return wcl_set_sequencer_slots(scenario) * scenario.slot_width;
}

std::int64_t wcl_private_slots(int total_cores) {
  PSLLC_CONFIG_CHECK(total_cores >= 1, "need >=1 core");
  // Request slot (triggers the self-eviction), one period to drain the
  // forced write-back, one period to re-present; response completes one
  // slot into the final presentation.
  return 2 * static_cast<std::int64_t>(total_cores) + 1;
}

Cycle wcl_private_cycles(int total_cores, Cycle slot_width) {
  PSLLC_CONFIG_CHECK(slot_width > 0, "slot width must be positive");
  return wcl_private_slots(total_cores) * slot_width;
}

Cycle wcl_private_cycles(const bus::TdmSchedule& schedule, CoreId core) {
  PSLLC_CONFIG_CHECK(core.valid() && core.value < schedule.num_cores(),
                     "core " << core.value << " not in schedule");
  // For every owned slot s: the forced write-back occupies the next owned
  // slot and the retry the one after; the response lands one slot into the
  // retry slot. Take the worst span over a full period of start positions.
  std::int64_t worst_slots = 0;
  const int period = schedule.slots_per_period();
  for (std::int64_t s = 0; s < period; ++s) {
    if (schedule.owner_of_slot(s) != core) {
      continue;
    }
    const std::int64_t wb_slot = schedule.next_slot_of(core, s + 1);
    const std::int64_t retry_slot = schedule.next_slot_of(core, wb_slot + 1);
    worst_slots = std::max(worst_slots, retry_slot - s + 1);
  }
  PSLLC_ASSERT(worst_slots > 0, "core owns no slot");
  return worst_slots * schedule.slot_width();
}

double wcl_improvement_ratio(const SharedPartitionScenario& scenario) {
  return static_cast<double>(wcl_1s_tdm_slots(scenario)) /
         static_cast<double>(wcl_set_sequencer_slots(scenario));
}

Boundedness classify_wcl(const bus::TdmSchedule& schedule,
                         bool partition_shared, llc::ContentionMode mode) {
  if (!partition_shared) {
    return Boundedness::kBounded;
  }
  if (schedule.is_one_slot_tdm()) {
    return Boundedness::kBounded;  // Theorem 4.7 / 4.8
  }
  // Multi-slot schedule with best-effort sharing: the Section 4.1 scenario
  // applies — a core with several slots per period can free and re-occupy
  // an entry before cua's next slot, forever.
  return mode == llc::ContentionMode::kBestEffort ? Boundedness::kUnbounded
                                                  : Boundedness::kBounded;
}

Cycle analytical_wcl_cycles(const SystemConfig& config,
                            const llc::PartitionMap& map, CoreId cua) {
  const int pid = map.partition_of(cua);
  PSLLC_CONFIG_CHECK(pid >= 0, "cua has no partition");
  const llc::PartitionSpec& spec = map.spec(pid);
  const int sharers = map.sharer_count_of(cua);
  if (sharers == 1) {
    return wcl_private_cycles(config.num_cores, config.slot_width);
  }
  SharedPartitionScenario scenario;
  scenario.total_cores = config.num_cores;
  scenario.sharers = sharers;
  scenario.partition_sets = spec.num_sets;
  scenario.partition_ways = spec.num_ways;
  scenario.cua_capacity_lines = config.private_caches.l2.capacity_lines();
  scenario.slot_width = config.slot_width;
  const Boundedness bounded = classify_wcl(
      config.make_schedule(), /*partition_shared=*/true, config.mode);
  PSLLC_CONFIG_CHECK(bounded == Boundedness::kBounded,
                     "WCL is unbounded for this configuration (Section 4.1)");
  return config.mode == llc::ContentionMode::kSetSequencer
             ? wcl_set_sequencer_cycles(scenario)
             : wcl_1s_tdm_cycles(scenario);
}

Cycle analytical_wcl_cycles(const ExperimentSetup& setup, CoreId cua) {
  Cycle worst = 0;
  for (int m = 0; m < setup.program.num_modes(); ++m) {
    worst = std::max(worst, analytical_wcl_cycles(
                                setup.config, setup.program.mode(m).map, cua));
  }
  return worst;
}

namespace {

/// Partition id covering physical slot (set, way), or -1.
int covering_partition(const llc::PartitionMap& map, int set, int way) {
  for (int p = 0; p < map.num_partitions(); ++p) {
    const llc::PartitionSpec& spec = map.spec(p);
    if (spec.contains_set(set) && spec.contains_way(way)) {
      return p;
    }
  }
  return -1;
}

bool slot_assignment_changed(const llc::PartitionMap& from,
                             const llc::PartitionMap& to, int set, int way) {
  const int pf = covering_partition(from, set, way);
  const int pt = covering_partition(to, set, way);
  if ((pf < 0) != (pt < 0)) {
    return true;
  }
  if (pf < 0) {
    return false;  // unassigned in both maps
  }
  const llc::PartitionSpec& sf = from.spec(pf);
  const llc::PartitionSpec& st = to.spec(pt);
  return sf.first_set != st.first_set || sf.num_sets != st.num_sets ||
         sf.first_way != st.first_way || sf.num_ways != st.num_ways ||
         sf.mapping != st.mapping || from.sharers(pf) != to.sharers(pt);
}

}  // namespace

int count_moved_slots(const llc::PartitionMap& from,
                      const llc::PartitionMap& to) {
  PSLLC_CONFIG_CHECK(from.geometry().num_sets == to.geometry().num_sets &&
                         from.geometry().num_ways == to.geometry().num_ways,
                     "maps disagree on LLC geometry");
  int moved = 0;
  for (int s = 0; s < from.geometry().num_sets; ++s) {
    for (int w = 0; w < from.geometry().num_ways; ++w) {
      moved += slot_assignment_changed(from, to, s, w) ? 1 : 0;
    }
  }
  return moved;
}

TransientWclTerms transient_wcl_terms(const SystemConfig& config,
                                      const llc::PartitionMap& from,
                                      const llc::PartitionMap& to,
                                      CoreId cua) {
  const int pid_from = from.partition_of(cua);
  const int pid_to = to.partition_of(cua);
  PSLLC_CONFIG_CHECK(pid_from >= 0 && pid_to >= 0,
                     "cua has no partition in one of the transition's maps");
  const std::int64_t big_n = config.num_cores;

  TransientWclTerms terms;
  terms.slot_width = config.slot_width;
  terms.moved_entries = count_moved_slots(from, to);

  // Widened sharer set: while the drain window is open, requests of both
  // the outgoing and the incoming sharer populations can sit ahead of cua
  // in its (old or new) partition — bound with their union.
  std::vector<CoreId> widened = from.sharers(pid_from);
  for (CoreId c : to.sharers(pid_to)) {
    if (std::find(widened.begin(), widened.end(), c) == widened.end()) {
      widened.push_back(c);
    }
  }
  const int n_trans = static_cast<int>(widened.size());
  terms.sharer_delta = n_trans - to.sharer_count_of(cua);

  // Drain term: each moved resident may require one back-inval write-back
  // slot from its owner — at most one period (N slots) apart under the
  // per-core drain serialization — plus the fence slot that reopens
  // allocation. The LLC pumps drains at slot granularity, so (N+1) slots
  // per moved entry is a safe per-entry envelope.
  terms.drain_bound =
      (static_cast<Cycle>(terms.moved_entries) * (big_n + 1) + 1) *
      config.slot_width;

  // Re-queue term: the map switch clears the sequencer and re-anchors
  // pending requests; every widened sharer may re-present once, each
  // presentation one period apart.
  terms.requeue_bound =
      static_cast<Cycle>(n_trans) * big_n * config.slot_width;

  // Steady term widened to the union population and the larger of the two
  // rectangles cua occupies across the transition.
  if (n_trans == 1) {
    terms.steady_bound =
        wcl_private_cycles(config.num_cores, config.slot_width);
  } else {
    const llc::PartitionSpec& sf = from.spec(pid_from);
    const llc::PartitionSpec& st = to.spec(pid_to);
    SharedPartitionScenario scenario;
    scenario.total_cores = config.num_cores;
    scenario.sharers = n_trans;
    scenario.partition_sets = std::max(sf.num_sets, st.num_sets);
    scenario.partition_ways = std::max(sf.num_ways, st.num_ways);
    scenario.cua_capacity_lines = config.private_caches.l2.capacity_lines();
    scenario.slot_width = config.slot_width;
    const Boundedness bounded = classify_wcl(
        config.make_schedule(), /*partition_shared=*/true, config.mode);
    PSLLC_CONFIG_CHECK(
        bounded == Boundedness::kBounded,
        "transient WCL is unbounded for this configuration (Section 4.1)");
    terms.steady_bound = config.mode == llc::ContentionMode::kSetSequencer
                             ? wcl_set_sequencer_cycles(scenario)
                             : wcl_1s_tdm_cycles(scenario);
  }
  return terms;
}

Cycle transient_wcl_cycles(const ExperimentSetup& setup, CoreId cua) {
  if (setup.program.is_static()) {
    return analytical_wcl_cycles(setup, cua);
  }
  Cycle worst = 0;
  for (int m = 0; m + 1 < setup.program.num_modes(); ++m) {
    worst = std::max(
        worst, transient_wcl_terms(setup.config, setup.program.mode(m).map,
                                   setup.program.mode(m + 1).map, cua)
                   .total());
  }
  return worst;
}

Cycle required_slot_width(const SystemConfig& config) {
  return config.llc.lookup_latency + config.dram.worst_case_latency();
}

Cycle slot_slack(const SystemConfig& config) {
  return config.slot_width - required_slot_width(config);
}

}  // namespace psllc::core
