// Worst-case latency (WCL) analysis — the paper's Section 4.
//
// All bounds are *service* latencies: from the start of the TDM slot in
// which the request is first presented on the bus until the response
// completes (one slot after the last required bus transfer).
//
//  * Theorem 4.7 (1S-TDM, shared partition, no sequencer):
//        WCL = ((m + 1) * A * N + 1) * S_W,   A = 2(n-1) * w * (n-1)
//    with N = cores on the bus, n = cores sharing the partition, w =
//    partition ways, m = min(m_cua, M), m_cua = private cache capacity of
//    the core under analysis in lines, M = partition capacity in lines.
//  * Theorem 4.8 (with the set sequencer):
//        WCL_ss = (2(n-1) * n + 1) * N * S_W
//    — independent of cache and partition sizes.
//  * Private partition (the paper's P configurations; derived here, the
//    paper quotes the resulting 450-cycle line in Figure 7): the only
//    interference is the core's own forced write-back when its request
//    evicts a line it still caches privately —
//        WCL_p = (2N + 1) * S_W
//    (request slot + one period to drain the forced write-back + one period
//    to re-present, completing one slot later). The PRB/PWB round-robin
//    guarantees the PWB is empty when a request is first presented in a
//    private partition, see bus/pending_buffers.h.
//  * Section 4.1: with a shared partition, best-effort contention and a
//    non-1S-TDM schedule, the WCL is unbounded.
#ifndef PSLLC_CORE_WCL_ANALYSIS_H_
#define PSLLC_CORE_WCL_ANALYSIS_H_

#include <algorithm>
#include <cstdint>

#include "bus/tdm_schedule.h"
#include "core/system_config.h"
#include "llc/llc.h"

namespace psllc::core {

/// Parameters of a shared-partition WCL question.
struct SharedPartitionScenario {
  int total_cores = 4;        ///< N — cores arbitrating on the bus
  int sharers = 4;            ///< n — cores sharing the partition (n <= N)
  int partition_sets = 1;     ///< s
  int partition_ways = 16;    ///< w
  int cua_capacity_lines = 64;  ///< m_cua — private cache capacity in lines
  Cycle slot_width = kPaperSlotWidth;  ///< S_W

  [[nodiscard]] int partition_lines() const {
    return partition_sets * partition_ways;
  }
  /// m = min(m_cua, M).
  [[nodiscard]] int m() const {
    return std::min(cua_capacity_lines, partition_lines());
  }

  /// Throws ConfigError on nonsensical parameters (needs sharers >= 2: with
  /// one sharer the partition is private and Theorem 4.7 does not apply).
  void validate() const;
};

/// Theorem 4.7 in slots: (m+1)*A*N + 1 with A = 2(n-1)*w*(n-1).
[[nodiscard]] std::int64_t wcl_1s_tdm_slots(
    const SharedPartitionScenario& scenario);
[[nodiscard]] Cycle wcl_1s_tdm_cycles(const SharedPartitionScenario& scenario);

/// Theorem 4.8 in slots: (2(n-1)*n + 1) * N.
[[nodiscard]] std::int64_t wcl_set_sequencer_slots(
    const SharedPartitionScenario& scenario);
[[nodiscard]] Cycle wcl_set_sequencer_cycles(
    const SharedPartitionScenario& scenario);

/// Private-partition bound in slots: 2N + 1.
[[nodiscard]] std::int64_t wcl_private_slots(int total_cores);
[[nodiscard]] Cycle wcl_private_cycles(int total_cores, Cycle slot_width);

/// Generalization beyond the paper: the private-partition bound under an
/// arbitrary TDM schedule. The critical path is present -> own forced
/// write-back in the next owned slot -> retry in the one after; the bound
/// is the worst, over all of `core`'s slots, span from a presenting slot to
/// the end of the second-next owned slot. Equals (2N+1)*S_W for 1S-TDM.
[[nodiscard]] Cycle wcl_private_cycles(const bus::TdmSchedule& schedule,
                                       CoreId core);

/// Improvement factor of the set sequencer (Theorem 4.7 / Theorem 4.8) —
/// the paper's Section 4.5 headline comparison.
[[nodiscard]] double wcl_improvement_ratio(
    const SharedPartitionScenario& scenario);

/// Is the WCL of a request to a shared/private partition bounded under the
/// given schedule and contention mode? (Section 4.1: best-effort sharing
/// with a multi-slot schedule is unbounded. The set sequencer's FIFO
/// ordering excludes that scenario even for multi-slot schedules — shown
/// empirically by ablation bench A4.)
enum class Boundedness : std::uint8_t { kBounded, kUnbounded };
[[nodiscard]] Boundedness classify_wcl(const bus::TdmSchedule& schedule,
                                       bool partition_shared,
                                       llc::ContentionMode mode);

/// The steady-state analytical WCL for `cua` under one concrete partition
/// map (dispatches on the map: shared + sequencer -> Thm 4.8, shared
/// best-effort -> Thm 4.7, sole sharer -> private bound). Throws
/// ConfigError when unbounded.
[[nodiscard]] Cycle analytical_wcl_cycles(const SystemConfig& config,
                                          const llc::PartitionMap& map,
                                          CoreId cua);

/// The analytical WCL for `cua` in a paper experiment setup. For a static
/// program this is the classic per-notation bound; for a multi-mode program
/// it is the max steady-state bound over all modes (transitions themselves
/// are covered by transient_wcl_cycles). Throws ConfigError when unbounded
/// (never for make_paper_setup outputs, which are always 1S-TDM).
[[nodiscard]] Cycle analytical_wcl_cycles(const ExperimentSetup& setup,
                                          CoreId cua);

/// Physical LLC slots whose partition assignment (covering rectangle or
/// sharer set) differs between `from` and `to` — exactly the slots the
/// transition protocol freezes, and an upper bound on the residents it
/// drains.
[[nodiscard]] int count_moved_slots(const llc::PartitionMap& from,
                                    const llc::PartitionMap& to);

/// Term breakdown of the transient WCL bound across one mode transition.
/// A request in flight across the transition pays, beyond a steady-state
/// service, for (a) the drain: every moved resident may need a back-inval
/// write-back slot from its owner plus the fence slot, (b) the sequencer
/// re-queue: pending requests of every (old or new) sharer re-present
/// once after the map switch, and (c) a steady-state term widened to the
/// union sharer set and the larger of the two partition rectangles —
/// during the window both populations contend for the partition.
struct TransientWclTerms {
  Cycle steady_bound = 0;   ///< widened steady-state service term
  Cycle drain_bound = 0;    ///< moved-resident write-back drain + fence
  Cycle requeue_bound = 0;  ///< sequencer re-queue after the map switch
  int moved_entries = 0;    ///< frozen slots (count_moved_slots)
  int sharer_delta = 0;     ///< widened n minus the new mode's steady n
  Cycle slot_width = kPaperSlotWidth;

  [[nodiscard]] Cycle total() const {
    return steady_bound + drain_bound + requeue_bound;
  }
};

/// The transient bound for `cua` across the `from` -> `to` transition.
/// Throws ConfigError when either steady state is unbounded or `cua` has
/// no partition in either map.
[[nodiscard]] TransientWclTerms transient_wcl_terms(
    const SystemConfig& config, const llc::PartitionMap& from,
    const llc::PartitionMap& to, CoreId cua);

/// Max transient bound over every transition of the setup's program.
/// Static programs have no transition: returns the steady bound, so the
/// invariant transient >= steady holds degenerately with equality.
[[nodiscard]] Cycle transient_wcl_cycles(const ExperimentSetup& setup,
                                         CoreId cua);

/// The system-model term every slot-count bound above multiplies out: all
/// WCL theorems assume an LLC fill (lookup + memory fetch) completes inside
/// the requester's slot, so the minimum admissible slot width is
///   llc.lookup_latency + backend.worst_case_latency()
/// with the memory term supplied by the backend `config.dram` selects.
/// SystemConfig::validate rejects any slot_width below this; the
/// ablation_dram_backend bench reports it per backend.
[[nodiscard]] Cycle required_slot_width(const SystemConfig& config);

/// Slack the configured slot leaves above the backend-supplied fill term
/// (slot_width - required_slot_width; negative would be rejected by
/// validate).
[[nodiscard]] Cycle slot_slack(const SystemConfig& config);

}  // namespace psllc::core

#endif  // PSLLC_CORE_WCL_ANALYSIS_H_
