#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace psllc::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// --- source view -------------------------------------------------------------

/// The scanner's working form of one file: `code` is the original text with
/// comment and string/char-literal contents blanked to spaces (newlines and
/// literal delimiters preserved, so offsets and line numbers are stable and
/// tokens never merge across a removed region), plus the comment text per
/// line for suppression directives.
struct SourceView {
  std::string code;
  std::vector<std::size_t> line_starts;        ///< offset of each line
  std::vector<std::string> comment_of_line;    ///< 0-based line -> comments
  std::vector<bool> line_has_code;             ///< any non-blank code char

  [[nodiscard]] int line_at(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());  // 1-based
  }
  [[nodiscard]] int num_lines() const {
    return static_cast<int>(line_starts.size());
  }
};

SourceView build_view(std::string_view text) {
  SourceView view;
  view.code.assign(text.begin(), text.end());
  view.line_starts.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      view.line_starts.push_back(i + 1);
    }
  }
  view.comment_of_line.assign(view.line_starts.size(), std::string());
  view.line_has_code.assign(view.line_starts.size(), false);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // the )delim" terminator of a raw string
  int line = 0;           // 0-based
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      if (state == State::kLineComment) {
        state = State::kCode;
      }
      continue;  // newline kept in code view
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          view.code[i] = ' ';
          view.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          view.code[i] = ' ';
          view.code[i + 1] = ' ';
          ++i;
        } else if (c == '"' &&
                   (i == 0 || text[i - 1] != 'R' ||
                    (i >= 2 && is_ident_char(text[i - 2])))) {
          state = State::kString;
        } else if (c == '"') {
          // R"delim( ... )delim"
          std::size_t paren = text.find('(', i + 1);
          if (paren == std::string_view::npos) {
            state = State::kString;  // malformed; degrade gracefully
          } else {
            raw_delim = ")";
            raw_delim.append(text.substr(i + 1, paren - i - 1));
            raw_delim.push_back('"');
            state = State::kRawString;
            for (std::size_t k = i + 1; k <= paren && k < text.size(); ++k) {
              if (text[k] != '\n') {
                view.code[k] = ' ';
              }
            }
            i = paren;
          }
        } else if (c == '\'' && (i == 0 || !is_ident_char(text[i - 1]))) {
          // Apostrophe after an identifier char is a digit separator
          // (1'000'000), not a char literal.
          state = State::kChar;
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          view.line_has_code[static_cast<std::size_t>(line)] = true;
        }
        break;
      case State::kLineComment:
      case State::kBlockComment:
        view.comment_of_line[static_cast<std::size_t>(line)].push_back(c);
        view.code[i] = ' ';
        if (state == State::kBlockComment && c == '*' && next == '/') {
          view.code[i + 1] = ' ';
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\') {
          view.code[i] = ' ';
          if (next != '\n') {
            view.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else {
          view.code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          view.code[i] = ' ';
          if (next != '\n') {
            view.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          view.code[i] = ' ';
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = i; k < i + raw_delim.size() - 1; ++k) {
            view.code[k] = ' ';
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          view.code[i] = ' ';
        }
        break;
    }
  }
  return view;
}

// --- token helpers -----------------------------------------------------------

/// True when code[pos..pos+word) is `word` with identifier boundaries.
bool matches_word(const std::string& code, std::size_t pos,
                  std::string_view word) {
  if (code.compare(pos, word.size(), word) != 0) {
    return false;
  }
  if (pos > 0 && is_ident_char(code[pos - 1])) {
    return false;
  }
  const std::size_t end = pos + word.size();
  return end >= code.size() || !is_ident_char(code[end]);
}

std::size_t skip_spaces(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Reads the identifier starting at `pos`; empty when none.
std::string read_ident(const std::string& code, std::size_t pos) {
  std::size_t end = pos;
  while (end < code.size() && is_ident_char(code[end])) {
    ++end;
  }
  if (end == pos || std::isdigit(static_cast<unsigned char>(code[pos])) != 0) {
    return std::string();
  }
  return code.substr(pos, end - pos);
}

/// The identifier ending immediately before `pos` (no space skipping).
std::string ident_ending_at(const std::string& code, std::size_t pos) {
  std::size_t begin = pos;
  while (begin > 0 && is_ident_char(code[begin - 1])) {
    --begin;
  }
  if (begin == pos ||
      std::isdigit(static_cast<unsigned char>(code[begin])) != 0) {
    return std::string();
  }
  return code.substr(begin, pos - begin);
}

/// Position one past the '>' matching the '<' at `pos` (npos when
/// unbalanced). Treats every '<'/'>' as a bracket, which is correct in the
/// template-argument contexts this scanner calls it from.
std::size_t match_angle(const std::string& code, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < code.size(); ++i) {
    if (code[i] == '<') {
      ++depth;
    } else if (code[i] == '>') {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (code[i] == ';') {
      return std::string::npos;  // statement ended; not a template list
    }
  }
  return std::string::npos;
}

/// Position one past the matching closer for the opener at `pos`.
std::size_t match_pair(const std::string& code, std::size_t pos, char open,
                       char close) {
  int depth = 0;
  for (std::size_t i = pos; i < code.size(); ++i) {
    if (code[i] == open) {
      ++depth;
    } else if (code[i] == close) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

// --- suppression directives --------------------------------------------------

struct Suppressions {
  /// 1-based line -> (rule, reason) directives covering that line.
  std::map<int, std::vector<std::pair<std::string, std::string>>> by_line;
  /// rule -> reason for whole-file waivers.
  std::map<std::string, std::string> by_file;
};

Suppressions parse_suppressions(const SourceView& view) {
  static const std::regex directive(
      R"(psllc-lint:\s*(allow|allow-file)\(\s*([A-Z]{3}-[0-9]{3})\s*:\s*([^)]+?)\s*\))");
  Suppressions supp;
  for (int l = 0; l < view.num_lines(); ++l) {
    const std::string& comment = view.comment_of_line[static_cast<std::size_t>(l)];
    if (comment.find("psllc-lint") == std::string::npos) {
      continue;
    }
    auto begin = std::sregex_iterator(comment.begin(), comment.end(),
                                      directive);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string kind = (*it)[1].str();
      const std::string rule = (*it)[2].str();
      const std::string reason = (*it)[3].str();
      if (kind == "allow-file") {
        supp.by_file.emplace(rule, reason);
        continue;
      }
      supp.by_line[l + 1].emplace_back(rule, reason);
      if (!view.line_has_code[static_cast<std::size_t>(l)]) {
        // Comment-only line: the directive covers the next line too.
        supp.by_line[l + 2].emplace_back(rule, reason);
      }
    }
  }
  return supp;
}

void apply_suppressions(const Suppressions& supp,
                        std::vector<Finding>& findings) {
  for (Finding& finding : findings) {
    const auto file_it = supp.by_file.find(finding.rule);
    if (file_it != supp.by_file.end()) {
      finding.suppressed = true;
      finding.suppress_reason = file_it->second;
      continue;
    }
    const auto line_it = supp.by_line.find(finding.line);
    if (line_it == supp.by_line.end()) {
      continue;
    }
    for (const auto& [rule, reason] : line_it->second) {
      if (rule == finding.rule) {
        finding.suppressed = true;
        finding.suppress_reason = reason;
        break;
      }
    }
  }
}

// --- DET-001 / DET-003: unordered containers --------------------------------

const char* const kUnorderedTemplates[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Names of variables/members declared with an unordered container type in
/// this file, plus type aliases (`using Foo = std::unordered_map<...>`) and
/// the variables declared through them.
std::set<std::string> collect_unordered_names(const std::string& code) {
  std::set<std::string> names;
  std::set<std::string> alias_types;
  for (const char* tmpl : kUnorderedTemplates) {
    const std::string_view word(tmpl);
    for (std::size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!matches_word(code, pos, word)) {
        continue;
      }
      std::size_t after = skip_spaces(code, pos + word.size());
      if (after >= code.size() || code[after] != '<') {
        continue;
      }
      const std::size_t close = match_angle(code, after);
      if (close == std::string::npos) {
        continue;
      }
      // `using Alias = std::unordered_map<...>;` registers an alias type.
      std::size_t before = pos;
      while (before > 0 && (code[before - 1] == ':' ||
                            std::isspace(static_cast<unsigned char>(
                                code[before - 1])) != 0)) {
        --before;
      }
      if (ident_ending_at(code, before) == "std") {
        before -= 3;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                 code[before - 1])) != 0) {
          --before;
        }
      }
      if (before > 0 && code[before - 1] == '=') {
        std::size_t eq = before - 1;
        while (eq > 0 && std::isspace(static_cast<unsigned char>(
                             code[eq - 1])) != 0) {
          --eq;
        }
        const std::string alias = ident_ending_at(code, eq);
        if (!alias.empty()) {
          alias_types.insert(alias);
        }
        continue;
      }
      std::size_t name_pos = skip_spaces(code, close);
      while (name_pos < code.size() &&
             (code[name_pos] == '&' || code[name_pos] == '*')) {
        name_pos = skip_spaces(code, name_pos + 1);
      }
      if (name_pos < code.size() && matches_word(code, name_pos, "const")) {
        name_pos = skip_spaces(code, name_pos + 5);
      }
      const std::string name = read_ident(code, name_pos);
      if (!name.empty()) {
        names.insert(name);
      }
    }
  }
  // Declarations through aliases: `Alias x;`, `const Alias& x`.
  for (const std::string& alias : alias_types) {
    for (std::size_t pos = code.find(alias); pos != std::string::npos;
         pos = code.find(alias, pos + 1)) {
      if (!matches_word(code, pos, alias)) {
        continue;
      }
      std::size_t name_pos = skip_spaces(code, pos + alias.size());
      while (name_pos < code.size() &&
             (code[name_pos] == '&' || code[name_pos] == '*')) {
        name_pos = skip_spaces(code, name_pos + 1);
      }
      const std::string name = read_ident(code, name_pos);
      if (!name.empty() && name != alias) {
        names.insert(name);
      }
    }
  }
  return names;
}

/// Names declared as float/double in this file (DET-003 accumulators).
std::set<std::string> collect_float_names(const std::string& code) {
  std::set<std::string> names;
  for (const char* type : {"double", "float"}) {
    const std::string_view word(type);
    for (std::size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!matches_word(code, pos, word)) {
        continue;
      }
      const std::size_t name_pos = skip_spaces(code, pos + word.size());
      const std::string name = read_ident(code, name_pos);
      if (!name.empty()) {
        names.insert(name);
      }
    }
  }
  return names;
}

/// The trailing identifier of a range-for's range expression: `m`,
/// `obj.member_`, `this->map_`. Empty for calls and other expressions the
/// scanner cannot attribute to a declaration.
std::string range_expr_ident(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(expr[end - 1])) != 0) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(expr[begin - 1])) {
    --begin;
  }
  if (begin == end) {
    return std::string();
  }
  return expr.substr(begin, end - begin);
}

void scan_unordered(const std::string& path, const SourceView& view,
                    std::vector<Finding>& findings) {
  const std::string& code = view.code;
  const std::set<std::string> unordered = collect_unordered_names(code);
  if (unordered.empty()) {
    return;
  }
  const std::set<std::string> floats = collect_float_names(code);

  // Range-for over an unordered name (DET-001) + float accumulation in the
  // loop body (DET-003).
  for (std::size_t pos = code.find("for"); pos != std::string::npos;
       pos = code.find("for", pos + 1)) {
    if (!matches_word(code, pos, "for")) {
      continue;
    }
    const std::size_t paren = skip_spaces(code, pos + 3);
    if (paren >= code.size() || code[paren] != '(') {
      continue;
    }
    const std::size_t paren_end = match_pair(code, paren, '(', ')');
    if (paren_end == std::string::npos) {
      continue;
    }
    const std::string inside = code.substr(paren + 1, paren_end - paren - 2);
    // The range-for ':' at top level (':' that is not part of '::').
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < inside.size(); ++i) {
      const char c = inside[i];
      if (c == '(' || c == '<' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == '>' || c == ']' || c == '}') {
        --depth;
      } else if (c == ':' && depth == 0) {
        if ((i + 1 < inside.size() && inside[i + 1] == ':') ||
            (i > 0 && inside[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) {
      continue;
    }
    const std::string ident = range_expr_ident(inside.substr(colon + 1));
    if (ident.empty() || !unordered.contains(ident)) {
      continue;
    }
    Finding finding;
    finding.rule = "DET-001";
    finding.path = path;
    finding.line = view.line_at(pos);
    finding.message = "range-for over unordered container '" + ident +
                      "' — iteration order is unspecified and must not "
                      "reach emitted results";
    findings.push_back(finding);

    // DET-003 inside this loop body.
    std::size_t body_begin = skip_spaces(code, paren_end);
    std::size_t body_end;
    if (body_begin < code.size() && code[body_begin] == '{') {
      body_end = match_pair(code, body_begin, '{', '}');
      if (body_end == std::string::npos) {
        body_end = code.size();
      }
    } else {
      body_end = code.find(';', body_begin);
      if (body_end == std::string::npos) {
        body_end = code.size();
      }
    }
    for (std::size_t i = body_begin; i + 1 < body_end; ++i) {
      if (code[i] != '+' || code[i + 1] != '=') {
        continue;
      }
      std::size_t lhs_end = i;
      while (lhs_end > body_begin &&
             std::isspace(static_cast<unsigned char>(code[lhs_end - 1])) !=
                 0) {
        --lhs_end;
      }
      const std::string lhs = ident_ending_at(code, lhs_end);
      if (lhs.empty() || !floats.contains(lhs)) {
        continue;
      }
      Finding acc;
      acc.rule = "DET-003";
      acc.path = path;
      acc.line = view.line_at(i);
      acc.message = "floating-point accumulation into '" + lhs +
                    "' inside an unordered-container loop — the sum "
                    "depends on iteration order";
      findings.push_back(acc);
    }
  }

  // Explicit iterator entry points on unordered names (DET-001).
  for (const char* member : {".begin", ".cbegin"}) {
    const std::string_view word(member);
    for (std::size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      const std::size_t after = pos + word.size();
      if (after >= code.size() || code[after] != '(') {
        continue;
      }
      const std::string ident = ident_ending_at(code, pos);
      if (ident.empty() || !unordered.contains(ident)) {
        continue;
      }
      Finding finding;
      finding.rule = "DET-001";
      finding.path = path;
      finding.line = view.line_at(pos);
      finding.message = std::string("iterator over unordered container '") +
                        ident + "' via " + std::string(word.substr(1)) +
                        "() — iteration order is unspecified";
      findings.push_back(finding);
    }
  }
}

// --- DET-002: banned nondeterminism sources ---------------------------------

void scan_banned_sources(const std::string& path, const SourceView& view,
                         std::vector<Finding>& findings) {
  const std::string& code = view.code;
  const auto add = [&](std::size_t pos, const std::string& what) {
    Finding finding;
    finding.rule = "DET-002";
    finding.path = path;
    finding.line = view.line_at(pos);
    finding.message = what + " — use the seeded generators in common/rng.h "
                      "(results must be bit-reproducible)";
    findings.push_back(finding);
  };

  for (const char* fn : {"rand", "srand"}) {
    const std::string_view word(fn);
    for (std::size_t pos = code.find(word); pos != std::string::npos;
         pos = code.find(word, pos + 1)) {
      if (!matches_word(code, pos, word)) {
        continue;
      }
      const std::size_t after = skip_spaces(code, pos + word.size());
      if (after < code.size() && code[after] == '(') {
        add(pos, "call to " + std::string(word) + "()");
      }
    }
  }
  for (std::size_t pos = code.find("random_device"); pos != std::string::npos;
       pos = code.find("random_device", pos + 1)) {
    if (matches_word(code, pos, "random_device")) {
      add(pos, "std::random_device is nondeterministic by definition");
    }
  }
  for (std::size_t pos = code.find("time"); pos != std::string::npos;
       pos = code.find("time", pos + 1)) {
    if (!matches_word(code, pos, "time")) {
      continue;
    }
    std::size_t after = skip_spaces(code, pos + 4);
    if (after >= code.size() || code[after] != '(') {
      continue;
    }
    after = skip_spaces(code, after + 1);
    for (const char* arg : {"nullptr", "NULL", "0"}) {
      const std::string_view word(arg);
      if (matches_word(code, after, word)) {
        const std::size_t close = skip_spaces(code, after + word.size());
        if (close < code.size() && code[close] == ')') {
          add(pos, "wall-clock seed time(" + std::string(word) + ")");
        }
        break;
      }
    }
  }
  // Pointer-value hashing/ordering: the numeric value of a pointer differs
  // per run (ASLR, allocator), so any ordering or hash derived from it is
  // nondeterministic.
  for (const char* tmpl : {"hash", "less", "greater"}) {
    const std::string find_str = std::string(tmpl);
    for (std::size_t pos = code.find(find_str); pos != std::string::npos;
         pos = code.find(find_str, pos + 1)) {
      if (!matches_word(code, pos, find_str)) {
        continue;
      }
      // Require std:: qualification so plain identifiers named `less` or a
      // repo-local hash() helper do not fire.
      if (pos < 2 || code.compare(pos - 2, 2, "::") != 0) {
        continue;
      }
      const std::size_t open = skip_spaces(code, pos + find_str.size());
      if (open >= code.size() || code[open] != '<') {
        continue;
      }
      const std::size_t close = match_angle(code, open);
      if (close == std::string::npos) {
        continue;
      }
      const std::string args = code.substr(open, close - open);
      if (args.find('*') != std::string::npos) {
        add(pos, "std::" + std::string(tmpl) +
                     "<T*> orders/hashes raw pointer values");
      }
    }
  }
  for (std::size_t pos = code.find("reinterpret_cast");
       pos != std::string::npos;
       pos = code.find("reinterpret_cast", pos + 1)) {
    if (!matches_word(code, pos, "reinterpret_cast")) {
      continue;
    }
    const std::size_t open = skip_spaces(code, pos + 16);
    if (open >= code.size() || code[open] != '<') {
      continue;
    }
    const std::size_t close = match_angle(code, open);
    if (close == std::string::npos) {
      continue;
    }
    const std::string target = code.substr(open, close - open);
    if (target.find("uintptr_t") != std::string::npos ||
        target.find("intptr_t") != std::string::npos) {
      add(pos, "reinterpret_cast of a pointer to an integer exposes the "
               "allocation address");
    }
  }
}

// --- CFG-001 / TRC-001: struct member scans ---------------------------------

const std::set<std::string>& scalar_types() {
  static const std::set<std::string> types = {
      "bool",          "char",          "short",        "int",
      "long",          "float",         "double",       "signed",
      "unsigned",      "size_t",        "std::size_t",  "ptrdiff_t",
      "std::ptrdiff_t", "std::int8_t",  "std::int16_t", "std::int32_t",
      "std::int64_t",  "std::uint8_t",  "std::uint16_t", "std::uint32_t",
      "std::uint64_t", "int8_t",        "int16_t",      "int32_t",
      "int64_t",       "uint8_t",       "uint16_t",     "uint32_t",
      "uint64_t",      "Cycle",         "Addr",         "LineAddr",
      "std::uintptr_t", "std::intptr_t"};
  return types;
}

const std::set<std::string>& nonfixed_int_types() {
  static const std::set<std::string> types = {
      "short", "int", "long", "signed", "unsigned", "size_t", "std::size_t",
      "ptrdiff_t", "std::ptrdiff_t"};
  return types;
}

/// Leading type token of a member declaration line: handles `std::` scope
/// chains as one token; returns empty when the line does not start with an
/// identifier. `const`/`mutable`/`volatile` qualifiers are skipped.
std::string leading_type_token(const std::string& line) {
  std::size_t pos = 0;
  const auto word_at = [&](std::size_t p) {
    std::string token;
    while (p < line.size() && (is_ident_char(line[p]) || line.compare(p, 2, "::") == 0)) {
      if (line.compare(p, 2, "::") == 0) {
        token += "::";
        p += 2;
      } else {
        token.push_back(line[p]);
        ++p;
      }
    }
    return token;
  };
  pos = line.find_first_not_of(" \t");
  if (pos == std::string::npos) {
    return std::string();
  }
  std::string token = word_at(pos);
  while (token == "const" || token == "mutable" || token == "volatile") {
    pos = line.find_first_not_of(" \t", pos + token.size());
    if (pos == std::string::npos) {
      return std::string();
    }
    token = word_at(pos);
  }
  return token;
}

bool is_trace_scope(const std::string& path, const std::string& name) {
  const auto ends_with = [](const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  if (ends_with(name, "Record") || ends_with(name, "Header")) {
    return true;
  }
  const std::string normalized = [&] {
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    return p;
  }();
  return normalized.find("src/trace/") != std::string::npos;
}

void scan_structs(const std::string& path, const SourceView& view,
                  std::vector<Finding>& findings) {
  const std::string& code = view.code;
  for (std::size_t pos = code.find("struct"); pos != std::string::npos;
       pos = code.find("struct", pos + 1)) {
    if (!matches_word(code, pos, "struct")) {
      continue;
    }
    std::size_t name_pos = skip_spaces(code, pos + 6);
    // Skip attributes like [[nodiscard]] between keyword and name.
    while (name_pos + 1 < code.size() && code[name_pos] == '[' &&
           code[name_pos + 1] == '[') {
      const std::size_t close = code.find("]]", name_pos);
      if (close == std::string::npos) {
        break;
      }
      name_pos = skip_spaces(code, close + 2);
    }
    const std::string name = read_ident(code, name_pos);
    if (name.empty()) {
      continue;  // anonymous struct or `struct {` — out of scope
    }
    // Find the body '{'; a ';' first means a forward declaration, a '('
    // first means an elaborated return/param type.
    std::size_t cursor = name_pos + name.size();
    std::size_t body = std::string::npos;
    for (; cursor < code.size(); ++cursor) {
      const char c = code[cursor];
      if (c == '{') {
        body = cursor;
        break;
      }
      if (c == ';' || c == '(' || c == ')' || c == '=') {
        break;
      }
    }
    if (body == std::string::npos) {
      continue;
    }
    const std::size_t body_end = match_pair(code, body, '{', '}');
    if (body_end == std::string::npos) {
      continue;
    }

    // A user-declared constructor takes over initialization duties: the
    // aggregate rule (CFG-001) only applies to constructor-less structs.
    bool has_ctor = false;
    for (std::size_t p = code.find(name, body); p != std::string::npos && p < body_end;
         p = code.find(name, p + 1)) {
      if (!matches_word(code, p, name)) {
        continue;
      }
      const std::size_t after = skip_spaces(code, p + name.size());
      if (after < code.size() && code[after] == '(') {
        has_ctor = true;
        break;
      }
    }

    const bool trace_scope = is_trace_scope(path, name);

    // Walk the body line by line at nesting depth 1 (members of nested
    // structs are analyzed by their own `struct` match).
    int depth = 0;
    std::size_t line_begin = body;
    for (std::size_t i = body; i < body_end; ++i) {
      const char c = code[i];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
      }
      if (c != '\n' && i + 1 != body_end) {
        continue;
      }
      const std::size_t line_end = i;
      if (depth == 1 && line_end > line_begin) {
        const std::string line =
            code.substr(line_begin, line_end - line_begin);
        // Member-declaration shape: ends in ';', is not a function or a
        // using/static/template line.
        const std::size_t semi = line.rfind(';');
        if (semi != std::string::npos &&
            line.find('(') == std::string::npos &&
            line.find(')') == std::string::npos &&
            line.find("using") == std::string::npos &&
            line.find("static") == std::string::npos &&
            line.find("template") == std::string::npos &&
            line.find("friend") == std::string::npos) {
          const std::string type = leading_type_token(line);
          if (!type.empty() && type != name) {
            const bool initialized =
                line.find('=') != std::string::npos ||
                line.find('{') != std::string::npos;
            if (!has_ctor && !initialized &&
                scalar_types().count(type) != 0) {
              Finding finding;
              finding.rule = "CFG-001";
              finding.path = path;
              finding.line = view.line_at(line_begin +
                                          line.find_first_not_of(" \t"));
              finding.message = "field of aggregate struct '" + name +
                                "' has no default initializer — an "
                                "uninitialized config field reads "
                                "indeterminate values";
              findings.push_back(finding);
            }
            if (trace_scope && nonfixed_int_types().count(type) != 0) {
              Finding finding;
              finding.rule = "TRC-001";
              finding.path = path;
              finding.line = view.line_at(line_begin +
                                          line.find_first_not_of(" \t"));
              finding.message = "trace-format struct '" + name +
                                "' uses non-fixed-width integer type '" +
                                type + "' — on-disk layouts need <cstdint> "
                                "types";
              findings.push_back(finding);
            }
          }
        }
      }
      line_begin = line_end + 1;
    }
  }
}

}  // namespace

// --- public API --------------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"DET-001", "iteration over an unordered container"},
      {"DET-002", "banned nondeterminism source (rand/time/random_device/"
                  "pointer hashing)"},
      {"DET-003", "order-dependent floating-point accumulation"},
      {"CFG-001", "aggregate struct field without a default initializer"},
      {"TRC-001", "non-fixed-width integer in a trace-format struct"},
  };
  return catalog;
}

std::vector<Finding> lint_source(const std::string& path,
                                 std::string_view text) {
  const SourceView view = build_view(text);
  std::vector<Finding> findings;
  scan_unordered(path, view, findings);
  scan_banned_sources(path, view, findings);
  scan_structs(path, view, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) {
                return a.line < b.line;
              }
              return a.rule < b.rule;
            });
  apply_suppressions(parse_suppressions(view), findings);
  return findings;
}

LintReport lint_files(const std::vector<std::filesystem::path>& files) {
  LintReport report;
  for (const std::filesystem::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      throw std::runtime_error("psllc_lint: cannot read " + file.string());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> findings =
        lint_source(file.generic_string(), buffer.str());
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
    ++report.files_scanned;
  }
  return report;
}

int LintReport::unsuppressed_count() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

int LintReport::suppressed_count() const {
  return static_cast<int>(findings.size()) - unsuppressed_count();
}

results::Json LintReport::to_json() const {
  results::Json root = results::Json::make_object();
  root.set("tool", results::Json::make_string("psllc_lint"));
  root.set("files_scanned", results::Json::make_int(files_scanned));
  root.set("unsuppressed", results::Json::make_int(unsuppressed_count()));
  root.set("suppressed", results::Json::make_int(suppressed_count()));
  results::Json rules = results::Json::make_array();
  for (const RuleInfo& info : rule_catalog()) {
    results::Json rule = results::Json::make_object();
    rule.set("id", results::Json::make_string(info.id));
    rule.set("summary", results::Json::make_string(info.summary));
    rules.push_back(std::move(rule));
  }
  root.set("rules", std::move(rules));
  results::Json list = results::Json::make_array();
  for (const Finding& finding : findings) {
    results::Json entry = results::Json::make_object();
    entry.set("rule", results::Json::make_string(finding.rule));
    entry.set("file", results::Json::make_string(finding.path));
    entry.set("line", results::Json::make_int(finding.line));
    entry.set("message", results::Json::make_string(finding.message));
    entry.set("suppressed", results::Json::make_bool(finding.suppressed));
    if (finding.suppressed) {
      entry.set("reason",
                results::Json::make_string(finding.suppress_reason));
    }
    list.push_back(std::move(entry));
  }
  root.set("findings", std::move(list));
  return root;
}

std::vector<std::filesystem::path> collect_tree_files(
    const std::filesystem::path& compile_commands,
    const std::filesystem::path& root) {
  std::ifstream in(compile_commands, std::ios::binary);
  if (!in) {
    throw std::runtime_error("psllc_lint: cannot read compilation database " +
                             compile_commands.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  results::Json db;
  try {
    db = results::Json::parse(buffer.str());
  } catch (const results::JsonParseError& error) {
    throw std::runtime_error("psllc_lint: malformed compilation database " +
                             compile_commands.string() + ": " + error.what());
  }

  const std::filesystem::path canonical_root =
      std::filesystem::weakly_canonical(root);
  const auto in_scope = [&](const std::filesystem::path& path) {
    const std::filesystem::path canonical =
        std::filesystem::weakly_canonical(path);
    const std::string text = canonical.generic_string();
    const std::string prefix = canonical_root.generic_string();
    if (text.compare(0, prefix.size(), prefix) != 0) {
      return false;
    }
    const std::string rel = text.substr(prefix.size());
    return rel.rfind("/src/", 0) == 0 || rel.rfind("/bench/", 0) == 0 ||
           rel.rfind("/tools/", 0) == 0;
  };

  std::set<std::filesystem::path> files;
  for (const results::Json& entry : db.as_array()) {
    const results::Json* file = entry.find("file");
    if (file == nullptr) {
      continue;
    }
    std::filesystem::path path(file->as_string());
    if (path.is_relative()) {
      const results::Json* dir = entry.find("directory");
      if (dir != nullptr) {
        path = std::filesystem::path(dir->as_string()) / path;
      }
    }
    if (in_scope(path)) {
      files.insert(std::filesystem::weakly_canonical(path));
    }
  }
  // Headers are not translation units; walk the scanned directories.
  for (const char* subdir : {"src", "bench", "tools"}) {
    const std::filesystem::path dir = canonical_root / subdir;
    if (!std::filesystem::is_directory(dir)) {
      continue;
    }
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp") {
        files.insert(std::filesystem::weakly_canonical(entry.path()));
      }
    }
  }
  return {files.begin(), files.end()};
}

}  // namespace psllc::lint
