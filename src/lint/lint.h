// Determinism-focused static analysis for the simulator tree (the engine
// behind tools/psllc_lint).
//
// The repo's headline reproducibility claims — sharded sweeps merging
// bit-identical to serial runs, goldens compared byte-for-byte — are
// exactly what silent nondeterminism destroys without failing a test:
// unordered-container iteration feeding an emitted series, a stray
// time()/rand() call, float accumulation in an unspecified order, an
// uninitialized config field read before first write. This pass scans the
// sources lexically (comments and string literals are blanked first) for
// simulator-specific hazard patterns:
//
//   DET-001  iteration over std::unordered_{map,set,multimap,multiset}
//            (range-for or .begin()/.cbegin()) — iteration order is
//            unspecified and varies across libstdc++ versions, so any such
//            loop on a path feeding results/series/store emission is a
//            reproducibility bug.
//   DET-002  banned nondeterminism sources: rand()/srand()/std::rand,
//            std::random_device, time(nullptr)/time(NULL)/time(0),
//            pointer-value hashing/ordering (std::hash<T*>, std::less<T*>,
//            reinterpret_cast to [u]intptr_t). Workload synthesis must go
//            through common/rng.h (seeded, portable streams).
//   DET-003  floating-point accumulation (+= on a float/double) inside an
//            unordered-container loop — the sum depends on iteration order.
//   CFG-001  scalar field of a constructor-less (aggregate) struct without
//            a default member initializer — a forgotten field in one of
//            the config/POD structs reads indeterminate values and
//            poisons results without crashing.
//   TRC-001  non-fixed-width integer member (int/long/unsigned/size_t/...)
//            in a trace-format struct (struct named *Record/*Header, or
//            any struct under src/trace/) — on-disk layouts must use
//            <cstdint> fixed-width types.
//
// Findings are suppressed in place with a written reason:
//   code();  // psllc-lint: allow(DET-001: order-insensitive max-reduce)
// A directive suppresses its own line; a directive on a comment-only line
// also covers the line directly below it. `allow-file(RULE: reason)`
// suppresses the rule for the whole file. Reasons are mandatory — a
// directive without one suppresses nothing.
//
// The analysis is lexical by design: it has no false-negative ambitions
// beyond its patterns, but it runs in milliseconds over the whole tree,
// needs no compiler integration, and every rule is precise enough that a
// finding is either a bug or a one-line suppression with a reason the
// reviewer can audit. tests/lint_fixtures/ pins each rule's behavior.
#ifndef PSLLC_LINT_LINT_H_
#define PSLLC_LINT_LINT_H_

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "results/json.h"

namespace psllc::lint {

/// One rule hit at a source location. Suppressed findings are retained
/// (with their reason) so reports can show what was waived and why.
struct Finding {
  std::string rule;             ///< "DET-001", ...
  std::string path;             ///< file as given to the scanner
  int line = 0;                 ///< 1-based
  std::string message;          ///< what fired and why it matters
  bool suppressed = false;      ///< matched an allow() directive
  std::string suppress_reason;  ///< the directive's written reason
};

/// All findings over a set of files.
struct LintReport {
  std::vector<Finding> findings;
  int files_scanned = 0;

  [[nodiscard]] int unsuppressed_count() const;
  [[nodiscard]] int suppressed_count() const;
  /// Machine-readable report (schema documented in README).
  [[nodiscard]] results::Json to_json() const;
};

/// The rule catalog (id + one-line description), e.g. for --rules output.
struct RuleInfo {
  const char* id = nullptr;
  const char* summary = nullptr;
};
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Lints one in-memory source. `path` is used for reporting and for the
/// TRC-001 trace-directory scope.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               std::string_view text);

/// Lints files from disk. Throws std::runtime_error on an unreadable file.
[[nodiscard]] LintReport lint_files(
    const std::vector<std::filesystem::path>& files);

/// The tree-scan file set: every compile_commands.json translation unit
/// under `root`/{src,bench,tools}, plus every *.h/*.hpp found by walking
/// those directories (headers are not TUs but hold most of this repo's
/// code). Sorted, deduplicated. Throws std::runtime_error when the
/// compilation database is missing or malformed.
[[nodiscard]] std::vector<std::filesystem::path> collect_tree_files(
    const std::filesystem::path& compile_commands,
    const std::filesystem::path& root);

}  // namespace psllc::lint

#endif  // PSLLC_LINT_LINT_H_
