#include "llc/directory.h"

#include <algorithm>

#include "common/assert.h"

namespace psllc::llc {

void InclusiveDirectory::add_sharer(LineAddr line, CoreId core) {
  PSLLC_ASSERT(core.valid(), "invalid core");
  auto& sharers = map_[line];
  PSLLC_ASSERT(std::find(sharers.begin(), sharers.end(), core) ==
                   sharers.end(),
               to_string(core) << " already shares line 0x" << std::hex
                               << line);
  sharers.push_back(core);
}

bool InclusiveDirectory::remove_sharer(LineAddr line, CoreId core) {
  auto it = map_.find(line);
  if (it == map_.end()) {
    return false;
  }
  auto& sharers = it->second;
  auto pos = std::find(sharers.begin(), sharers.end(), core);
  if (pos == sharers.end()) {
    return false;
  }
  sharers.erase(pos);
  if (sharers.empty()) {
    map_.erase(it);
  }
  return true;
}

std::vector<CoreId> InclusiveDirectory::sharers(LineAddr line) const {
  auto it = map_.find(line);
  return it == map_.end() ? std::vector<CoreId>{} : it->second;
}

bool InclusiveDirectory::is_shared_by(LineAddr line, CoreId core) const {
  auto it = map_.find(line);
  if (it == map_.end()) {
    return false;
  }
  return std::find(it->second.begin(), it->second.end(), core) !=
         it->second.end();
}

int InclusiveDirectory::sharer_count(LineAddr line) const {
  auto it = map_.find(line);
  return it == map_.end() ? 0 : static_cast<int>(it->second.size());
}

void InclusiveDirectory::clear_line(LineAddr line) { map_.erase(line); }

void InclusiveDirectory::absorb(const InclusiveDirectory& other) {
  for (const auto& [line, sharers] : other.map_) {
    PSLLC_ASSERT(map_.find(line) == map_.end(),
                 "absorb: line 0x" << std::hex << line
                                   << " tracked by both directories");
    map_.emplace(line, sharers);
  }
}

}  // namespace psllc::llc
