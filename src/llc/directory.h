// Inclusive sharer directory: for every line resident in the LLC, which
// cores hold a private copy (the paper's "l1 : c3" annotations).
//
// The directory is what makes back-invalidation possible: when the LLC
// evicts a line it must force every private copy out (inclusive property,
// paper Section 3). Workloads in the paper are data-disjoint, so lines have
// at most one sharer there; the directory nevertheless supports read
// sharing, and the system model flags writes to multi-sharer lines (a
// predictable coherence protocol is out of scope, see DESIGN.md).
#ifndef PSLLC_LLC_DIRECTORY_H_
#define PSLLC_LLC_DIRECTORY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace psllc::llc {

class InclusiveDirectory {
 public:
  /// Records that `core` now holds a private copy of `line`.
  void add_sharer(LineAddr line, CoreId core);

  /// Records that `core` no longer holds `line`. No-op if it was not
  /// recorded (e.g. double notification); returns whether it was present.
  bool remove_sharer(LineAddr line, CoreId core);

  /// All sharers of `line` (empty when none).
  [[nodiscard]] std::vector<CoreId> sharers(LineAddr line) const;

  [[nodiscard]] bool is_shared_by(LineAddr line, CoreId core) const;
  [[nodiscard]] int sharer_count(LineAddr line) const;

  /// Drops all sharer state for `line` (LLC entry invalidated).
  void clear_line(LineAddr line);

  /// Number of lines with at least one sharer.
  [[nodiscard]] int tracked_lines() const {
    return static_cast<int>(map_.size());
  }

  /// Content equality: same lines with the same sharers in the same arrival
  /// order. unordered_map equality is bucket-order independent, and sharer
  /// vectors are deterministic under replay. Parallel-replay reconciliation.
  [[nodiscard]] bool operator==(const InclusiveDirectory& other) const =
      default;

  /// Parallel-replay solo composition: merges a per-lane solo run's
  /// directory. Line sets must be disjoint (the caller gates composition on
  /// data-disjoint workloads).
  void absorb(const InclusiveDirectory& other);

 private:
  // Small-vector semantics: nearly all lines have 0 or 1 sharer.
  std::unordered_map<LineAddr, std::vector<CoreId>> map_;
};

}  // namespace psllc::llc

#endif  // PSLLC_LLC_DIRECTORY_H_
