#include "llc/llc.h"

namespace psllc::llc {

void LlcConfig::validate() const {
  geometry.validate();
  PSLLC_CONFIG_CHECK(lookup_latency > 0, "LLC lookup latency must be > 0");
}

// The virtual-dispatch conformance instantiation every non-kernel consumer
// links against (declared extern in llc.h). The kernel's concrete-backend
// instantiations are emitted in sim/kernel.cc.
template class BasicPartitionedLlc<mem::MemoryBackend>;

}  // namespace psllc::llc
