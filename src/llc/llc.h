// The shared, partitioned, inclusive last-level cache (paper Section 3).
//
// The LLC services one bus message per TDM slot:
//  * requests — hit (respond in slot), fill (allocate a free entry, fetch
//    from DRAM, respond in slot), or block (set full / not at the head of
//    the set-sequencer queue);
//  * write-backs — voluntary (dirty private victim, data merge) or freeing
//    (answer to a back-invalidation; the entry becomes free when the last
//    sharer's write-back arrives).
//
// Eviction trigger rule (reconstructed from Figures 3 and 4 slot-by-slot):
// a blocked request presentation triggers at most one new eviction, and only
// when  free_entries + in_flight_evictions < pending_requests  for that
// (partition, set). Victims already pending invalidation are ineligible.
// A victim with no private sharers is freed immediately (dirty data drains
// to DRAM off the critical path); a victim with sharers starts a
// back-invalidation that the *system* delivers to the owning cores — their
// forced write-backs later free the entry.
//
// Contention modes: kBestEffort (the paper's NSS — any pending requester
// whose slot arrives first claims a freed entry, so the analysis' distance
// can increase, Observation 3) and kSetSequencer (the paper's SS — FIFO
// arrival order enforced by the set sequencer, Theorem 4.8).
//
// The class is a template over the memory-backend type. The default
// instantiation (`PartitionedLlc`, Memory = mem::MemoryBackend) dispatches
// DRAM accesses virtually and is the conformance path used by core::System;
// the replay kernel (sim/kernel.h) instantiates it against each concrete
// `final` backend so the compiler devirtualizes and inlines the fill/drain
// calls on the hot path. Both instantiations execute the same member bodies
// (llc_impl.h), so behavior is identical by construction.
#ifndef PSLLC_LLC_LLC_H_
#define PSLLC_LLC_LLC_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "llc/directory.h"
#include "llc/partition.h"
#include "llc/set_sequencer.h"
#include "mem/cache_set.h"
#include "mem/memory_backend.h"

namespace psllc::llc {

/// How contending requests to a shared partition are ordered.
enum class ContentionMode : std::uint8_t {
  kSetSequencer,  ///< the paper's SS
  kBestEffort,    ///< the paper's NSS
};

[[nodiscard]] constexpr const char* to_string(ContentionMode m) {
  return m == ContentionMode::kSetSequencer ? "SS" : "NSS";
}

struct LlcConfig {
  mem::CacheGeometry geometry{32, 16, 64};  // paper §5: 16-way, 32 sets
  mem::ReplacementKind replacement = mem::ReplacementKind::kLru;
  Cycle lookup_latency = 5;
  /// Paper mode: a back-invalidation always costs the owner a write-back
  /// slot, even when its private copy is clean (Figures 2-4 show "WB l" for
  /// every eviction). When false, clean owners acknowledge silently.
  bool clean_back_inval_costs_slot = true;
  std::uint64_t seed = 0;

  void validate() const;
};

/// A back-invalidation the system must deliver: every owner evicts `line`
/// from its private caches and answers with a freeing write-back.
struct BackInvalidation {
  LineAddr line = 0;
  std::vector<CoreId> owners;
};

/// Outcome of presenting a request in the owner's slot.
struct RequestOutcome {
  enum class Status : std::uint8_t {
    kHit,     ///< line present; response within this slot
    kFilled,  ///< free entry allocated + DRAM fetch; response within slot
    kBlocked, ///< cannot complete this slot; request remains pending
  };
  Status status = Status::kBlocked;
  /// Eviction started by this presentation, if any.
  std::optional<BackInvalidation> back_invalidation;

  [[nodiscard]] bool completed() const {
    return status != Status::kBlocked;
  }
};

/// Outcome of a write-back arrival.
struct WritebackOutcome {
  bool freed_entry = false;  ///< the LLC entry became free (last ack)
};

/// LLC statistics. Hoisted to namespace scope so every backend
/// instantiation of BasicPartitionedLlc shares one Stats type — RunMetrics
/// stores it by value regardless of which instantiation produced it.
struct LlcStats {
  std::int64_t hit_presentations = 0;
  std::int64_t blocked_presentations = 0;
  std::int64_t fills = 0;
  std::int64_t evictions_started = 0;
  std::int64_t immediate_frees = 0;
  std::int64_t voluntary_writebacks = 0;
  std::int64_t freeing_writebacks = 0;
  std::int64_t steals = 0;  ///< NSS: allocations past an older waiter
  /// Write requests to lines privately shared by other cores (coherence
  /// would be required; flagged because it is outside the paper's model).
  std::int64_t shared_write_flags = 0;
  // --- dynamic repartitioning (all zero for static programs) ---
  std::int64_t repartitions = 0;        ///< mode transitions begun
  std::int64_t drain_writebacks = 0;    ///< dirty drain lines written to DRAM
  std::int64_t drain_back_invals = 0;   ///< back-invalidations issued by drains

  [[nodiscard]] bool operator==(const LlcStats&) const = default;

  /// Field-wise sum — parallel-replay solo composition folds per-lane stats.
  LlcStats& operator+=(const LlcStats& other) {
    hit_presentations += other.hit_presentations;
    blocked_presentations += other.blocked_presentations;
    fills += other.fills;
    evictions_started += other.evictions_started;
    immediate_frees += other.immediate_frees;
    voluntary_writebacks += other.voluntary_writebacks;
    freeing_writebacks += other.freeing_writebacks;
    steals += other.steals;
    shared_write_flags += other.shared_write_flags;
    repartitions += other.repartitions;
    drain_writebacks += other.drain_writebacks;
    drain_back_invals += other.drain_back_invals;
    return *this;
  }
};

template <typename Memory = mem::MemoryBackend>
class BasicPartitionedLlc {
 public:
  using Stats = LlcStats;

  /// `memory` (the backing-store model behind the LLC) must outlive the
  /// LLC. `num_cores` sizes pending-request state and the set sequencer.
  BasicPartitionedLlc(const LlcConfig& config, PartitionProgram program,
                      ContentionMode mode, int num_cores, Memory& memory);

  /// Static-map convenience: a single-mode program.
  BasicPartitionedLlc(const LlcConfig& config, PartitionMap partitions,
                      ContentionMode mode, int num_cores, Memory& memory);

  [[nodiscard]] const LlcConfig& config() const { return config_; }
  /// The *currently active* mode's map (mode 0 until the first transition).
  [[nodiscard]] const PartitionMap& partitions() const {
    return program_.mode(mode_index_).map;
  }
  [[nodiscard]] const PartitionProgram& program() const { return program_; }
  [[nodiscard]] ContentionMode mode() const { return mode_; }

  // --- mode-transition protocol ------------------------------------------
  //
  // Both replay engines call advance_transition() at the top of every
  // executed slot, before the bus message is picked. When a mode epoch has
  // been reached it switches the active map, freezes every (set, way) slot
  // whose partition assignment changed, and starts draining incompatible
  // resident lines: ownerless lines are written back to DRAM immediately,
  // privately-owned lines are back-invalidated (one outstanding
  // drain-invalidation per owner core at a time, so forced write-backs
  // cannot overflow the bounded pending-writeback queues). Frozen slots
  // become allocatable only at the drain fence — the slot at which the
  // last incompatible line has left the cache.

  /// Begins/advances any due transition; returns the back-invalidations the
  /// system must deliver to private caches this slot.
  [[nodiscard]] std::vector<BackInvalidation> advance_transition(
      Cycle slot_start);

  /// True between a transition's begin and its drain fence.
  [[nodiscard]] bool transition_active() const { return transition_active_; }

  /// Epoch of the next not-yet-begun mode, or kNoCycle when none remain.
  [[nodiscard]] Cycle next_transition_epoch() const {
    return mode_index_ + 1 < program_.num_modes()
               ? program_.mode(mode_index_ + 1).start_cycle
               : kNoCycle;
  }

  /// True when [a, b] intersects any transition window (begin..fence, with
  /// a still-open window extending to +inf).
  [[nodiscard]] bool overlaps_transition(Cycle a, Cycle b) const;

  /// Presents `core`'s request for `line` (first time or retry) in its
  /// slot. `access` is used for diagnostics only: a write request to a line
  /// other cores privately share is counted in stats().shared_write_flags
  /// (the paper assumes data-disjoint tasks; a predictable coherence
  /// protocol is out of scope, see DESIGN.md).
  RequestOutcome handle_request(CoreId core, LineAddr line, Cycle now,
                                AccessType access = AccessType::kRead);

  /// A write-back from `core` arrives on the bus. `frees_entry` marks the
  /// answer to a back-invalidation.
  WritebackOutcome handle_writeback(CoreId core, LineAddr line,
                                    bool carries_dirty_data, bool frees_entry,
                                    Cycle now);

  /// Directory update for a silent clean private eviction (no bus slot).
  void notify_silent_eviction(CoreId core, LineAddr line);

  /// Immediate acknowledgement of a back-invalidation without a bus
  /// write-back (clean owner, when !clean_back_inval_costs_slot).
  WritebackOutcome ack_back_invalidation_silent(CoreId core, LineAddr line,
                                                Cycle now);

  /// Abandons `core`'s pending request (trace finished mid-request; also
  /// used by failure-injection tests).
  void drop_pending_request(CoreId core);

  // --- test/introspection interface -------------------------------------

  struct EntryView {
    bool valid = false;
    LineAddr line = 0;
    bool dirty = false;
    bool pending_inval = false;
    int pending_acks = 0;
    std::vector<CoreId> sharers;
  };

  [[nodiscard]] EntryView entry(int physical_set, int way) const;
  /// Way holding `line` within `core`'s partition (valid entries only), or
  /// -1.
  [[nodiscard]] int find_way(CoreId core, LineAddr line) const;
  [[nodiscard]] int free_ways(CoreId core, LineAddr line) const;
  [[nodiscard]] SetKey key_for(CoreId core, LineAddr line) const;
  [[nodiscard]] bool has_pending_request(CoreId core) const;
  [[nodiscard]] LineAddr pending_line(CoreId core) const;
  [[nodiscard]] const SetSequencer& sequencer() const { return sequencer_; }
  [[nodiscard]] const InclusiveDirectory& directory() const {
    return directory_;
  }

  /// Installs `line` as if previously fetched, with the given sharers (test
  /// scenario setup; private caches must be preloaded separately).
  void preload(LineAddr line, const std::vector<CoreId>& sharers, bool dirty);

  /// Model invariant sweep for property tests: pending-ack counts match
  /// directory state, pending flags only on valid lines, sequencer queues
  /// only contain cores with pending requests. Throws AssertionError on
  /// violation.
  void check_invariants() const;

  // --- statistics --------------------------------------------------------
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // --- parallel replay support -------------------------------------------

  /// Repoints the DRAM backend after this LLC was copied into or restored
  /// from a snapshot (the snapshot carries its own backend by value; the
  /// embedded pointer goes stale the moment the snapshot outlives the
  /// original kernel).
  void rebind_memory(Memory& memory) { memory_ = &memory; }

  /// True iff the two LLCs are observably identical: same active mode, tag
  /// arrays + replacement state, entry/pending/transition bookkeeping,
  /// directory, sequencer ordering (canonical form), and statistics.
  /// `memory_` is excluded — the backend is snapshotted separately.
  [[nodiscard]] bool same_state(const BasicPartitionedLlc& other) const;

  /// Parallel-replay solo composition: grafts `core`'s partition state from
  /// a single-lane solo run into this fresh LLC. Sound only when partitions
  /// are set-disjoint single-sharer and the program is static — the caller
  /// (sim/parallel_replay.cc) gates on exactly that.
  void adopt_solo_lane(const BasicPartitionedLlc& solo, CoreId core);

 private:
  struct Pending {
    LineAddr line = 0;
    int partition = -1;
    int physical_set = -1;
    Cycle first_presented = kNoCycle;

    [[nodiscard]] bool operator==(const Pending&) const = default;
  };

  struct EntryState {
    bool pending_inval = false;
    int pending_acks = 0;
    /// Line is incompatible with the active mode and must leave the cache
    /// before the drain fence.
    bool draining = false;
    /// This drain's back-invalidation has been issued (drain bookkeeping
    /// owns the per-core serialization counters).
    bool drain_issued = false;

    [[nodiscard]] bool operator==(const EntryState&) const = default;
  };

  [[nodiscard]] int partition_of_checked(CoreId core) const;
  [[nodiscard]] mem::CacheSet& set_at(int physical_set);
  [[nodiscard]] const mem::CacheSet& set_at(int physical_set) const;
  [[nodiscard]] EntryState& entry_state(int physical_set, int way);
  [[nodiscard]] const EntryState& entry_state(int physical_set, int way) const;

  /// Way holding `line` among `spec`'s ways of `physical_set` (valid only;
  /// includes pending-invalidation entries), or -1.
  [[nodiscard]] int find_way_raw(const PartitionSpec& spec, int physical_set,
                                 LineAddr line) const;
  /// Invalid way within the partition's way range, or -1.
  [[nodiscard]] int find_free_way(const PartitionSpec& spec,
                                  int physical_set) const;
  [[nodiscard]] int count_free_ways(const PartitionSpec& spec,
                                    int physical_set) const;
  [[nodiscard]] int count_pending_invals(const PartitionSpec& spec,
                                         int physical_set) const;
  [[nodiscard]] int count_pending_requests(int partition,
                                           int physical_set) const;

  /// Allocation permission under the active contention mode.
  [[nodiscard]] bool may_allocate(SetKey key, CoreId core) const;

  void complete_pending(CoreId core, SetKey key);
  WritebackOutcome apply_back_inval_ack(CoreId core, LineAddr line,
                                        bool dirty_data, Cycle now);

  // --- transition internals ----------------------------------------------
  [[nodiscard]] bool slot_frozen(int physical_set, int way) const {
    return !frozen_.empty() &&
           frozen_[static_cast<std::size_t>(physical_set) *
                       static_cast<std::size_t>(config_.geometry.num_ways) +
                   static_cast<std::size_t>(way)];
  }
  /// (set, way) of `line` anywhere in the cache, or (-1, -1). Acks and
  /// write-backs issued before a mode switch may reference pre-transition
  /// locations the active map no longer describes.
  [[nodiscard]] std::pair<int, int> locate_line(LineAddr line) const;
  /// True when the resident entry at (set, way) is placed where the active
  /// map would place it and all its sharers belong to that partition.
  [[nodiscard]] bool entry_compatible(int physical_set, int way) const;
  void begin_transition(Cycle slot_start);
  void pump_drain(Cycle slot_start, std::vector<BackInvalidation>& out);
  void complete_transition(Cycle slot_start);
  void free_drained_entry(int physical_set, int way, Cycle now);

  LlcConfig config_;
  PartitionProgram program_;
  int mode_index_ = 0;
  ContentionMode mode_;
  Memory* memory_;
  std::vector<mem::CacheSet> sets_;
  std::vector<std::vector<EntryState>> entry_states_;
  InclusiveDirectory directory_;
  SetSequencer sequencer_;
  std::vector<std::optional<Pending>> pending_;
  // Transition state (empty/false for static programs).
  bool transition_active_ = false;
  std::vector<bool> frozen_;  ///< sets x ways; non-empty only mid-transition
  std::vector<std::pair<int, int>> drain_queue_;  ///< (set, way) scan order
  std::set<LineAddr> draining_lines_;
  int drain_remaining_ = 0;
  std::vector<int> core_drain_busy_;  ///< outstanding drain invals per core
  std::vector<std::pair<Cycle, Cycle>> transition_windows_;
  Stats stats_;
};

}  // namespace psllc::llc

#include "llc/llc_impl.h"  // template member definitions

namespace psllc::llc {

// The virtual-dispatch instantiation lives in llc.cc; everything that only
// needs the conformance path links against it instead of re-instantiating.
extern template class BasicPartitionedLlc<mem::MemoryBackend>;

using PartitionedLlc = BasicPartitionedLlc<mem::MemoryBackend>;

}  // namespace psllc::llc

#endif  // PSLLC_LLC_LLC_H_
