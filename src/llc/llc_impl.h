// Member definitions of llc::BasicPartitionedLlc. Included at the bottom
// of llc.h only — the bodies are shared verbatim by every backend
// instantiation (the virtual conformance path and the kernel's
// devirtualized concrete paths), which is what keeps the two bit-identical
// by construction.
#ifndef PSLLC_LLC_LLC_IMPL_H_
#define PSLLC_LLC_LLC_IMPL_H_

#ifndef PSLLC_LLC_LLC_H_
#error "llc_impl.h must be included via llc/llc.h"
#endif

#include <utility>

#include "common/log.h"
#include "common/rng.h"
#include "mem/replacement.h"

namespace psllc::llc {

template <typename Memory>
BasicPartitionedLlc<Memory>::BasicPartitionedLlc(const LlcConfig& config,
                                                 PartitionProgram program,
                                                 ContentionMode mode,
                                                 int num_cores, Memory& memory)
    : config_(config),
      program_(std::move(program)),
      mode_(mode),
      memory_(&memory),
      sequencer_(num_cores, num_cores),
      pending_(static_cast<std::size_t>(num_cores)),
      core_drain_busy_(static_cast<std::size_t>(num_cores), 0) {
  config_.validate();
  PSLLC_CONFIG_CHECK(num_cores > 0, "need >=1 core");
  PSLLC_CONFIG_CHECK(program_.num_modes() > 0, "partition program is empty");
  PSLLC_CONFIG_CHECK(
      program_.geometry().num_sets == config_.geometry.num_sets &&
          program_.geometry().num_ways == config_.geometry.num_ways &&
          program_.geometry().line_bytes == config_.geometry.line_bytes,
      "partition program geometry differs from LLC geometry");
  sets_.reserve(static_cast<std::size_t>(config_.geometry.num_sets));
  entry_states_.reserve(static_cast<std::size_t>(config_.geometry.num_sets));
  for (int s = 0; s < config_.geometry.num_sets; ++s) {
    sets_.emplace_back(config_.geometry.num_ways,
                       mem::make_replacement_policy(
                           config_.replacement, config_.geometry.num_ways,
                           mix_seed(config_.seed,
                                    static_cast<std::uint64_t>(s), 0x11c)));
    entry_states_.emplace_back(
        static_cast<std::size_t>(config_.geometry.num_ways));
  }
}

template <typename Memory>
BasicPartitionedLlc<Memory>::BasicPartitionedLlc(const LlcConfig& config,
                                                 PartitionMap partitions,
                                                 ContentionMode mode,
                                                 int num_cores, Memory& memory)
    : BasicPartitionedLlc(config, PartitionProgram(std::move(partitions)),
                          mode, num_cores, memory) {}

template <typename Memory>
int BasicPartitionedLlc<Memory>::partition_of_checked(CoreId core) const {
  const int pid = partitions().partition_of(core);
  PSLLC_ASSERT(pid >= 0, to_string(core) << " has no LLC partition");
  return pid;
}

template <typename Memory>
mem::CacheSet& BasicPartitionedLlc<Memory>::set_at(int physical_set) {
  PSLLC_ASSERT(physical_set >= 0 && physical_set < config_.geometry.num_sets,
               "set " << physical_set);
  return sets_[static_cast<std::size_t>(physical_set)];
}

template <typename Memory>
const mem::CacheSet& BasicPartitionedLlc<Memory>::set_at(
    int physical_set) const {
  PSLLC_ASSERT(physical_set >= 0 && physical_set < config_.geometry.num_sets,
               "set " << physical_set);
  return sets_[static_cast<std::size_t>(physical_set)];
}

template <typename Memory>
typename BasicPartitionedLlc<Memory>::EntryState&
BasicPartitionedLlc<Memory>::entry_state(int physical_set, int way) {
  return entry_states_[static_cast<std::size_t>(physical_set)]
                      [static_cast<std::size_t>(way)];
}

template <typename Memory>
const typename BasicPartitionedLlc<Memory>::EntryState&
BasicPartitionedLlc<Memory>::entry_state(int physical_set, int way) const {
  return entry_states_[static_cast<std::size_t>(physical_set)]
                      [static_cast<std::size_t>(way)];
}

template <typename Memory>
int BasicPartitionedLlc<Memory>::find_way_raw(const PartitionSpec& spec,
                                              int physical_set,
                                              LineAddr line) const {
  const mem::CacheSet& set = set_at(physical_set);
  for (int w = spec.first_way; w < spec.first_way + spec.num_ways; ++w) {
    if (set.way(w).valid() && set.way(w).line == line) {
      return w;
    }
  }
  return -1;
}

template <typename Memory>
int BasicPartitionedLlc<Memory>::find_free_way(const PartitionSpec& spec,
                                               int physical_set) const {
  const mem::CacheSet& set = set_at(physical_set);
  for (int w = spec.first_way; w < spec.first_way + spec.num_ways; ++w) {
    if (!set.way(w).valid() && !slot_frozen(physical_set, w)) {
      return w;
    }
  }
  return -1;
}

template <typename Memory>
int BasicPartitionedLlc<Memory>::count_free_ways(const PartitionSpec& spec,
                                                 int physical_set) const {
  const mem::CacheSet& set = set_at(physical_set);
  int count = 0;
  for (int w = spec.first_way; w < spec.first_way + spec.num_ways; ++w) {
    count += (!set.way(w).valid() && !slot_frozen(physical_set, w)) ? 1 : 0;
  }
  return count;
}

template <typename Memory>
int BasicPartitionedLlc<Memory>::count_pending_invals(
    const PartitionSpec& spec, int physical_set) const {
  // Draining entries count as supply too: the drain frees them, and the
  // fence (which cannot outlast the drain) unfreezes their slots.
  int count = 0;
  for (int w = spec.first_way; w < spec.first_way + spec.num_ways; ++w) {
    const EntryState& state = entry_state(physical_set, w);
    count += (state.pending_inval || state.draining) ? 1 : 0;
  }
  return count;
}

template <typename Memory>
int BasicPartitionedLlc<Memory>::count_pending_requests(
    int partition, int physical_set) const {
  int count = 0;
  for (const auto& pending : pending_) {
    if (pending && pending->partition == partition &&
        pending->physical_set == physical_set) {
      ++count;
    }
  }
  return count;
}

template <typename Memory>
bool BasicPartitionedLlc<Memory>::may_allocate(SetKey key, CoreId core) const {
  if (mode_ == ContentionMode::kBestEffort) {
    return true;
  }
  // Set sequencer: FIFO order. A core may allocate iff nobody is queued
  // (no contention so far) or it is at the head of the queue.
  return !sequencer_.has_queue(key) || sequencer_.is_head(key, core);
}

template <typename Memory>
RequestOutcome BasicPartitionedLlc<Memory>::handle_request(CoreId core,
                                                           LineAddr line,
                                                           Cycle now,
                                                           AccessType access) {
  if (is_write(access)) {
    // Writing a line that other cores privately cache needs a coherence
    // protocol, which the paper's model excludes (tasks are data-disjoint).
    const int other_sharers = directory_.sharer_count(line) -
                              (directory_.is_shared_by(line, core) ? 1 : 0);
    if (other_sharers > 0) {
      ++stats_.shared_write_flags;
      PSLLC_WARN("write by " << to_string(core) << " to line 0x" << std::hex
                             << line << std::dec << " shared by "
                             << other_sharers
                             << " other core(s) — outside the paper's "
                                "data-disjoint model");
    }
  }
  const int pid = partition_of_checked(core);
  const PartitionSpec& spec = partitions().spec(pid);
  const int pset = spec.map_set(line);
  PSLLC_AUDIT(spec.contains_set(pset),
              "mapped set " << pset << " escapes partition " << pid << " "
                            << spec.to_string());
  const SetKey key{pid, pset};
  mem::CacheSet& set = set_at(pset);

  auto& pending = pending_[static_cast<std::size_t>(core.value)];
  if (pending) {
    PSLLC_ASSERT(pending->line == line,
                 to_string(core)
                     << " retried a different line: pending 0x" << std::hex
                     << pending->line << " vs 0x" << line
                     << " (one outstanding request per core)");
  }

  // --- hit path --- (draining entries are on their way out of the cache
  // and must not serve hits: the requester waits for the fresh fill)
  const int hit_way = find_way_raw(spec, pset, line);
  if (hit_way >= 0 && !entry_state(pset, hit_way).pending_inval &&
      !entry_state(pset, hit_way).draining) {
    set.touch(hit_way);
    if (!directory_.is_shared_by(line, core)) {
      directory_.add_sharer(line, core);
    }
    if (pending) {
      complete_pending(core, key);
    }
    ++stats_.hit_presentations;
    return RequestOutcome{RequestOutcome::Status::kHit, std::nullopt};
  }

  // --- miss path ---
  if (!pending) {
    pending = Pending{line, pid, pset, now};
  }

  RequestOutcome outcome;
  // One eviction attempt per presentation, then (re-)check allocation: an
  // eviction of an unshared victim frees the entry within the slot.
  bool eviction_attempted = false;
  for (;;) {
    // Allocation requires a free way, permission from the contention mode,
    // and no stale copy of the same line still draining out of the set
    // (pending invalidation) — nor out of a pre-transition location
    // elsewhere in the cache (draining_lines_).
    if (find_free_way(spec, pset) >= 0 && may_allocate(key, core) &&
        find_way_raw(spec, pset, line) < 0 &&
        draining_lines_.find(line) == draining_lines_.end()) {
      const int way = find_free_way(spec, pset);
      PSLLC_AUDIT(spec.contains_way(way),
                  "allocated way " << way << " escapes partition " << pid
                                   << " " << spec.to_string());
      set.insert(line, way, mem::LineState::kClean);
      directory_.add_sharer(line, core);
      // Fetch from the backing store; latency is absorbed by the slot
      // (validated by the system configuration against the backend's
      // worst_case_latency()).
      (void)memory_->read(line, now);
      // Steal accounting: did we allocate past an older waiter?
      for (const auto& other : pending_) {
        if (other && other->partition == pid && other->physical_set == pset &&
            other->line != line &&
            other->first_presented < pending->first_presented) {
          ++stats_.steals;
          break;
        }
      }
      complete_pending(core, key);
      ++stats_.fills;
      outcome.status = RequestOutcome::Status::kFilled;
      return outcome;
    }
    if (eviction_attempted) {
      break;
    }
    eviction_attempted = true;

    // Enqueue in the sequencer before deciding on evictions, so arrival
    // order is recorded on the first blocked presentation.
    if (mode_ == ContentionMode::kSetSequencer &&
        !sequencer_.is_queued(key, core)) {
      sequencer_.enqueue(key, core);
    }

    const int demand = count_pending_requests(pid, pset);
    const int supply =
        count_free_ways(spec, pset) + count_pending_invals(spec, pset);
    if (supply >= demand) {
      break;  // enough entries already free or on their way
    }
    // Select a victim among valid, not-already-pending ways of this
    // partition.
    std::vector<bool> eligible(
        static_cast<std::size_t>(config_.geometry.num_ways), false);
    bool any = false;
    for (int w = spec.first_way; w < spec.first_way + spec.num_ways; ++w) {
      if (set.way(w).valid() && !entry_state(pset, w).pending_inval &&
          !entry_state(pset, w).draining) {
        eligible[static_cast<std::size_t>(w)] = true;
        any = true;
      }
    }
    if (!any) {
      break;  // every line is already being evicted
    }
    const int victim = set.select_victim(eligible);
    PSLLC_ASSERT(victim >= 0, "victim selection failed with eligible ways");
    PSLLC_AUDIT(spec.contains_way(victim),
                "victim way " << victim << " escapes partition " << pid << " "
                              << spec.to_string());
    const LineAddr victim_line = set.way(victim).line;
    const std::vector<CoreId> owners = directory_.sharers(victim_line);
    ++stats_.evictions_started;
    if (owners.empty()) {
      // No private copies: the entry is reusable within this slot; dirty
      // data drains to DRAM off the critical path.
      if (set.way(victim).dirty()) {
        (void)memory_->write(victim_line, now);
      }
      set.invalidate(victim);
      ++stats_.immediate_frees;
      continue;  // re-check allocation with the freed way
    }
    entry_state(pset, victim).pending_inval = true;
    entry_state(pset, victim).pending_acks = static_cast<int>(owners.size());
    outcome.back_invalidation = BackInvalidation{victim_line, owners};
    PSLLC_TRACE("LLC: evicting 0x" << std::hex << victim_line << std::dec
                                   << " (set " << pset << ", way " << victim
                                   << ") for " << to_string(core)
                                   << ", owners=" << owners.size());
    break;
  }

  ++stats_.blocked_presentations;
  outcome.status = RequestOutcome::Status::kBlocked;
  return outcome;
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::complete_pending(CoreId core, SetKey key) {
  auto& pending = pending_[static_cast<std::size_t>(core.value)];
  PSLLC_ASSERT(pending.has_value(), "no pending request to complete");
  if (mode_ == ContentionMode::kSetSequencer &&
      sequencer_.is_queued(key, core)) {
    if (sequencer_.is_head(key, core)) {
      sequencer_.dequeue_head(key, core);
    } else {
      // Satisfied out of order (e.g. hit after another sharer fetched the
      // line); remove from the middle.
      sequencer_.remove(key, core);
    }
  }
  pending.reset();
}

template <typename Memory>
WritebackOutcome BasicPartitionedLlc<Memory>::handle_writeback(
    CoreId core, LineAddr line, bool carries_dirty_data, bool frees_entry,
    Cycle now) {
  if (frees_entry) {
    ++stats_.freeing_writebacks;
    return apply_back_inval_ack(core, line, carries_dirty_data, now);
  }
  ++stats_.voluntary_writebacks;
  const int pid = partition_of_checked(core);
  const PartitionSpec& spec = partitions().spec(pid);
  int pset = spec.map_set(line);
  int way = find_way_raw(spec, pset, line);
  if (way < 0) {
    // A write-back queued before a mode switch may target a line still
    // resident at its pre-transition location.
    const auto [fallback_set, fallback_way] = locate_line(line);
    pset = fallback_set;
    way = fallback_way;
  }
  PSLLC_ASSERT(way >= 0, "voluntary write-back for line 0x"
                             << std::hex << line
                             << " absent from inclusive LLC");
  PSLLC_ASSERT(!entry_state(pset, way).pending_inval,
               "voluntary write-back raced a back-invalidation for line 0x"
                   << std::hex << line
                   << " — should have been upgraded to freeing");
  const bool removed = directory_.remove_sharer(line, core);
  PSLLC_ASSERT(removed, to_string(core) << " wrote back line 0x" << std::hex
                                        << line << " it did not share");
  if (carries_dirty_data) {
    set_at(pset).mark_dirty(way);
  }
  return WritebackOutcome{false};
}

template <typename Memory>
WritebackOutcome BasicPartitionedLlc<Memory>::apply_back_inval_ack(
    CoreId core, LineAddr line, bool dirty_data, Cycle now) {
  const int pid = partition_of_checked(core);
  const PartitionSpec& spec = partitions().spec(pid);
  int pset = spec.map_set(line);
  int way = find_way_raw(spec, pset, line);
  if (way < 0) {
    // Acks for drain invalidations (and for evictions started before a
    // mode switch) may reference pre-transition locations.
    const auto [fallback_set, fallback_way] = locate_line(line);
    pset = fallback_set;
    way = fallback_way;
  }
  PSLLC_ASSERT(way >= 0, "back-invalidation ack for line 0x"
                             << std::hex << line << " not in LLC");
  EntryState& state = entry_state(pset, way);
  PSLLC_ASSERT(state.pending_inval,
               "ack for line 0x" << std::hex << line
                                 << " that is not pending invalidation");
  PSLLC_ASSERT(state.pending_acks > 0, "pending_acks underflow");
  if (state.drain_issued) {
    auto& busy = core_drain_busy_[static_cast<std::size_t>(core.value)];
    PSLLC_ASSERT(busy > 0, "drain ack without an outstanding drain inval");
    --busy;
  }
  const bool removed = directory_.remove_sharer(line, core);
  PSLLC_ASSERT(removed, to_string(core)
                            << " acked line 0x" << std::hex << line
                            << " it did not share");
  mem::CacheSet& set = set_at(pset);
  if (dirty_data) {
    set.mark_dirty(way);
  }
  --state.pending_acks;
  if (state.pending_acks > 0) {
    return WritebackOutcome{false};
  }
  // Last ack: the entry becomes free. Dirty data drains to DRAM.
  PSLLC_ASSERT(directory_.sharer_count(line) == 0,
               "directory still has sharers after the last ack");
  if (state.draining) {
    free_drained_entry(pset, way, now);
  } else {
    if (set.way(way).dirty()) {
      (void)memory_->write(line, now);
    }
    set.invalidate(way);
    state = EntryState{};
  }
  return WritebackOutcome{true};
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::notify_silent_eviction(CoreId core,
                                                         LineAddr line) {
  const bool removed = directory_.remove_sharer(line, core);
  PSLLC_ASSERT(removed, to_string(core)
                            << " silently evicted line 0x" << std::hex << line
                            << " it did not share");
}

template <typename Memory>
WritebackOutcome BasicPartitionedLlc<Memory>::ack_back_invalidation_silent(
    CoreId core, LineAddr line, Cycle now) {
  return apply_back_inval_ack(core, line, /*dirty_data=*/false, now);
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::drop_pending_request(CoreId core) {
  auto& pending = pending_[static_cast<std::size_t>(core.value)];
  if (!pending) {
    return;
  }
  const SetKey key{pending->partition, pending->physical_set};
  if (mode_ == ContentionMode::kSetSequencer &&
      sequencer_.is_queued(key, core)) {
    sequencer_.remove(key, core);
  }
  pending.reset();
}

template <typename Memory>
typename BasicPartitionedLlc<Memory>::EntryView
BasicPartitionedLlc<Memory>::entry(int physical_set, int way) const {
  const mem::CacheSet& set = set_at(physical_set);
  const mem::LineMeta& meta = set.way(way);
  EntryView view;
  view.valid = meta.valid();
  if (view.valid) {
    view.line = meta.line;
    view.dirty = meta.dirty();
    view.pending_inval = entry_state(physical_set, way).pending_inval;
    view.pending_acks = entry_state(physical_set, way).pending_acks;
    view.sharers = directory_.sharers(meta.line);
  }
  return view;
}

template <typename Memory>
int BasicPartitionedLlc<Memory>::find_way(CoreId core, LineAddr line) const {
  const int pid = partition_of_checked(core);
  const PartitionSpec& spec = partitions().spec(pid);
  return find_way_raw(spec, spec.map_set(line), line);
}

template <typename Memory>
int BasicPartitionedLlc<Memory>::free_ways(CoreId core, LineAddr line) const {
  const int pid = partition_of_checked(core);
  const PartitionSpec& spec = partitions().spec(pid);
  return count_free_ways(spec, spec.map_set(line));
}

template <typename Memory>
SetKey BasicPartitionedLlc<Memory>::key_for(CoreId core, LineAddr line) const {
  const int pid = partition_of_checked(core);
  return SetKey{pid, partitions().spec(pid).map_set(line)};
}

template <typename Memory>
bool BasicPartitionedLlc<Memory>::has_pending_request(CoreId core) const {
  return pending_[static_cast<std::size_t>(core.value)].has_value();
}

template <typename Memory>
LineAddr BasicPartitionedLlc<Memory>::pending_line(CoreId core) const {
  const auto& pending = pending_[static_cast<std::size_t>(core.value)];
  PSLLC_ASSERT(pending.has_value(), "no pending request");
  return pending->line;
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::preload(LineAddr line,
                                          const std::vector<CoreId>& sharers,
                                          bool dirty) {
  PSLLC_ASSERT(!sharers.empty() || true, "");
  // Map through the partition of the first sharer, or partition 0 when the
  // line has no private copies.
  const int pid = sharers.empty() ? 0 : partition_of_checked(sharers.front());
  const PartitionSpec& spec = partitions().spec(pid);
  const int pset = spec.map_set(line);
  PSLLC_ASSERT(find_way_raw(spec, pset, line) < 0,
               "preload of already-present line");
  const int way = find_free_way(spec, pset);
  PSLLC_ASSERT(way >= 0, "preload into a full set");
  set_at(pset).insert(line, way,
                      dirty ? mem::LineState::kDirty : mem::LineState::kClean);
  for (CoreId c : sharers) {
    PSLLC_ASSERT(partitions().partition_of(c) == pid,
                 "preload sharers must share one partition");
    directory_.add_sharer(line, c);
  }
}

// --- mode-transition protocol ------------------------------------------

template <typename Memory>
std::pair<int, int> BasicPartitionedLlc<Memory>::locate_line(
    LineAddr line) const {
  for (int s = 0; s < config_.geometry.num_sets; ++s) {
    const mem::CacheSet& set = set_at(s);
    for (int w = 0; w < config_.geometry.num_ways; ++w) {
      if (set.way(w).valid() && set.way(w).line == line) {
        return {s, w};
      }
    }
  }
  return {-1, -1};
}

template <typename Memory>
bool BasicPartitionedLlc<Memory>::entry_compatible(int physical_set,
                                                   int way) const {
  const mem::LineMeta& meta = set_at(physical_set).way(way);
  PSLLC_ASSERT(meta.valid(), "compatibility check on an invalid entry");
  const PartitionMap& map = partitions();
  for (int p = 0; p < map.num_partitions(); ++p) {
    const PartitionSpec& spec = map.spec(p);
    if (!spec.contains_set(physical_set) || !spec.contains_way(way)) {
      continue;
    }
    if (spec.map_set(meta.line) != physical_set) {
      return false;  // placed where the new mapping would not place it
    }
    for (const CoreId sharer : directory_.sharers(meta.line)) {
      if (map.partition_of(sharer) != p) {
        return false;  // privately held by a core outside this partition
      }
    }
    return true;
  }
  return false;  // no partition covers this slot in the new mode
}

template <typename Memory>
std::vector<BackInvalidation> BasicPartitionedLlc<Memory>::advance_transition(
    Cycle slot_start) {
  std::vector<BackInvalidation> out;
  if (program_.is_static() && !transition_active_) {
    return out;  // static programs never transition (the common fast path)
  }
  if (!transition_active_) {
    const Cycle epoch = next_transition_epoch();
    if (epoch == kNoCycle || slot_start < epoch) {
      return out;
    }
    begin_transition(slot_start);
  }
  pump_drain(slot_start, out);
  if (drain_remaining_ == 0) {
    complete_transition(slot_start);
  }
  return out;
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::begin_transition(Cycle slot_start) {
  ++mode_index_;
  ++stats_.repartitions;
  transition_active_ = true;
  transition_windows_.emplace_back(slot_start, kNoCycle);

  // Freeze every slot whose covering (rectangle, sharers) assignment
  // changed between the two modes; arriving ways become allocatable only
  // at the drain fence.
  const PartitionMap& from = program_.mode(mode_index_ - 1).map;
  const PartitionMap& to = program_.mode(mode_index_).map;
  frozen_.assign(static_cast<std::size_t>(config_.geometry.num_sets) *
                     static_cast<std::size_t>(config_.geometry.num_ways),
                 false);
  auto covering = [](const PartitionMap& map, int s, int w) {
    for (int p = 0; p < map.num_partitions(); ++p) {
      if (map.spec(p).contains_set(s) && map.spec(p).contains_way(w)) {
        return p;
      }
    }
    return -1;
  };
  auto assignment_changed = [&](int s, int w) {
    const int fp = covering(from, s, w);
    const int tp = covering(to, s, w);
    if ((fp < 0) != (tp < 0)) {
      return true;
    }
    if (fp < 0) {
      return false;  // uncovered in both modes
    }
    const PartitionSpec& fs = from.spec(fp);
    const PartitionSpec& ts = to.spec(tp);
    return fs.first_set != ts.first_set || fs.num_sets != ts.num_sets ||
           fs.first_way != ts.first_way || fs.num_ways != ts.num_ways ||
           fs.mapping != ts.mapping || from.sharers(fp) != to.sharers(tp);
  };
  for (int s = 0; s < config_.geometry.num_sets; ++s) {
    for (int w = 0; w < config_.geometry.num_ways; ++w) {
      if (assignment_changed(s, w)) {
        frozen_[static_cast<std::size_t>(s) *
                    static_cast<std::size_t>(config_.geometry.num_ways) +
                static_cast<std::size_t>(w)] = true;
      }
    }
  }

  // Classify residents: incompatible lines must drain. Scan order (set-
  // major, way-minor) fixes the drain issue order deterministically.
  drain_queue_.clear();
  draining_lines_.clear();
  drain_remaining_ = 0;
  for (int s = 0; s < config_.geometry.num_sets; ++s) {
    for (int w = 0; w < config_.geometry.num_ways; ++w) {
      if (!set_at(s).way(w).valid() || entry_compatible(s, w)) {
        continue;
      }
      EntryState& state = entry_state(s, w);
      state.draining = true;
      // Evictions already in flight keep their issued acks; the drain
      // only adopts them (drain_issued stays false — their owners were
      // charged by the original eviction, not the drain serializer).
      drain_queue_.emplace_back(s, w);
      draining_lines_.insert(set_at(s).way(w).line);
      ++drain_remaining_;
    }
  }

  // The mode's partition ids renumber SetKeys: reset ordering state and
  // re-anchor every pending request under the new map. Blocked cores
  // re-enqueue deterministically at their next presentation.
  sequencer_.clear();
  for (std::size_t c = 0; c < pending_.size(); ++c) {
    auto& pending = pending_[c];
    if (!pending) {
      continue;
    }
    const int pid = partition_of_checked(CoreId{static_cast<int>(c)});
    pending->partition = pid;
    pending->physical_set = partitions().spec(pid).map_set(pending->line);
  }
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::pump_drain(
    Cycle slot_start, std::vector<BackInvalidation>& out) {
  for (const auto& [s, w] : drain_queue_) {
    const mem::CacheSet& set = set_at(s);
    EntryState& state = entry_state(s, w);
    if (!set.way(w).valid() || !state.draining) {
      continue;  // already freed by an earlier ack or pump
    }
    if (state.pending_inval) {
      continue;  // invalidation in flight (drain-issued or pre-transition)
    }
    const LineAddr line = set.way(w).line;
    const std::vector<CoreId> owners = directory_.sharers(line);
    if (owners.empty()) {
      // No private copies: free within this slot; dirty data drains
      // through the bounded write queue off the critical path.
      free_drained_entry(s, w, slot_start);
      continue;
    }
    // Serialize drain invalidations per owner core: a core is asked for at
    // most one outstanding drain write-back at a time, so the drain can
    // never flood a core's pending-writeback buffer.
    bool owners_free = true;
    for (const CoreId owner : owners) {
      owners_free = owners_free &&
                    core_drain_busy_[static_cast<std::size_t>(
                        owner.value)] == 0;
    }
    if (!owners_free) {
      continue;
    }
    state.pending_inval = true;
    state.pending_acks = static_cast<int>(owners.size());
    state.drain_issued = true;
    for (const CoreId owner : owners) {
      ++core_drain_busy_[static_cast<std::size_t>(owner.value)];
    }
    ++stats_.drain_back_invals;
    out.push_back(BackInvalidation{line, owners});
  }
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::free_drained_entry(int physical_set,
                                                     int way, Cycle now) {
  mem::CacheSet& set = set_at(physical_set);
  const LineAddr line = set.way(way).line;
  if (set.way(way).dirty()) {
    (void)memory_->write(line, now);
    ++stats_.drain_writebacks;
    // Drain write-backs go through the same bounded write queue as demand
    // traffic; the per-core serialization above keeps them within it.
    PSLLC_AUDIT(memory_->pending_queue_depth() <=
                    memory_->config().wq_capacity,
                "drain write-backs overflowed the write queue: "
                    << memory_->pending_queue_depth() << " > "
                    << memory_->config().wq_capacity);
  }
  set.invalidate(way);
  entry_state(physical_set, way) = EntryState{};
  draining_lines_.erase(line);
  PSLLC_ASSERT(drain_remaining_ > 0, "drain_remaining underflow");
  --drain_remaining_;
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::complete_transition(Cycle slot_start) {
  PSLLC_ASSERT(transition_active_ && drain_remaining_ == 0,
               "fence before the drain finished");
  frozen_.clear();
  drain_queue_.clear();
  PSLLC_ASSERT(draining_lines_.empty(),
               "drained lines left behind at the fence");
  transition_active_ = false;
  transition_windows_.back().second = slot_start;
#ifdef PSLLC_AUDIT_ENABLED
  // Containment after the fence: every resident line (modulo evictions
  // still in flight) sits inside its current mode's rectangle.
  for (int s = 0; s < config_.geometry.num_sets; ++s) {
    for (int w = 0; w < config_.geometry.num_ways; ++w) {
      if (!set_at(s).way(w).valid() || entry_state(s, w).pending_inval) {
        continue;
      }
      PSLLC_AUDIT(entry_compatible(s, w),
                  "line 0x" << std::hex << set_at(s).way(w).line << std::dec
                            << " at set " << s << " way " << w
                            << " outside its mode-" << mode_index_
                            << " rectangle after the drain fence");
    }
  }
#endif
}

template <typename Memory>
bool BasicPartitionedLlc<Memory>::overlaps_transition(Cycle a,
                                                      Cycle b) const {
  for (const auto& [begin, end] : transition_windows_) {
    if (begin <= b && (end == kNoCycle || end >= a)) {
      return true;
    }
  }
  return false;
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::check_invariants() const {
  for (int s = 0; s < config_.geometry.num_sets; ++s) {
    const mem::CacheSet& set = set_at(s);
    for (int w = 0; w < config_.geometry.num_ways; ++w) {
      const EntryState& state = entry_state(s, w);
      if (!set.way(w).valid()) {
        PSLLC_ASSERT(!state.pending_inval && state.pending_acks == 0,
                     "invalid entry with pending eviction state at set "
                         << s << " way " << w);
        continue;
      }
      if (state.pending_inval) {
        PSLLC_ASSERT(state.pending_acks > 0,
                     "pending invalidation without outstanding acks");
        PSLLC_ASSERT(state.pending_acks ==
                         directory_.sharer_count(set.way(w).line),
                     "pending_acks diverged from directory sharers for "
                     "line 0x" << std::hex << set.way(w).line);
      } else {
        PSLLC_ASSERT(state.pending_acks == 0,
                     "acks outstanding without pending invalidation");
      }
    }
  }
  // Every sequencer waiter must have a matching pending request.
  for (std::size_t c = 0; c < pending_.size(); ++c) {
    const auto& pending = pending_[c];
    if (!pending) {
      continue;
    }
    const SetKey key{pending->partition, pending->physical_set};
    if (mode_ == ContentionMode::kSetSequencer) {
      // A pending request is queued only after its first blocked
      // presentation; being unqueued is legal, double-queuing is not
      // (enforced by SetSequencer::enqueue).
      (void)key;
    }
  }
}

// --- parallel replay support --------------------------------------------

template <typename Memory>
bool BasicPartitionedLlc<Memory>::same_state(
    const BasicPartitionedLlc& other) const {
  if (mode_index_ != other.mode_index_ || sets_.size() != other.sets_.size()) {
    return false;
  }
  for (std::size_t s = 0; s < sets_.size(); ++s) {
    if (!sets_[s].same_state(other.sets_[s])) {
      return false;
    }
  }
  return entry_states_ == other.entry_states_ &&
         directory_ == other.directory_ &&
         sequencer_.same_state(other.sequencer_) &&
         pending_ == other.pending_ &&
         transition_active_ == other.transition_active_ &&
         frozen_ == other.frozen_ && drain_queue_ == other.drain_queue_ &&
         draining_lines_ == other.draining_lines_ &&
         drain_remaining_ == other.drain_remaining_ &&
         core_drain_busy_ == other.core_drain_busy_ &&
         transition_windows_ == other.transition_windows_ &&
         stats_ == other.stats_;
}

template <typename Memory>
void BasicPartitionedLlc<Memory>::adopt_solo_lane(
    const BasicPartitionedLlc& solo, CoreId core) {
  const int pid = partition_of_checked(core);
  const PartitionSpec& spec = partitions().spec(pid);
  // Composition is gated on set-disjoint partitions, so the whole set rows
  // of `core`'s partition belong to this lane alone.
  for (int s = spec.first_set; s < spec.first_set + spec.num_sets; ++s) {
    sets_[static_cast<std::size_t>(s)] =
        solo.sets_[static_cast<std::size_t>(s)];
    entry_states_[static_cast<std::size_t>(s)] =
        solo.entry_states_[static_cast<std::size_t>(s)];
  }
  pending_[static_cast<std::size_t>(core.value)] =
      solo.pending_[static_cast<std::size_t>(core.value)];
  directory_.absorb(solo.directory_);
  // Re-enqueue through the canonical form: physical QLT/queue slots are
  // allocation-history artifacts the composed state need not reproduce.
  for (const auto& [key, cores] : solo.sequencer_.canonical()) {
    for (const CoreId c : cores) {
      sequencer_.enqueue(key, c);
    }
  }
  stats_ += solo.stats_;
}

}  // namespace psllc::llc

#endif  // PSLLC_LLC_LLC_IMPL_H_
