#include "llc/partition.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"

namespace psllc::llc {

bool PartitionSpec::overlaps(const PartitionSpec& other) const {
  const bool sets_overlap = first_set < other.first_set + other.num_sets &&
                            other.first_set < first_set + num_sets;
  const bool ways_overlap = first_way < other.first_way + other.num_ways &&
                            other.first_way < first_way + num_ways;
  return sets_overlap && ways_overlap;
}

void PartitionSpec::validate(const mem::CacheGeometry& geometry) const {
  PSLLC_CONFIG_CHECK(num_sets > 0 && num_ways > 0,
                     "partition must have >=1 set and way: " << to_string());
  PSLLC_CONFIG_CHECK(first_set >= 0 &&
                         first_set + num_sets <= geometry.num_sets,
                     "partition sets out of range: " << to_string()
                         << " in LLC " << geometry.to_string());
  PSLLC_CONFIG_CHECK(first_way >= 0 &&
                         first_way + num_ways <= geometry.num_ways,
                     "partition ways out of range: " << to_string()
                         << " in LLC " << geometry.to_string());
}

std::string PartitionSpec::to_string() const {
  std::ostringstream oss;
  oss << "[sets " << first_set << ".." << first_set + num_sets - 1
      << ", ways " << first_way << ".." << first_way + num_ways - 1 << "]";
  return oss.str();
}

PartitionMap::PartitionMap(const mem::CacheGeometry& geometry)
    : geometry_(geometry) {
  geometry_.validate();
}

int PartitionMap::add_partition(const PartitionSpec& spec,
                                std::vector<CoreId> sharers) {
  spec.validate(geometry_);
  PSLLC_CONFIG_CHECK(!sharers.empty(), "partition needs >=1 sharer");
  for (const auto& existing : specs_) {
    PSLLC_CONFIG_CHECK(!spec.overlaps(existing),
                       "partition " << spec.to_string() << " overlaps "
                                    << existing.to_string());
  }
  // No duplicate sharers, and no core in two partitions.
  for (std::size_t i = 0; i < sharers.size(); ++i) {
    PSLLC_CONFIG_CHECK(sharers[i].valid(), "invalid sharer core id");
    for (std::size_t j = i + 1; j < sharers.size(); ++j) {
      PSLLC_CONFIG_CHECK(sharers[i] != sharers[j],
                         "duplicate sharer " << to_string(sharers[i]));
    }
    PSLLC_CONFIG_CHECK(partition_of(sharers[i]) < 0,
                       "core " << to_string(sharers[i])
                               << " already owns a partition");
  }
  const int id = num_partitions();
  for (CoreId c : sharers) {
    if (c.value >= static_cast<int>(core_to_partition_.size())) {
      core_to_partition_.resize(static_cast<std::size_t>(c.value) + 1, -1);
    }
    core_to_partition_[static_cast<std::size_t>(c.value)] = id;
  }
  specs_.push_back(spec);
  sharers_.push_back(std::move(sharers));
  return id;
}

const PartitionSpec& PartitionMap::spec(int id) const {
  PSLLC_ASSERT(id >= 0 && id < num_partitions(), "partition id " << id);
  return specs_[static_cast<std::size_t>(id)];
}

const std::vector<CoreId>& PartitionMap::sharers(int id) const {
  PSLLC_ASSERT(id >= 0 && id < num_partitions(), "partition id " << id);
  return sharers_[static_cast<std::size_t>(id)];
}

int PartitionMap::partition_of(CoreId core) const {
  if (!core.valid() ||
      core.value >= static_cast<int>(core_to_partition_.size())) {
    return -1;
  }
  return core_to_partition_[static_cast<std::size_t>(core.value)];
}

int PartitionMap::sharer_count_of(CoreId core) const {
  const int id = partition_of(core);
  PSLLC_ASSERT(id >= 0, "core " << to_string(core) << " has no partition");
  return static_cast<int>(sharers_[static_cast<std::size_t>(id)].size());
}

void PartitionMap::validate_covers_cores(int num_cores) const {
  for (int c = 0; c < num_cores; ++c) {
    PSLLC_CONFIG_CHECK(partition_of(CoreId{c}) >= 0,
                       "core c" << c << " has no LLC partition");
  }
}

PartitionProgram::PartitionProgram(PartitionMap map)
    : geometry_(map.geometry()) {
  modes_.push_back(PartitionMode{std::move(map), 0, {}, "static"});
}

PartitionProgram::PartitionProgram(const mem::CacheGeometry& geometry)
    : geometry_(geometry) {
  geometry_.validate();
}

void PartitionProgram::add_mode(PartitionMap map, Cycle start_cycle,
                                std::vector<AppClass> core_class,
                                std::string label) {
  PSLLC_CONFIG_CHECK(map.geometry().num_sets == geometry_.num_sets &&
                         map.geometry().num_ways == geometry_.num_ways &&
                         map.geometry().line_bytes == geometry_.line_bytes,
                     "mode geometry " << map.geometry().to_string()
                                      << " differs from program geometry "
                                      << geometry_.to_string());
  if (modes_.empty()) {
    PSLLC_CONFIG_CHECK(start_cycle == 0,
                       "mode 0 must start at cycle 0, got " << start_cycle);
  } else {
    PSLLC_CONFIG_CHECK(start_cycle > modes_.back().start_cycle,
                       "mode epochs must be strictly increasing: "
                           << start_cycle << " after "
                           << modes_.back().start_cycle);
  }
  modes_.push_back(PartitionMode{std::move(map), start_cycle,
                                 std::move(core_class), std::move(label)});
}

const PartitionMode& PartitionProgram::mode(int index) const {
  PSLLC_ASSERT(index >= 0 && index < num_modes(), "mode index " << index);
  return modes_[static_cast<std::size_t>(index)];
}

const PartitionMap& PartitionProgram::initial() const {
  PSLLC_ASSERT(!modes_.empty(), "empty partition program");
  return modes_.front().map;
}

int PartitionProgram::mode_index_at(Cycle now) const {
  PSLLC_ASSERT(!modes_.empty(), "empty partition program");
  int index = 0;
  for (int m = 1; m < num_modes(); ++m) {
    if (modes_[static_cast<std::size_t>(m)].start_cycle <= now) {
      index = m;
    }
  }
  return index;
}

void PartitionProgram::validate(int num_cores) const {
  PSLLC_CONFIG_CHECK(!modes_.empty(), "partition program has no modes");
  PSLLC_CONFIG_CHECK(modes_.front().start_cycle == 0,
                     "mode 0 must start at cycle 0");
  for (std::size_t m = 0; m < modes_.size(); ++m) {
    const PartitionMode& mode = modes_[m];
    if (m > 0) {
      PSLLC_CONFIG_CHECK(mode.start_cycle > modes_[m - 1].start_cycle,
                         "mode epochs must be strictly increasing");
    }
    mode.map.validate_covers_cores(num_cores);
    PSLLC_CONFIG_CHECK(
        mode.core_class.empty() ||
            static_cast<int>(mode.core_class.size()) >= num_cores,
        "mode " << m << " labels " << mode.core_class.size()
                << " cores, platform has " << num_cores);
  }
}

const mem::CacheGeometry& PartitionProgram::geometry() const {
  return geometry_;
}

PartitionMap make_private_partitions(const mem::CacheGeometry& geometry,
                                     int num_cores, int sets_per_core,
                                     int ways_per_core) {
  PSLLC_CONFIG_CHECK(num_cores > 0, "need >=1 core");
  PartitionMap map(geometry);
  // Tile rectangles set-major: fill the set dimension first, then move to
  // the next way band. P(1, w) partitions for several cores thus occupy
  // distinct sets where possible.
  int set_base = 0;
  int way_base = 0;
  for (int c = 0; c < num_cores; ++c) {
    if (set_base + sets_per_core > geometry.num_sets) {
      set_base = 0;
      way_base += ways_per_core;
    }
    PartitionSpec spec{set_base, sets_per_core, way_base, ways_per_core};
    spec.validate(geometry);
    map.add_partition(spec, {CoreId{c}});
    set_base += sets_per_core;
  }
  return map;
}

PartitionMap make_shared_partition(const mem::CacheGeometry& geometry,
                                   const std::vector<CoreId>& sharers,
                                   int num_sets, int num_ways) {
  PartitionMap map(geometry);
  map.add_partition(PartitionSpec{0, num_sets, 0, num_ways}, sharers);
  return map;
}

PartitionMap make_way_bounced_map(const PartitionMap& map, int way_bounce) {
  PSLLC_CONFIG_CHECK(way_bounce >= 0, "way bounce must be >= 0");
  const mem::CacheGeometry& geometry = map.geometry();
  // A uniform shift preserves every pairwise relation, so it is legal iff
  // the right-most rectangle still fits.
  bool can_shift = way_bounce > 0;
  for (int p = 0; p < map.num_partitions() && can_shift; ++p) {
    const PartitionSpec& spec = map.spec(p);
    can_shift = spec.first_way + spec.num_ways + way_bounce <=
                geometry.num_ways;
  }
  PartitionMap bounced(geometry);
  for (int p = 0; p < map.num_partitions(); ++p) {
    PartitionSpec spec = map.spec(p);
    if (can_shift) {
      spec.first_way += way_bounce;
    } else {
      spec.num_ways = std::max(1, spec.num_ways - way_bounce);
    }
    bounced.add_partition(spec, map.sharers(p));
  }
  return bounced;
}

}  // namespace psllc::llc
