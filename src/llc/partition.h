// LLC partition geometry: a partition is a rectangle of (sets x ways) inside
// the physical LLC, owned exclusively by one core (the paper's P notation)
// or shared by n cores (SS/NSS notations).
#ifndef PSLLC_LLC_PARTITION_H_
#define PSLLC_LLC_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/cache_types.h"

namespace psllc::llc {

/// How line addresses map to sets inside a partition. The paper's analysis
/// "does not rely on certain type of address mapping" (Section 2); both
/// mappings are provided and the WCL bounds hold under either (see
/// bench/ablation_mapping).
enum class SetMapping : std::uint8_t {
  kModulo,   ///< line mod num_sets (classic coloring)
  kXorFold,  ///< upper index bits XOR-folded in (spreads strided patterns)
};

[[nodiscard]] constexpr const char* to_string(SetMapping m) {
  return m == SetMapping::kModulo ? "modulo" : "xor-fold";
}

/// A set x way rectangle of the LLC.
struct PartitionSpec {
  int first_set = 0;
  int num_sets = 1;
  int first_way = 0;
  int num_ways = 1;
  SetMapping mapping = SetMapping::kModulo;

  [[nodiscard]] int capacity_lines() const { return num_sets * num_ways; }

  /// Physical set index that `line` maps to inside this partition.
  [[nodiscard]] int map_set(LineAddr line) const {
    const auto sets = static_cast<std::uint64_t>(num_sets);
    std::uint64_t index = line % sets;
    if (mapping == SetMapping::kXorFold) {
      // Fold the next group of index bits in; any deterministic
      // line->set function is admissible for the analysis.
      int shift = 1;
      while ((1 << shift) < num_sets) {
        ++shift;
      }
      index = (line ^ (line >> shift)) % sets;
    }
    return first_set + static_cast<int>(index);
  }

  [[nodiscard]] bool contains_way(int way) const {
    return way >= first_way && way < first_way + num_ways;
  }

  [[nodiscard]] bool contains_set(int set) const {
    return set >= first_set && set < first_set + num_sets;
  }

  /// True if the two rectangles intersect.
  [[nodiscard]] bool overlaps(const PartitionSpec& other) const;

  /// Throws ConfigError if the rectangle does not fit in `geometry`.
  void validate(const mem::CacheGeometry& geometry) const;

  [[nodiscard]] std::string to_string() const;
};

/// Assignment of cores to partitions. Every core accessing the LLC must be
/// mapped to exactly one partition; distinct partitions must not overlap.
class PartitionMap {
 public:
  explicit PartitionMap(const mem::CacheGeometry& geometry);

  /// Registers a partition shared by `sharers`; returns its id.
  int add_partition(const PartitionSpec& spec, std::vector<CoreId> sharers);

  [[nodiscard]] int num_partitions() const {
    return static_cast<int>(specs_.size());
  }
  [[nodiscard]] const PartitionSpec& spec(int id) const;
  [[nodiscard]] const std::vector<CoreId>& sharers(int id) const;

  /// Partition id of `core`, or -1 when the core has none.
  [[nodiscard]] int partition_of(CoreId core) const;

  /// Number of cores sharing `core`'s partition (the paper's n).
  [[nodiscard]] int sharer_count_of(CoreId core) const;

  /// Throws ConfigError unless every core in [0, num_cores) has a partition.
  void validate_covers_cores(int num_cores) const;

  [[nodiscard]] const mem::CacheGeometry& geometry() const {
    return geometry_;
  }

 private:
  mem::CacheGeometry geometry_;
  std::vector<PartitionSpec> specs_;
  std::vector<std::vector<CoreId>> sharers_;
  std::vector<int> core_to_partition_;  // indexed by core id, -1 = none
};

/// Application class of a core's workload within one mode, in the
/// LFOC-style light/streaming/sensitive clustering: `kSensitive` workloads
/// motivate isolation, `kStreaming` ones pollute without reuse, `kLight`
/// ones fit their private caches. Labels are advisory metadata carried by
/// the mode schedule (planners cluster on them; the LLC model does not
/// read them).
enum class AppClass : std::uint8_t { kLight, kStreaming, kSensitive };

[[nodiscard]] constexpr const char* to_string(AppClass c) {
  switch (c) {
    case AppClass::kLight:
      return "light";
    case AppClass::kStreaming:
      return "streaming";
    default:
      return "sensitive";
  }
}

/// One operating mode of a time-varying partition schedule: a full
/// PartitionMap active from `start_cycle` onward, plus per-core
/// application-class labels.
struct PartitionMode {
  PartitionMap map;
  Cycle start_cycle = 0;
  std::vector<AppClass> core_class;  ///< indexed by core; may be empty
  std::string label;
};

/// A versioned partition schedule: an ordered list of modes with strictly
/// increasing trigger epochs. Mode 0 is active from cycle 0; each later
/// mode takes effect at its epoch via the LLC's drain/flush transition
/// protocol. A single-mode program is "static" and behaves exactly like a
/// bare PartitionMap.
class PartitionProgram {
 public:
  /// Static program: one mode active forever (the pre-refactor behavior).
  explicit PartitionProgram(PartitionMap map);
  explicit PartitionProgram(const mem::CacheGeometry& geometry);

  /// Appends a mode taking effect at `start_cycle`. The first added mode
  /// must start at cycle 0; later modes must be strictly later than their
  /// predecessor. All modes must share the LLC geometry.
  void add_mode(PartitionMap map, Cycle start_cycle,
                std::vector<AppClass> core_class = {},
                std::string label = {});

  [[nodiscard]] int num_modes() const {
    return static_cast<int>(modes_.size());
  }
  [[nodiscard]] const PartitionMode& mode(int index) const;

  /// The mode-0 map (the one a static program is).
  [[nodiscard]] const PartitionMap& initial() const;

  /// True when the program never repartitions.
  [[nodiscard]] bool is_static() const { return modes_.size() <= 1; }

  /// Index of the mode whose epoch has been reached by `now`.
  [[nodiscard]] int mode_index_at(Cycle now) const;

  /// Throws ConfigError unless the program is non-empty, epochs are
  /// strictly increasing from 0, geometries agree, and every mode's map
  /// covers [0, num_cores).
  void validate(int num_cores) const;

  [[nodiscard]] const mem::CacheGeometry& geometry() const;

 private:
  std::vector<PartitionMode> modes_;
  mem::CacheGeometry geometry_;
};

/// Builders for the paper's three configurations (Section 5 notation),
/// placed at set/way offset (0, 0) upward:
///  - make_private_partitions: P(s, w) — one disjoint rectangle per core.
///  - make_shared_partition: SS/NSS(s, w, n) — one rectangle shared by all
///    `sharers`.
PartitionMap make_private_partitions(const mem::CacheGeometry& geometry,
                                     int num_cores, int sets_per_core,
                                     int ways_per_core);
PartitionMap make_shared_partition(const mem::CacheGeometry& geometry,
                                   const std::vector<CoreId>& sharers,
                                   int num_sets, int num_ways);

/// Dynamic-repartitioning mode builder: the same sharer assignment with
/// every rectangle displaced by `way_bounce` ways. When any rectangle
/// would fall off the way dimension the whole map shrinks by `way_bounce`
/// ways instead (floor 1 way per partition) — either variant moves
/// `way_bounce` way-columns per partition, giving transitions a tunable
/// drain volume. `way_bounce` 0 returns an identical map (a no-op mode).
PartitionMap make_way_bounced_map(const PartitionMap& map, int way_bounce);

}  // namespace psllc::llc

#endif  // PSLLC_LLC_PARTITION_H_
