// LLC partition geometry: a partition is a rectangle of (sets x ways) inside
// the physical LLC, owned exclusively by one core (the paper's P notation)
// or shared by n cores (SS/NSS notations).
#ifndef PSLLC_LLC_PARTITION_H_
#define PSLLC_LLC_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/cache_types.h"

namespace psllc::llc {

/// How line addresses map to sets inside a partition. The paper's analysis
/// "does not rely on certain type of address mapping" (Section 2); both
/// mappings are provided and the WCL bounds hold under either (see
/// bench/ablation_mapping).
enum class SetMapping : std::uint8_t {
  kModulo,   ///< line mod num_sets (classic coloring)
  kXorFold,  ///< upper index bits XOR-folded in (spreads strided patterns)
};

[[nodiscard]] constexpr const char* to_string(SetMapping m) {
  return m == SetMapping::kModulo ? "modulo" : "xor-fold";
}

/// A set x way rectangle of the LLC.
struct PartitionSpec {
  int first_set = 0;
  int num_sets = 1;
  int first_way = 0;
  int num_ways = 1;
  SetMapping mapping = SetMapping::kModulo;

  [[nodiscard]] int capacity_lines() const { return num_sets * num_ways; }

  /// Physical set index that `line` maps to inside this partition.
  [[nodiscard]] int map_set(LineAddr line) const {
    const auto sets = static_cast<std::uint64_t>(num_sets);
    std::uint64_t index = line % sets;
    if (mapping == SetMapping::kXorFold) {
      // Fold the next group of index bits in; any deterministic
      // line->set function is admissible for the analysis.
      int shift = 1;
      while ((1 << shift) < num_sets) {
        ++shift;
      }
      index = (line ^ (line >> shift)) % sets;
    }
    return first_set + static_cast<int>(index);
  }

  [[nodiscard]] bool contains_way(int way) const {
    return way >= first_way && way < first_way + num_ways;
  }

  [[nodiscard]] bool contains_set(int set) const {
    return set >= first_set && set < first_set + num_sets;
  }

  /// True if the two rectangles intersect.
  [[nodiscard]] bool overlaps(const PartitionSpec& other) const;

  /// Throws ConfigError if the rectangle does not fit in `geometry`.
  void validate(const mem::CacheGeometry& geometry) const;

  [[nodiscard]] std::string to_string() const;
};

/// Assignment of cores to partitions. Every core accessing the LLC must be
/// mapped to exactly one partition; distinct partitions must not overlap.
class PartitionMap {
 public:
  explicit PartitionMap(const mem::CacheGeometry& geometry);

  /// Registers a partition shared by `sharers`; returns its id.
  int add_partition(const PartitionSpec& spec, std::vector<CoreId> sharers);

  [[nodiscard]] int num_partitions() const {
    return static_cast<int>(specs_.size());
  }
  [[nodiscard]] const PartitionSpec& spec(int id) const;
  [[nodiscard]] const std::vector<CoreId>& sharers(int id) const;

  /// Partition id of `core`, or -1 when the core has none.
  [[nodiscard]] int partition_of(CoreId core) const;

  /// Number of cores sharing `core`'s partition (the paper's n).
  [[nodiscard]] int sharer_count_of(CoreId core) const;

  /// Throws ConfigError unless every core in [0, num_cores) has a partition.
  void validate_covers_cores(int num_cores) const;

  [[nodiscard]] const mem::CacheGeometry& geometry() const {
    return geometry_;
  }

 private:
  mem::CacheGeometry geometry_;
  std::vector<PartitionSpec> specs_;
  std::vector<std::vector<CoreId>> sharers_;
  std::vector<int> core_to_partition_;  // indexed by core id, -1 = none
};

/// Builders for the paper's three configurations (Section 5 notation),
/// placed at set/way offset (0, 0) upward:
///  - make_private_partitions: P(s, w) — one disjoint rectangle per core.
///  - make_shared_partition: SS/NSS(s, w, n) — one rectangle shared by all
///    `sharers`.
PartitionMap make_private_partitions(const mem::CacheGeometry& geometry,
                                     int num_cores, int sets_per_core,
                                     int ways_per_core);
PartitionMap make_shared_partition(const mem::CacheGeometry& geometry,
                                   const std::vector<CoreId>& sharers,
                                   int num_sets, int num_ways);

}  // namespace psllc::llc

#endif  // PSLLC_LLC_PARTITION_H_
