#include "llc/set_sequencer.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace psllc::llc {

SetSequencer::SetSequencer(int num_queues, int queue_depth) {
  PSLLC_ASSERT(num_queues > 0, "sequencer needs >=1 queue");
  PSLLC_ASSERT(queue_depth > 0, "sequencer queues need depth >=1");
  qlt_.resize(static_cast<std::size_t>(num_queues));
  queues_.reserve(static_cast<std::size_t>(num_queues));
  for (int q = 0; q < num_queues; ++q) {
    queues_.emplace_back(queue_depth);
  }
  queue_in_use_.assign(static_cast<std::size_t>(num_queues), false);
}

void SetSequencer::enqueue(SetKey key, CoreId core) {
  PSLLC_ASSERT(key.valid(), "invalid set key");
  PSLLC_ASSERT(core.valid(), "invalid core");
  int entry = find_entry(key);
  if (entry < 0) {
    entry = allocate_entry(key);
  }
  auto& queue =
      queues_[static_cast<std::size_t>(qlt_[static_cast<std::size_t>(entry)]
                                           .queue_index)];
  PSLLC_ASSERT(queue.find_if([core](CoreId c) { return c == core; }) < 0,
               to_string(core) << " already queued for this set");
  queue.push(core);
}

int SetSequencer::find_entry(SetKey key) const {
  for (std::size_t i = 0; i < qlt_.size(); ++i) {
    if (qlt_[i].valid && qlt_[i].key == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int SetSequencer::allocate_entry(SetKey key) {
  int entry = -1;
  for (std::size_t i = 0; i < qlt_.size(); ++i) {
    if (!qlt_[i].valid) {
      entry = static_cast<int>(i);
      break;
    }
  }
  PSLLC_ASSERT(entry >= 0,
               "QLT full: more sets with pending requests than queues — "
               "sequencer undersized");
  int queue_index = -1;
  for (std::size_t q = 0; q < queue_in_use_.size(); ++q) {
    if (!queue_in_use_[q]) {
      queue_index = static_cast<int>(q);
      break;
    }
  }
  PSLLC_ASSERT(queue_index >= 0, "no free sequencer queue");
  qlt_[static_cast<std::size_t>(entry)] = QltEntry{true, key, queue_index};
  queue_in_use_[static_cast<std::size_t>(queue_index)] = true;
  queues_[static_cast<std::size_t>(queue_index)].clear();
  return entry;
}

void SetSequencer::release_entry(int entry_index) {
  auto& entry = qlt_[static_cast<std::size_t>(entry_index)];
  PSLLC_ASSERT(entry.valid, "releasing invalid QLT entry");
  queue_in_use_[static_cast<std::size_t>(entry.queue_index)] = false;
  entry = QltEntry{};
}

bool SetSequencer::has_queue(SetKey key) const { return find_entry(key) >= 0; }

bool SetSequencer::is_queued(SetKey key, CoreId core) const {
  return position(key, core) >= 0;
}

bool SetSequencer::is_head(SetKey key, CoreId core) const {
  return position(key, core) == 0;
}

int SetSequencer::queue_length(SetKey key) const {
  const int entry = find_entry(key);
  if (entry < 0) {
    return 0;
  }
  return queues_[static_cast<std::size_t>(
                     qlt_[static_cast<std::size_t>(entry)].queue_index)]
      .size();
}

int SetSequencer::position(SetKey key, CoreId core) const {
  const int entry = find_entry(key);
  if (entry < 0) {
    return -1;
  }
  const auto& queue =
      queues_[static_cast<std::size_t>(qlt_[static_cast<std::size_t>(entry)]
                                           .queue_index)];
  return queue.find_if([core](CoreId c) { return c == core; });
}

void SetSequencer::dequeue_head(SetKey key, CoreId core) {
  const int entry = find_entry(key);
  PSLLC_ASSERT(entry >= 0, "no queue for this set");
  auto& queue =
      queues_[static_cast<std::size_t>(qlt_[static_cast<std::size_t>(entry)]
                                           .queue_index)];
  PSLLC_ASSERT(!queue.empty() && queue.front() == core,
               to_string(core) << " is not at the head");
  queue.pop();
  if (queue.empty()) {
    release_entry(entry);
  }
}

void SetSequencer::remove(SetKey key, CoreId core) {
  const int entry = find_entry(key);
  PSLLC_ASSERT(entry >= 0, "no queue for this set");
  auto& queue =
      queues_[static_cast<std::size_t>(qlt_[static_cast<std::size_t>(entry)]
                                           .queue_index)];
  const int pos = queue.find_if([core](CoreId c) { return c == core; });
  PSLLC_ASSERT(pos >= 0, to_string(core) << " not queued for this set");
  queue.erase_at(pos);
  if (queue.empty()) {
    release_entry(entry);
  }
}

void SetSequencer::clear() {
  for (std::size_t i = 0; i < qlt_.size(); ++i) {
    if (qlt_[i].valid) {
      release_entry(static_cast<int>(i));
    }
  }
}

int SetSequencer::active_queues() const {
  int count = 0;
  for (const auto& entry : qlt_) {
    count += entry.valid ? 1 : 0;
  }
  return count;
}

std::vector<std::pair<SetKey, std::vector<CoreId>>> SetSequencer::canonical()
    const {
  std::vector<std::pair<SetKey, std::vector<CoreId>>> out;
  for (const auto& entry : qlt_) {
    if (!entry.valid) {
      continue;
    }
    const auto& queue = queues_[static_cast<std::size_t>(entry.queue_index)];
    std::vector<CoreId> cores;
    cores.reserve(static_cast<std::size_t>(queue.size()));
    for (int i = 0; i < queue.size(); ++i) {
      cores.push_back(queue.at(i));
    }
    out.emplace_back(entry.key, std::move(cores));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace psllc::llc
