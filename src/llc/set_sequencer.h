// The set sequencer (paper Section 4.5, Figure 6) — the hardware extension
// that lowers the shared-partition WCL from Theorem 4.7 to Theorem 4.8.
//
// Structure (as in Figure 6):
//  1. Queue Lookup Table (QLT): maps a cache set (with at least one pending
//     LLC request) to one of the Sequencer queues.
//  2. Sequencer (SQ): a pool of FIFO queues; each queue stores the order in
//     which cores' requests to that set arrived at the LLC (bus broadcast
//     order). A freed entry in the set may only be claimed by the core at
//     the head of the set's queue.
//
// Hardware sizing: at most one outstanding LLC request per core, so
// `num_cores` queues of depth `num_cores` suffice; both capacities are
// enforced with assertions (exceeding them would be a model bug).
//
// Sets are identified by an opaque SetKey = (partition id, physical set)
// because partitions that share a physical set (different way ranges) are
// fully isolated and must not share ordering state.
#ifndef PSLLC_LLC_SET_SEQUENCER_H_
#define PSLLC_LLC_SET_SEQUENCER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/fixed_queue.h"
#include "common/types.h"

namespace psllc::llc {

/// Identifies a (partition, set) ordering domain.
struct SetKey {
  int partition = -1;
  int physical_set = -1;

  constexpr auto operator<=>(const SetKey&) const = default;
  [[nodiscard]] constexpr bool valid() const {
    return partition >= 0 && physical_set >= 0;
  }
};

class SetSequencer {
 public:
  /// `num_queues` — SQ pool size; `queue_depth` — per-queue capacity. Both
  /// default to the core count at the system level.
  SetSequencer(int num_queues, int queue_depth);

  /// Appends `core` to the queue for `key`, allocating a QLT entry and SQ
  /// queue on demand. Precondition: the core is not already queued there.
  void enqueue(SetKey key, CoreId core);

  /// True if `key` has a queue with at least one waiter.
  [[nodiscard]] bool has_queue(SetKey key) const;

  /// True if `core` is somewhere in `key`'s queue.
  [[nodiscard]] bool is_queued(SetKey key, CoreId core) const;

  /// True if `core` is at the head of `key`'s queue. A set with no queue has
  /// no head (returns false).
  [[nodiscard]] bool is_head(SetKey key, CoreId core) const;

  /// Number of waiters for `key` (0 when no queue).
  [[nodiscard]] int queue_length(SetKey key) const;

  /// Position of `core` in `key`'s queue (0 = head), or -1.
  [[nodiscard]] int position(SetKey key, CoreId core) const;

  /// Removes the head (must be `core`); releases the QLT entry and queue
  /// when it empties.
  void dequeue_head(SetKey key, CoreId core);

  /// Removes `core` from anywhere in `key`'s queue (e.g. its pending request
  /// was satisfied by a hit after another sharer fetched the line).
  void remove(SetKey key, CoreId core);

  /// Number of sets with live queues (QLT occupancy).
  [[nodiscard]] int active_queues() const;

  /// Drops every queue and QLT entry. Used by the repartition transition:
  /// SetKeys embed partition ids, which are renumbered when the mode map
  /// switches, so stale ordering state must not survive the switch. Waiting
  /// cores re-enqueue deterministically at their next presentation.
  void clear();

  [[nodiscard]] int num_queues() const {
    return static_cast<int>(queues_.size());
  }

  /// Canonical view of the ordering state: every live queue as (key, cores
  /// head-to-tail), sorted by key. Which physical QLT slot or SQ queue a set
  /// occupies depends on allocation history, not behavior, so equality and
  /// composition go through this form.
  [[nodiscard]] std::vector<std::pair<SetKey, std::vector<CoreId>>> canonical()
      const;

  /// True iff both sequencers impose the same ordering on the same sets
  /// (canonical forms equal). Parallel-replay boundary reconciliation.
  [[nodiscard]] bool same_state(const SetSequencer& other) const {
    return canonical() == other.canonical();
  }

 private:
  struct QltEntry {
    bool valid = false;
    SetKey key;
    int queue_index = -1;
  };

  /// QLT lookup: index into qlt_, or -1.
  [[nodiscard]] int find_entry(SetKey key) const;
  /// Allocates a QLT entry + free queue for `key`.
  int allocate_entry(SetKey key);
  void release_entry(int entry_index);

  std::vector<QltEntry> qlt_;
  std::vector<FixedQueue<CoreId>> queues_;
  std::vector<bool> queue_in_use_;
};

}  // namespace psllc::llc

#endif  // PSLLC_LLC_SET_SEQUENCER_H_
