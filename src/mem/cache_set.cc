#include "mem/cache_set.h"

#include <utility>

namespace psllc::mem {

CacheSet::CacheSet(int ways, std::unique_ptr<ReplacementPolicy> policy)
    : lines_(static_cast<std::size_t>(ways)), policy_(std::move(policy)) {
  PSLLC_ASSERT(policy_ != nullptr, "cache set needs a replacement policy");
  PSLLC_ASSERT(policy_->ways() == ways,
               "policy sized for " << policy_->ways() << " ways, set has "
                                   << ways);
}

CacheSet::CacheSet(const CacheSet& other)
    : lines_(other.lines_), policy_(other.policy_->clone()) {}

CacheSet& CacheSet::operator=(const CacheSet& other) {
  if (this != &other) {
    lines_ = other.lines_;
    policy_ = other.policy_->clone();
  }
  return *this;
}

int CacheSet::find(LineAddr line) const {
  for (int w = 0; w < ways(); ++w) {
    const auto& meta = lines_[static_cast<std::size_t>(w)];
    if (meta.valid() && meta.line == line) {
      return w;
    }
  }
  return -1;
}

int CacheSet::find_free() const {
  for (int w = 0; w < ways(); ++w) {
    if (!lines_[static_cast<std::size_t>(w)].valid()) {
      return w;
    }
  }
  return -1;
}

const LineMeta& CacheSet::way(int w) const {
  check_way(w);
  return lines_[static_cast<std::size_t>(w)];
}

int CacheSet::valid_count() const {
  int count = 0;
  for (const auto& meta : lines_) {
    count += meta.valid() ? 1 : 0;
  }
  return count;
}

void CacheSet::insert(LineAddr line, int w, LineState state) {
  check_way(w);
  PSLLC_ASSERT(state != LineState::kInvalid, "cannot insert an invalid line");
  auto& meta = lines_[static_cast<std::size_t>(w)];
  PSLLC_ASSERT(!meta.valid(),
               "way " << w << " already holds line 0x" << std::hex
                      << meta.line);
  PSLLC_ASSERT(find(line) < 0,
               "line 0x" << std::hex << line << " already present in set");
  meta.line = line;
  meta.state = state;
  policy_->on_insert(w);
}

void CacheSet::touch(int w) {
  check_way(w);
  PSLLC_ASSERT(lines_[static_cast<std::size_t>(w)].valid(),
               "touch on invalid way " << w);
  policy_->on_access(w);
}

void CacheSet::mark_dirty(int w) {
  check_way(w);
  auto& meta = lines_[static_cast<std::size_t>(w)];
  PSLLC_ASSERT(meta.valid(), "mark_dirty on invalid way " << w);
  meta.state = LineState::kDirty;
}

void CacheSet::mark_clean(int w) {
  check_way(w);
  auto& meta = lines_[static_cast<std::size_t>(w)];
  PSLLC_ASSERT(meta.valid(), "mark_clean on invalid way " << w);
  meta.state = LineState::kClean;
}

LineMeta CacheSet::invalidate(int w) {
  check_way(w);
  auto& meta = lines_[static_cast<std::size_t>(w)];
  PSLLC_ASSERT(meta.valid(), "invalidate on invalid way " << w);
  LineMeta old = meta;
  meta = LineMeta{};
  policy_->on_invalidate(w);
  return old;
}

int CacheSet::select_victim(const std::vector<bool>& eligible) {
  PSLLC_ASSERT(static_cast<int>(eligible.size()) == ways(),
               "eligibility mask size mismatch");
  // The policy must never be offered an invalid way.
  for (int w = 0; w < ways(); ++w) {
    PSLLC_ASSERT(!eligible[static_cast<std::size_t>(w)] ||
                     lines_[static_cast<std::size_t>(w)].valid(),
                 "eligible mask includes invalid way " << w);
  }
  return policy_->select_victim(eligible);
}

int CacheSet::select_victim_any() {
  std::vector<bool> eligible(static_cast<std::size_t>(ways()));
  for (int w = 0; w < ways(); ++w) {
    eligible[static_cast<std::size_t>(w)] =
        lines_[static_cast<std::size_t>(w)].valid();
  }
  return select_victim(eligible);
}

bool CacheSet::same_state(const CacheSet& other) const {
  return lines_ == other.lines_ && policy_->same_state(*other.policy_);
}

void CacheSet::check_way(int w) const {
  PSLLC_ASSERT(w >= 0 && w < ways(),
               "way " << w << " out of range [0," << ways() << ")");
}

}  // namespace psllc::mem
