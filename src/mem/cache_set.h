// One set of a set-associative cache: line metadata plus replacement state.
#ifndef PSLLC_MEM_CACHE_SET_H_
#define PSLLC_MEM_CACHE_SET_H_

#include <memory>
#include <vector>

#include "mem/cache_types.h"
#include "mem/replacement.h"

namespace psllc::mem {

class CacheSet {
 public:
  CacheSet(int ways, std::unique_ptr<ReplacementPolicy> policy);

  CacheSet(const CacheSet& other);
  CacheSet& operator=(const CacheSet& other);
  CacheSet(CacheSet&&) noexcept = default;
  CacheSet& operator=(CacheSet&&) noexcept = default;

  [[nodiscard]] int ways() const { return static_cast<int>(lines_.size()); }

  /// Way holding `line`, or -1.
  [[nodiscard]] int find(LineAddr line) const;

  /// Any invalid way, or -1 when the set is full.
  [[nodiscard]] int find_free() const;

  [[nodiscard]] const LineMeta& way(int w) const;
  [[nodiscard]] bool full() const { return find_free() < 0; }
  [[nodiscard]] int valid_count() const;

  /// Install `line` into way `w` (must be invalid) and update policy state.
  void insert(LineAddr line, int w, LineState state);

  /// Record a hit on way `w`.
  void touch(int w);

  /// Mark way `w` dirty (store hit). Precondition: valid.
  void mark_dirty(int w);

  /// Mark way `w` clean (after write-back of data). Precondition: valid.
  void mark_clean(int w);

  /// Invalidate way `w`; returns the old metadata.
  LineMeta invalidate(int w);

  /// Select a victim among valid ways satisfying `eligible` (size == ways());
  /// -1 when none. Does not modify line state.
  [[nodiscard]] int select_victim(const std::vector<bool>& eligible);

  /// Convenience: victim among all valid ways.
  [[nodiscard]] int select_victim_any();

  /// True iff line metadata and replacement state match exactly (parallel
  /// replay boundary reconciliation).
  [[nodiscard]] bool same_state(const CacheSet& other) const;

 private:
  void check_way(int w) const;

  std::vector<LineMeta> lines_;
  std::unique_ptr<ReplacementPolicy> policy_;
};

}  // namespace psllc::mem

#endif  // PSLLC_MEM_CACHE_SET_H_
