// Basic cache modeling types: line metadata, geometry, latencies.
#ifndef PSLLC_MEM_CACHE_TYPES_H_
#define PSLLC_MEM_CACHE_TYPES_H_

#include <cstdint>
#include <string>

#include "common/assert.h"
#include "common/types.h"

namespace psllc::mem {

/// Validity/dirtiness of one cache line. The simulator tracks metadata only;
/// data payloads are irrelevant to timing.
enum class LineState : std::uint8_t {
  kInvalid,
  kClean,
  kDirty,
};

[[nodiscard]] constexpr const char* to_string(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kClean: return "C";
    case LineState::kDirty: return "D";
  }
  return "?";
}

/// Metadata of one cache line (tag store entry).
struct LineMeta {
  LineAddr line = 0;                    ///< full line address (tag)
  LineState state = LineState::kInvalid;

  [[nodiscard]] bool valid() const { return state != LineState::kInvalid; }
  [[nodiscard]] bool dirty() const { return state == LineState::kDirty; }

  [[nodiscard]] constexpr bool operator==(const LineMeta&) const = default;
};

/// Shape of a set-associative cache.
struct CacheGeometry {
  int num_sets = 1;
  int num_ways = 1;
  int line_bytes = 64;

  [[nodiscard]] int capacity_lines() const { return num_sets * num_ways; }
  [[nodiscard]] std::int64_t capacity_bytes() const {
    return static_cast<std::int64_t>(capacity_lines()) * line_bytes;
  }

  /// Throws ConfigError when the shape is not realizable.
  void validate() const {
    PSLLC_CONFIG_CHECK(num_sets > 0, "cache needs >=1 set, got " << num_sets);
    PSLLC_CONFIG_CHECK(num_ways > 0, "cache needs >=1 way, got " << num_ways);
    PSLLC_CONFIG_CHECK(line_bytes > 0 && is_pow2(
                           static_cast<std::uint64_t>(line_bytes)),
                       "line size must be a power of two, got " << line_bytes);
  }

  /// Line address of a byte address.
  [[nodiscard]] LineAddr line_of(Addr addr) const {
    return addr >> log2_exact(static_cast<std::uint64_t>(line_bytes));
  }

  /// Set index of a line address (modulo mapping).
  [[nodiscard]] int set_of(LineAddr line) const {
    return static_cast<int>(line % static_cast<std::uint64_t>(num_sets));
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(num_sets) + "s x " + std::to_string(num_ways) +
           "w x " + std::to_string(line_bytes) + "B";
  }
};

/// Replacement policy selector. The paper's analysis is agnostic to the
/// policy; the simulator supports several so the benches can demonstrate it.
enum class ReplacementKind : std::uint8_t {
  kLru,
  kFifo,
  kRandom,
  kNmru,
  kTreePlru,
};

[[nodiscard]] constexpr const char* to_string(ReplacementKind k) {
  switch (k) {
    case ReplacementKind::kLru: return "LRU";
    case ReplacementKind::kFifo: return "FIFO";
    case ReplacementKind::kRandom: return "RANDOM";
    case ReplacementKind::kNmru: return "NMRU";
    case ReplacementKind::kTreePlru: return "TREE_PLRU";
  }
  return "?";
}

}  // namespace psllc::mem

#endif  // PSLLC_MEM_CACHE_TYPES_H_
