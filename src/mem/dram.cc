#include "mem/dram.h"

#include "common/assert.h"

namespace psllc::mem {

void DramConfig::validate() const {
  PSLLC_CONFIG_CHECK(fixed_latency > 0, "DRAM latency must be positive");
  PSLLC_CONFIG_CHECK(line_bytes > 0 && is_pow2(static_cast<std::uint64_t>(
                                           line_bytes)),
                     "line size must be a power of two");
  if (model_row_buffer) {
    PSLLC_CONFIG_CHECK(num_banks > 0, "need >=1 DRAM bank");
    PSLLC_CONFIG_CHECK(row_bytes >= line_bytes,
                       "row must hold at least one line");
    PSLLC_CONFIG_CHECK(row_hit_latency > 0 &&
                           row_miss_latency >= row_hit_latency,
                       "row-buffer latencies inconsistent");
  }
}

Dram::Dram(const DramConfig& config) : config_(config) {
  config_.validate();
  open_row_.assign(static_cast<std::size_t>(config_.num_banks), -1);
}

Cycle Dram::read(LineAddr line) {
  ++reads_;
  return service(line);
}

Cycle Dram::write(LineAddr line) {
  ++writes_;
  return service(line);
}

Cycle Dram::service(LineAddr line) {
  if (!config_.model_row_buffer) {
    return config_.fixed_latency;
  }
  const Addr byte_addr = line * static_cast<Addr>(config_.line_bytes);
  const auto bank = static_cast<std::size_t>(
      (byte_addr / static_cast<Addr>(config_.row_bytes)) %
      static_cast<Addr>(config_.num_banks));
  const auto row = static_cast<std::int64_t>(
      byte_addr / (static_cast<Addr>(config_.row_bytes) *
                   static_cast<Addr>(config_.num_banks)));
  if (open_row_[bank] == row) {
    ++row_hits_;
    return config_.row_hit_latency;
  }
  ++row_misses_;
  open_row_[bank] = row;
  return config_.row_miss_latency;
}

}  // namespace psllc::mem
