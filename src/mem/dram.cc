#include "mem/dram.h"

#include "common/assert.h"
#include "common/string_util.h"
#include "mem/memory_backend.h"

namespace psllc::mem {

std::string to_string(MemoryBackendKind kind) {
  switch (kind) {
    case MemoryBackendKind::kFixedLatency:
      return "fixed";
    case MemoryBackendKind::kBankRow:
      return "bankrow";
    case MemoryBackendKind::kWriteQueue:
      return "writequeue";
  }
  return "?";
}

std::string to_string(PagePolicy policy) {
  return policy == PagePolicy::kOpenPage ? "open" : "closed";
}

std::string to_string(BankMapping mapping) {
  return mapping == BankMapping::kRowInterleaved ? "row-interleaved"
                                                 : "line-interleaved";
}

MemoryBackendKind backend_kind_from_string(const std::string& text) {
  if (iequals(text, "fixed")) {
    return MemoryBackendKind::kFixedLatency;
  }
  if (iequals(text, "bankrow")) {
    return MemoryBackendKind::kBankRow;
  }
  if (iequals(text, "writequeue")) {
    return MemoryBackendKind::kWriteQueue;
  }
  throw ConfigError("unknown memory backend '" + text +
                    "' (use fixed, bankrow or writequeue)");
}

void DramConfig::validate() const {
  PSLLC_CONFIG_CHECK(fixed_latency > 0, "DRAM latency must be positive");
  PSLLC_CONFIG_CHECK(line_bytes > 0 && is_pow2(static_cast<std::uint64_t>(
                                           line_bytes)),
                     "line size must be a power of two");
  if (backend == MemoryBackendKind::kBankRow) {
    PSLLC_CONFIG_CHECK(num_banks > 0, "need >=1 DRAM bank");
    PSLLC_CONFIG_CHECK(row_bytes >= line_bytes &&
                           row_bytes % line_bytes == 0,
                       "row must hold a whole number of lines");
    PSLLC_CONFIG_CHECK(row_hit_latency > 0 &&
                           row_miss_latency >= row_hit_latency,
                       "row-buffer latencies inconsistent");
    PSLLC_CONFIG_CHECK(closed_page_latency > 0,
                       "closed-page latency must be positive");
  }
  if (backend == MemoryBackendKind::kWriteQueue) {
    PSLLC_CONFIG_CHECK(wq_capacity > 0, "write queue needs capacity >= 1");
    PSLLC_CONFIG_CHECK(wq_enqueue_latency > 0 && wq_drain_period > 0,
                       "write-queue latencies must be positive");
  }
}

Cycle DramConfig::worst_case_latency() const {
  // Dispatches on the selected backend: each case mirrors that backend's
  // worst_case_latency() override without constructing one (the
  // conformance battery asserts config and backend always agree).
  switch (backend) {
    case MemoryBackendKind::kFixedLatency:
      return fixed_latency;
    case MemoryBackendKind::kBankRow:
      return page_policy == PagePolicy::kOpenPage ? row_miss_latency
                                                  : closed_page_latency;
    case MemoryBackendKind::kWriteQueue:
      return fixed_latency + wq_enqueue_latency;
  }
  PSLLC_ASSERT(false,
               "unknown memory backend kind " << static_cast<int>(backend));
  return fixed_latency;
}

std::unique_ptr<MemoryBackend> DramConfig::make_backend() const {
  return make_memory_backend(*this);
}

}  // namespace psllc::mem
