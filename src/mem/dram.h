// DRAM backing-store model.
//
// The paper's analysis requires only that an LLC fill completes within the
// requester's TDM slot, so the system model uses the fixed-latency mode and
// validates `slot_width >= llc_lookup + dram_latency`. A simple open-page
// row-buffer mode is provided for the memory-sensitivity ablation bench.
#ifndef PSLLC_MEM_DRAM_H_
#define PSLLC_MEM_DRAM_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/cache_types.h"

namespace psllc::mem {

struct DramConfig {
  Cycle fixed_latency = 30;    ///< used when model_row_buffer == false
  bool model_row_buffer = false;
  int num_banks = 8;
  int row_bytes = 2048;
  Cycle row_hit_latency = 18;
  Cycle row_miss_latency = 42;
  int line_bytes = 64;

  void validate() const;

  /// The worst-case latency of a single access under this configuration —
  /// what the TDM slot must be able to absorb.
  [[nodiscard]] Cycle worst_case_latency() const {
    return model_row_buffer ? row_miss_latency : fixed_latency;
  }
};

class Dram {
 public:
  explicit Dram(const DramConfig& config);

  /// Latency to read the line at `line` (fills an LLC miss).
  Cycle read(LineAddr line);

  /// Latency to write the line at `line` (dirty LLC eviction). The system
  /// model treats LLC->DRAM writes as buffered off the critical path, but
  /// the latency is still modeled and counted for the ablation bench.
  Cycle write(LineAddr line);

  [[nodiscard]] std::int64_t reads() const { return reads_; }
  [[nodiscard]] std::int64_t writes() const { return writes_; }
  [[nodiscard]] std::int64_t row_hits() const { return row_hits_; }
  [[nodiscard]] std::int64_t row_misses() const { return row_misses_; }
  [[nodiscard]] const DramConfig& config() const { return config_; }

 private:
  Cycle service(LineAddr line);

  DramConfig config_;
  std::vector<std::int64_t> open_row_;  // per bank; -1 = closed
  std::int64_t reads_ = 0;
  std::int64_t writes_ = 0;
  std::int64_t row_hits_ = 0;
  std::int64_t row_misses_ = 0;
};

}  // namespace psllc::mem

#endif  // PSLLC_MEM_DRAM_H_
