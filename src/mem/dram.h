// DRAM backing-store configuration and backend selection.
//
// The paper's analysis requires only that an LLC fill completes within the
// requester's TDM slot, so the system model validates
// `slot_width >= llc_lookup + worst_case_latency()` — where the worst-case
// term is supplied by the *selected memory backend* (see
// mem/memory_backend.h). Three backend families are provided:
//
//  * kFixedLatency — every access costs `fixed_latency` (the paper's model);
//  * kBankRow      — bank/row-conflict model with selectable open-/closed-
//                    page policy and configurable bank mapping;
//  * kWriteQueue   — batched write-queue model: dirty evictions buffer in a
//                    bounded queue that drains off the critical path; a full
//                    queue back-pressures the writer with one synchronous
//                    head drain (the documented worst-case term).
#ifndef PSLLC_MEM_DRAM_H_
#define PSLLC_MEM_DRAM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "mem/cache_types.h"

namespace psllc::mem {

class MemoryBackend;

/// Which memory model services LLC fills and write-backs.
enum class MemoryBackendKind : std::uint8_t {
  kFixedLatency,  ///< constant per-access latency (paper system model)
  kBankRow,       ///< bank/row-conflict model (open- or closed-page)
  kWriteQueue,    ///< buffered dirty evictions draining off the critical path
};

/// Row-buffer management policy of the bank/row backend.
enum class PagePolicy : std::uint8_t {
  kOpenPage,    ///< row stays open: hits are cheap, conflicts cost the most
  kClosedPage,  ///< auto-precharge: every access costs the same, lower worst
};

/// How line addresses map to DRAM banks (bank/row backend).
enum class BankMapping : std::uint8_t {
  kRowInterleaved,   ///< consecutive rows rotate across banks
  kLineInterleaved,  ///< consecutive lines rotate across banks
};

[[nodiscard]] std::string to_string(MemoryBackendKind kind);
[[nodiscard]] std::string to_string(PagePolicy policy);
[[nodiscard]] std::string to_string(BankMapping mapping);
/// Parses "fixed", "bankrow", "writequeue" (case-insensitive). Throws
/// ConfigError on unknown names.
[[nodiscard]] MemoryBackendKind backend_kind_from_string(
    const std::string& text);

struct DramConfig {
  MemoryBackendKind backend = MemoryBackendKind::kFixedLatency;
  int line_bytes = 64;

  // --- kFixedLatency (also the read path of kWriteQueue) ------------------
  Cycle fixed_latency = 30;

  // --- kBankRow -----------------------------------------------------------
  int num_banks = 8;
  int row_bytes = 2048;
  Cycle row_hit_latency = 18;
  Cycle row_miss_latency = 42;
  /// Closed-page cost: activate + access with the bank already precharged —
  /// above a row hit, below an open-page row conflict.
  Cycle closed_page_latency = 34;
  PagePolicy page_policy = PagePolicy::kOpenPage;
  BankMapping bank_mapping = BankMapping::kRowInterleaved;

  // --- kWriteQueue ----------------------------------------------------------
  /// Bounded write-queue capacity; a full queue back-pressures the writer.
  int wq_capacity = 8;
  /// Cost of handing a write to the queue (the fast path).
  Cycle wq_enqueue_latency = 2;
  /// Background drain rate: one buffered write retires to DRAM every
  /// `wq_drain_period` cycles while the queue is non-empty. The rate only
  /// shapes behavior (how often the queue fills); the worst-case term is
  /// the back-pressure path — a write arriving at a full queue forces one
  /// synchronous head drain (fixed_latency) before its enqueue, so
  /// worst_case_latency() = fixed_latency + wq_enqueue_latency.
  Cycle wq_drain_period = 40;

  void validate() const;

  /// The worst-case latency of a single access — what the TDM slot must be
  /// able to absorb. Supplied by the selected backend (every backend's
  /// MemoryBackend::worst_case_latency() returns exactly this value; the
  /// conformance battery in tests/test_dram.cc checks the contract).
  [[nodiscard]] Cycle worst_case_latency() const;

  /// Builds a fresh backend instance of the selected kind. Each System owns
  /// its own instance, so parallel sweep cells share no memory-model state.
  [[nodiscard]] std::unique_ptr<MemoryBackend> make_backend() const;
};

}  // namespace psllc::mem

#endif  // PSLLC_MEM_DRAM_H_
