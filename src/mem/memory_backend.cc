#include "mem/memory_backend.h"

#include "common/assert.h"

namespace psllc::mem {

std::unique_ptr<MemoryBackend> make_memory_backend(const DramConfig& config) {
  switch (config.backend) {
    case MemoryBackendKind::kFixedLatency:
      return std::make_unique<FixedLatencyBackend>(config);
    case MemoryBackendKind::kBankRow:
      return std::make_unique<BankRowBackend>(config);
    case MemoryBackendKind::kWriteQueue:
      return std::make_unique<WriteQueueBackend>(config);
  }
  PSLLC_ASSERT(false, "unknown memory backend kind "
                          << static_cast<int>(config.backend));
  return nullptr;
}

std::vector<BackendVariant> registered_backend_variants() {
  std::vector<BackendVariant> variants;
  variants.push_back({"fixed", DramConfig{}});

  DramConfig bankrow;
  bankrow.backend = MemoryBackendKind::kBankRow;
  variants.push_back({"bankrow_open", bankrow});

  DramConfig line_mapped = bankrow;
  line_mapped.bank_mapping = BankMapping::kLineInterleaved;
  variants.push_back({"bankrow_open_linemap", line_mapped});

  DramConfig closed = bankrow;
  closed.page_policy = PagePolicy::kClosedPage;
  variants.push_back({"bankrow_closed", closed});

  DramConfig writequeue;
  writequeue.backend = MemoryBackendKind::kWriteQueue;
  variants.push_back({"writequeue", writequeue});
  return variants;
}

}  // namespace psllc::mem
