#include "mem/memory_backend.h"

#include <algorithm>

#include "common/assert.h"

namespace psllc::mem {

MemoryBackend::MemoryBackend(const DramConfig& config) : config_(config) {
  config_.validate();
}

Cycle MemoryBackend::record(Cycle latency, Cycle now) {
  // The TDM bus serializes memory traffic, so accesses arrive in
  // non-decreasing time order; lazy internal clocks rely on it.
  PSLLC_ASSERT(last_access_ == kNoCycle || now >= last_access_,
               "memory access times must be non-decreasing: " << now
                   << " after " << last_access_);
  last_access_ = now;
  // The WCL contract: no single access may exceed the advertised bound.
  PSLLC_ASSERT(latency <= worst_case_latency(),
               name() << " backend returned latency " << latency
                      << " above its worst_case_latency() "
                      << worst_case_latency());
  counters_.max_latency = std::max(counters_.max_latency, latency);
  return latency;
}

Cycle MemoryBackend::read(LineAddr line, Cycle now) {
  ++counters_.reads;
  return record(service_read(line, now), now);
}

Cycle MemoryBackend::write(LineAddr line, Cycle now) {
  ++counters_.writes;
  return record(service_write(line, now), now);
}

// --- FixedLatencyBackend ----------------------------------------------------

FixedLatencyBackend::FixedLatencyBackend(const DramConfig& config)
    : MemoryBackend(config) {}

Cycle FixedLatencyBackend::worst_case_latency() const {
  return config_.fixed_latency;
}

std::unique_ptr<MemoryBackend> FixedLatencyBackend::clone() const {
  return std::make_unique<FixedLatencyBackend>(*this);
}

Cycle FixedLatencyBackend::service_read(LineAddr /*line*/, Cycle /*now*/) {
  return config_.fixed_latency;
}

Cycle FixedLatencyBackend::service_write(LineAddr /*line*/, Cycle /*now*/) {
  return config_.fixed_latency;
}

// --- BankRowBackend ---------------------------------------------------------

BankRowBackend::BankRowBackend(const DramConfig& config)
    : MemoryBackend(config) {
  open_row_.assign(static_cast<std::size_t>(config_.num_banks), -1);
}

Cycle BankRowBackend::worst_case_latency() const {
  return config_.page_policy == PagePolicy::kOpenPage
             ? config_.row_miss_latency
             : config_.closed_page_latency;
}

std::unique_ptr<MemoryBackend> BankRowBackend::clone() const {
  return std::make_unique<BankRowBackend>(*this);
}

int BankRowBackend::bank_of(LineAddr line) const {
  const auto banks = static_cast<LineAddr>(config_.num_banks);
  if (config_.bank_mapping == BankMapping::kLineInterleaved) {
    return static_cast<int>(line % banks);
  }
  const auto lines_per_row =
      static_cast<LineAddr>(config_.row_bytes / config_.line_bytes);
  return static_cast<int>((line / lines_per_row) % banks);
}

std::int64_t BankRowBackend::row_of(LineAddr line) const {
  const auto banks = static_cast<LineAddr>(config_.num_banks);
  const auto lines_per_row =
      static_cast<LineAddr>(config_.row_bytes / config_.line_bytes);
  if (config_.bank_mapping == BankMapping::kLineInterleaved) {
    // Consecutive lines stripe across banks; a bank's consecutive lines
    // (stride num_banks) fill its rows in order.
    return static_cast<std::int64_t>((line / banks) / lines_per_row);
  }
  return static_cast<std::int64_t>((line / lines_per_row) / banks);
}

Cycle BankRowBackend::service(LineAddr line) {
  if (config_.page_policy == PagePolicy::kClosedPage) {
    // Auto-precharge: the bank is always closed when the access arrives, so
    // every access activates its row and costs the same. Accounted as a
    // row miss (no row is ever found open).
    ++counters_.row_misses;
    return config_.closed_page_latency;
  }
  const auto bank = static_cast<std::size_t>(bank_of(line));
  const std::int64_t row = row_of(line);
  if (open_row_[bank] == row) {
    ++counters_.row_hits;
    return config_.row_hit_latency;
  }
  ++counters_.row_misses;
  open_row_[bank] = row;
  return config_.row_miss_latency;
}

Cycle BankRowBackend::service_read(LineAddr line, Cycle /*now*/) {
  return service(line);
}

Cycle BankRowBackend::service_write(LineAddr line, Cycle /*now*/) {
  return service(line);
}

// --- WriteQueueBackend ------------------------------------------------------

WriteQueueBackend::WriteQueueBackend(const DramConfig& config)
    : MemoryBackend(config) {}

Cycle WriteQueueBackend::worst_case_latency() const {
  // Reads pay fixed_latency; a write stalled on a full queue pays one
  // synchronous head drain (fixed_latency) plus its own enqueue.
  return config_.fixed_latency + config_.wq_enqueue_latency;
}

std::unique_ptr<MemoryBackend> WriteQueueBackend::clone() const {
  return std::make_unique<WriteQueueBackend>(*this);
}

void WriteQueueBackend::drain(Cycle now) {
  while (!queue_.empty() && queue_.front() <= now) {
    queue_.pop_front();
    ++counters_.drained_writes;
  }
}

Cycle WriteQueueBackend::service_read(LineAddr /*line*/, Cycle now) {
  drain(now);
  // Reads bypass the queue (the controller prioritizes them; a buffered
  // copy of the line is forwarded at no extra cost).
  return config_.fixed_latency;
}

Cycle WriteQueueBackend::service_write(LineAddr /*line*/, Cycle now) {
  drain(now);
  Cycle latency = config_.wq_enqueue_latency;
  Cycle server_free = queue_.empty() ? now : queue_.back();
  if (static_cast<int>(queue_.size()) >= config_.wq_capacity) {
    // Back-pressure: the controller frees a slot by draining the head
    // synchronously — one full DRAM write on the critical path. This keeps
    // the per-access cost bounded even when writes arrive faster than the
    // background drain rate forever (a wait-for-background-drain model
    // would accumulate unbounded stalls under sustained overload). The
    // background schedule then restarts behind the synchronous write.
    queue_.pop_front();
    ++counters_.drained_writes;
    ++counters_.write_stalls;
    latency += config_.fixed_latency;
    Cycle completion = now + config_.fixed_latency;
    for (Cycle& queued : queue_) {
      completion += config_.wq_drain_period;
      queued = completion;
    }
    server_free = completion;
  }
  // The background server retires one write per period, starting when the
  // previous drain finishes (or immediately on an idle queue).
  queue_.push_back(std::max(now, server_free) + config_.wq_drain_period);
  PSLLC_AUDIT(static_cast<int>(queue_.size()) <= config_.wq_capacity,
              "write queue depth " << queue_.size() << " exceeds capacity "
                                   << config_.wq_capacity);
  ++counters_.queued_writes;
  counters_.max_queue_depth = std::max(
      counters_.max_queue_depth, static_cast<std::int64_t>(queue_.size()));
  return latency;
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<MemoryBackend> make_memory_backend(const DramConfig& config) {
  switch (config.backend) {
    case MemoryBackendKind::kFixedLatency:
      return std::make_unique<FixedLatencyBackend>(config);
    case MemoryBackendKind::kBankRow:
      return std::make_unique<BankRowBackend>(config);
    case MemoryBackendKind::kWriteQueue:
      return std::make_unique<WriteQueueBackend>(config);
  }
  PSLLC_ASSERT(false, "unknown memory backend kind "
                          << static_cast<int>(config.backend));
  return nullptr;
}

std::vector<BackendVariant> registered_backend_variants() {
  std::vector<BackendVariant> variants;
  variants.push_back({"fixed", DramConfig{}});

  DramConfig bankrow;
  bankrow.backend = MemoryBackendKind::kBankRow;
  variants.push_back({"bankrow_open", bankrow});

  DramConfig line_mapped = bankrow;
  line_mapped.bank_mapping = BankMapping::kLineInterleaved;
  variants.push_back({"bankrow_open_linemap", line_mapped});

  DramConfig closed = bankrow;
  closed.page_policy = PagePolicy::kClosedPage;
  variants.push_back({"bankrow_closed", closed});

  DramConfig writequeue;
  writequeue.backend = MemoryBackendKind::kWriteQueue;
  variants.push_back({"writequeue", writequeue});
  return variants;
}

}  // namespace psllc::mem
