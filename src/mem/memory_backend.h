// Pluggable memory-backend interface behind the LLC.
//
// The system model (core/System) charges every LLC fill and write-back to
// the requester's TDM slot; SystemConfig::validate enforces
// `slot_width >= llc_lookup + backend.worst_case_latency()`, so *any*
// backend that honors the WCL contract below preserves the paper's bounds.
//
// WCL contract every backend must export:
//  * worst_case_latency() upper-bounds the latency returned by every single
//    read()/write() call, for every address stream and access time — the
//    base class asserts this on each access, and the conformance battery in
//    tests/test_dram.cc checks it under randomized streams;
//  * worst_case_latency() is a pure function of the configuration (it never
//    changes as state accumulates), so SystemConfig::validate can evaluate
//    it before the run;
//  * accesses are presented in non-decreasing `now` order (the TDM bus
//    serializes them); backends may keep internal clocks keyed on `now`.
//
// Thread safety is by cloning, not locking: a backend instance is owned by
// exactly one System. clone() yields an independent deep copy (state and
// counters) for checkpointing; DramConfig::make_backend() builds a fresh
// one per System, which is how the parallel sweep harness stays
// bit-identical to the serial path.
// The method bodies live in this header (not the .cc) so that call sites
// holding a pointer to a concrete `final` backend — the replay kernel's
// devirtualized LLC instantiations — can inline the whole access path;
// the virtual interface remains the cold-path/conformance entry.
#ifndef PSLLC_MEM_MEMORY_BACKEND_H_
#define PSLLC_MEM_MEMORY_BACKEND_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "mem/dram.h"

namespace psllc::mem {

/// Access/behavior counters every backend maintains. Backends ignore the
/// fields their model has no notion of (they stay 0).
struct MemoryCounters {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  // kBankRow
  std::int64_t row_hits = 0;
  std::int64_t row_misses = 0;
  // kWriteQueue
  std::int64_t queued_writes = 0;   ///< writes accepted into the queue
  std::int64_t drained_writes = 0;  ///< queued writes retired to DRAM
  std::int64_t write_stalls = 0;    ///< back-pressure events (queue full)
  std::int64_t max_queue_depth = 0;
  /// Worst single-access latency observed so far (any backend).
  Cycle max_latency = 0;

  [[nodiscard]] std::int64_t accesses() const { return reads + writes; }

  [[nodiscard]] bool operator==(const MemoryCounters&) const = default;
};

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  /// Latency to read the line at `line` (fills an LLC miss) at time `now`.
  Cycle read(LineAddr line, Cycle now) {
    ++counters_.reads;
    return record(service_read(line, now), now);
  }

  /// Latency to write the line at `line` (dirty LLC eviction) at time
  /// `now`. The system model treats LLC->DRAM writes as buffered off the
  /// critical path, but the latency is still modeled, bounded by the WCL
  /// contract, and counted.
  Cycle write(LineAddr line, Cycle now) {
    ++counters_.writes;
    return record(service_write(line, now), now);
  }

  /// Upper bound on any single read()/write() latency; constant per
  /// configuration. The TDM slot must absorb llc_lookup + this.
  [[nodiscard]] virtual Cycle worst_case_latency() const = 0;

  /// Stable identifier ("fixed", "bankrow", "writequeue").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Independent deep copy (model state and counters).
  [[nodiscard]] virtual std::unique_ptr<MemoryBackend> clone() const = 0;

  [[nodiscard]] const MemoryCounters& counters() const { return counters_; }
  [[nodiscard]] const DramConfig& config() const { return config_; }

  /// Writes still buffered inside the backend (0 for backends without a
  /// write queue). Exposed so observability surfaces (MemoryView) need no
  /// downcast to the concrete backend.
  [[nodiscard]] virtual int pending_queue_depth() const { return 0; }

  /// True iff `other` is behaviorally indistinguishable from this backend:
  /// same counters, same access clock, and the same model-specific dynamic
  /// state (open rows, queued writes). Used by the parallel replay engine
  /// to detect speculative-state mismatches at segment boundaries.
  [[nodiscard]] bool same_state(const MemoryBackend& other) const {
    return counters_ == other.counters_ &&
           last_access_ == other.last_access_ && same_dynamic_state(other);
  }

  /// Parallel-replay solo composition: folds the counters of a per-lane
  /// solo run into this backend. Sound only for backends whose service
  /// latency is state-independent (fixed latency) — the caller gates on
  /// the backend kind.
  void absorb_solo_counters(const MemoryBackend& other) {
    counters_.reads += other.counters_.reads;
    counters_.writes += other.counters_.writes;
    counters_.row_hits += other.counters_.row_hits;
    counters_.row_misses += other.counters_.row_misses;
    counters_.queued_writes += other.counters_.queued_writes;
    counters_.drained_writes += other.counters_.drained_writes;
    counters_.write_stalls += other.counters_.write_stalls;
    counters_.max_queue_depth =
        std::max(counters_.max_queue_depth, other.counters_.max_queue_depth);
    counters_.max_latency =
        std::max(counters_.max_latency, other.counters_.max_latency);
    last_access_ = std::max(last_access_, other.last_access_);
  }

 protected:
  explicit MemoryBackend(const DramConfig& config) : config_(config) {
    config_.validate();
  }
  /// clone() support: copies model state, counters and the access clock, so
  /// a clone continues exactly where the original stands.
  MemoryBackend(const MemoryBackend&) = default;

  virtual Cycle service_read(LineAddr line, Cycle now) = 0;
  virtual Cycle service_write(LineAddr line, Cycle now) = 0;

  /// Model-specific dynamic state comparison behind same_state(). Stateless
  /// backends (fixed latency) have nothing beyond the base counters.
  [[nodiscard]] virtual bool same_dynamic_state(
      const MemoryBackend& /*other*/) const {
    return true;
  }

  DramConfig config_;
  MemoryCounters counters_;

 private:
  Cycle record(Cycle latency, Cycle now) {
    // The TDM bus serializes memory traffic, so accesses arrive in
    // non-decreasing time order; lazy internal clocks rely on it.
    PSLLC_ASSERT(last_access_ == kNoCycle || now >= last_access_,
                 "memory access times must be non-decreasing: " << now
                     << " after " << last_access_);
    last_access_ = now;
    // The WCL contract: no single access may exceed the advertised bound.
    PSLLC_ASSERT(latency <= worst_case_latency(),
                 name() << " backend returned latency " << latency
                        << " above its worst_case_latency() "
                        << worst_case_latency());
    counters_.max_latency = std::max(counters_.max_latency, latency);
    return latency;
  }

  Cycle last_access_ = kNoCycle;
};

/// The paper's system model: every access costs `fixed_latency`.
class FixedLatencyBackend final : public MemoryBackend {
 public:
  explicit FixedLatencyBackend(const DramConfig& config)
      : MemoryBackend(config) {}

  [[nodiscard]] Cycle worst_case_latency() const override {
    return config_.fixed_latency;
  }
  [[nodiscard]] const char* name() const override { return "fixed"; }
  [[nodiscard]] std::unique_ptr<MemoryBackend> clone() const override {
    return std::make_unique<FixedLatencyBackend>(*this);
  }

 protected:
  Cycle service_read(LineAddr /*line*/, Cycle /*now*/) override {
    return config_.fixed_latency;
  }
  Cycle service_write(LineAddr /*line*/, Cycle /*now*/) override {
    return config_.fixed_latency;
  }
};

/// Bank/row-conflict model. Open-page keeps the last row of each bank open
/// (hit: row_hit_latency, conflict: row_miss_latency); closed-page
/// auto-precharges, so every access costs closed_page_latency — a lower,
/// access-independent worst case bought by giving up row hits. The bank
/// mapping is selectable (row- vs line-interleaved).
class BankRowBackend final : public MemoryBackend {
 public:
  explicit BankRowBackend(const DramConfig& config) : MemoryBackend(config) {
    open_row_.assign(static_cast<std::size_t>(config_.num_banks), -1);
  }

  [[nodiscard]] Cycle worst_case_latency() const override {
    return config_.page_policy == PagePolicy::kOpenPage
               ? config_.row_miss_latency
               : config_.closed_page_latency;
  }
  [[nodiscard]] const char* name() const override { return "bankrow"; }
  [[nodiscard]] std::unique_ptr<MemoryBackend> clone() const override {
    return std::make_unique<BankRowBackend>(*this);
  }

  /// Bank index of `line` under the configured mapping (exposed so the
  /// conformance battery can check accounting against a reference model).
  [[nodiscard]] int bank_of(LineAddr line) const {
    const auto banks = static_cast<LineAddr>(config_.num_banks);
    if (config_.bank_mapping == BankMapping::kLineInterleaved) {
      return static_cast<int>(line % banks);
    }
    const auto lines_per_row =
        static_cast<LineAddr>(config_.row_bytes / config_.line_bytes);
    return static_cast<int>((line / lines_per_row) % banks);
  }
  /// Row index of `line` within its bank.
  [[nodiscard]] std::int64_t row_of(LineAddr line) const {
    const auto banks = static_cast<LineAddr>(config_.num_banks);
    const auto lines_per_row =
        static_cast<LineAddr>(config_.row_bytes / config_.line_bytes);
    if (config_.bank_mapping == BankMapping::kLineInterleaved) {
      // Consecutive lines stripe across banks; a bank's consecutive lines
      // (stride num_banks) fill its rows in order.
      return static_cast<std::int64_t>((line / banks) / lines_per_row);
    }
    return static_cast<std::int64_t>((line / lines_per_row) / banks);
  }

 protected:
  Cycle service_read(LineAddr line, Cycle /*now*/) override {
    return service(line);
  }
  Cycle service_write(LineAddr line, Cycle /*now*/) override {
    return service(line);
  }

  [[nodiscard]] bool same_dynamic_state(
      const MemoryBackend& other) const override {
    const auto* o = dynamic_cast<const BankRowBackend*>(&other);
    return o != nullptr && open_row_ == o->open_row_;
  }

 private:
  Cycle service(LineAddr line) {
    if (config_.page_policy == PagePolicy::kClosedPage) {
      // Auto-precharge: the bank is always closed when the access arrives,
      // so every access activates its row and costs the same. Accounted as
      // a row miss (no row is ever found open).
      ++counters_.row_misses;
      return config_.closed_page_latency;
    }
    const auto bank = static_cast<std::size_t>(bank_of(line));
    const std::int64_t row = row_of(line);
    if (open_row_[bank] == row) {
      ++counters_.row_hits;
      return config_.row_hit_latency;
    }
    ++counters_.row_misses;
    open_row_[bank] = row;
    return config_.row_miss_latency;
  }

  std::vector<std::int64_t> open_row_;  ///< per bank; -1 = closed
};

/// Batched write-queue model: writes buffer in a bounded FIFO at
/// wq_enqueue_latency and retire to DRAM in the background, one per
/// wq_drain_period while the queue is non-empty; reads bypass the queue
/// (the controller prioritizes them; a queued copy of the line is
/// forwarded latency-neutrally) and cost fixed_latency. Back-pressure is
/// the bounded worst-case term: a write arriving at a full queue forces
/// the controller to drain the head *synchronously* — one full DRAM write
/// on the critical path — before enqueueing, so even a stream that writes
/// faster than the background drain rate forever pays a fixed per-access
/// premium rather than an ever-growing wait:
///   worst_case_latency() = max(fixed_latency,                // reads
///                              fixed_latency + wq_enqueue_latency).
class WriteQueueBackend final : public MemoryBackend {
 public:
  explicit WriteQueueBackend(const DramConfig& config)
      : MemoryBackend(config) {}

  [[nodiscard]] Cycle worst_case_latency() const override {
    // Reads pay fixed_latency; a write stalled on a full queue pays one
    // synchronous head drain (fixed_latency) plus its own enqueue.
    return config_.fixed_latency + config_.wq_enqueue_latency;
  }
  [[nodiscard]] const char* name() const override { return "writequeue"; }
  [[nodiscard]] std::unique_ptr<MemoryBackend> clone() const override {
    return std::make_unique<WriteQueueBackend>(*this);
  }

  /// Writes still buffered (not yet drained) as of the last access.
  [[nodiscard]] int pending_queue_depth() const override {
    return static_cast<int>(queue_.size());
  }

 protected:
  [[nodiscard]] bool same_dynamic_state(
      const MemoryBackend& other) const override {
    const auto* o = dynamic_cast<const WriteQueueBackend*>(&other);
    return o != nullptr && queue_ == o->queue_;
  }

  Cycle service_read(LineAddr /*line*/, Cycle now) override {
    drain(now);
    // Reads bypass the queue (the controller prioritizes them; a buffered
    // copy of the line is forwarded at no extra cost).
    return config_.fixed_latency;
  }
  Cycle service_write(LineAddr /*line*/, Cycle now) override {
    drain(now);
    Cycle latency = config_.wq_enqueue_latency;
    Cycle server_free = queue_.empty() ? now : queue_.back();
    if (static_cast<int>(queue_.size()) >= config_.wq_capacity) {
      // Back-pressure: the controller frees a slot by draining the head
      // synchronously — one full DRAM write on the critical path. This
      // keeps the per-access cost bounded even when writes arrive faster
      // than the background drain rate forever (a wait-for-background-drain
      // model would accumulate unbounded stalls under sustained overload).
      // The background schedule then restarts behind the synchronous write.
      queue_.pop_front();
      ++counters_.drained_writes;
      ++counters_.write_stalls;
      latency += config_.fixed_latency;
      Cycle completion = now + config_.fixed_latency;
      for (Cycle& queued : queue_) {
        completion += config_.wq_drain_period;
        queued = completion;
      }
      server_free = completion;
    }
    // The background server retires one write per period, starting when the
    // previous drain finishes (or immediately on an idle queue).
    queue_.push_back(std::max(now, server_free) + config_.wq_drain_period);
    PSLLC_AUDIT(static_cast<int>(queue_.size()) <= config_.wq_capacity,
                "write queue depth " << queue_.size() << " exceeds capacity "
                                     << config_.wq_capacity);
    ++counters_.queued_writes;
    counters_.max_queue_depth = std::max(
        counters_.max_queue_depth, static_cast<std::int64_t>(queue_.size()));
    return latency;
  }

 private:
  /// Retires every queued write whose drain completed by `now`.
  void drain(Cycle now) {
    while (!queue_.empty() && queue_.front() <= now) {
      queue_.pop_front();
      ++counters_.drained_writes;
    }
  }

  /// Drain-completion times, non-decreasing (one entry per queued write).
  std::deque<Cycle> queue_;
};

/// Narrow read-only query surface over a memory backend: counters, the
/// WCL-contract bound, identity, and queue observability. This is what
/// core::System::memory() hands out — consumers (metric fill, stress
/// tests, benches) only ever query; mutation (read()/write()) stays
/// internal to the replay engines that own the backend.
class MemoryView {
 public:
  explicit MemoryView(const MemoryBackend& backend) : backend_(&backend) {}

  [[nodiscard]] const MemoryCounters& counters() const {
    return backend_->counters();
  }
  [[nodiscard]] Cycle worst_case_latency() const {
    return backend_->worst_case_latency();
  }
  [[nodiscard]] const char* name() const { return backend_->name(); }
  [[nodiscard]] const DramConfig& config() const {
    return backend_->config();
  }
  [[nodiscard]] int pending_queue_depth() const {
    return backend_->pending_queue_depth();
  }

 private:
  const MemoryBackend* backend_;  ///< borrowed; the owning engine outlives it
};

/// Factory behind DramConfig::make_backend(). Validates `config` first.
[[nodiscard]] std::unique_ptr<MemoryBackend> make_memory_backend(
    const DramConfig& config);

/// One labeled configuration per behaviorally distinct backend variant
/// (closed-page ignores the bank mapping — every access costs the same —
/// so only the open-page mappings are enumerated separately). This is the
/// single source the conformance battery (tests/test_dram.cc), the
/// per-backend WCL property grid (tests/test_wcl_bounds_property.cc) and
/// the ablation_dram_backend bench all sweep — a backend added here is
/// covered everywhere automatically.
struct BackendVariant {
  std::string label;
  DramConfig config;
};
[[nodiscard]] std::vector<BackendVariant> registered_backend_variants();

}  // namespace psllc::mem

#endif  // PSLLC_MEM_MEMORY_BACKEND_H_
