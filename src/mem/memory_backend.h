// Pluggable memory-backend interface behind the LLC.
//
// The system model (core/System) charges every LLC fill and write-back to
// the requester's TDM slot; SystemConfig::validate enforces
// `slot_width >= llc_lookup + backend.worst_case_latency()`, so *any*
// backend that honors the WCL contract below preserves the paper's bounds.
//
// WCL contract every backend must export:
//  * worst_case_latency() upper-bounds the latency returned by every single
//    read()/write() call, for every address stream and access time — the
//    base class asserts this on each access, and the conformance battery in
//    tests/test_dram.cc checks it under randomized streams;
//  * worst_case_latency() is a pure function of the configuration (it never
//    changes as state accumulates), so SystemConfig::validate can evaluate
//    it before the run;
//  * accesses are presented in non-decreasing `now` order (the TDM bus
//    serializes them); backends may keep internal clocks keyed on `now`.
//
// Thread safety is by cloning, not locking: a backend instance is owned by
// exactly one System. clone() yields an independent deep copy (state and
// counters) for checkpointing; DramConfig::make_backend() builds a fresh
// one per System, which is how the parallel sweep harness stays
// bit-identical to the serial path.
#ifndef PSLLC_MEM_MEMORY_BACKEND_H_
#define PSLLC_MEM_MEMORY_BACKEND_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/dram.h"

namespace psllc::mem {

/// Access/behavior counters every backend maintains. Backends ignore the
/// fields their model has no notion of (they stay 0).
struct MemoryCounters {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  // kBankRow
  std::int64_t row_hits = 0;
  std::int64_t row_misses = 0;
  // kWriteQueue
  std::int64_t queued_writes = 0;   ///< writes accepted into the queue
  std::int64_t drained_writes = 0;  ///< queued writes retired to DRAM
  std::int64_t write_stalls = 0;    ///< back-pressure events (queue full)
  std::int64_t max_queue_depth = 0;
  /// Worst single-access latency observed so far (any backend).
  Cycle max_latency = 0;

  [[nodiscard]] std::int64_t accesses() const { return reads + writes; }
};

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  /// Latency to read the line at `line` (fills an LLC miss) at time `now`.
  Cycle read(LineAddr line, Cycle now);

  /// Latency to write the line at `line` (dirty LLC eviction) at time
  /// `now`. The system model treats LLC->DRAM writes as buffered off the
  /// critical path, but the latency is still modeled, bounded by the WCL
  /// contract, and counted.
  Cycle write(LineAddr line, Cycle now);

  /// Upper bound on any single read()/write() latency; constant per
  /// configuration. The TDM slot must absorb llc_lookup + this.
  [[nodiscard]] virtual Cycle worst_case_latency() const = 0;

  /// Stable identifier ("fixed", "bankrow", "writequeue").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Independent deep copy (model state and counters).
  [[nodiscard]] virtual std::unique_ptr<MemoryBackend> clone() const = 0;

  [[nodiscard]] const MemoryCounters& counters() const { return counters_; }
  [[nodiscard]] const DramConfig& config() const { return config_; }

 protected:
  explicit MemoryBackend(const DramConfig& config);
  /// clone() support: copies model state, counters and the access clock, so
  /// a clone continues exactly where the original stands.
  MemoryBackend(const MemoryBackend&) = default;

  virtual Cycle service_read(LineAddr line, Cycle now) = 0;
  virtual Cycle service_write(LineAddr line, Cycle now) = 0;

  DramConfig config_;
  MemoryCounters counters_;

 private:
  Cycle record(Cycle latency, Cycle now);

  Cycle last_access_ = kNoCycle;
};

/// The paper's system model: every access costs `fixed_latency`.
class FixedLatencyBackend final : public MemoryBackend {
 public:
  explicit FixedLatencyBackend(const DramConfig& config);

  [[nodiscard]] Cycle worst_case_latency() const override;
  [[nodiscard]] const char* name() const override { return "fixed"; }
  [[nodiscard]] std::unique_ptr<MemoryBackend> clone() const override;

 protected:
  Cycle service_read(LineAddr line, Cycle now) override;
  Cycle service_write(LineAddr line, Cycle now) override;
};

/// Bank/row-conflict model. Open-page keeps the last row of each bank open
/// (hit: row_hit_latency, conflict: row_miss_latency); closed-page
/// auto-precharges, so every access costs closed_page_latency — a lower,
/// access-independent worst case bought by giving up row hits. The bank
/// mapping is selectable (row- vs line-interleaved).
class BankRowBackend final : public MemoryBackend {
 public:
  explicit BankRowBackend(const DramConfig& config);

  [[nodiscard]] Cycle worst_case_latency() const override;
  [[nodiscard]] const char* name() const override { return "bankrow"; }
  [[nodiscard]] std::unique_ptr<MemoryBackend> clone() const override;

  /// Bank index of `line` under the configured mapping (exposed so the
  /// conformance battery can check accounting against a reference model).
  [[nodiscard]] int bank_of(LineAddr line) const;
  /// Row index of `line` within its bank.
  [[nodiscard]] std::int64_t row_of(LineAddr line) const;

 protected:
  Cycle service_read(LineAddr line, Cycle now) override;
  Cycle service_write(LineAddr line, Cycle now) override;

 private:
  Cycle service(LineAddr line);

  std::vector<std::int64_t> open_row_;  ///< per bank; -1 = closed
};

/// Batched write-queue model: writes buffer in a bounded FIFO at
/// wq_enqueue_latency and retire to DRAM in the background, one per
/// wq_drain_period while the queue is non-empty; reads bypass the queue
/// (the controller prioritizes them; a queued copy of the line is
/// forwarded latency-neutrally) and cost fixed_latency. Back-pressure is
/// the bounded worst-case term: a write arriving at a full queue forces
/// the controller to drain the head *synchronously* — one full DRAM write
/// on the critical path — before enqueueing, so even a stream that writes
/// faster than the background drain rate forever pays a fixed per-access
/// premium rather than an ever-growing wait:
///   worst_case_latency() = max(fixed_latency,                // reads
///                              fixed_latency + wq_enqueue_latency).
class WriteQueueBackend final : public MemoryBackend {
 public:
  explicit WriteQueueBackend(const DramConfig& config);

  [[nodiscard]] Cycle worst_case_latency() const override;
  [[nodiscard]] const char* name() const override { return "writequeue"; }
  [[nodiscard]] std::unique_ptr<MemoryBackend> clone() const override;

  /// Writes still buffered (not yet drained) as of the last access.
  [[nodiscard]] int pending_queue_depth() const {
    return static_cast<int>(queue_.size());
  }

 protected:
  Cycle service_read(LineAddr line, Cycle now) override;
  Cycle service_write(LineAddr line, Cycle now) override;

 private:
  /// Retires every queued write whose drain completed by `now`.
  void drain(Cycle now);

  /// Drain-completion times, non-decreasing (one entry per queued write).
  std::deque<Cycle> queue_;
};

/// Factory behind DramConfig::make_backend(). Validates `config` first.
[[nodiscard]] std::unique_ptr<MemoryBackend> make_memory_backend(
    const DramConfig& config);

/// One labeled configuration per behaviorally distinct backend variant
/// (closed-page ignores the bank mapping — every access costs the same —
/// so only the open-page mappings are enumerated separately). This is the
/// single source the conformance battery (tests/test_dram.cc), the
/// per-backend WCL property grid (tests/test_wcl_bounds_property.cc) and
/// the ablation_dram_backend bench all sweep — a backend added here is
/// covered everywhere automatically.
struct BackendVariant {
  std::string label;
  DramConfig config;
};
[[nodiscard]] std::vector<BackendVariant> registered_backend_variants();

}  // namespace psllc::mem

#endif  // PSLLC_MEM_MEMORY_BACKEND_H_
