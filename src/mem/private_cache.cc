#include "mem/private_cache.h"

#include "common/rng.h"

namespace psllc::mem {

void PrivateCacheConfig::validate() const {
  l1i.validate();
  l1d.validate();
  l2.validate();
  PSLLC_CONFIG_CHECK(
      l1i.line_bytes == l2.line_bytes && l1d.line_bytes == l2.line_bytes,
      "all private cache levels must share one line size (L1I="
          << l1i.line_bytes << ", L1D=" << l1d.line_bytes
          << ", L2=" << l2.line_bytes << ")");
  PSLLC_CONFIG_CHECK(l2.capacity_lines() >= l1d.capacity_lines() &&
                         l2.capacity_lines() >= l1i.capacity_lines(),
                     "inclusive L2 must be at least as large as each L1");
  PSLLC_CONFIG_CHECK(l1_hit_latency > 0 && l2_hit_latency > 0,
                     "hit latencies must be positive");
}

PrivateCacheHierarchy::PrivateCacheHierarchy(const PrivateCacheConfig& config,
                                             std::uint64_t seed)
    : config_(config),
      l1i_(config.l1i, config.replacement, mix_seed(seed, 1)),
      l1d_(config.l1d, config.replacement, mix_seed(seed, 2)),
      l2_(config.l2, config.replacement, mix_seed(seed, 3)) {
  config_.validate();
}

HitLevel PrivateCacheHierarchy::access(Addr addr, AccessType type) {
  const LineAddr line = config_.l2.line_of(addr);
  SetAssocCache& l1 = l1_for(type);
  if (l1.access(line, is_write(type))) {
    ++l1_hits_;
    return HitLevel::kL1;
  }
  const int l2_way = [&] {
    // access() updates hit/miss counters and recency internally.
    return l2_.access(line, /*write=*/false) ? 1 : -1;
  }();
  if (l2_way < 0) {
    ++misses_;
    return HitLevel::kMiss;
  }
  ++l2_hits_;
  // Promote into L1; the L1 copy carries the store's dirtiness.
  fill_l1(l1, line, is_write(type));
  return HitLevel::kL2;
}

std::optional<Evicted> PrivateCacheHierarchy::fill(Addr addr, AccessType type,
                                                   bool write) {
  const LineAddr line = config_.l2.line_of(addr);
  PSLLC_ASSERT(!l2_.contains(line),
               "fill for line 0x" << std::hex << line
                                  << " already resident in L2");
  // 1. Install in L2 (clean: dirtiness lives in the L1 copy until eviction).
  std::optional<Evicted> l2_victim = l2_.fill(line, /*dirty=*/false);
  if (l2_victim) {
    // Inclusion: purge the victim from both L1s and merge dirtiness.
    if (auto v = l1i_.remove(l2_victim->line)) {
      l2_victim->dirty = l2_victim->dirty || v->dirty;
    }
    if (auto v = l1d_.remove(l2_victim->line)) {
      l2_victim->dirty = l2_victim->dirty || v->dirty;
    }
  }
  // 2. Install in the requesting L1.
  fill_l1(l1_for(type), line, write);
  return l2_victim;
}

ForcedEviction PrivateCacheHierarchy::force_evict(LineAddr line) {
  ForcedEviction result;
  if (auto v = l1i_.remove(line)) {
    result.was_present = true;
    result.was_dirty = result.was_dirty || v->dirty;
  }
  if (auto v = l1d_.remove(line)) {
    result.was_present = true;
    result.was_dirty = result.was_dirty || v->dirty;
  }
  if (auto v = l2_.remove(line)) {
    result.was_present = true;
    result.was_dirty = result.was_dirty || v->dirty;
  }
  return result;
}

bool PrivateCacheHierarchy::holds(LineAddr line) const {
  return l2_.contains(line);
}

bool PrivateCacheHierarchy::holds_dirty(LineAddr line) const {
  return l2_.is_dirty(line) || l1d_.is_dirty(line) || l1i_.is_dirty(line);
}

void PrivateCacheHierarchy::preload(LineAddr line, bool dirty) {
  PSLLC_ASSERT(!l2_.contains(line), "preload of resident line");
  const std::optional<Evicted> victim = l2_.fill(line, dirty);
  PSLLC_ASSERT(!victim.has_value(),
               "preload evicted a line — target L2 set is full");
}

bool PrivateCacheHierarchy::check_inclusion() const {
  for (LineAddr line : l1i_.resident_lines()) {
    if (!l2_.contains(line)) {
      return false;
    }
  }
  for (LineAddr line : l1d_.resident_lines()) {
    if (!l2_.contains(line)) {
      return false;
    }
  }
  return true;
}

void PrivateCacheHierarchy::fill_l1(SetAssocCache& l1, LineAddr line,
                                    bool dirty) {
  const std::optional<Evicted> l1_victim = l1.fill(line, dirty);
  if (l1_victim && l1_victim->dirty) {
    // Inclusive L2 must hold the victim; absorb its dirtiness locally (no
    // bus traffic: L1<->L2 transfers are core-private).
    PSLLC_ASSERT(l2_.contains(l1_victim->line),
                 "inclusion violated: L1 victim 0x" << std::hex
                                                    << l1_victim->line
                                                    << " absent from L2");
    l2_.access(l1_victim->line, /*write=*/true);
  }
}

}  // namespace psllc::mem
