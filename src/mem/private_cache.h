// Per-core private cache hierarchy: L1 instruction + L1 data caches backed
// by a unified L2, as in the paper's system model (Figure 1).
//
// Inclusion: L2 is inclusive of both L1s, and the shared LLC is inclusive of
// L2 (enforced by the system model in src/core). An eviction at any level
// therefore back-invalidates all upper levels; a dirty upper-level copy
// merges its dirtiness downward.
#ifndef PSLLC_MEM_PRIVATE_CACHE_H_
#define PSLLC_MEM_PRIVATE_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "mem/set_assoc_cache.h"

namespace psllc::mem {

/// Geometry + latency of one core's private hierarchy.
struct PrivateCacheConfig {
  CacheGeometry l1i{4, 2, 64};
  CacheGeometry l1d{4, 4, 64};
  CacheGeometry l2{16, 4, 64};  // paper §5: 4-way, 16 sets
  ReplacementKind replacement = ReplacementKind::kLru;
  Cycle l1_hit_latency = 1;
  Cycle l2_hit_latency = 10;

  /// Throws ConfigError on inconsistent shapes (mismatched line sizes, L2
  /// smaller than an L1, non-positive latencies).
  void validate() const;
};

/// Which level serviced an access.
enum class HitLevel : std::uint8_t { kL1, kL2, kMiss };

[[nodiscard]] constexpr const char* to_string(HitLevel h) {
  switch (h) {
    case HitLevel::kL1: return "L1";
    case HitLevel::kL2: return "L2";
    case HitLevel::kMiss: return "MISS";
  }
  return "?";
}

/// Result of a back-invalidation (LLC-initiated eviction).
struct ForcedEviction {
  bool was_present = false;
  bool was_dirty = false;
};

class PrivateCacheHierarchy {
 public:
  PrivateCacheHierarchy(const PrivateCacheConfig& config, std::uint64_t seed);

  [[nodiscard]] const PrivateCacheConfig& config() const { return config_; }

  /// Services an access locally. On L2 hit the line is filled into the
  /// appropriate L1 (possible silent L1 replacement, dirty copy merged into
  /// L2). Returns which level hit; kMiss leaves all state unchanged — the
  /// caller must later call fill() with the LLC response.
  HitLevel access(Addr addr, AccessType type);

  /// Installs the LLC response for `addr` into L2 and the appropriate L1.
  /// `write` marks the L1 copy dirty (write-allocate store). Returns the L2
  /// capacity victim, if any, with merged dirtiness — the caller owns the
  /// resulting write-back / directory notification.
  std::optional<Evicted> fill(Addr addr, AccessType type, bool write);

  /// Back-invalidation from the inclusive LLC: removes `line` from L1s and
  /// L2, reporting presence and merged dirtiness.
  ForcedEviction force_evict(LineAddr line);

  /// True if `line` is resident in L2 (by inclusion, covers the L1s).
  [[nodiscard]] bool holds(LineAddr line) const;

  /// True if any private copy of `line` is dirty.
  [[nodiscard]] bool holds_dirty(LineAddr line) const;

  /// Number of distinct lines this core can privately cache — the paper's
  /// m_cua. Under inclusion this is the L2 capacity.
  [[nodiscard]] int capacity_lines() const {
    return config_.l2.capacity_lines();
  }

  /// Installs `line` directly into L2 (test-scenario setup, e.g. the
  /// paper's Figure 3/4 initial states). The target set must have room.
  void preload(LineAddr line, bool dirty);

  /// Verifies the inclusion invariant (every L1 line present in L2).
  /// Returns true when it holds; used by property tests.
  [[nodiscard]] bool check_inclusion() const;

  [[nodiscard]] const SetAssocCache& l1i() const { return l1i_; }
  [[nodiscard]] const SetAssocCache& l1d() const { return l1d_; }
  [[nodiscard]] const SetAssocCache& l2() const { return l2_; }

  /// True iff all three levels and the hit/miss counters match (parallel
  /// replay boundary reconciliation).
  [[nodiscard]] bool same_state(const PrivateCacheHierarchy& other) const {
    return l1_hits_ == other.l1_hits_ && l2_hits_ == other.l2_hits_ &&
           misses_ == other.misses_ && l1i_.same_state(other.l1i_) &&
           l1d_.same_state(other.l1d_) && l2_.same_state(other.l2_);
  }

  // --- statistics ---
  [[nodiscard]] std::int64_t l1_hits() const { return l1_hits_; }
  [[nodiscard]] std::int64_t l2_hits() const { return l2_hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }

 private:
  SetAssocCache& l1_for(AccessType type) {
    return type == AccessType::kIfetch ? l1i_ : l1d_;
  }

  /// Fills `line` into the given L1, merging any dirty L1 victim into L2.
  void fill_l1(SetAssocCache& l1, LineAddr line, bool dirty);

  PrivateCacheConfig config_;
  SetAssocCache l1i_;
  SetAssocCache l1d_;
  SetAssocCache l2_;
  std::int64_t l1_hits_ = 0;
  std::int64_t l2_hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace psllc::mem

#endif  // PSLLC_MEM_PRIVATE_CACHE_H_
