#include "mem/replacement.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace psllc::mem {

namespace {

/// True least-recently-used: maintains an exact recency stack.
class LruPolicy final : public ReplacementPolicy {
 public:
  explicit LruPolicy(int ways) : ReplacementPolicy(ways) {
    stack_.resize(static_cast<std::size_t>(ways));
    // Most recent at front; start with way order 0..w-1 (0 is MRU).
    std::iota(stack_.begin(), stack_.end(), 0);
  }

  void on_insert(int way) override { touch(way); }
  void on_access(int way) override { touch(way); }

  void on_invalidate(int way) override {
    // Move to LRU position so a freed way is reused naturally.
    auto it = std::find(stack_.begin(), stack_.end(), way);
    PSLLC_ASSERT(it != stack_.end(), "way " << way << " not in LRU stack");
    stack_.erase(it);
    stack_.push_back(way);
  }

  int select_victim(const std::vector<bool>& eligible) override {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (eligible[static_cast<std::size_t>(*it)]) {
        return *it;
      }
    }
    return -1;
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<LruPolicy>(*this);
  }

  bool same_state(const ReplacementPolicy& other) const override {
    const auto* o = dynamic_cast<const LruPolicy*>(&other);
    return o != nullptr && stack_ == o->stack_;
  }

 private:
  void touch(int way) {
    auto it = std::find(stack_.begin(), stack_.end(), way);
    PSLLC_ASSERT(it != stack_.end(), "way " << way << " not in LRU stack");
    stack_.erase(it);
    stack_.insert(stack_.begin(), way);
  }

  std::vector<int> stack_;  // front = MRU, back = LRU
};

/// FIFO: evicts in insertion order; hits do not refresh.
class FifoPolicy final : public ReplacementPolicy {
 public:
  explicit FifoPolicy(int ways) : ReplacementPolicy(ways) {
    order_.resize(static_cast<std::size_t>(ways));
    std::iota(order_.begin(), order_.end(), 0);
  }

  void on_insert(int way) override {
    auto it = std::find(order_.begin(), order_.end(), way);
    PSLLC_ASSERT(it != order_.end(), "way " << way << " not in FIFO order");
    order_.erase(it);
    order_.push_back(way);  // newest at back
  }

  void on_access(int) override {}  // FIFO ignores hits

  void on_invalidate(int way) override {
    auto it = std::find(order_.begin(), order_.end(), way);
    PSLLC_ASSERT(it != order_.end(), "way " << way << " not in FIFO order");
    order_.erase(it);
    order_.insert(order_.begin(), way);  // oldest: reused first
  }

  int select_victim(const std::vector<bool>& eligible) override {
    for (int way : order_) {
      if (eligible[static_cast<std::size_t>(way)]) {
        return way;
      }
    }
    return -1;
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<FifoPolicy>(*this);
  }

  bool same_state(const ReplacementPolicy& other) const override {
    const auto* o = dynamic_cast<const FifoPolicy*>(&other);
    return o != nullptr && order_ == o->order_;
  }

 private:
  std::vector<int> order_;  // front = oldest
};

/// Uniform random victim among eligible ways (deterministic stream).
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(int ways, std::uint64_t seed)
      : ReplacementPolicy(ways), rng_(seed) {}

  void on_insert(int) override {}
  void on_access(int) override {}
  void on_invalidate(int) override {}

  int select_victim(const std::vector<bool>& eligible) override {
    int count = 0;
    for (bool e : eligible) {
      count += e ? 1 : 0;
    }
    if (count == 0) {
      return -1;
    }
    auto pick = static_cast<int>(rng_.next_below(
        static_cast<std::uint64_t>(count)));
    for (int way = 0; way < ways_; ++way) {
      if (eligible[static_cast<std::size_t>(way)] && pick-- == 0) {
        return way;
      }
    }
    PSLLC_ASSERT(false, "random victim selection fell through");
    return -1;
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<RandomPolicy>(*this);
  }

  bool same_state(const ReplacementPolicy& other) const override {
    const auto* o = dynamic_cast<const RandomPolicy*>(&other);
    return o != nullptr && rng_ == o->rng_;
  }

 private:
  Rng rng_;
};

/// Not-most-recently-used: random among eligible ways except the MRU one
/// (unless the MRU way is the only eligible way).
class NmruPolicy final : public ReplacementPolicy {
 public:
  NmruPolicy(int ways, std::uint64_t seed)
      : ReplacementPolicy(ways), rng_(seed) {}

  void on_insert(int way) override { mru_ = way; }
  void on_access(int way) override { mru_ = way; }
  void on_invalidate(int way) override {
    if (mru_ == way) {
      mru_ = -1;
    }
  }

  int select_victim(const std::vector<bool>& eligible) override {
    int count = 0;
    int only = -1;
    for (int way = 0; way < ways_; ++way) {
      if (eligible[static_cast<std::size_t>(way)]) {
        ++count;
        only = way;
      }
    }
    if (count == 0) {
      return -1;
    }
    if (count == 1) {
      return only;
    }
    // Exclude the MRU way if it is eligible.
    const bool mru_eligible =
        mru_ >= 0 && eligible[static_cast<std::size_t>(mru_)];
    const int pool = mru_eligible ? count - 1 : count;
    auto pick =
        static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(pool)));
    for (int way = 0; way < ways_; ++way) {
      if (!eligible[static_cast<std::size_t>(way)] || way == mru_) {
        continue;
      }
      if (pick-- == 0) {
        return way;
      }
    }
    PSLLC_ASSERT(false, "NMRU victim selection fell through");
    return -1;
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<NmruPolicy>(*this);
  }

  bool same_state(const ReplacementPolicy& other) const override {
    const auto* o = dynamic_cast<const NmruPolicy*>(&other);
    return o != nullptr && mru_ == o->mru_ && rng_ == o->rng_;
  }

 private:
  Rng rng_;
  int mru_ = -1;
};

/// Tree pseudo-LRU over a power-of-two number of ways (rounded up
/// internally; phantom ways are never eligible).
class TreePlruPolicy final : public ReplacementPolicy {
 public:
  explicit TreePlruPolicy(int ways) : ReplacementPolicy(ways) {
    leaves_ = 1;
    while (leaves_ < ways) {
      leaves_ *= 2;
    }
    bits_.assign(static_cast<std::size_t>(leaves_), false);  // index 1-based
  }

  void on_insert(int way) override { touch(way); }
  void on_access(int way) override { touch(way); }
  void on_invalidate(int) override {}

  int select_victim(const std::vector<bool>& eligible) override {
    // Walk the tree following the PLRU bits; if the chosen leaf is not
    // eligible, fall back to the first eligible way (hardware would
    // typically mask the tree, which behaves equivalently for our purposes).
    int node = 1;
    while (node < leaves_) {
      node = 2 * node + (bits_[static_cast<std::size_t>(node)] ? 1 : 0);
    }
    const int way = node - leaves_;
    if (way < ways_ && eligible[static_cast<std::size_t>(way)]) {
      return way;
    }
    for (int w = 0; w < ways_; ++w) {
      if (eligible[static_cast<std::size_t>(w)]) {
        return w;
      }
    }
    return -1;
  }

  std::unique_ptr<ReplacementPolicy> clone() const override {
    return std::make_unique<TreePlruPolicy>(*this);
  }

  bool same_state(const ReplacementPolicy& other) const override {
    const auto* o = dynamic_cast<const TreePlruPolicy*>(&other);
    return o != nullptr && bits_ == o->bits_;
  }

 private:
  void touch(int way) {
    // Flip the bits along the path so they point away from `way`.
    int node = leaves_ + way;
    while (node > 1) {
      const int parent = node / 2;
      bits_[static_cast<std::size_t>(parent)] = (node == 2 * parent);
      node = parent;
    }
  }

  int leaves_ = 1;
  std::vector<bool> bits_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_replacement_policy(
    ReplacementKind kind, int ways, std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(ways);
    case ReplacementKind::kFifo:
      return std::make_unique<FifoPolicy>(ways);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(ways, seed);
    case ReplacementKind::kNmru:
      return std::make_unique<NmruPolicy>(ways, seed);
    case ReplacementKind::kTreePlru:
      return std::make_unique<TreePlruPolicy>(ways);
  }
  PSLLC_ASSERT(false, "unknown replacement kind");
  return nullptr;
}

}  // namespace psllc::mem
