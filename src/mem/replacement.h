// Per-set replacement policy state machines.
//
// The WCL analysis in the paper (Section 4.3) is explicitly agnostic of the
// replacement policy — it assumes only that the policy "can select any of
// the cache lines". We implement several real policies so the ablation bench
// can demonstrate the bounds hold across them. Victim selection takes an
// eligibility mask because LLC lines with an in-flight back-invalidation
// must not be re-selected.
#ifndef PSLLC_MEM_REPLACEMENT_H_
#define PSLLC_MEM_REPLACEMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache_types.h"

namespace psllc::mem {

/// Abstract per-set replacement state. Ways are indexed 0..ways-1.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// A line was inserted into `way` (fill).
  virtual void on_insert(int way) = 0;
  /// A hit touched `way`.
  virtual void on_access(int way) = 0;
  /// `way` was invalidated.
  virtual void on_invalidate(int way) = 0;

  /// Chooses a victim among ways with eligible[way] == true. All eligible
  /// ways hold valid lines. Returns -1 when no way is eligible.
  [[nodiscard]] virtual int select_victim(
      const std::vector<bool>& eligible) = 0;

  /// Deep copy (sets own independent policy state).
  [[nodiscard]] virtual std::unique_ptr<ReplacementPolicy> clone() const = 0;

  /// True iff `other` is the same policy kind in the same state, i.e. both
  /// will make identical victim choices forever. Used by the parallel
  /// replay engine to detect speculative-state mismatches at segment
  /// boundaries; not a hot path.
  [[nodiscard]] virtual bool same_state(
      const ReplacementPolicy& other) const = 0;

  [[nodiscard]] int ways() const { return ways_; }

 protected:
  explicit ReplacementPolicy(int ways) : ways_(ways) {
    PSLLC_ASSERT(ways > 0, "policy needs >=1 way");
  }

  int ways_;
};

/// Factory. `seed` feeds the stochastic policies (Random, NMRU) so whole
/// simulations stay deterministic.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_replacement_policy(
    ReplacementKind kind, int ways, std::uint64_t seed = 0);

}  // namespace psllc::mem

#endif  // PSLLC_MEM_REPLACEMENT_H_
