#include "mem/set_assoc_cache.h"

#include "common/rng.h"

namespace psllc::mem {

SetAssocCache::SetAssocCache(const CacheGeometry& geometry,
                             ReplacementKind replacement, std::uint64_t seed)
    : geometry_(geometry) {
  geometry_.validate();
  sets_.reserve(static_cast<std::size_t>(geometry_.num_sets));
  for (int s = 0; s < geometry_.num_sets; ++s) {
    sets_.emplace_back(
        geometry_.num_ways,
        make_replacement_policy(replacement, geometry_.num_ways,
                                mix_seed(seed, static_cast<std::uint64_t>(s))));
  }
}

bool SetAssocCache::contains(LineAddr line) const {
  return set_for(line).find(line) >= 0;
}

bool SetAssocCache::is_dirty(LineAddr line) const {
  const CacheSet& set = set_for(line);
  const int way = set.find(line);
  return way >= 0 && set.way(way).dirty();
}

bool SetAssocCache::access(LineAddr line, bool write) {
  CacheSet& set = set_for(line);
  const int way = set.find(line);
  if (way < 0) {
    ++misses_;
    return false;
  }
  ++hits_;
  set.touch(way);
  if (write) {
    set.mark_dirty(way);
  }
  return true;
}

std::optional<Evicted> SetAssocCache::fill(LineAddr line, bool dirty) {
  CacheSet& set = set_for(line);
  PSLLC_ASSERT(set.find(line) < 0,
               "fill of already-present line 0x" << std::hex << line);
  std::optional<Evicted> victim;
  int way = set.find_free();
  if (way < 0) {
    way = set.select_victim_any();
    PSLLC_ASSERT(way >= 0, "full set must yield a victim");
    const LineMeta old = set.invalidate(way);
    victim = Evicted{old.line, old.dirty()};
  }
  set.insert(line, way, dirty ? LineState::kDirty : LineState::kClean);
  return victim;
}

std::optional<Evicted> SetAssocCache::remove(LineAddr line) {
  CacheSet& set = set_for(line);
  const int way = set.find(line);
  if (way < 0) {
    return std::nullopt;
  }
  const LineMeta old = set.invalidate(way);
  return Evicted{old.line, old.dirty()};
}

void SetAssocCache::mark_clean(LineAddr line) {
  CacheSet& set = set_for(line);
  const int way = set.find(line);
  if (way >= 0) {
    set.mark_clean(way);
  }
}

int SetAssocCache::valid_lines() const {
  int count = 0;
  for (const auto& set : sets_) {
    count += set.valid_count();
  }
  return count;
}

std::vector<LineAddr> SetAssocCache::resident_lines() const {
  std::vector<LineAddr> lines;
  for (const auto& set : sets_) {
    for (int w = 0; w < set.ways(); ++w) {
      if (set.way(w).valid()) {
        lines.push_back(set.way(w).line);
      }
    }
  }
  return lines;
}

const CacheSet& SetAssocCache::set_at(int index) const {
  PSLLC_ASSERT(index >= 0 && index < geometry_.num_sets,
               "set index " << index);
  return sets_[static_cast<std::size_t>(index)];
}

CacheSet& SetAssocCache::set_for(LineAddr line) {
  return sets_[static_cast<std::size_t>(geometry_.set_of(line))];
}

const CacheSet& SetAssocCache::set_for(LineAddr line) const {
  return sets_[static_cast<std::size_t>(geometry_.set_of(line))];
}

}  // namespace psllc::mem
