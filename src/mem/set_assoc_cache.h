// Generic set-associative cache over CacheSet, used for the private L1 and
// L2 caches (the partitioned LLC in src/llc builds on CacheSet directly
// because partitions restrict both the set range and the way range).
#ifndef PSLLC_MEM_SET_ASSOC_CACHE_H_
#define PSLLC_MEM_SET_ASSOC_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/cache_set.h"
#include "mem/cache_types.h"

namespace psllc::mem {

/// A line evicted from a cache (capacity replacement or invalidation).
struct Evicted {
  LineAddr line = 0;
  bool dirty = false;
};

class SetAssocCache {
 public:
  SetAssocCache(const CacheGeometry& geometry, ReplacementKind replacement,
                std::uint64_t seed = 0);

  [[nodiscard]] const CacheGeometry& geometry() const { return geometry_; }

  /// True if `line` is present.
  [[nodiscard]] bool contains(LineAddr line) const;

  /// True if `line` is present and dirty.
  [[nodiscard]] bool is_dirty(LineAddr line) const;

  /// Lookup for an access: returns true on hit, updating replacement state
  /// and dirtiness (if `write`).
  bool access(LineAddr line, bool write);

  /// Inserts `line` (must be absent). If the set is full, a victim is
  /// replaced and returned. `dirty` sets the initial state.
  std::optional<Evicted> fill(LineAddr line, bool dirty);

  /// Removes `line` if present; returns its metadata (for dirty write-back
  /// decisions). No-op returning nullopt when absent.
  std::optional<Evicted> remove(LineAddr line);

  /// Marks `line` clean if present (data written back but retained).
  void mark_clean(LineAddr line);

  /// Number of valid lines across all sets.
  [[nodiscard]] int valid_lines() const;

  /// All valid line addresses (test/introspection helper).
  [[nodiscard]] std::vector<LineAddr> resident_lines() const;

  /// Direct set access for white-box tests.
  [[nodiscard]] const CacheSet& set_at(int index) const;

  /// True iff every set's lines + replacement state and the hit/miss
  /// counters match (parallel replay boundary reconciliation).
  [[nodiscard]] bool same_state(const SetAssocCache& other) const {
    if (hits_ != other.hits_ || misses_ != other.misses_ ||
        sets_.size() != other.sets_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      if (!sets_[i].same_state(other.sets_[i])) {
        return false;
      }
    }
    return true;
  }

  // --- statistics ---
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }
  void reset_stats() { hits_ = misses_ = 0; }

 private:
  CacheSet& set_for(LineAddr line);
  [[nodiscard]] const CacheSet& set_for(LineAddr line) const;

  CacheGeometry geometry_;
  std::vector<CacheSet> sets_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace psllc::mem

#endif  // PSLLC_MEM_SET_ASSOC_CACHE_H_
