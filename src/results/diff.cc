#include "results/diff.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

namespace psllc::results {

std::string DiffFinding::to_string() const {
  std::ostringstream oss;
  oss << (severity == Severity::kRegression ? "REGRESSION" : "info") << " ["
      << bench;
  if (!series.empty()) {
    oss << "/" << series;
  }
  if (!column.empty()) {
    oss << ":" << column;
  }
  if (row >= 0) {
    oss << " row " << row;
  }
  oss << "] " << message;
  return oss.str();
}

bool DiffReport::ok() const { return num_regressions() == 0; }

int DiffReport::num_regressions() const {
  int count = 0;
  for (const DiffFinding& finding : findings) {
    count += finding.severity == DiffFinding::Severity::kRegression ? 1 : 0;
  }
  return count;
}

std::string DiffReport::to_text() const {
  std::ostringstream oss;
  for (const DiffFinding& finding : findings) {
    oss << finding.to_string() << '\n';
  }
  oss << "compared " << benches_compared << " bench result(s): "
      << num_regressions() << " regression(s), "
      << static_cast<int>(findings.size()) - num_regressions()
      << " note(s)\n";
  return oss.str();
}

namespace {

using Severity = DiffFinding::Severity;

DiffFinding finding(Severity severity, std::string bench, std::string series,
                    std::string column, int row, std::string message) {
  DiffFinding f;
  f.severity = severity;
  f.bench = std::move(bench);
  f.series = std::move(series);
  f.column = std::move(column);
  f.row = row;
  f.message = std::move(message);
  return f;
}

/// Cell comparison per the column kind. Returns an empty string when the
/// cells agree, else a message naming both values.
std::string compare_cells(const Value& golden, const Value& candidate,
                          const Column& column, double rel_tol) {
  if (golden.is_null() && candidate.is_null()) {
    return "";
  }
  if (golden.is_null() != candidate.is_null()) {
    return "golden " + golden.repr() + " vs candidate " + candidate.repr();
  }
  const bool numeric = column.type != ColumnType::kText;
  if (column.kind == ColumnKind::kTiming && numeric) {
    const double g = golden.as_real();
    const double c = candidate.as_real();
    const double allowed = rel_tol * std::max(std::abs(g), 1.0);
    if (std::abs(c - g) <= allowed) {
      return "";
    }
    std::ostringstream oss;
    oss << "golden " << golden.repr() << " vs candidate " << candidate.repr()
        << " (|delta| " << format_real_shortest(std::abs(c - g))
        << " > tol " << format_real_shortest(allowed) << ")";
    return oss.str();
  }
  if (golden == candidate) {
    return "";
  }
  return "golden " + golden.repr() + " vs candidate " + candidate.repr();
}

void diff_series(const std::string& bench, const Series& golden,
                 const Series& candidate, const DiffOptions& options,
                 std::vector<DiffFinding>& out) {
  if (golden.columns() != candidate.columns()) {
    std::ostringstream oss;
    oss << "column schema changed (golden:";
    for (const Column& c : golden.columns()) {
      oss << ' ' << c.name;
    }
    oss << " | candidate:";
    for (const Column& c : candidate.columns()) {
      oss << ' ' << c.name;
    }
    oss << ")";
    out.push_back(finding(Severity::kRegression, bench, golden.name(), "",
                          -1, oss.str()));
    return;
  }
  if (golden.num_rows() != candidate.num_rows()) {
    out.push_back(finding(Severity::kRegression, bench, golden.name(), "",
                          -1,
                          "row count changed: golden " +
                              std::to_string(golden.num_rows()) +
                              " vs candidate " +
                              std::to_string(candidate.num_rows())));
    return;
  }
  for (int r = 0; r < golden.num_rows(); ++r) {
    const auto& grow = golden.rows()[static_cast<std::size_t>(r)];
    const auto& crow = candidate.rows()[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < golden.columns().size(); ++c) {
      const Column& column = golden.columns()[c];
      const std::string mismatch =
          compare_cells(grow[c], crow[c], column, options.rel_tol);
      if (!mismatch.empty()) {
        out.push_back(finding(Severity::kRegression, bench, golden.name(),
                              column.name, r, mismatch));
      }
    }
  }
}

}  // namespace

std::vector<DiffFinding> diff_bench_results(const BenchResult& golden,
                                            const BenchResult& candidate,
                                            const DiffOptions& options) {
  std::vector<DiffFinding> out;
  const std::string& bench = golden.meta().bench;
  if (candidate.meta().bench != bench) {
    out.push_back(finding(Severity::kRegression, bench, "", "", -1,
                          "bench name changed to '" +
                              candidate.meta().bench + "'"));
    return out;
  }
  // Claims: compared by name; a changed verdict or a vanished claim is a
  // regression, a brand-new claim is informational.
  for (const Claim& gc : golden.claims()) {
    const Claim* match = nullptr;
    for (const Claim& cc : candidate.claims()) {
      if (cc.name == gc.name) {
        match = &cc;
        break;
      }
    }
    if (match == nullptr) {
      out.push_back(finding(Severity::kRegression, bench, "", "", -1,
                            "claim '" + gc.name + "' disappeared"));
    } else if (match->pass != gc.pass) {
      out.push_back(finding(Severity::kRegression, bench, "", "", -1,
                            "claim '" + gc.name + "' changed: golden " +
                                (gc.pass ? "PASS" : "FAIL") +
                                " vs candidate " +
                                (match->pass ? "PASS" : "FAIL")));
    }
  }
  for (const Claim& cc : candidate.claims()) {
    bool known = false;
    for (const Claim& gc : golden.claims()) {
      known = known || gc.name == cc.name;
    }
    if (!known) {
      out.push_back(finding(Severity::kInfo, bench, "", "", -1,
                            "new claim '" + cc.name + "' (" +
                                (cc.pass ? "PASS" : "FAIL") +
                                "), not in golden"));
    }
  }
  for (const Series& gs : golden.series()) {
    const Series* cs = candidate.find_series(gs.name());
    if (cs == nullptr) {
      out.push_back(finding(Severity::kRegression, bench, gs.name(), "", -1,
                            "series disappeared"));
      continue;
    }
    diff_series(bench, gs, *cs, options, out);
  }
  for (const Series& cs : candidate.series()) {
    if (golden.find_series(cs.name()) == nullptr) {
      out.push_back(finding(Severity::kInfo, bench, cs.name(), "", -1,
                            "new series, not in golden"));
    }
  }
  return out;
}

DiffReport diff_directories(const std::filesystem::path& golden_root,
                            const std::filesystem::path& candidate_root,
                            const DiffOptions& options) {
  if (!std::filesystem::is_directory(golden_root)) {
    throw std::runtime_error("golden root " + golden_root.string() +
                             " is not a directory");
  }
  std::vector<std::string> golden_benches;
  for (const auto& entry :
       std::filesystem::directory_iterator(golden_root)) {
    if (entry.is_directory() &&
        std::filesystem::exists(entry.path() / "result.json")) {
      golden_benches.push_back(entry.path().filename().string());
    }
  }
  std::sort(golden_benches.begin(), golden_benches.end());
  if (golden_benches.empty()) {
    throw std::runtime_error("golden root " + golden_root.string() +
                             " holds no <bench>/result.json");
  }

  DiffReport report;
  for (const std::string& bench : golden_benches) {
    // A broken committed baseline is reported as a named finding, not a
    // tool error, so the remaining benches still get compared.
    std::unique_ptr<BenchResult> golden_result;
    try {
      golden_result =
          std::make_unique<BenchResult>(BenchResult::load(golden_root / bench));
    } catch (const std::exception& e) {
      report.findings.push_back(finding(Severity::kRegression, bench, "", "",
                                        -1,
                                        std::string("golden unreadable: ") +
                                            e.what()));
      continue;
    }
    const BenchResult& golden = *golden_result;
    const std::filesystem::path candidate_dir = candidate_root / bench;
    if (!std::filesystem::exists(candidate_dir / "result.json")) {
      report.findings.push_back(
          finding(Severity::kRegression, bench, "", "", -1,
                  "missing from candidate (" + candidate_dir.string() +
                      "/result.json not found)"));
      continue;
    }
    try {
      const BenchResult candidate = BenchResult::load(candidate_dir);
      auto findings = diff_bench_results(golden, candidate, options);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(findings.begin()),
                             std::make_move_iterator(findings.end()));
      ++report.benches_compared;
    } catch (const std::exception& e) {
      report.findings.push_back(finding(Severity::kRegression, bench, "", "",
                                        -1,
                                        std::string("candidate unreadable: ") +
                                            e.what()));
    }
  }
  if (std::filesystem::is_directory(candidate_root)) {
    for (const auto& entry :
         std::filesystem::directory_iterator(candidate_root)) {
      if (!entry.is_directory() ||
          !std::filesystem::exists(entry.path() / "result.json")) {
        continue;
      }
      const std::string bench = entry.path().filename().string();
      if (std::find(golden_benches.begin(), golden_benches.end(), bench) ==
          golden_benches.end()) {
        report.findings.push_back(finding(
            options.fail_on_extra_bench ? Severity::kRegression
                                        : Severity::kInfo,
            bench, "", "", -1, "present in candidate but not in golden"));
      }
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const DiffFinding& a, const DiffFinding& b) {
              if (a.bench != b.bench) {
                return a.bench < b.bench;
              }
              if (a.series != b.series) {
                return a.series < b.series;
              }
              if (a.row != b.row) {
                return a.row < b.row;
              }
              return a.column < b.column;
            });
  return report;
}

}  // namespace psllc::results
