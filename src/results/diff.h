// Comparison of two result-store directories (golden baseline vs a fresh
// run), the engine behind tools/results_diff. Exact columns and claim
// checks must match bit-for-bit; timing columns are compared with a
// relative tolerance. Any finding of severity kRegression makes the diff
// fail (results_diff exits nonzero).
#ifndef PSLLC_RESULTS_DIFF_H_
#define PSLLC_RESULTS_DIFF_H_

#include <filesystem>
#include <string>
#include <vector>

#include "results/result_store.h"

namespace psllc::results {

struct DiffOptions {
  /// Relative tolerance for kTiming columns:
  /// |candidate - golden| <= rel_tol * max(|golden|, 1).
  double rel_tol = 0.02;
  /// Benches present in the candidate but not the golden are reported as
  /// kInfo (a new bench is not a regression) unless this is set.
  bool fail_on_extra_bench = false;
};

struct DiffFinding {
  enum class Severity { kInfo, kRegression };
  Severity severity = Severity::kRegression;
  std::string bench;
  std::string series;   ///< empty for bench-level findings
  std::string column;   ///< empty unless cell-level
  int row = -1;         ///< -1 unless cell-level
  std::string message;  ///< human-readable, includes both values

  [[nodiscard]] std::string to_string() const;
};

struct DiffReport {
  std::vector<DiffFinding> findings;
  int benches_compared = 0;

  [[nodiscard]] bool ok() const;
  [[nodiscard]] int num_regressions() const;
  /// One line per finding plus a summary line.
  [[nodiscard]] std::string to_text() const;
};

/// Compares two loaded bench results (golden vs candidate).
[[nodiscard]] std::vector<DiffFinding> diff_bench_results(
    const BenchResult& golden, const BenchResult& candidate,
    const DiffOptions& options);

/// Compares every `<bench>/result.json` under `golden_root` against
/// `candidate_root`. Unreadable/missing candidate results are regressions;
/// throws std::runtime_error only if `golden_root` itself is unusable.
[[nodiscard]] DiffReport diff_directories(
    const std::filesystem::path& golden_root,
    const std::filesystem::path& candidate_root, const DiffOptions& options);

}  // namespace psllc::results

#endif  // PSLLC_RESULTS_DIFF_H_
