#include "results/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace psllc::results {

Json Json::make_bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::make_int(std::int64_t v) {
  Json j;
  j.type_ = Type::kInt;
  j.int_ = v;
  return j;
}

Json Json::make_real(double v) {
  Json j;
  j.type_ = Type::kReal;
  j.real_ = v;
  return j;
}

Json Json::make_string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::make_array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::make_object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

namespace {

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull:
      return "null";
    case Json::Type::kBool:
      return "bool";
    case Json::Type::kInt:
      return "int";
    case Json::Type::kReal:
      return "real";
    case Json::Type::kString:
      return "string";
    case Json::Type::kArray:
      return "array";
    case Json::Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Json::Type got) {
  throw JsonParseError(std::string("JSON value is ") + type_name(got) +
                       ", expected " + wanted);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) {
    type_error("bool", type_);
  }
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kInt) {
    type_error("int", type_);
  }
  return int_;
}

double Json::as_real() const {
  if (type_ == Type::kInt) {
    return static_cast<double>(int_);
  }
  if (type_ != Type::kReal) {
    type_error("real", type_);
  }
  return real_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    type_error("string", type_);
  }
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  if (type_ != Type::kArray) {
    type_error("array", type_);
  }
  return array_;
}

std::vector<Json>& Json::as_array() {
  if (type_ != Type::kArray) {
    type_error("array", type_);
  }
  return array_;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) {
    throw JsonParseError("missing JSON object key '" + key + "'");
  }
  return *found;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) {
    type_error("object", type_);
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) {
    type_error("object", type_);
  }
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) {
    type_error("object", type_);
  }
  return object_;
}

void Json::push_back(Json value) {
  if (type_ != Type::kArray) {
    type_error("array", type_);
  }
  array_.push_back(std::move(value));
}

std::string format_real_shortest(double v) {
  if (std::isnan(v)) {
    return "nan";
  }
  if (std::isinf(v)) {
    return v > 0 ? "inf" : "-inf";
  }
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), v);
  if (ec != std::errc{}) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return buffer;
  }
  return std::string(buffer, end);
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char raw : s) {
    const auto ch = static_cast<unsigned char>(raw);
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      out += std::to_string(int_);
      return;
    case Type::kReal: {
      // JSON has no inf/nan literals; store as null like most emitters.
      if (std::isnan(real_) || std::isinf(real_)) {
        out += "null";
        return;
      }
      const std::string repr = format_real_shortest(real_);
      out += repr;
      // Keep the real/int distinction visible in the serialized form.
      if (repr.find_first_of(".eE") == std::string::npos) {
        out += ".0";
      }
      return;
    }
    case Type::kString:
      dump_string(string_, out);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      // Arrays of scalars stay on one line; nested containers get one
      // element per line so series rows read naturally.
      bool scalar_only = true;
      for (const Json& v : array_) {
        scalar_only = scalar_only && v.type_ != Type::kArray &&
                      v.type_ != Type::kObject;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (scalar_only) {
          if (i > 0) {
            out += ", ";
          }
        } else {
          out += i > 0 ? ",\n" : "\n";
          out += inner_pad;
        }
        array_[i].dump_to(out, indent + 1);
      }
      if (!scalar_only) {
        out += '\n';
        out += pad;
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += i > 0 ? ",\n" : "\n";
        out += inner_pad;
        dump_string(object_[i].first, out);
        out += ": ";
        object_[i].second.dump_to(out, indent + 1);
      }
      out += '\n';
      out += pad;
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream oss;
    oss << message << " at offset " << pos_;
    throw JsonParseError(oss.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) {
      fail(std::string("expected '") + ch + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char ch = peek();
    switch (ch) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::make_string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Json::make_bool(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return Json::make_bool(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return Json::make_null();
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::make_object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(key, parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::make_array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char ch = text_[pos_++];
      if (ch == '"') {
        return out;
      }
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              fail("invalid \\u escape digit");
            }
          }
          // BMP-only decoding (the writer never emits surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    bool is_real = false;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(ch)) != 0) {
        ++pos_;
      } else if (ch == '.' || ch == 'e' || ch == 'E' || ch == '+' ||
                 ch == '-') {
        is_real = is_real || ch == '.' || ch == 'e' || ch == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      fail("invalid number");
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_real) {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(first, last, value);
      if (ec == std::errc{} && ptr == last) {
        return Json::make_int(value);
      }
      // Out-of-range integer: fall through to double.
    }
    double value = 0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      fail("invalid number");
    }
    return Json::make_real(value);
  }
};

}  // namespace

Json Json::parse(const std::string& text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace psllc::results
