// Minimal JSON reader/writer for the result store. Self-contained (the
// toolchain image has no JSON library) and deliberately small: objects,
// arrays, strings, 64-bit integers, doubles, booleans, null. Numbers keep
// the int/real distinction so schema'd integer columns round-trip exactly.
#ifndef PSLLC_RESULTS_JSON_H_
#define PSLLC_RESULTS_JSON_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace psllc::results {

/// Thrown by Json::parse on malformed input (includes offset context).
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A parsed JSON document node. Object member order is preserved so a
/// write/parse/write round trip is byte-stable.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kReal, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json make_null() { return Json(); }
  static Json make_bool(bool v);
  static Json make_int(std::int64_t v);
  static Json make_real(double v);
  static Json make_string(std::string v);
  static Json make_array();
  static Json make_object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kReal;
  }

  /// Typed accessors; throw JsonParseError on type mismatch so schema
  /// violations surface as parse errors with context.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;  ///< accepts kInt too
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& as_array() const;
  [[nodiscard]] std::vector<Json>& as_array();

  /// Object access. `at` throws JsonParseError when the key is missing;
  /// `find` returns nullptr instead.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const Json* find(const std::string& key) const;
  void set(const std::string& key, Json value);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  void push_back(Json value);

  /// Serializes with 2-space indentation and '\n' line ends.
  [[nodiscard]] std::string dump() const;

  /// Parses a complete document; trailing non-whitespace is an error.
  [[nodiscard]] static Json parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double real_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  void dump_to(std::string& out, int indent) const;
};

/// Shortest-round-trip formatting for doubles (std::to_chars), used for both
/// JSON and CSV so the two artifacts always agree.
[[nodiscard]] std::string format_real_shortest(double v);

}  // namespace psllc::results

#endif  // PSLLC_RESULTS_JSON_H_
