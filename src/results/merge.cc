#include "results/merge.h"

#include <algorithm>
#include <map>

#include "common/assert.h"
#include "common/string_util.h"

namespace psllc::results {

bool is_shard_param(std::string_view name) {
  return starts_with(name, kShardParamPrefix);
}

void set_shard_provenance(RunMeta& meta, const std::string& manifest_hash,
                          int shard_index, int shard_count,
                          const std::vector<std::string>& unit_ids) {
  std::string joined;
  for (const std::string& id : unit_ids) {
    if (!joined.empty()) {
      joined.push_back(',');
    }
    joined += id;
  }
  meta.set_param(std::string(kShardManifestParam), manifest_hash);
  meta.set_param(std::string(kShardIndexParam), std::to_string(shard_index));
  meta.set_param(std::string(kShardCountParam), std::to_string(shard_count));
  meta.set_param(std::string(kShardUnitsParam), joined);
}

void set_shard_rows(RunMeta& meta, const std::string& series,
                    const std::vector<std::size_t>& ordinals) {
  std::string joined;
  for (std::size_t i = 0; i < ordinals.size(); ++i) {
    PSLLC_AUDIT(i == 0 || ordinals[i - 1] < ordinals[i],
                "shard rows for series '"
                    << series << "' not strictly increasing at index " << i
                    << " (" << ordinals[i - 1] << " -> " << ordinals[i]
                    << ")");
    if (!joined.empty()) {
      joined.push_back(',');
    }
    joined += std::to_string(ordinals[i]);
  }
  meta.set_param(std::string(kShardRowsPrefix) + series, joined);
}

BenchResult strip_shard_provenance(const BenchResult& partial) {
  RunMeta meta;
  meta.bench = partial.meta().bench;
  meta.title = partial.meta().title;
  meta.reference = partial.meta().reference;
  for (const auto& [key, value] : partial.meta().params) {
    if (!is_shard_param(key)) {
      meta.params.emplace_back(key, value);
    }
  }
  BenchResult merged(std::move(meta));
  for (const Claim& claim : partial.claims()) {
    merged.add_claim(claim.name, claim.pass);
  }
  for (const Series& series : partial.series()) {
    merged.add_series(series);
  }
  return merged;
}

namespace {

std::string where(const PartialBench& partial) {
  return partial.dir.string();
}

/// IDs from a comma-joined shard.units param (empty entries dropped).
std::vector<std::string> parse_unit_ids(const std::string& joined) {
  std::vector<std::string> ids;
  for (const std::string& id : split(joined, ',')) {
    if (!id.empty()) {
      ids.push_back(id);
    }
  }
  return ids;
}

/// Ordinals from a shard.rows.* param; throws MergeError on junk.
std::vector<std::size_t> parse_ordinals(const std::string& joined,
                                        const std::string& context) {
  std::vector<std::size_t> ordinals;
  for (const std::string& field : split(joined, ',')) {
    if (field.empty()) {
      continue;
    }
    const auto parsed = parse_i64(field);
    if (!parsed.has_value() || *parsed < 0) {
      throw MergeError(context + ": bad row ordinal '" + field + "'");
    }
    ordinals.push_back(static_cast<std::size_t>(*parsed));
  }
  return ordinals;
}

bool is_row_sharded(const BenchResult& result) {
  for (const auto& [key, value] : result.meta().params) {
    if (starts_with(key, kShardRowsPrefix)) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<std::string, std::string>> stripped_params(
    const RunMeta& meta) {
  std::vector<std::pair<std::string, std::string>> params;
  for (const auto& [key, value] : meta.params) {
    if (!is_shard_param(key)) {
      params.emplace_back(key, value);
    }
  }
  return params;
}

/// Non-shard meta (bench/title/reference/params) must agree across the
/// partials of one bench — they all describe the same full grid.
void check_meta_consistent(const PartialBench& a, const PartialBench& b) {
  const RunMeta& ma = a.result.meta();
  const RunMeta& mb = b.result.meta();
  const bool equal = ma.bench == mb.bench && ma.title == mb.title &&
                     ma.reference == mb.reference &&
                     stripped_params(ma) == stripped_params(mb);
  if (!equal) {
    throw MergeError("bench '" + a.result.meta().bench +
                     "': partials " + where(a) + " and " + where(b) +
                     " describe different grids (metadata disagrees)");
  }
}

BenchResult merge_row_sharded(const std::string& bench,
                              const std::vector<const PartialBench*>& parts) {
  for (std::size_t i = 1; i < parts.size(); ++i) {
    check_meta_consistent(*parts[0], *parts[i]);
  }

  // Claims: identical name lists, pass = AND over the shards (each shard
  // evaluates its claims over its own cells, and every bench-level claim
  // is a conjunction over cells, so the AND reproduces the unsharded
  // value).
  const std::vector<Claim>& first_claims = parts[0]->result.claims();
  std::vector<Claim> claims = first_claims;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::vector<Claim>& other = parts[i]->result.claims();
    if (other.size() != claims.size()) {
      throw MergeError("bench '" + bench +
                       "': partials disagree on the claim list");
    }
    for (std::size_t c = 0; c < claims.size(); ++c) {
      if (other[c].name != claims[c].name) {
        throw MergeError("bench '" + bench +
                         "': partials disagree on claim '" +
                         claims[c].name + "'");
      }
      claims[c].pass = claims[c].pass && other[c].pass;
    }
  }

  BenchResult merged(strip_shard_provenance(parts[0]->result).meta());
  for (const Claim& claim : claims) {
    merged.add_claim(claim.name, claim.pass);
  }

  // Series: every partial carries the full schema (possibly with zero
  // rows); rows are reassembled by their global ordinals. A row present in
  // several partials (e.g. a per-trace stats row whose cells span shards)
  // must be identical everywhere.
  const std::size_t num_series = parts[0]->result.series().size();
  for (const PartialBench* part : parts) {
    if (part->result.series().size() != num_series) {
      throw MergeError("bench '" + bench +
                       "': partials disagree on the series list");
    }
  }
  for (std::size_t s = 0; s < num_series; ++s) {
    const Series& shape = parts[0]->result.series()[s];
    std::map<std::size_t, std::vector<Value>> rows;
    for (const PartialBench* part : parts) {
      const Series& series = part->result.series()[s];
      if (series.name() != shape.name() ||
          series.columns() != shape.columns()) {
        throw MergeError("bench '" + bench + "': series '" + shape.name() +
                         "' has a different schema in " + where(*part));
      }
      const std::string* joined = part->result.meta().find_param(
          std::string(kShardRowsPrefix) + series.name());
      if (joined == nullptr) {
        throw MergeError("bench '" + bench + "': partial " + where(*part) +
                         " has no shard.rows." + series.name() + " param");
      }
      const std::vector<std::size_t> ordinals = parse_ordinals(
          *joined, "bench '" + bench + "' series '" + series.name() + "'");
      if (ordinals.size() != series.rows().size()) {
        throw MergeError("bench '" + bench + "': partial " + where(*part) +
                         " tags " + std::to_string(ordinals.size()) +
                         " ordinals for series '" + series.name() +
                         "' holding " +
                         std::to_string(series.rows().size()) + " rows");
      }
      for (std::size_t r = 0; r < ordinals.size(); ++r) {
        const auto [it, inserted] =
            rows.emplace(ordinals[r], series.rows()[r]);
        if (!inserted && it->second != series.rows()[r]) {
          throw MergeError("bench '" + bench + "': series '" +
                           series.name() + "' row ordinal " +
                           std::to_string(ordinals[r]) +
                           " disagrees between partials");
        }
      }
    }
    Series out(shape.name(), shape.columns());
    std::size_t expected = 0;
    for (const auto& [ordinal, row] : rows) {
      if (ordinal != expected) {
        throw MergeError("bench '" + bench + "': series '" + shape.name() +
                         "' is missing row ordinal " +
                         std::to_string(expected));
      }
      out.add_row(row);
      ++expected;
    }
    merged.add_series(std::move(out));
  }
  return merged;
}

}  // namespace

std::vector<PartialBench> load_partial_stores(
    const std::vector<std::filesystem::path>& roots) {
  std::vector<PartialBench> partials;
  for (const std::filesystem::path& root : roots) {
    if (!std::filesystem::is_directory(root)) {
      throw MergeError("partial store " + root.string() +
                       " is not a directory");
    }
    std::vector<std::filesystem::path> dirs;
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
      if (entry.is_directory() &&
          std::filesystem::exists(entry.path() / "result.json")) {
        dirs.push_back(entry.path());
      }
    }
    // Directory iteration order is platform-defined; sort so errors and
    // merge order are stable.
    std::sort(dirs.begin(), dirs.end());
    for (const std::filesystem::path& dir : dirs) {
      partials.push_back({dir, BenchResult::load(dir)});
    }
  }
  if (partials.empty()) {
    throw MergeError("no <bench>/result.json found under the partial roots");
  }
  return partials;
}

std::vector<BenchResult> merge_partial_results(
    const std::vector<MergeUnit>& expected_units,
    const std::string& manifest_hash,
    const std::vector<PartialBench>& partials) {
  std::map<std::string, const MergeUnit*> by_id;
  for (const MergeUnit& unit : expected_units) {
    by_id.emplace(unit.id, &unit);
  }

  // Unit coverage: every manifest unit claimed by exactly one partial,
  // nothing claimed that the manifest does not know.
  std::map<std::string, const PartialBench*> claimed;
  for (const PartialBench& partial : partials) {
    const RunMeta& meta = partial.result.meta();
    const std::string* hash =
        meta.find_param(std::string(kShardManifestParam));
    const std::string* units =
        meta.find_param(std::string(kShardUnitsParam));
    if (hash == nullptr || units == nullptr) {
      throw MergeError(where(partial) +
                       ": no shard provenance in result.json (not a "
                       "partial store?)");
    }
    if (*hash != manifest_hash) {
      throw MergeError(where(partial) +
                       ": produced under manifest " + *hash +
                       ", merging under " + manifest_hash);
    }
    for (const std::string& id : parse_unit_ids(*units)) {
      const auto unit_it = by_id.find(id);
      if (unit_it == by_id.end()) {
        throw MergeError(where(partial) + ": work unit " + id +
                         " is not in the manifest");
      }
      if (unit_it->second->bench != meta.bench) {
        throw MergeError(where(partial) + ": work unit " + id + " (" +
                         unit_it->second->label + ") belongs to bench '" +
                         unit_it->second->bench + "', not '" + meta.bench +
                         "'");
      }
      const auto [it, inserted] = claimed.emplace(id, &partial);
      if (!inserted) {
        throw MergeError("duplicate work unit " + id + " (" +
                         unit_it->second->label + "): produced by both " +
                         where(*it->second) + " and " + where(partial));
      }
    }
  }
  for (const MergeUnit& unit : expected_units) {
    if (!claimed.contains(unit.id)) {
      throw MergeError("missing work unit " + unit.id + " (" + unit.label +
                       "): no partial store covers it");
    }
  }

  // Group the partials per bench, ordered by first appearance in the
  // manifest so the merged output is deterministic.
  std::vector<std::string> bench_order;
  for (const MergeUnit& unit : expected_units) {
    if (std::find(bench_order.begin(), bench_order.end(), unit.bench) ==
        bench_order.end()) {
      bench_order.push_back(unit.bench);
    }
  }

  std::vector<BenchResult> merged;
  for (const std::string& bench : bench_order) {
    std::vector<const PartialBench*> parts;
    for (const PartialBench& partial : partials) {
      if (partial.result.meta().bench == bench) {
        parts.push_back(&partial);
      }
    }
    // Unit coverage guarantees every bench of the manifest appears.
    if (parts.empty()) {
      throw MergeError("bench '" + bench +
                       "' has units in the manifest but no partial "
                       "result (provenance inconsistent)");
    }
    bool any_rows = false;
    bool all_rows = true;
    for (const PartialBench* part : parts) {
      const bool row_sharded = is_row_sharded(part->result);
      any_rows = any_rows || row_sharded;
      all_rows = all_rows && row_sharded;
    }
    if (!any_rows) {
      // Whole-bench unit: the coverage check already enforced that only
      // one partial claims it.
      if (parts.size() != 1) {
        throw MergeError("bench '" + bench + "' appears in " +
                         std::to_string(parts.size()) +
                         " partial stores but is not row-sharded");
      }
      merged.push_back(strip_shard_provenance(parts[0]->result));
    } else if (!all_rows) {
      throw MergeError("bench '" + bench +
                       "': some partials are row-sharded and some are "
                       "whole-bench; refusing to mix");
    } else {
      merged.push_back(merge_row_sharded(bench, parts));
    }
  }
  return merged;
}

void merge_partial_stores(
    const std::vector<MergeUnit>& expected_units,
    const std::string& manifest_hash,
    const std::vector<std::filesystem::path>& partial_roots,
    const std::filesystem::path& out_root, const MergeOptions& options) {
  const std::vector<PartialBench> partials =
      load_partial_stores(partial_roots);
  const std::vector<BenchResult> merged =
      merge_partial_results(expected_units, manifest_hash, partials);
  for (const BenchResult& result : merged) {
    result.write(out_root, options.write_csv);
  }
}

}  // namespace psllc::results
