// Partial-result-store merge — the consumer side of the work-unit
// protocol (src/sim/shard.h). A sharded driver emits, per shard, a result
// store holding only the benches/rows of the work units it owns, tagged
// with shard.* provenance params in RunMeta:
//
//   shard.manifest       content hash of the governing manifest
//   shard.index/.count   which shard of how many produced the partial
//   shard.units          comma-joined unit IDs this partial covers
//   shard.rows.<series>  global row ordinals, one per series row, for
//                        benches sharded at cell granularity (absent for
//                        whole-bench units)
//
// merge_partial_stores joins the partials into one store bit-identical to
// an unsharded run: provenance params are stripped, row-sharded series are
// reassembled in ordinal order (rows replicated across shards must agree
// byte-for-byte), per-shard claims are AND-ed, and the unit coverage is
// checked against the manifest — a duplicate or missing unit refuses the
// merge with a MergeError naming the unit.
#ifndef PSLLC_RESULTS_MERGE_H_
#define PSLLC_RESULTS_MERGE_H_

#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "results/result_store.h"

namespace psllc::results {

/// Refusal to merge (duplicate/missing/inconsistent units or rows). The
/// message names the offending unit/series; tools/results_merge exits 1.
class MergeError : public std::runtime_error {
 public:
  explicit MergeError(const std::string& what) : std::runtime_error(what) {}
};

/// Manifest view the merge validates coverage against — the ID plus a
/// human-readable label ("bench" or "bench:cell") for error messages.
/// sim::ShardPlan units map 1:1 onto this (tools/results_merge converts).
struct MergeUnit {
  std::string id;
  std::string label;
  std::string bench;  ///< result-store directory the unit belongs to
};

struct MergeOptions {
  bool write_csv = true;  ///< regenerate per-series CSVs in the merged store
};

inline constexpr std::string_view kShardParamPrefix = "shard.";
inline constexpr std::string_view kShardManifestParam = "shard.manifest";
inline constexpr std::string_view kShardIndexParam = "shard.index";
inline constexpr std::string_view kShardCountParam = "shard.count";
inline constexpr std::string_view kShardUnitsParam = "shard.units";
inline constexpr std::string_view kShardRowsPrefix = "shard.rows.";

[[nodiscard]] bool is_shard_param(std::string_view name);

/// Producer-side helpers: append the provenance params (in the canonical
/// order the merge strips them back out of).
void set_shard_provenance(RunMeta& meta, const std::string& manifest_hash,
                          int shard_index, int shard_count,
                          const std::vector<std::string>& unit_ids);
void set_shard_rows(RunMeta& meta, const std::string& series,
                    const std::vector<std::size_t>& ordinals);

/// Copy of `partial` with every shard.* param removed — what the bench
/// result would have looked like in an unsharded run (given full rows).
[[nodiscard]] BenchResult strip_shard_provenance(const BenchResult& partial);

/// One <root>/<bench>/result.json of a partial store.
struct PartialBench {
  std::filesystem::path dir;  ///< where it was loaded from (error context)
  BenchResult result;
};

/// Loads every <bench>/result.json directly under each root. Throws
/// MergeError when a root is not a directory or holds no results.
[[nodiscard]] std::vector<PartialBench> load_partial_stores(
    const std::vector<std::filesystem::path>& roots);

/// In-memory merge: validates unit coverage (every expected unit exactly
/// once) and provenance binding, then joins per bench. Returns the merged
/// results ordered by first appearance of the bench in `expected_units`.
[[nodiscard]] std::vector<BenchResult> merge_partial_results(
    const std::vector<MergeUnit>& expected_units,
    const std::string& manifest_hash,
    const std::vector<PartialBench>& partials);

/// End to end: load `partial_roots`, merge, write every merged bench into
/// `out_root` (result.json + CSVs exactly as an unsharded run would).
void merge_partial_stores(const std::vector<MergeUnit>& expected_units,
                          const std::string& manifest_hash,
                          const std::vector<std::filesystem::path>& partial_roots,
                          const std::filesystem::path& out_root,
                          const MergeOptions& options = {});

}  // namespace psllc::results

#endif  // PSLLC_RESULTS_MERGE_H_
