#include "results/result_store.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"

namespace psllc::results {

std::string to_string(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kExact:
      return "exact";
    case ColumnKind::kTiming:
      return "timing";
  }
  return "?";
}

std::string to_string(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "int";
    case ColumnType::kReal:
      return "real";
    case ColumnType::kText:
      return "text";
  }
  return "?";
}

ColumnKind column_kind_from_string(const std::string& text) {
  if (text == "exact") {
    return ColumnKind::kExact;
  }
  if (text == "timing") {
    return ColumnKind::kTiming;
  }
  throw JsonParseError("unknown column kind '" + text + "'");
}

ColumnType column_type_from_string(const std::string& text) {
  if (text == "int") {
    return ColumnType::kInt;
  }
  if (text == "real") {
    return ColumnType::kReal;
  }
  if (text == "text") {
    return ColumnType::kText;
  }
  throw JsonParseError("unknown column type '" + text + "'");
}

// --- Value -------------------------------------------------------------------

Value Value::of_int(std::int64_t v) {
  Value value;
  value.type_ = Type::kInt;
  value.int_ = v;
  return value;
}

Value Value::of_real(double v) {
  Value value;
  value.type_ = Type::kReal;
  value.real_ = v;
  return value;
}

Value Value::of_text(std::string v) {
  Value value;
  value.type_ = Type::kText;
  value.text_ = std::move(v);
  return value;
}

Value Value::of_cycles(std::int64_t v, bool completed) {
  return completed ? of_int(v) : null();
}

std::int64_t Value::as_int() const {
  PSLLC_ASSERT(type_ == Type::kInt, "value is not an int");
  return int_;
}

double Value::as_real() const {
  if (type_ == Type::kInt) {
    return static_cast<double>(int_);
  }
  PSLLC_ASSERT(type_ == Type::kReal, "value is not a real");
  return real_;
}

const std::string& Value::as_text() const {
  PSLLC_ASSERT(type_ == Type::kText, "value is not text");
  return text_;
}

std::string Value::repr() const {
  switch (type_) {
    case Type::kNull:
      return "DNF";
    case Type::kInt:
      return std::to_string(int_);
    case Type::kReal:
      return format_real_shortest(real_);
    case Type::kText:
      return text_;
  }
  return "?";
}

Json Value::to_json() const {
  switch (type_) {
    case Type::kNull:
      return Json::make_null();
    case Type::kInt:
      return Json::make_int(int_);
    case Type::kReal:
      return Json::make_real(real_);
    case Type::kText:
      return Json::make_string(text_);
  }
  return Json::make_null();
}

Value Value::from_json(const Json& json, ColumnType type) {
  if (json.is_null()) {
    return null();
  }
  switch (type) {
    case ColumnType::kInt:
      return of_int(json.as_int());
    case ColumnType::kReal:
      return of_real(json.as_real());
    case ColumnType::kText:
      return of_text(json.as_string());
  }
  throw JsonParseError("unknown column type tag");
}

// --- Series ------------------------------------------------------------------

Series::Series(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  PSLLC_CONFIG_CHECK(!name_.empty(), "series needs a name");
  PSLLC_CONFIG_CHECK(!columns_.empty(),
                     "series '" << name_ << "' needs at least one column");
}

void Series::add_row(std::vector<Value> cells) {
  PSLLC_CONFIG_CHECK(cells.size() == columns_.size(),
                     "series '" << name_ << "': row has " << cells.size()
                                << " cells, schema has " << columns_.size()
                                << " columns");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (cells[c].is_null()) {
      continue;
    }
    const ColumnType type = columns_[c].type;
    const bool matches =
        (type == ColumnType::kInt && cells[c].type() == Value::Type::kInt) ||
        (type == ColumnType::kReal &&
         (cells[c].type() == Value::Type::kReal ||
          cells[c].type() == Value::Type::kInt)) ||
        (type == ColumnType::kText && cells[c].type() == Value::Type::kText);
    PSLLC_CONFIG_CHECK(matches, "series '" << name_ << "': cell " << c
                                           << " ('" << columns_[c].name
                                           << "') has the wrong type");
    // NaN/inf would serialize as null in JSON but as "nan"/"inf" in CSV,
    // so the two artifacts of one run would disagree and results_diff
    // would silently compare against null. Reject at insertion; emit
    // Value::null() ("DNF") for runs without a meaningful value.
    PSLLC_CONFIG_CHECK(cells[c].type() != Value::Type::kReal ||
                           std::isfinite(cells[c].as_real()),
                       "series '" << name_ << "' column '"
                                  << columns_[c].name
                                  << "': non-finite real value ("
                                  << cells[c].repr()
                                  << "); use Value::null() for DNF");
  }
  rows_.push_back(std::move(cells));
}

Table Series::to_table() const {
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const Column& column : columns_) {
    header.push_back(column.name);
  }
  Table table(std::move(header));
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].type() == Value::Type::kInt &&
          columns_[c].unit == "cycles") {
        cells.push_back(format_cycles(row[c].as_int()));
      } else {
        cells.push_back(row[c].repr());
      }
    }
    table.add_row(std::move(cells));
  }
  return table;
}

std::string Series::to_csv() const {
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const Column& column : columns_) {
    header.push_back(column.name);
  }
  Table table(std::move(header));
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& value : row) {
      cells.push_back(value.repr());
    }
    table.add_row(std::move(cells));
  }
  return table.to_csv();
}

Json Series::to_json() const {
  Json json = Json::make_object();
  json.set("name", Json::make_string(name_));
  Json columns = Json::make_array();
  for (const Column& column : columns_) {
    Json c = Json::make_object();
    c.set("name", Json::make_string(column.name));
    c.set("type", Json::make_string(to_string(column.type)));
    c.set("kind", Json::make_string(to_string(column.kind)));
    c.set("unit", Json::make_string(column.unit));
    columns.push_back(std::move(c));
  }
  json.set("columns", std::move(columns));
  Json rows = Json::make_array();
  for (const auto& row : rows_) {
    Json cells = Json::make_array();
    for (const Value& value : row) {
      cells.push_back(value.to_json());
    }
    rows.push_back(std::move(cells));
  }
  json.set("rows", std::move(rows));
  return json;
}

Series Series::from_json(const Json& json) {
  std::vector<Column> columns;
  for (const Json& c : json.at("columns").as_array()) {
    Column column;
    column.name = c.at("name").as_string();
    column.type = column_type_from_string(c.at("type").as_string());
    column.kind = column_kind_from_string(c.at("kind").as_string());
    column.unit = c.at("unit").as_string();
    columns.push_back(std::move(column));
  }
  Series series(json.at("name").as_string(), std::move(columns));
  for (const Json& row : json.at("rows").as_array()) {
    const auto& cells = row.as_array();
    PSLLC_CONFIG_CHECK(cells.size() == series.columns().size(),
                       "series '" << series.name() << "': JSON row has "
                                  << cells.size() << " cells");
    std::vector<Value> values;
    values.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      values.push_back(Value::from_json(cells[c], series.columns()[c].type));
    }
    series.add_row(std::move(values));
  }
  return series;
}

// --- RunMeta / BenchResult ---------------------------------------------------

void RunMeta::set_param(const std::string& key, const std::string& value) {
  for (auto& [k, v] : params) {
    if (k == key) {
      v = value;
      return;
    }
  }
  params.emplace_back(key, value);
}

const std::string* RunMeta::find_param(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

BenchResult::BenchResult(RunMeta meta) : meta_(std::move(meta)) {
  PSLLC_CONFIG_CHECK(!meta_.bench.empty(), "bench result needs a bench name");
}

Series& BenchResult::add_series(std::string name,
                                std::vector<Column> columns) {
  add_series(Series(std::move(name), std::move(columns)));
  return series_.back();
}

void BenchResult::add_series(Series series) {
  PSLLC_CONFIG_CHECK(find_series(series.name()) == nullptr,
                     "duplicate series '" << series.name() << "'");
  series_.push_back(std::move(series));
}

const Series* BenchResult::find_series(const std::string& name) const {
  for (const Series& s : series_) {
    if (s.name() == name) {
      return &s;
    }
  }
  return nullptr;
}

void BenchResult::add_claim(const std::string& name, bool pass) {
  claims_.push_back(Claim{name, pass});
}

bool BenchResult::all_claims_pass() const {
  for (const Claim& claim : claims_) {
    if (!claim.pass) {
      return false;
    }
  }
  return true;
}

Json BenchResult::to_json() const {
  Json json = Json::make_object();
  json.set("schema_version", Json::make_int(kSchemaVersion));
  json.set("bench", Json::make_string(meta_.bench));
  json.set("title", Json::make_string(meta_.title));
  json.set("reference", Json::make_string(meta_.reference));
  Json params = Json::make_object();
  for (const auto& [key, value] : meta_.params) {
    params.set(key, Json::make_string(value));
  }
  json.set("params", std::move(params));
  Json claims = Json::make_array();
  for (const Claim& claim : claims_) {
    Json c = Json::make_object();
    c.set("name", Json::make_string(claim.name));
    c.set("pass", Json::make_bool(claim.pass));
    claims.push_back(std::move(c));
  }
  json.set("claims", std::move(claims));
  Json series = Json::make_array();
  for (const Series& s : series_) {
    series.push_back(s.to_json());
  }
  json.set("series", std::move(series));
  return json;
}

std::string BenchResult::to_json_text() const { return to_json().dump(); }

BenchResult BenchResult::from_json(const Json& json) {
  const std::int64_t version = json.at("schema_version").as_int();
  PSLLC_CONFIG_CHECK(version == kSchemaVersion,
                     "unsupported result schema version " << version);
  RunMeta meta;
  meta.bench = json.at("bench").as_string();
  meta.title = json.at("title").as_string();
  meta.reference = json.at("reference").as_string();
  for (const auto& [key, value] : json.at("params").members()) {
    meta.set_param(key, value.as_string());
  }
  BenchResult result(std::move(meta));
  for (const Json& c : json.at("claims").as_array()) {
    result.add_claim(c.at("name").as_string(), c.at("pass").as_bool());
  }
  for (const Json& s : json.at("series").as_array()) {
    result.add_series(Series::from_json(s));
  }
  return result;
}

BenchResult BenchResult::from_json_text(const std::string& text) {
  return from_json(Json::parse(text));
}

namespace {

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() +
                             " for writing");
  }
  out << body;
  out.flush();
  if (!out) {
    throw std::runtime_error("write failed for " + path.string());
  }
}

}  // namespace

void BenchResult::write(const std::filesystem::path& root,
                        bool write_csv) const {
  const std::filesystem::path dir = root / meta_.bench;
  std::filesystem::create_directories(dir);
  write_file(dir / "result.json", to_json_text());
  if (write_csv) {
    for (const Series& s : series_) {
      write_file(dir / (s.name() + ".csv"), s.to_csv());
    }
  }
}

BenchResult BenchResult::load(const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / "result.json";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path.string());
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return from_json_text(oss.str());
}

std::filesystem::path resolve_results_root(const std::string& explicit_dir) {
  if (!explicit_dir.empty()) {
    return explicit_dir;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env; nothing calls setenv
  if (const char* env = std::getenv("PSLLC_RESULTS_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return "bench_results";
}

std::string current_commit_id() {
  for (const char* var : {"PSLLC_GIT_COMMIT", "GITHUB_SHA"}) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env; nothing calls setenv
    if (const char* env = std::getenv(var); env != nullptr && *env != '\0') {
      return env;
    }
  }
  return "unknown";
}

}  // namespace psllc::results
