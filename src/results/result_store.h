// Schema'd result store for the bench executables.
//
// Every bench emits one BenchResult: run metadata (bench name, commit,
// profile, config grid parameters, units) plus typed series, written as
//   <root>/<bench>/result.json      (canonical, machine-diffable)
//   <root>/<bench>/<series>.csv     (one per series, for plotting)
// Columns carry a kind: kExact values (analytical WCL bounds, configuration
// labels, claim checks) must match bit-for-bit across commits, while
// kTiming values (observed latencies, makespans, speedups) are compared
// with a tolerance by tools/results_diff.
#ifndef PSLLC_RESULTS_RESULT_STORE_H_
#define PSLLC_RESULTS_RESULT_STORE_H_

#include <cstdint>
#include <deque>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "results/json.h"

namespace psllc::results {

/// How results_diff compares a column across two runs.
enum class ColumnKind {
  kExact,   ///< analytic/configuration value: must match exactly
  kTiming,  ///< timing-derived value: compared with relative tolerance
};

/// Cell type of a column.
enum class ColumnType { kInt, kReal, kText };

[[nodiscard]] std::string to_string(ColumnKind kind);
[[nodiscard]] std::string to_string(ColumnType type);
[[nodiscard]] ColumnKind column_kind_from_string(const std::string& text);
[[nodiscard]] ColumnType column_type_from_string(const std::string& text);

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  ColumnKind kind = ColumnKind::kExact;
  std::string unit;  ///< "cycles", "bytes", "ratio", "" for labels

  [[nodiscard]] bool operator==(const Column&) const = default;
};

/// One typed cell. Null models a run that did not finish (rendered "DNF"
/// in CSV, null in JSON).
class Value {
 public:
  enum class Type { kNull, kInt, kReal, kText };

  Value() : type_(Type::kNull) {}
  static Value null() { return Value(); }
  static Value of_int(std::int64_t v);
  static Value of_real(double v);
  static Value of_text(std::string v);
  /// of_int when `completed`, null (DNF) otherwise — the common pattern for
  /// cycle counts from runs bounded by a horizon.
  static Value of_cycles(std::int64_t v, bool completed);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;  ///< accepts kInt
  [[nodiscard]] const std::string& as_text() const;

  /// Machine representation used in CSV cells and diff messages.
  [[nodiscard]] std::string repr() const;
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Value from_json(const Json& json, ColumnType type);

  [[nodiscard]] bool operator==(const Value&) const = default;

 private:
  Type type_;
  std::int64_t int_ = 0;
  double real_ = 0;
  std::string text_;
};

/// A named table of typed columns. Rows are validated against the schema on
/// insertion: wrong arity, a non-null cell of the wrong type, or a
/// non-finite real (NaN/inf would serialize differently in JSON vs CSV)
/// throws ConfigError (null is allowed in any column).
class Series {
 public:
  Series(std::string name, std::vector<Column> columns);

  void add_row(std::vector<Value> cells);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Column>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<Value>>& rows() const {
    return rows_;
  }
  [[nodiscard]] int num_rows() const { return static_cast<int>(rows_.size()); }

  /// Pretty console rendering (thousands separators for cycle counts);
  /// CSV output is always the raw machine representation.
  [[nodiscard]] Table to_table() const;
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Series from_json(const Json& json);

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::vector<std::vector<Value>> rows_;
};

/// A named boolean claim check ("observed <= analytical everywhere").
/// Claims are exact: a PASS->FAIL transition is always a regression.
struct Claim {
  std::string name;
  bool pass = false;

  [[nodiscard]] bool operator==(const Claim&) const = default;
};

/// Run metadata. `commit` and friends are informational (ignored by the
/// diff); bench/title/reference identify the artifact.
struct RunMeta {
  std::string bench;      ///< directory name under the results root
  std::string title;
  std::string reference;  ///< paper figure/section reproduced
  /// Free-form config-grid parameters (seed, accesses, profile, commit...),
  /// emission order preserved.
  std::vector<std::pair<std::string, std::string>> params;

  void set_param(const std::string& key, const std::string& value);
  [[nodiscard]] const std::string* find_param(const std::string& key) const;
};

/// The full result of one bench run.
class BenchResult {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit BenchResult(RunMeta meta);

  [[nodiscard]] const RunMeta& meta() const { return meta_; }
  [[nodiscard]] RunMeta& meta() { return meta_; }

  /// Adds an empty series; the returned reference stays valid for the
  /// lifetime of the BenchResult (series are stored in a deque, so later
  /// add_series calls never relocate earlier ones). Duplicate names throw
  /// ConfigError.
  Series& add_series(std::string name, std::vector<Column> columns);
  void add_series(Series series);
  [[nodiscard]] const std::deque<Series>& series() const { return series_; }
  [[nodiscard]] const Series* find_series(const std::string& name) const;

  void add_claim(const std::string& name, bool pass);
  [[nodiscard]] const std::vector<Claim>& claims() const { return claims_; }
  /// True iff every recorded claim passed.
  [[nodiscard]] bool all_claims_pass() const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] std::string to_json_text() const;
  [[nodiscard]] static BenchResult from_json(const Json& json);
  [[nodiscard]] static BenchResult from_json_text(const std::string& text);

  /// Writes <root>/<bench>/result.json (+ one CSV per series unless
  /// `write_csv` is false). Creates directories as needed; throws
  /// std::runtime_error on I/O failure.
  void write(const std::filesystem::path& root, bool write_csv = true) const;

  /// Loads <dir>/result.json.
  [[nodiscard]] static BenchResult load(const std::filesystem::path& dir);

 private:
  RunMeta meta_;
  std::deque<Series> series_;
  std::vector<Claim> claims_;
};

/// Resolution of the results root directory, in priority order:
///   1. `explicit_dir` if non-empty (a --results-dir flag),
///   2. the PSLLC_RESULTS_DIR environment variable,
///   3. "bench_results" under the current working directory.
/// Benches therefore work from any directory when either override is set.
[[nodiscard]] std::filesystem::path resolve_results_root(
    const std::string& explicit_dir = "");

/// Best-effort commit id for run metadata: PSLLC_GIT_COMMIT, then
/// GITHUB_SHA, else "unknown". Never invokes git (results must not depend
/// on the presence of a work tree).
[[nodiscard]] std::string current_commit_id();

}  // namespace psllc::results

#endif  // PSLLC_RESULTS_RESULT_STORE_H_
