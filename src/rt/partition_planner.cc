#include "rt/partition_planner.h"

#include <algorithm>

#include "common/table.h"

namespace psllc::rt {

namespace {

/// Evaluates one candidate split: `isolated[c]` says whether core c gets a
/// private slice. Fills the per-core outcomes; returns the built map.
PartitionPlan evaluate(const std::vector<Task>& tasks,
                       const core::SystemConfig& config,
                       const std::vector<bool>& isolated) {
  const int num_cores = config.num_cores;
  const auto& geometry = config.llc.geometry;
  const int m_cua = config.private_caches.l2.capacity_lines();

  const int isolated_count = static_cast<int>(
      std::count(isolated.begin(), isolated.end(), true));
  const int shared_count = num_cores - isolated_count;
  // Fair slice: an isolated core gets its 1/N share of the sets.
  const int sets_per_isolated = std::max(1, geometry.num_sets / num_cores);
  const int shared_sets =
      geometry.num_sets - isolated_count * sets_per_isolated;

  PartitionPlan plan;
  plan.isolated_cores = isolated_count;
  if (shared_count > 0 && shared_sets < 1) {
    plan.feasible = false;  // no room left for the sharers
    return plan;
  }

  plan.cores.resize(static_cast<std::size_t>(num_cores));
  bool all_ok = true;
  for (int c = 0; c < num_cores; ++c) {
    PlannedCore& planned = plan.cores[static_cast<std::size_t>(c)];
    planned.task = tasks[static_cast<std::size_t>(c)];
    CorePartition& partition = planned.partition;
    if (isolated[static_cast<std::size_t>(c)] || shared_count == 1) {
      // A lone "sharer" is effectively isolated too.
      partition.isolated = true;
      partition.sets = isolated[static_cast<std::size_t>(c)]
                           ? sets_per_isolated
                           : shared_sets;
      partition.ways = geometry.num_ways;
      partition.sharers = 1;
    } else if (!isolated[static_cast<std::size_t>(c)]) {
      partition.isolated = false;
      partition.sets = shared_sets;
      partition.ways = geometry.num_ways;
      partition.sharers = shared_count;
    }
    planned.wcet = wcet_bound(planned.task, partition, num_cores,
                              config.slot_width, m_cua);
    planned.schedulable = planned.wcet <= planned.task.period;
    all_ok = all_ok && planned.schedulable;
  }
  plan.feasible = all_ok;

  // Build the concrete LLC map (valid regardless of feasibility so callers
  // can inspect near-misses).
  llc::PartitionMap map(geometry);
  int next_set = 0;
  std::vector<CoreId> sharers;
  for (int c = 0; c < num_cores; ++c) {
    if (isolated[static_cast<std::size_t>(c)]) {
      map.add_partition(llc::PartitionSpec{next_set, sets_per_isolated, 0,
                                           geometry.num_ways},
                        {CoreId{c}});
      next_set += sets_per_isolated;
    } else {
      sharers.emplace_back(c);
    }
  }
  if (!sharers.empty()) {
    map.add_partition(llc::PartitionSpec{next_set,
                                         geometry.num_sets - next_set, 0,
                                         geometry.num_ways},
                      sharers);
  }
  plan.partitions.emplace(std::move(map));
  return plan;
}

}  // namespace

PartitionPlan plan_partitions(const std::vector<Task>& tasks,
                              const core::SystemConfig& config) {
  PSLLC_CONFIG_CHECK(static_cast<int>(tasks.size()) == config.num_cores,
                     "one task per core: " << tasks.size() << " tasks vs "
                                           << config.num_cores << " cores");
  for (const Task& task : tasks) {
    task.validate();
  }
  const int num_cores = config.num_cores;
  std::vector<bool> isolated(static_cast<std::size_t>(num_cores), false);

  PartitionPlan best = evaluate(tasks, config, isolated);
  while (!best.feasible) {
    // Isolate the neediest still-shared unschedulable core:
    // high-criticality first, then largest overshoot.
    int pick = -1;
    Cycle worst_overshoot = -1;
    bool pick_is_high = false;
    for (int c = 0; c < num_cores; ++c) {
      if (isolated[static_cast<std::size_t>(c)]) {
        continue;
      }
      const PlannedCore& planned = best.cores[static_cast<std::size_t>(c)];
      if (planned.schedulable) {
        continue;
      }
      const bool is_high = planned.task.criticality == Criticality::kHigh;
      const Cycle overshoot = planned.wcet - planned.task.period;
      if (pick < 0 || (is_high && !pick_is_high) ||
          (is_high == pick_is_high && overshoot > worst_overshoot)) {
        pick = c;
        worst_overshoot = overshoot;
        pick_is_high = is_high;
      }
    }
    if (pick < 0) {
      // Every unschedulable core is already isolated — no further lever.
      return best;
    }
    isolated[static_cast<std::size_t>(pick)] = true;
    PartitionPlan candidate = evaluate(tasks, config, isolated);
    if (!candidate.partitions.has_value() && !candidate.feasible &&
        candidate.cores.empty()) {
      return best;  // ran out of sets for the sharers
    }
    best = std::move(candidate);
    if (best.cores.empty()) {
      return best;
    }
  }
  return best;
}

llc::AppClass classify_task(const Task& task) {
  if (task.criticality == Criticality::kHigh) {
    return llc::AppClass::kSensitive;
  }
  // Miss intensity: >1 worst-case miss per 100 compute cycles means the
  // task churns the LLC faster than it reuses it.
  if (task.worst_case_llc_misses * 100 > task.wcet_compute) {
    return llc::AppClass::kStreaming;
  }
  return llc::AppClass::kLight;
}

ModeSchedulePlan plan_mode_schedule(const std::vector<PhaseSpec>& phases,
                                    const core::SystemConfig& config) {
  PSLLC_CONFIG_CHECK(!phases.empty(), "mode schedule needs at least one phase");
  PSLLC_CONFIG_CHECK(phases.front().start_cycle == 0,
                     "first phase must start at cycle 0, got "
                         << phases.front().start_cycle);
  for (std::size_t p = 1; p < phases.size(); ++p) {
    PSLLC_CONFIG_CHECK(
        phases[p].start_cycle > phases[p - 1].start_cycle,
        "phase start cycles must be strictly increasing: phase "
            << p << " starts at " << phases[p].start_cycle << " <= "
            << phases[p - 1].start_cycle);
  }

  ModeSchedulePlan plan;
  plan.feasible = true;
  bool all_maps = true;
  for (const PhaseSpec& phase : phases) {
    PartitionPlan phase_plan = plan_partitions(phase.tasks, config);
    plan.feasible = plan.feasible && phase_plan.feasible;
    all_maps = all_maps && phase_plan.partitions.has_value();
    plan.phase_labels.push_back(phase.label);
    plan.phases.push_back(std::move(phase_plan));
  }
  if (all_maps) {
    llc::PartitionProgram program(config.llc.geometry);
    for (std::size_t p = 0; p < phases.size(); ++p) {
      std::vector<llc::AppClass> classes;
      classes.reserve(phases[p].tasks.size());
      for (const Task& task : phases[p].tasks) {
        classes.push_back(classify_task(task));
      }
      program.add_mode(*plan.phases[p].partitions, phases[p].start_cycle,
                       std::move(classes), phases[p].label);
    }
    program.validate(config.num_cores);
    plan.program.emplace(std::move(program));
  }
  return plan;
}

std::string ModeSchedulePlan::describe() const {
  std::string out;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    out += "phase " + std::to_string(p);
    if (!phase_labels[p].empty()) {
      out += " (" + phase_labels[p] + ")";
    }
    out += ":\n" + phases[p].describe();
  }
  out += feasible ? "schedule: FEASIBLE\n" : "schedule: INFEASIBLE\n";
  return out;
}

std::string PartitionPlan::describe() const {
  Table table({"task", "criticality", "partition", "WCET bound", "period",
               "schedulable"});
  for (std::size_t c = 0; c < cores.size(); ++c) {
    const PlannedCore& planned = cores[c];
    std::string partition_text =
        planned.partition.isolated
            ? "private " + std::to_string(planned.partition.sets) + "x" +
                  std::to_string(planned.partition.ways)
            : "shared " + std::to_string(planned.partition.sets) + "x" +
                  std::to_string(planned.partition.ways) + " (n=" +
                  std::to_string(planned.partition.sharers) + ", SS)";
    table.add_row({planned.task.name, to_string(planned.task.criticality),
                   partition_text, format_cycles(planned.wcet),
                   format_cycles(planned.task.period),
                   planned.schedulable ? "yes" : "NO"});
  }
  std::string out = table.to_text();
  out += feasible ? "plan: FEASIBLE\n" : "plan: INFEASIBLE\n";
  return out;
}

}  // namespace psllc::rt
