// Partition planner — the deployment flow the paper's conclusion sketches:
// "certain tasks have their own partitions, but others share partitions;
// all of which depends on their performance and real-time requirements."
//
// Given one task per core, the planner starts from the utilization-friendly
// extreme (everybody shares the whole LLC through the set sequencer) and
// isolates tasks into private set-ranges until every task's composed WCET
// fits its period. High-criticality tasks are isolated first; the shared
// partition keeps the remaining sets.
#ifndef PSLLC_RT_PARTITION_PLANNER_H_
#define PSLLC_RT_PARTITION_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/system_config.h"
#include "llc/partition.h"
#include "rt/task.h"
#include "rt/wcet.h"

namespace psllc::rt {

/// Result for one task/core.
struct PlannedCore {
  Task task;
  CorePartition partition;
  Cycle wcet = 0;
  bool schedulable = false;
};

struct PartitionPlan {
  bool feasible = false;
  std::vector<PlannedCore> cores;          ///< indexed by core id
  std::optional<llc::PartitionMap> partitions;  ///< buildable LLC map
  int isolated_cores = 0;

  /// Human-readable summary table.
  [[nodiscard]] std::string describe() const;
};

/// Plans partitions for `tasks` (task i runs on core i) on the platform
/// described by `config` (geometry, slot width, private cache capacity).
/// Throws ConfigError when tasks.size() != config.num_cores.
[[nodiscard]] PartitionPlan plan_partitions(const std::vector<Task>& tasks,
                                            const core::SystemConfig& config);

/// LFOC-style class label for one task: high-criticality tasks are
/// `kSensitive` (they motivate isolation regardless of footprint); the rest
/// split on miss intensity — more than one worst-case LLC miss per hundred
/// compute cycles is `kStreaming` (pollutes without reuse), anything
/// lighter is `kLight`.
[[nodiscard]] llc::AppClass classify_task(const Task& task);

/// One operating phase of a mission: the task set active on the cores from
/// `start_cycle` onward (task i runs on core i, as in plan_partitions).
struct PhaseSpec {
  std::string label;
  Cycle start_cycle = 0;
  std::vector<Task> tasks;  ///< one per core
};

/// A per-phase partition plan stitched into a time-varying mode schedule.
struct ModeSchedulePlan {
  bool feasible = false;  ///< every phase individually feasible
  std::vector<PartitionPlan> phases;      ///< indexed like the input phases
  std::vector<std::string> phase_labels;  ///< echoed from the input phases
  /// The runnable schedule: one PartitionMode per phase, triggered at the
  /// phase's start_cycle, core classes from classify_task. Present whenever
  /// every phase produced a map (even near-miss infeasible ones, so callers
  /// can inspect what would run).
  std::optional<llc::PartitionProgram> program;

  /// Human-readable per-phase summary.
  [[nodiscard]] std::string describe() const;
};

/// Plans a multi-mode schedule: runs plan_partitions per phase and stitches
/// the resulting maps into a PartitionProgram whose transitions fire at the
/// phase boundaries (executed by the LLC's drain/flush protocol). Phases
/// must be non-empty, the first must start at cycle 0, and start cycles
/// must be strictly increasing; throws ConfigError otherwise.
[[nodiscard]] ModeSchedulePlan plan_mode_schedule(
    const std::vector<PhaseSpec>& phases, const core::SystemConfig& config);

}  // namespace psllc::rt

#endif  // PSLLC_RT_PARTITION_PLANNER_H_
