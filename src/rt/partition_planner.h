// Partition planner — the deployment flow the paper's conclusion sketches:
// "certain tasks have their own partitions, but others share partitions;
// all of which depends on their performance and real-time requirements."
//
// Given one task per core, the planner starts from the utilization-friendly
// extreme (everybody shares the whole LLC through the set sequencer) and
// isolates tasks into private set-ranges until every task's composed WCET
// fits its period. High-criticality tasks are isolated first; the shared
// partition keeps the remaining sets.
#ifndef PSLLC_RT_PARTITION_PLANNER_H_
#define PSLLC_RT_PARTITION_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/system_config.h"
#include "llc/partition.h"
#include "rt/task.h"
#include "rt/wcet.h"

namespace psllc::rt {

/// Result for one task/core.
struct PlannedCore {
  Task task;
  CorePartition partition;
  Cycle wcet = 0;
  bool schedulable = false;
};

struct PartitionPlan {
  bool feasible = false;
  std::vector<PlannedCore> cores;          ///< indexed by core id
  std::optional<llc::PartitionMap> partitions;  ///< buildable LLC map
  int isolated_cores = 0;

  /// Human-readable summary table.
  [[nodiscard]] std::string describe() const;
};

/// Plans partitions for `tasks` (task i runs on core i) on the platform
/// described by `config` (geometry, slot width, private cache capacity).
/// Throws ConfigError when tasks.size() != config.num_cores.
[[nodiscard]] PartitionPlan plan_partitions(const std::vector<Task>& tasks,
                                            const core::SystemConfig& config);

}  // namespace psllc::rt

#endif  // PSLLC_RT_PARTITION_PLANNER_H_
