// Real-time task model for WCET composition on top of the LLC analysis.
//
// The paper assumes one task per core (Section 3) and motivates partition
// sharing with consolidation of safety-critical functionalities (ISO 26262,
// Section 1). This module composes a task's worst-case execution time from
// its compute demand and a bound on its LLC misses, each charged the
// partition configuration's analytical worst-case latency.
#ifndef PSLLC_RT_TASK_H_
#define PSLLC_RT_TASK_H_

#include <cstdint>
#include <string>

#include "common/assert.h"
#include "common/types.h"

namespace psllc::rt {

/// Criticality bands (coarse ISO-26262-style grouping): high-criticality
/// tasks prefer isolation (private partitions); low ones may share.
enum class Criticality : std::uint8_t { kHigh, kLow };

[[nodiscard]] constexpr const char* to_string(Criticality c) {
  return c == Criticality::kHigh ? "HIGH" : "LOW";
}

/// A periodic task, pinned to one core, implicit deadline = period.
struct Task {
  std::string name;
  Criticality criticality = Criticality::kLow;
  /// Compute cycles per job, excluding all LLC-miss stalls (private-cache
  /// hit latencies are assumed folded in by the WCET analysis producing
  /// this number).
  Cycle wcet_compute = 0;
  /// Safe upper bound on LLC requests (L2 misses) per job, from static
  /// cache analysis of the task against its private caches.
  std::int64_t worst_case_llc_misses = 0;
  Cycle period = 0;

  void validate() const {
    PSLLC_CONFIG_CHECK(!name.empty(), "task needs a name");
    PSLLC_CONFIG_CHECK(wcet_compute >= 0, "negative compute WCET");
    PSLLC_CONFIG_CHECK(worst_case_llc_misses >= 0, "negative miss bound");
    PSLLC_CONFIG_CHECK(period > 0, "task '" << name
                                            << "' needs a positive period");
  }
};

}  // namespace psllc::rt

#endif  // PSLLC_RT_TASK_H_
