#include "rt/wcet.h"

namespace psllc::rt {

Cycle per_miss_bound(const CorePartition& partition, int total_cores,
                     Cycle slot_width, int cua_capacity_lines) {
  PSLLC_CONFIG_CHECK(total_cores >= 1 && slot_width > 0,
                     "bad platform parameters");
  const Cycle period = static_cast<Cycle>(total_cores) * slot_width;
  if (partition.isolated) {
    // Service bound + alignment period + one period for a queued
    // self-eviction write-back winning the round robin.
    return core::wcl_private_cycles(total_cores, slot_width) + 2 * period;
  }
  core::SharedPartitionScenario scenario;
  scenario.total_cores = total_cores;
  scenario.sharers = partition.sharers;
  scenario.partition_sets = partition.sets;
  scenario.partition_ways = partition.ways;
  scenario.cua_capacity_lines = cua_capacity_lines;
  scenario.slot_width = slot_width;
  // Alignment period + up to `sharers` pending forced write-backs before
  // the first presentation.
  return core::wcl_set_sequencer_cycles(scenario) +
         (1 + partition.sharers) * period;
}

Cycle wcet_bound(const Task& task, const CorePartition& partition,
                 int total_cores, Cycle slot_width, int cua_capacity_lines) {
  task.validate();
  return task.wcet_compute +
         task.worst_case_llc_misses *
             per_miss_bound(partition, total_cores, slot_width,
                            cua_capacity_lines);
}

bool is_schedulable(const Task& task, const CorePartition& partition,
                    int total_cores, Cycle slot_width,
                    int cua_capacity_lines) {
  return wcet_bound(task, partition, total_cores, slot_width,
                    cua_capacity_lines) <= task.period;
}

}  // namespace psllc::rt
