// WCET composition: charging every LLC miss its analytical worst case.
//
// Per-miss bound = service WCL (Theorems 4.7/4.8 or the private bound)
// plus a conservative release penalty: the request can be issued right
// after the core's slot started (one period of alignment), and queued
// write-backs can win the round-robin before the first presentation (one
// period each; at most `sharers` forced write-backs can be pending for a
// shared partition, one self-eviction write-back for a private one).
#ifndef PSLLC_RT_WCET_H_
#define PSLLC_RT_WCET_H_

#include "core/system_config.h"
#include "core/wcl_analysis.h"
#include "rt/task.h"

namespace psllc::rt {

/// Describes the partition a core was assigned by a plan.
struct CorePartition {
  bool isolated = false;  ///< private partition (P) vs shared (SS)
  int sets = 1;
  int ways = 1;
  int sharers = 1;  ///< n, including this core (1 when isolated)
};

/// Worst-case cycles for one LLC miss under `partition` on an `total_cores`
/// system with `slot_width` slots and `cua_capacity_lines` of private
/// cache. Shared partitions are assumed sequenced (SS — the configuration
/// this library advocates); use core::wcl_1s_tdm_cycles directly for NSS.
[[nodiscard]] Cycle per_miss_bound(const CorePartition& partition,
                                   int total_cores, Cycle slot_width,
                                   int cua_capacity_lines);

/// wcet_compute + worst_case_llc_misses * per_miss_bound.
[[nodiscard]] Cycle wcet_bound(const Task& task,
                               const CorePartition& partition,
                               int total_cores, Cycle slot_width,
                               int cua_capacity_lines);

/// One task per core, non-preemptive (the paper's system model): a task is
/// schedulable iff its composed WCET fits its period.
[[nodiscard]] bool is_schedulable(const Task& task,
                                  const CorePartition& partition,
                                  int total_cores, Cycle slot_width,
                                  int cua_capacity_lines);

}  // namespace psllc::rt

#endif  // PSLLC_RT_WCET_H_
