#include "sim/adversary.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/assert.h"
#include "common/string_util.h"
#include "sim/batch.h"
#include "sim/replay.h"
#include "sim/shard.h"
#include "sim/trace_io.h"

namespace psllc::sim {
namespace {

/// Canonical rendering of a real-valued knob for key() — round-trippable
/// (%.17g) so two specs share an ID only when the stored doubles are
/// bit-equal.
std::string render_real(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// Per-core disjoint line regions, far enough apart that mirrored corpus
/// replay's power-of-two window shift cannot alias them, and a multiple of
/// a large power of two so shifting preserves every set-mapping residue.
LineAddr region_base(CoreId core) {
  return (static_cast<LineAddr>(core.value) + 1) << 24;
}

/// The partition rectangle `core` allocates into.
const llc::PartitionSpec& partition_of(const core::ExperimentSetup& setup,
                                       CoreId core) {
  const int id = setup.partitions().partition_of(core);
  PSLLC_ASSERT(id >= 0, "attack generation needs a partitioned core, got "
                            << to_string(core));
  return setup.partitions().spec(id);
}

/// `count` distinct physical set indices of `part` to hammer. Edge mode
/// alternates outside-in from the rectangle's first/last rows (the sets a
/// neighboring partition bug would clobber first); spread mode spaces them
/// evenly.
std::vector<int> target_set_indices(const llc::PartitionSpec& part, int count,
                                    bool edge_sets) {
  const int sets = part.num_sets;
  count = std::clamp(count, 1, sets);
  std::vector<int> targets;
  targets.reserve(static_cast<std::size_t>(count));
  if (edge_sets) {
    int lo = 0;
    int hi = sets - 1;
    while (static_cast<int>(targets.size()) < count) {
      targets.push_back(part.first_set + lo);
      ++lo;
      if (static_cast<int>(targets.size()) < count && hi >= lo) {
        targets.push_back(part.first_set + hi);
        --hi;
      }
    }
  } else {
    for (int i = 0; i < count; ++i) {
      targets.push_back(part.first_set + (i * sets) / count);
    }
  }
  return targets;
}

/// `depth` distinct lines from `base` upward that the partition maps into
/// physical set `target` — mapping-aware (works for modulo and xor-fold
/// alike) by filtering a linear line scan through map_set itself.
std::vector<LineAddr> same_set_pool(const llc::PartitionSpec& part,
                                    int target, LineAddr base, int depth) {
  std::vector<LineAddr> pool;
  pool.reserve(static_cast<std::size_t>(depth));
  const std::uint64_t scan_limit =
      static_cast<std::uint64_t>(depth) * part.num_sets * 16 + 1024;
  for (std::uint64_t offset = 0; offset < scan_limit; ++offset) {
    const LineAddr line = base + offset;
    if (part.map_set(line) == target) {
      pool.push_back(line);
      if (static_cast<int>(pool.size()) == depth) {
        return pool;
      }
    }
  }
  PSLLC_ASSERT(false, "set mapping never produced " << depth
                          << " lines for set " << target);
  return pool;
}

/// Hammered lines per target set: enough to defeat the private hierarchy
/// under any line->L2-set residue pattern (the whole pool may collapse
/// into one or two L2 sets) plus the spec's conflict depth on top of the
/// partition ways.
int conflict_depth(const AttackSpec& spec, const core::ExperimentSetup& setup,
                   const llc::PartitionSpec& part) {
  return setup.config.private_caches.l2.capacity_lines() + 1 +
         spec.depth_factor * part.num_ways;
}

core::MemOp make_op(LineAddr line, bool write, Cycle gap) {
  return {line * 64, write ? AccessType::kWrite : AccessType::kRead, gap};
}

core::Trace conflict_trace(const AttackSpec& spec,
                           const core::ExperimentSetup& setup, CoreId core,
                           Rng& rng) {
  const llc::PartitionSpec& part = partition_of(setup, core);
  const int depth = conflict_depth(spec, setup, part);
  const std::vector<int> targets =
      target_set_indices(part, spec.target_sets, spec.edge_sets);
  std::vector<std::vector<LineAddr>> pools;
  pools.reserve(targets.size());
  for (const int target : targets) {
    pools.push_back(same_set_pool(part, target, region_base(core), depth));
  }
  core::Trace trace;
  trace.reserve(static_cast<std::size_t>(spec.ops_per_core));
  for (int i = 0; i < spec.ops_per_core; ++i) {
    const auto& pool = pools[static_cast<std::size_t>(i) % pools.size()];
    // Round-robin through the pool (the worst sequence for LRU), with an
    // occasional random revisit to stir replacement state.
    const std::size_t slot =
        rng.next_bool(0.125)
            ? static_cast<std::size_t>(rng.next_below(pool.size()))
            : (static_cast<std::size_t>(i) / pools.size()) % pool.size();
    trace.push_back(
        make_op(pool[slot], rng.next_bool(spec.write_fraction), 0));
  }
  return trace;
}

core::Trace storm_trace(const AttackSpec& spec,
                        const core::ExperimentSetup& setup, CoreId core,
                        Rng& rng) {
  const llc::PartitionSpec& part = partition_of(setup, core);
  const int ws_lines =
      spec.depth_factor *
      std::max(setup.config.private_caches.l2.capacity_lines(),
               part.capacity_lines());
  const LineAddr base = region_base(core);
  core::Trace trace;
  trace.reserve(static_cast<std::size_t>(spec.ops_per_core));
  std::uint64_t cursor = 0;
  for (int i = 0; i < spec.ops_per_core; ++i) {
    // Mostly a sequential sweep (every access a capacity miss once the
    // working set exceeds both the L2 and the partition), with occasional
    // jumps so dirty victims are not always the oldest line.
    if (rng.next_bool(0.125)) {
      cursor = rng.next_below(static_cast<std::uint64_t>(ws_lines));
    } else {
      cursor = (cursor + 1) % static_cast<std::uint64_t>(ws_lines);
    }
    trace.push_back(
        make_op(base + cursor, rng.next_bool(spec.write_fraction), 0));
  }
  return trace;
}

core::Trace repart_trace(const AttackSpec& spec,
                         const core::ExperimentSetup& setup, CoreId core,
                         Rng& rng) {
  const llc::PartitionSpec& part = partition_of(setup, core);
  const int depth = conflict_depth(spec, setup, part);
  const std::vector<int> targets =
      target_set_indices(part, spec.target_sets, spec.edge_sets);
  std::vector<std::vector<LineAddr>> pools;
  pools.reserve(targets.size());
  for (const int target : targets) {
    pools.push_back(same_set_pool(part, target, region_base(core), depth));
  }
  const Cycle slot = setup.config.slot_width;
  const int cores = std::max(1, setup.config.num_cores);
  const Cycle epoch =
      static_cast<Cycle>(spec.repartition_epoch_slots) * slot;
  // Aim the first burst a couple of slots ahead of the trigger so its
  // requests are still in flight when the drain window opens; later bursts
  // keep hammering the frozen-then-reopened rectangle. Mostly-write
  // traffic dirties the moved ways, maximizing the drain's write-back
  // volume.
  const Cycle lead = epoch > 2 * slot ? epoch - 2 * slot : 0;
  const Cycle phase =
      static_cast<Cycle>((core.value * spec.phase_stride) % cores) * slot;
  core::Trace trace;
  trace.reserve(static_cast<std::size_t>(spec.ops_per_core));
  for (int i = 0; i < spec.ops_per_core; ++i) {
    const bool burst_head = i % spec.burst_len == 0;
    Cycle gap = 0;
    if (i == 0) {
      gap = lead + phase;
    } else if (burst_head) {
      gap = static_cast<Cycle>(spec.idle_slots) * slot;
    }
    const auto& pool = pools[static_cast<std::size_t>(i) % pools.size()];
    const std::size_t slot_index =
        rng.next_bool(0.125)
            ? static_cast<std::size_t>(rng.next_below(pool.size()))
            : (static_cast<std::size_t>(i) / pools.size()) % pool.size();
    trace.push_back(
        make_op(pool[slot_index], rng.next_bool(spec.write_fraction), gap));
  }
  return trace;
}

core::Trace burst_trace(const AttackSpec& spec,
                        const core::ExperimentSetup& setup, CoreId core,
                        Rng& rng) {
  const llc::PartitionSpec& part = partition_of(setup, core);
  const int depth = conflict_depth(spec, setup, part);
  const std::vector<int> targets =
      target_set_indices(part, spec.target_sets, /*edge_sets=*/true);
  std::vector<std::vector<LineAddr>> pools;
  pools.reserve(targets.size());
  for (const int target : targets) {
    pools.push_back(same_set_pool(part, target, region_base(core), depth));
  }
  const Cycle slot = setup.config.slot_width;
  const int cores = std::max(1, setup.config.num_cores);
  // Phase the cores apart by whole slots so bursts collide with different
  // points of the TDM period on every core.
  const Cycle phase =
      static_cast<Cycle>((core.value * spec.phase_stride) % cores) * slot;
  core::Trace trace;
  trace.reserve(static_cast<std::size_t>(spec.ops_per_core));
  for (int i = 0; i < spec.ops_per_core; ++i) {
    const bool burst_head = i % spec.burst_len == 0;
    Cycle gap = 0;
    if (i == 0) {
      gap = phase;
    } else if (burst_head) {
      gap = static_cast<Cycle>(spec.idle_slots) * slot;
    }
    const auto& pool = pools[static_cast<std::size_t>(i) % pools.size()];
    const std::size_t slot_index =
        (static_cast<std::size_t>(i) / pools.size()) % pool.size();
    trace.push_back(
        make_op(pool[slot_index], rng.next_bool(spec.write_fraction), gap));
  }
  return trace;
}

}  // namespace

AttackKind attack_kind_from_string(std::string_view text) {
  for (const AttackKind kind : all_attack_kinds()) {
    if (iequals(text, to_string(kind))) {
      return kind;
    }
  }
  PSLLC_CONFIG_CHECK(false, "unknown attack kind '"
                                << std::string(text)
                                << "' (want conflict, storm, burst or "
                                   "repart)");
  return AttackKind::kConflictStride;
}

std::vector<AttackKind> all_attack_kinds() {
  return {AttackKind::kConflictStride, AttackKind::kWritebackStorm,
          AttackKind::kSlotBurst, AttackKind::kRepartitionBurst};
}

std::string AttackSpec::key() const {
  std::string key;
  key += "attack|";
  key += to_string(kind);
  key += "|seed=" + std::to_string(seed);
  key += "|ops=" + std::to_string(ops_per_core);
  key += "|backend=" + mem::to_string(backend);
  key += "|sets=" + std::to_string(target_sets);
  key += "|depth=" + std::to_string(depth_factor);
  key += "|edge=" + std::to_string(edge_sets ? 1 : 0);
  key += "|wf=" + render_real(write_fraction);
  key += "|burst=" + std::to_string(burst_len);
  key += "|idle=" + std::to_string(idle_slots);
  key += "|phase=" + std::to_string(phase_stride);
  // Post-seed fields append only when meaningful, so every spec minted
  // before they existed keeps its content ID (and the committed goldens
  // their rows).
  if (asymmetric) {
    key += "|asym=1";
  }
  if (kind == AttackKind::kRepartitionBurst) {
    key += "|repoch=" + std::to_string(repartition_epoch_slots);
  }
  return key;
}

std::string AttackSpec::id() const { return content_id(key()); }

void AttackSpec::validate() const {
  PSLLC_CONFIG_CHECK(ops_per_core >= 1 && ops_per_core <= 10'000'000,
                     "attack ops_per_core must be in [1, 1e7], got "
                         << ops_per_core);
  PSLLC_CONFIG_CHECK(target_sets >= 1 && target_sets <= 4096,
                     "attack target_sets must be in [1, 4096], got "
                         << target_sets);
  PSLLC_CONFIG_CHECK(depth_factor >= 1 && depth_factor <= 64,
                     "attack depth_factor must be in [1, 64], got "
                         << depth_factor);
  PSLLC_CONFIG_CHECK(write_fraction >= 0.0 && write_fraction <= 1.0,
                     "attack write_fraction must be in [0, 1], got "
                         << write_fraction);
  PSLLC_CONFIG_CHECK(burst_len >= 1 && burst_len <= 4096,
                     "attack burst_len must be in [1, 4096], got "
                         << burst_len);
  PSLLC_CONFIG_CHECK(idle_slots >= 0 && idle_slots <= 1024,
                     "attack idle_slots must be in [0, 1024], got "
                         << idle_slots);
  PSLLC_CONFIG_CHECK(phase_stride >= 0 && phase_stride <= 64,
                     "attack phase_stride must be in [0, 64], got "
                         << phase_stride);
  PSLLC_CONFIG_CHECK(
      repartition_epoch_slots >= 1 && repartition_epoch_slots <= 65536,
      "attack repartition_epoch_slots must be in [1, 65536], got "
          << repartition_epoch_slots);
}

std::vector<AttackSpec> seed_manifest(AttackKind kind,
                                      std::uint64_t base_seed,
                                      int ops_per_core) {
  std::vector<AttackSpec> specs(kManifestSpecs);
  for (int i = 0; i < kManifestSpecs; ++i) {
    AttackSpec& spec = specs[static_cast<std::size_t>(i)];
    spec.kind = kind;
    spec.ops_per_core = ops_per_core;
    spec.seed = mix_seed(base_seed, static_cast<std::uint64_t>(kind),
                         static_cast<std::uint64_t>(i) + 1);
    switch (kind) {
      case AttackKind::kConflictStride:
        // One edge set, two edge sets, and a spread pattern.
        spec.target_sets = i == 2 ? 4 : i + 1;
        spec.depth_factor = 2 + i;
        spec.edge_sets = i != 2;
        spec.write_fraction = 0.5;
        break;
      case AttackKind::kWritebackStorm:
        // All-write storms against the bounded write queue, plus one
        // against the paper's fixed-latency model as a control.
        spec.depth_factor = i == 1 ? 4 : 2;
        spec.write_fraction = i == 2 ? 0.9 : 1.0;
        spec.backend = i == 2 ? mem::MemoryBackendKind::kFixedLatency
                              : mem::MemoryBackendKind::kWriteQueue;
        break;
      case AttackKind::kSlotBurst:
        spec.target_sets = 1 + i;
        spec.burst_len = 4 << i;  // 4, 8, 16
        spec.idle_slots = 2 - i >= 0 ? 2 - i : 0;
        spec.phase_stride = i == 2 ? 2 : 1;
        spec.write_fraction = 0.5;
        break;
      case AttackKind::kRepartitionBurst:
        // Early/mid/late triggers with growing way bounce; the last seed
        // is the asymmetric mix — repartition bursts on the cua while the
        // other cores rotate through the classic aggressor patterns.
        spec.target_sets = 1 + i;
        spec.depth_factor = i == 1 ? 8 : 4;  // ways bounced at the switch
        spec.repartition_epoch_slots = 12 + 12 * i;
        spec.burst_len = 8;
        spec.write_fraction = 0.75;
        spec.asymmetric = i == 2;
        break;
    }
    spec.validate();
  }
  return specs;
}

AttackSpec mutate_spec(const AttackSpec& spec, Rng& rng) {
  AttackSpec mutant = spec;
  // The stream seed always moves, so a mutant is never content-identical
  // to its parent even when every knob jitter lands on the same value.
  mutant.seed = rng.next_u64();
  const auto jitter = [&rng](int value, int lo, int hi) {
    return static_cast<int>(std::clamp<std::int64_t>(
        value + rng.next_in_range(-1, 1), lo, hi));
  };
  switch (spec.kind) {
    case AttackKind::kConflictStride:
      mutant.target_sets = jitter(spec.target_sets, 1, 8);
      mutant.depth_factor = jitter(spec.depth_factor, 1, 8);
      if (rng.next_bool(0.25)) {
        mutant.edge_sets = !spec.edge_sets;
      }
      mutant.write_fraction = std::clamp(
          spec.write_fraction +
              0.25 * static_cast<double>(rng.next_in_range(-1, 1)),
          0.0, 1.0);
      break;
    case AttackKind::kWritebackStorm:
      mutant.depth_factor = jitter(spec.depth_factor, 2, 8);
      mutant.write_fraction = std::clamp(
          spec.write_fraction +
              0.05 * static_cast<double>(rng.next_in_range(-1, 1)),
          0.5, 1.0);
      if (rng.next_bool(0.25)) {
        mutant.backend =
            spec.backend == mem::MemoryBackendKind::kWriteQueue
                ? mem::MemoryBackendKind::kFixedLatency
                : mem::MemoryBackendKind::kWriteQueue;
      }
      break;
    case AttackKind::kSlotBurst:
      mutant.burst_len = static_cast<int>(std::clamp<std::int64_t>(
          spec.burst_len + rng.next_in_range(-1, 1) * 4, 1, 64));
      mutant.idle_slots = jitter(spec.idle_slots, 0, 8);
      mutant.phase_stride = jitter(spec.phase_stride, 0, 8);
      mutant.target_sets = jitter(spec.target_sets, 1, 8);
      break;
    case AttackKind::kRepartitionBurst:
      mutant.repartition_epoch_slots = static_cast<int>(
          std::clamp<std::int64_t>(spec.repartition_epoch_slots +
                                       rng.next_in_range(-1, 1) * 4,
                                   4, 256));
      mutant.depth_factor = jitter(spec.depth_factor, 1, 8);
      mutant.burst_len = static_cast<int>(std::clamp<std::int64_t>(
          spec.burst_len + rng.next_in_range(-1, 1) * 4, 1, 64));
      mutant.target_sets = jitter(spec.target_sets, 1, 8);
      if (rng.next_bool(0.25)) {
        mutant.asymmetric = !spec.asymmetric;
      }
      break;
  }
  mutant.validate();
  return mutant;
}

core::ExperimentSetup make_cell_setup(const AttackSpec& spec,
                                      const SweepConfig& config) {
  core::ExperimentSetup setup =
      core::make_paper_setup(config.notation, config.active_cores);
  setup.config.dram.backend = spec.backend;
  setup.config.validate();
  if (spec.kind == AttackKind::kRepartitionBurst) {
    // Two-mode program: bounce depth_factor ways at the spec's trigger
    // epoch, so the drain window opens while the bursts are in flight.
    const Cycle epoch = static_cast<Cycle>(spec.repartition_epoch_slots) *
                        setup.config.slot_width;
    llc::PartitionProgram program(setup.partitions());
    program.add_mode(llc::make_way_bounced_map(setup.partitions(),
                                               spec.depth_factor),
                     epoch, {}, "bounce");
    setup.program = std::move(program);
  }
  return setup;
}

core::Trace make_attack_trace(const AttackSpec& spec,
                              const core::ExperimentSetup& setup,
                              CoreId core) {
  spec.validate();
  Rng rng(mix_seed(spec.seed, static_cast<std::uint64_t>(core.value)));
  // Asymmetric cells: the core under analysis keeps the spec's pattern;
  // every other core rotates through the classic aggressor families, so
  // one cell mixes distinct per-core patterns.
  AttackKind trace_kind = spec.kind;
  if (spec.asymmetric && core.value > 0) {
    constexpr AttackKind kRotation[3] = {AttackKind::kConflictStride,
                                         AttackKind::kWritebackStorm,
                                         AttackKind::kSlotBurst};
    trace_kind =
        kRotation[(static_cast<int>(spec.kind) + core.value) % 3];
  }
  switch (trace_kind) {
    case AttackKind::kConflictStride:
      return conflict_trace(spec, setup, core, rng);
    case AttackKind::kWritebackStorm:
      return storm_trace(spec, setup, core, rng);
    case AttackKind::kSlotBurst:
      return burst_trace(spec, setup, core, rng);
    case AttackKind::kRepartitionBurst:
      return repart_trace(spec, setup, core, rng);
  }
  PSLLC_ASSERT(false, "unreachable attack kind");
  return {};
}

void AdversaryOptions::validate() const {
  PSLLC_CONFIG_CHECK(!kinds.empty(), "adversary search needs >= 1 pattern");
  PSLLC_CONFIG_CHECK(!configs.empty(), "adversary search needs >= 1 config");
  PSLLC_CONFIG_CHECK(ops_per_core >= 1 && ops_per_core <= 10'000'000,
                     "adversary ops_per_core must be in [1, 1e7], got "
                         << ops_per_core);
  PSLLC_CONFIG_CHECK(rounds >= 0 && rounds <= 64,
                     "adversary rounds must be in [0, 64], got " << rounds);
  PSLLC_CONFIG_CHECK(survivors >= 1 && survivors <= 64,
                     "adversary survivors must be in [1, 64], got "
                         << survivors);
  PSLLC_CONFIG_CHECK(mutants >= 1 && mutants <= 64,
                     "adversary mutants must be in [1, 64], got " << mutants);
  PSLLC_CONFIG_CHECK(
      near_miss_slack >= 0.0 && near_miss_slack <= 1.0,
      "adversary near-miss slack must be in [0, 1], got " << near_miss_slack);
  PSLLC_CONFIG_CHECK(max_cycles >= 1,
                     "adversary max_cycles must be >= 1, got " << max_cycles);
  PSLLC_CONFIG_CHECK(threads >= 0,
                     "adversary threads must be >= 0, got " << threads);
}

std::string track_key(AttackKind kind, const SweepConfig& config) {
  return std::string(to_string(kind)) + "|" + config.notation + "@" +
         std::to_string(config.active_cores);
}

AdversaryCell evaluate_cell(const AttackSpec& spec, const SweepConfig& config,
                            const AdversaryOptions& options, int round) {
  AdversaryCell cell;
  cell.spec = spec;
  cell.config = config;
  cell.round = round;
  const core::ExperimentSetup setup = make_cell_setup(spec, config);
  std::vector<core::Trace> traces;
  traces.reserve(static_cast<std::size_t>(config.active_cores));
  for (int c = 0; c < config.active_cores; ++c) {
    traces.push_back(make_attack_trace(spec, setup, CoreId{c}));
  }
  ReplayRequest request;
  request.setup = &setup;
  request.workload.per_core = &traces;
  request.options.max_cycles = options.max_cycles;
  cell.metrics = replay(request).metrics;

  const RunMetrics& m = cell.metrics;
  // Dynamic-program cells are scored against the transient bound (the
  // steady bound does not claim to cover requests in flight across a mode
  // switch); for static programs transient == steady, so the math is
  // unchanged for every pre-existing cell.
  const Cycle bound = std::max(m.analytical_wcl, m.transient_analytical_wcl);
  if (m.completed && bound > 0) {
    cell.slack = static_cast<double>(bound - m.observed_wcl) /
                 static_cast<double>(bound);
  }
  cell.violation = m.completed && m.observed_wcl > bound;
  cell.near_miss = m.completed && !cell.violation &&
                   cell.slack <= options.near_miss_slack;
  return cell;
}

namespace {

AdversaryTrack run_track(AttackKind kind, const SweepConfig& config,
                         const AdversaryOptions& options) {
  AdversaryTrack track;
  track.kind = kind;
  track.config = config;
  track.ran = true;
  track.cells.reserve(static_cast<std::size_t>(options.cells_per_track()));

  // The track's mutation stream depends only on (search seed, track key) —
  // not on thread scheduling or shard layout.
  Rng rng(mix_seed(options.seed, fnv1a64(track_key(kind, config))));
  std::unordered_set<std::string> seen_ids;  // membership tests only

  const auto push_cell = [&](const AttackSpec& spec, int round) {
    seen_ids.insert(spec.id());
    track.cells.push_back(evaluate_cell(spec, config, options, round));
  };

  for (const AttackSpec& spec :
       seed_manifest(kind, options.seed, options.ops_per_core)) {
    push_cell(spec, 0);
  }

  for (int round = 1; round <= options.rounds; ++round) {
    // Rank the worst offenders: lowest slack first, content ID as the
    // deterministic tie-break.
    std::vector<std::size_t> order(track.cells.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const AdversaryCell& ca = track.cells[a];
                const AdversaryCell& cb = track.cells[b];
                if (ca.slack != cb.slack) {
                  return ca.slack < cb.slack;
                }
                return ca.spec.id() < cb.spec.id();
              });
    const int take =
        std::min<int>(options.survivors, static_cast<int>(order.size()));
    // Copy the survivor specs up front: push_cell grows track.cells.
    std::vector<AttackSpec> survivors;
    survivors.reserve(static_cast<std::size_t>(take));
    for (int s = 0; s < take; ++s) {
      survivors.push_back(track.cells[order[static_cast<std::size_t>(s)]]
                              .spec);
    }
    for (const AttackSpec& survivor : survivors) {
      for (int m = 0; m < options.mutants; ++m) {
        AttackSpec mutant = survivor;
        bool fresh = false;
        for (int attempt = 0; attempt < 64 && !fresh; ++attempt) {
          mutant = mutate_spec(survivor, rng);
          fresh = !seen_ids.contains(mutant.id());
        }
        PSLLC_ASSERT(fresh, "mutation failed to find a fresh spec for "
                                << survivor.id());
        push_cell(mutant, round);
      }
    }
  }
  // With fewer cells than survivors the track would fall short of the
  // fixed cells_per_track row budget; the manifest floor (>= 1 spec per
  // kind) and take = min(...) above make that impossible.
  PSLLC_ASSERT(static_cast<int>(track.cells.size()) ==
                   options.cells_per_track(),
               "track " << track_key(kind, config) << " produced "
                        << track.cells.size() << " cells, expected "
                        << options.cells_per_track());

  for (const AdversaryCell& cell : track.cells) {
    if (cell.metrics.completed) {
      track.min_slack = std::min(track.min_slack, cell.slack);
    }
    track.near_misses += cell.near_miss ? 1 : 0;
    track.violations += cell.violation ? 1 : 0;
  }
  return track;
}

}  // namespace

AdversaryResult run_adversary_search(const AdversaryOptions& options,
                                     const std::vector<bool>* track_mask) {
  options.validate();
  for (const SweepConfig& config : options.configs) {
    PSLLC_CONFIG_CHECK(config.active_cores >= 1,
                       "adversary config '" << config.notation
                                           << "' needs >= 1 active core");
  }
  const std::size_t num_tracks =
      options.kinds.size() * options.configs.size();
  PSLLC_CONFIG_CHECK(track_mask == nullptr ||
                         track_mask->size() == num_tracks,
                     "adversary track mask has " <<
                         (track_mask == nullptr ? 0 : track_mask->size())
                         << " flags for " << num_tracks << " tracks");

  AdversaryResult result;
  result.tracks.resize(num_tracks);
  std::vector<BatchJob> jobs;
  for (std::size_t k = 0; k < options.kinds.size(); ++k) {
    for (std::size_t c = 0; c < options.configs.size(); ++c) {
      const std::size_t ordinal = k * options.configs.size() + c;
      const AttackKind kind = options.kinds[k];
      const SweepConfig& config = options.configs[c];
      AdversaryTrack& slot = result.tracks[ordinal];
      slot.kind = kind;
      slot.config = config;
      if (track_mask != nullptr && !(*track_mask)[ordinal]) {
        continue;
      }
      jobs.push_back(BatchJob{
          track_key(kind, config), /*threads_wanted=*/1,
          [&slot, kind, config, &options](int /*threads_granted*/) {
            slot = run_track(kind, config, options);
          }});
    }
  }

  BatchOptions batch;
  batch.threads = options.threads;
  batch.max_concurrent_jobs = resolve_thread_budget(options.threads);
  const BatchReport report = run_batch(std::move(jobs), batch);
  PSLLC_CONFIG_CHECK(report.all_ok(),
                     "adversary search failed:\n" << report.error_summary());

  for (const AdversaryTrack& track : result.tracks) {
    result.violations += track.violations;
    result.near_misses += track.near_misses;
  }
  return result;
}

core::Trace cua_trace(const AdversaryCell& cell) {
  const core::ExperimentSetup setup = make_cell_setup(cell.spec, cell.config);
  return make_attack_trace(cell.spec, setup, CoreId{0});
}

std::filesystem::path promote_cell(const AdversaryCell& cell,
                                   const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  const std::filesystem::path path =
      dir / ("adv_" + std::string(to_string(cell.spec.kind)) + "_" +
             cell.spec.id() + ".pslt");
  write_trace_file(path.string(), cua_trace(cell));
  return path;
}

}  // namespace psllc::sim
