// Adversarial trace search — hostile workloads that attack the WCL bound.
//
// The paper's claim (Theorems 4.7/4.8 and the private bound) is checked
// elsewhere against benign workloads: the figure sweeps and the recorded
// corpus. This module generates workloads *designed* to break the bound and
// searches for the worst it can find:
//
//  * kConflictStride  — address strides filtered through the partition's
//    actual set mapping (modulo or xor-fold aware) so every core hammers the
//    same few partition sets — by default the partition-edge sets — with
//    more distinct lines than the partition (and the private L2) can hold,
//    maximizing conflict evictions and cross-core interference chains.
//  * kWritebackStorm  — near-100%-write sweeps over a working set larger
//    than both the private hierarchy and the partition, so every access
//    forces a dirty eviction; paired with the bounded write-queue backend
//    this drives the queue into its back-pressure path.
//  * kSlotBurst       — back-to-back request bursts separated by think time
//    sized in TDM slot widths, phased per core, so request arrivals pile up
//    against slot boundaries instead of spreading out.
//
// Every attack is an AttackSpec: a small parameter record with a stable
// content-addressed ID (fnv1a64 over the canonical key, the same scheme as
// the shard work-unit protocol). Trace generation is a pure function of
// (spec, setup, core), so a spec manifest reproduces its traces bit for bit
// on any machine.
//
// The search runs per *track* — one (attack kind x sweep config) pair.
// A track evaluates the kind's seed manifest through sim::replay(), scores
// each cell by bound slack (analytical - observed) / analytical, then
// hill-climbs: each round mutates the lowest-slack survivors into fresh
// specs and re-evaluates. Tracks are independent and internally serial, so
// the result is bit-identical across thread counts and shardable at track
// granularity (a track mask, like the corpus cell mask). Cells whose slack
// drops below a threshold are *near misses*; promote_cell writes their
// core-0 trace as a .pslt file so they can be committed as regression
// traces and replayed by the corpus_runner golden gates.
#ifndef PSLLC_SIM_ADVERSARY_H_
#define PSLLC_SIM_ADVERSARY_H_

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/system_config.h"
#include "mem/dram.h"
#include "sim/experiment.h"

namespace psllc::sim {

/// The attack pattern families (>= 3 by design; see file comment).
///
///  * kRepartitionBurst — the cell's setup carries a two-mode partition
///    program (the mode switch bounces depth_factor ways at the spec's
///    trigger epoch) and the traces fire conflict bursts timed into the
///    repartition window, so requests are in flight while the LLC drains —
///    the scenario the transient WCL bound (core/wcl_analysis
///    transient_wcl_terms) must cover.
enum class AttackKind : std::uint8_t {
  kConflictStride,
  kWritebackStorm,
  kSlotBurst,
  kRepartitionBurst,
};

[[nodiscard]] constexpr const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kConflictStride: return "conflict";
    case AttackKind::kWritebackStorm: return "storm";
    case AttackKind::kSlotBurst: return "burst";
    case AttackKind::kRepartitionBurst: return "repart";
  }
  return "?";
}

/// Parses "conflict", "storm", "burst", "repart" (case-insensitive).
/// Throws ConfigError on unknown names.
[[nodiscard]] AttackKind attack_kind_from_string(std::string_view text);

/// All attack kinds, in canonical (enum) order.
[[nodiscard]] std::vector<AttackKind> all_attack_kinds();

/// One point of the attack parameter space. Fields irrelevant to `kind`
/// keep their defaults and still participate in the key, so the ID is a
/// total function of the record.
struct AttackSpec {
  AttackKind kind = AttackKind::kConflictStride;
  /// Stream seed: every generated trace draws from Rng(mix_seed(seed,
  /// core)). Mutation always redraws it, which keeps mutant IDs fresh.
  std::uint64_t seed = 1;
  int ops_per_core = 1000;
  /// Memory backend the cell runs against (storm seeds pick the bounded
  /// write queue; everything else the paper's fixed-latency model).
  mem::MemoryBackendKind backend = mem::MemoryBackendKind::kFixedLatency;
  /// kConflictStride / kSlotBurst: distinct partition sets hammered
  /// (clamped to the partition height at generation time).
  int target_sets = 1;
  /// kConflictStride: hammered lines per set = depth_factor * partition
  /// ways; kWritebackStorm: working set = depth_factor * max(private L2,
  /// partition) capacity.
  int depth_factor = 2;
  /// kConflictStride: hammer the partition-edge sets (first/last rows of
  /// the rectangle) instead of spreading the targets evenly.
  bool edge_sets = true;
  /// Probability an access is a store.
  double write_fraction = 0.5;
  /// kSlotBurst: back-to-back requests per burst.
  int burst_len = 8;
  /// kSlotBurst: think time between bursts, in TDM slot widths.
  int idle_slots = 2;
  /// kSlotBurst: per-core phase offset, in slot widths per core index.
  int phase_stride = 1;
  /// Cross-core asymmetric cell: core 0 runs this spec's pattern while the
  /// other cores rotate through the remaining families, so one cell mixes
  /// e.g. a conflict attacker with storm and burst aggressors.
  bool asymmetric = false;
  /// kRepartitionBurst: mode-switch trigger epoch, in TDM slot widths.
  int repartition_epoch_slots = 24;

  /// Canonical '|'-separated rendering of every field — the preimage of
  /// id(). Two specs are interchangeable iff their keys are equal.
  /// (Post-seed fields — asymmetric, repartition_epoch_slots — are
  /// appended only when they differ from their defaults, keeping every
  /// pre-existing spec ID and committed golden stable.)
  [[nodiscard]] std::string key() const;
  /// Stable content-addressed ID: content_id(key()), 16 hex digits (the
  /// fnv1a64 scheme of the shard work-unit protocol).
  [[nodiscard]] std::string id() const;

  /// Throws ConfigError on out-of-domain parameters.
  void validate() const;
};

/// Number of hand-designed starting specs per kind (the seed manifest).
inline constexpr int kManifestSpecs = 3;

/// The deterministic seed manifest for one attack kind: kManifestSpecs
/// starting points covering the kind's parameter corners, with stream
/// seeds derived from `base_seed` so the whole manifest is reproducible
/// from one number.
[[nodiscard]] std::vector<AttackSpec> seed_manifest(AttackKind kind,
                                                    std::uint64_t base_seed,
                                                    int ops_per_core);

/// A hill-climb neighbor: jitters the knobs relevant to spec.kind and
/// redraws the stream seed from `rng`. Deterministic given the rng state.
[[nodiscard]] AttackSpec mutate_spec(const AttackSpec& spec, Rng& rng);

/// The paper platform a (spec, config) cell runs on: make_paper_setup for
/// the notation with the spec's memory backend installed (re-validated).
[[nodiscard]] core::ExperimentSetup make_cell_setup(const AttackSpec& spec,
                                                    const SweepConfig& config);

/// Deterministic hostile trace for `core` under `spec` against `setup`.
/// Pure function of its arguments: generation is mapped-notation-aware
/// (it reads the core's partition rectangle and set mapping), so the same
/// spec yields different — but individually reproducible — traces under
/// different configs.
[[nodiscard]] core::Trace make_attack_trace(const AttackSpec& spec,
                                            const core::ExperimentSetup& setup,
                                            CoreId core);

struct AdversaryOptions {
  std::vector<AttackKind> kinds = all_attack_kinds();
  std::vector<SweepConfig> configs;
  std::uint64_t seed = 42;
  int ops_per_core = 1000;
  /// Hill-climb shape: `rounds` rounds, each mutating the `survivors`
  /// lowest-slack cells into `mutants` fresh specs apiece. Every track
  /// evaluates exactly cells_per_track() cells, so global row ordinals are
  /// computable without running other tracks (shard protocol requirement).
  int rounds = 1;
  int survivors = 1;
  int mutants = 2;
  /// Cells at or below this slack are near misses (promotion candidates).
  double near_miss_slack = 0.2;
  Cycle max_cycles = 50'000'000;
  /// Worker budget across tracks (tracks are internally serial);
  /// 0 = hardware concurrency. Results are thread-count independent.
  int threads = 0;

  [[nodiscard]] int cells_per_track() const {
    return kManifestSpecs + rounds * survivors * mutants;
  }
  void validate() const;  ///< throws ConfigError on nonsense
};

/// One evaluated (spec, config) point.
struct AdversaryCell {
  AttackSpec spec;
  SweepConfig config;
  int round = 0;  ///< 0 = seed manifest, r >= 1 = hill-climb round r
  RunMetrics metrics;
  /// (analytical - observed) / analytical; negative means the bound was
  /// violated. 1.0 when the cell did not complete (metrics are unusable).
  double slack = 1.0;
  bool violation = false;
  bool near_miss = false;
};

/// One (kind, config) search track.
struct AdversaryTrack {
  AttackKind kind = AttackKind::kConflictStride;
  SweepConfig config;
  /// False when the track was excluded by the track mask (sharded run).
  bool ran = false;
  /// Exactly AdversaryOptions::cells_per_track() entries when ran, in
  /// evaluation order (manifest first, then round by round).
  std::vector<AdversaryCell> cells;
  double min_slack = 1.0;  ///< over completed cells
  int near_misses = 0;
  int violations = 0;
};

struct AdversaryResult {
  /// kind-major x config order (the track-mask / shard-ordinal order).
  std::vector<AdversaryTrack> tracks;
  int violations = 0;
  int near_misses = 0;
};

/// The shard-plan cell key of a track: "<kind>|<notation>@<cores>".
[[nodiscard]] std::string track_key(AttackKind kind,
                                    const SweepConfig& config);

/// Evaluates one (spec, config) cell through sim::replay() and scores it.
[[nodiscard]] AdversaryCell evaluate_cell(const AttackSpec& spec,
                                          const SweepConfig& config,
                                          const AdversaryOptions& options,
                                          int round = 0);

/// Runs the search grid. `track_mask`, when given, must hold
/// kinds.size() * configs.size() flags in track order; tracks with a false
/// flag are skipped (ran == false) — the execution half of track-level
/// sharding. Each track is one serial batch job seeded from
/// mix_seed(options.seed, fnv1a64(track_key)), so results are bit-identical
/// across thread counts and shard layouts. Throws ConfigError on invalid
/// options or when a cell fails.
[[nodiscard]] AdversaryResult run_adversary_search(
    const AdversaryOptions& options,
    const std::vector<bool>* track_mask = nullptr);

/// The trace promotion writes for a cell: the core-0 (core-under-analysis)
/// trace — regenerated, not cached, which is safe because generation is
/// pure.
[[nodiscard]] core::Trace cua_trace(const AdversaryCell& cell);

/// Writes cua_trace(cell) as "adv_<kind>_<id>.pslt" under `dir` (created
/// if missing) and returns the path. The stem is unique per spec content,
/// so a promotion directory doubles as a dedup set.
std::filesystem::path promote_cell(const AdversaryCell& cell,
                                   const std::filesystem::path& dir);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_ADVERSARY_H_
