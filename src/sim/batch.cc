#include "sim/batch.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/assert.h"

namespace psllc::sim {

bool BatchReport::all_ok() const {
  return count(JobState::kOk) == static_cast<int>(jobs.size());
}

int BatchReport::count(JobState state) const {
  int n = 0;
  for (const JobOutcome& job : jobs) {
    n += job.state == state ? 1 : 0;
  }
  return n;
}

std::string BatchReport::error_summary() const {
  std::ostringstream oss;
  for (const JobOutcome& job : jobs) {
    if (job.state == JobState::kFailed) {
      oss << job.name << ": " << job.error << '\n';
    }
  }
  return oss.str();
}

int resolve_thread_budget(int threads) {
  return threads > 0
             ? threads
             : std::max(1,
                        static_cast<int>(std::thread::hardware_concurrency()));
}

namespace {

std::string format_seconds(double seconds) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(2);
  oss << seconds << 's';
  return oss.str();
}

}  // namespace

BatchReport run_batch(std::vector<BatchJob> jobs,
                      const BatchOptions& options) {
  PSLLC_CONFIG_CHECK(options.threads >= 0,
                     "batch threads must be >= 0, got " << options.threads);
  PSLLC_CONFIG_CHECK(options.max_concurrent_jobs >= 1,
                     "batch needs max_concurrent_jobs >= 1, got "
                         << options.max_concurrent_jobs);
  for (const BatchJob& job : jobs) {
    PSLLC_CONFIG_CHECK(!job.name.empty(), "every batch job needs a name");
    PSLLC_CONFIG_CHECK(static_cast<bool>(job.run),
                       "batch job '" << job.name << "' has no work");
    PSLLC_CONFIG_CHECK(job.threads_wanted >= 0,
                       "batch job '" << job.name
                                     << "': threads_wanted must be >= 0");
  }

  const int total_budget = resolve_thread_budget(options.threads);

  BatchReport report;
  report.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    report.jobs[i].name = jobs[i].name;
  }

  std::mutex mutex;
  std::condition_variable slots_freed;
  int available_threads = total_budget;
  int running_jobs = 0;
  int finished_jobs = 0;
  bool any_failed = false;
  const int total = static_cast<int>(jobs.size());

  // Emitted under `mutex` so lines never interleave.
  const auto progress = [&](const std::string& line) {
    if (options.progress) {
      options.progress(line);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    int granted = 0;
    {
      std::unique_lock<std::mutex> lock(mutex);
      slots_freed.wait(lock, [&] {
        return (running_jobs < options.max_concurrent_jobs &&
                available_threads >= 1) ||
               (options.fail_fast && any_failed);
      });
      if (options.fail_fast && any_failed) {
        report.jobs[i].state = JobState::kSkipped;
        progress("[batch] skip " + jobs[i].name +
                 " (earlier job failed)");
        continue;
      }
      if (jobs[i].threads_wanted > 0) {
        granted = std::min(jobs[i].threads_wanted, available_threads);
      } else {
        // Fair share for take-everything jobs: leave budget for the other
        // concurrency slots while more jobs are queued, so --jobs N > 1
        // actually overlaps. With one slot (the default) this is the whole
        // remaining budget.
        const int slots_open = options.max_concurrent_jobs - running_jobs;
        const int queued = static_cast<int>(jobs.size() - i);
        granted =
            available_threads / std::max(1, std::min(slots_open, queued));
      }
      granted = std::max(granted, 1);
      available_threads -= granted;
      ++running_jobs;
      report.jobs[i].threads = granted;
      std::ostringstream line;
      line << "[batch] run  " << jobs[i].name << " (threads=" << granted
           << ", " << finished_jobs << "/" << total << " done)";
      progress(line.str());
    }
    workers.emplace_back([&, i, granted] {
      const auto start = std::chrono::steady_clock::now();
      JobState state = JobState::kOk;
      std::string error;
      try {
        jobs[i].run(granted);
      } catch (const std::exception& e) {
        state = JobState::kFailed;
        error = e.what();
      } catch (...) {
        state = JobState::kFailed;
        error = "unknown exception";
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      {
        const std::lock_guard<std::mutex> lock(mutex);
        report.jobs[i].state = state;
        report.jobs[i].error = error;
        report.jobs[i].seconds = seconds;
        available_threads += granted;
        --running_jobs;
        ++finished_jobs;
        any_failed = any_failed || state == JobState::kFailed;
        std::ostringstream line;
        if (state == JobState::kOk) {
          line << "[batch] done " << jobs[i].name << " in "
               << format_seconds(seconds) << " (" << finished_jobs << "/"
               << total << " done)";
        } else {
          line << "[batch] FAIL " << jobs[i].name << " after "
               << format_seconds(seconds) << ": " << error;
        }
        progress(line.str());
      }
      slots_freed.notify_all();
    });
  }

  for (std::thread& worker : workers) {
    worker.join();
  }
  return report;
}

}  // namespace psllc::sim
