// Batched multi-sweep scheduler: runs many independent jobs (figure
// panels, ablations) behind ONE shared worker-thread budget. Each job
// receives the number of threads the scheduler granted it and forwards
// that into SweepOptions::threads, so the whole batch never oversubscribes
// the machine while every sweep still uses the existing intra-sweep worker
// pool. Results are bit-identical to running each job alone because
// run_sweep output is independent of its thread count.
#ifndef PSLLC_SIM_BATCH_H_
#define PSLLC_SIM_BATCH_H_

#include <functional>
#include <string>
#include <vector>

namespace psllc::sim {

struct BatchJob {
  std::string name;
  /// Threads this job can usefully consume; 0 = a fair share of the
  /// budget (the whole remaining budget when max_concurrent_jobs is 1,
  /// budget/slots while other jobs are queued otherwise). The grant is
  /// clamped to the remaining budget and is always >= 1.
  int threads_wanted = 0;
  /// The work. Throws to signal failure; the exception message is captured
  /// in the job's outcome.
  std::function<void(int threads_granted)> run;
};

enum class JobState {
  kOk,
  kFailed,   ///< run() threw
  kSkipped,  ///< not started because an earlier job failed (fail-fast)
};

struct JobOutcome {
  std::string name;
  JobState state = JobState::kSkipped;
  std::string error;   ///< exception message when state == kFailed
  int threads = 0;     ///< granted budget (0 when skipped)
  double seconds = 0;  ///< wall-clock run time
};

struct BatchOptions {
  /// Total worker-thread budget shared by all concurrently running jobs.
  /// 0 = std::thread::hardware_concurrency().
  int threads = 0;
  /// Jobs running at once. 1 (default) keeps stdout ordered per job and
  /// hands each job the full budget; raising it trades ordering for
  /// overlap between jobs with poor internal scaling.
  int max_concurrent_jobs = 1;
  /// Stop scheduling new jobs after the first failure. Jobs already
  /// running are allowed to finish; unstarted jobs report kSkipped.
  bool fail_fast = true;
  /// Per-event progress lines ("[batch] 3/12 fig8a: done in 2.1s");
  /// null disables progress output.
  std::function<void(const std::string& line)> progress;
};

struct BatchReport {
  std::vector<JobOutcome> jobs;  ///< same order as the input jobs

  [[nodiscard]] bool all_ok() const;
  [[nodiscard]] int count(JobState state) const;
  /// Aggregated error text: one line per failed job (empty when all_ok).
  [[nodiscard]] std::string error_summary() const;
};

/// The worker-thread budget `threads` resolves to: itself when positive,
/// else hardware concurrency (min 1). The single definition of the policy
/// run_batch applies to BatchOptions::threads; callers sizing their own
/// job counts against the budget must use it too.
[[nodiscard]] int resolve_thread_budget(int threads);

/// Runs `jobs` under the shared budget. Never throws on job failure —
/// inspect the report; throws ConfigError on invalid options.
[[nodiscard]] BatchReport run_batch(std::vector<BatchJob> jobs,
                                    const BatchOptions& options = {});

}  // namespace psllc::sim

#endif  // PSLLC_SIM_BATCH_H_
