#include "sim/corpus.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <set>
#include <stdexcept>
#include <unordered_set>

#include "common/assert.h"
#include "common/string_util.h"
#include "sim/batch.h"
#include "sim/trace_io.h"
#include "sim/workload.h"
#include "trace/binary_io.h"

namespace psllc::sim {

const CorpusCell& CorpusResult::cell(int entry_index,
                                     int config_index) const {
  PSLLC_ASSERT(entry_index >= 0 &&
                   entry_index < static_cast<int>(names.size()),
               "corpus entry index " << entry_index);
  PSLLC_ASSERT(config_index >= 0 &&
                   config_index < static_cast<int>(configs.size()),
               "corpus config index " << config_index);
  return cells[static_cast<std::size_t>(entry_index) * configs.size() +
               static_cast<std::size_t>(config_index)];
}

namespace {

/// Power-of-two window that contains every address of `trace` (plus its
/// line), so shifted copies occupy disjoint footprints. Floors at 4 KiB to
/// keep tiny traces' windows page-aligned.
Addr mirror_window(const core::Trace& trace) {
  Addr max_addr = 0;
  for (const core::MemOp& op : trace) {
    max_addr = std::max(max_addr, op.addr);
  }
  PSLLC_CONFIG_CHECK(max_addr <= (Addr{1} << 62),
                     "corpus: trace addresses reach 0x"
                         << std::hex << max_addr << std::dec
                         << "; mirrored replay cannot shift disjoint "
                            "copies — use solo replay");
  return std::max<Addr>(std::bit_ceil(max_addr + 64), 4096);
}

/// Per-core traces for one cell. `window` is the precomputed
/// mirror_window of the entry (unused for solo replay).
std::vector<core::Trace> replay_traces(const CorpusEntry& entry,
                                       int active_cores, CorpusReplay replay,
                                       Addr window) {
  if (replay == CorpusReplay::kSolo) {
    return {entry.trace};
  }
  PSLLC_CONFIG_CHECK(
      active_cores <= 1 ||
          window <= (std::numeric_limits<Addr>::max() / 2) /
                        static_cast<Addr>(active_cores - 1),
      "corpus entry '" << entry.name
                       << "': mirrored windows overflow the address space");
  std::vector<core::Trace> traces;
  traces.reserve(static_cast<std::size_t>(active_cores));
  for (int c = 0; c < active_cores; ++c) {
    core::Trace shifted = entry.trace;
    const Addr offset = static_cast<Addr>(c) * window;
    for (core::MemOp& op : shifted) {
      op.addr += offset;
    }
    traces.push_back(std::move(shifted));
  }
  return traces;
}

CorpusCell run_corpus_cell(const CorpusEntry& entry,
                           const SweepConfig& config,
                           const SweepOptions& options,
                           const std::vector<core::Trace>& traces) {
  core::ExperimentSetup setup =
      core::make_paper_setup(config.notation, config.active_cores);
  setup.config.dram = options.dram;
  setup.config.validate();
  RunOptions run_options;
  run_options.max_cycles = options.max_cycles;
  CorpusCell cell;
  cell.trace_name = entry.name;
  cell.config = config;
  cell.metrics = run_experiment(setup, traces, run_options);
  return cell;
}

}  // namespace

CorpusResult run_corpus(const std::vector<CorpusEntry>& entries,
                        const std::vector<SweepConfig>& configs,
                        const SweepOptions& options, CorpusReplay replay) {
  PSLLC_CONFIG_CHECK(!entries.empty(), "corpus run needs >= 1 trace");
  PSLLC_CONFIG_CHECK(!configs.empty(),
                     "corpus run needs >= 1 configuration");
  std::set<std::string> seen;
  for (const CorpusEntry& entry : entries) {
    PSLLC_CONFIG_CHECK(!entry.name.empty(), "corpus entry needs a name");
    PSLLC_CONFIG_CHECK(seen.insert(entry.name).second,
                       "duplicate corpus entry '" << entry.name << "'");
  }

  CorpusResult result;
  result.configs = configs;
  result.names.reserve(entries.size());
  for (const CorpusEntry& entry : entries) {
    result.names.push_back(entry.name);
  }
  result.cells.resize(entries.size() * configs.size());

  // The config axis grouped by active core count: one batch job per
  // (entry, core count) owning one shifted trace set, so even a
  // single-trace corpus parallelizes across the core-count axis while the
  // huge trace is copied once per core count, not per cell. Every cell
  // writes only its own pre-sized slot, so results stay bit-identical for
  // any thread count and scheduling order.
  struct ConfigGroup {
    int active_cores = 0;
    std::vector<std::size_t> config_indices;
  };
  std::vector<ConfigGroup> groups;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    ConfigGroup* group = nullptr;
    for (ConfigGroup& g : groups) {
      if (g.active_cores == configs[c].active_cores) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({configs[c].active_cores, {}});
      group = &groups.back();
    }
    group->config_indices.push_back(c);
  }

  // One mirror-geometry scan per entry, done up front so unshiftable
  // addresses fail fast before any job is scheduled. Single-core configs
  // never shift, so a grid without multi-core configs skips the scan and
  // accepts traces at any address.
  bool any_multicore = false;
  for (const SweepConfig& config : configs) {
    any_multicore = any_multicore || config.active_cores > 1;
  }
  std::vector<Addr> windows(entries.size(), 0);
  if (replay == CorpusReplay::kMirrored && any_multicore) {
    for (std::size_t e = 0; e < entries.size(); ++e) {
      windows[e] = mirror_window(entries[e].trace);
    }
  }

  std::vector<BatchJob> jobs;
  jobs.reserve(entries.size() * groups.size());
  for (std::size_t e = 0; e < entries.size(); ++e) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      BatchJob job;
      job.name = groups.size() > 1
                     ? entries[e].name + "@" +
                           std::to_string(groups[g].active_cores) + "c"
                     : entries[e].name;
      job.threads_wanted = 1;
      job.run = [&, e, g](int /*threads_granted*/) {
        const ConfigGroup& group = groups[g];
        const std::vector<core::Trace> traces = replay_traces(
            entries[e], group.active_cores, replay, windows[e]);
        for (const std::size_t c : group.config_indices) {
          result.cells[e * configs.size() + c] =
              run_corpus_cell(entries[e], configs[c], options, traces);
        }
      };
      jobs.push_back(std::move(job));
    }
  }

  BatchOptions batch;
  batch.threads = options.threads;
  batch.max_concurrent_jobs =
      std::max(1, std::min(resolve_thread_budget(options.threads),
                           static_cast<int>(jobs.size())));
  const BatchReport report = run_batch(std::move(jobs), batch);
  PSLLC_CONFIG_CHECK(report.all_ok(),
                     "corpus run failed:\n" << report.error_summary());
  return result;
}

std::vector<CorpusEntry> load_corpus_dir(const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("corpus path " + dir.string() +
                             " is not a directory");
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (iequals(ext, ".trace") ||
        trace::has_binary_trace_extension(entry.path().string())) {
      files.push_back(entry.path());
    }
  }
  PSLLC_CONFIG_CHECK(!files.empty(), "corpus directory "
                                         << dir.string()
                                         << " holds no .trace/.pslt files");
  std::sort(files.begin(), files.end(),
            [](const std::filesystem::path& a,
               const std::filesystem::path& b) {
              return a.stem().string() < b.stem().string();
            });
  std::vector<CorpusEntry> corpus;
  corpus.reserve(files.size());
  for (const std::filesystem::path& file : files) {
    CorpusEntry entry;
    entry.name = file.stem().string();
    PSLLC_CONFIG_CHECK(corpus.empty() || corpus.back().name != entry.name,
                       "corpus directory "
                           << dir.string() << ": two trace files share the "
                           << "stem '" << entry.name << "'");
    entry.trace = read_trace_file(file.string());
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

void TraceStatsAccumulator::add(const core::MemOp& op) {
  if (stats_.ops == 0) {
    stats_.min_addr = op.addr;
  }
  ++stats_.ops;
  stats_.reads += op.type == AccessType::kRead ? 1 : 0;
  stats_.writes += op.type == AccessType::kWrite ? 1 : 0;
  stats_.ifetches += op.type == AccessType::kIfetch ? 1 : 0;
  stats_.min_addr = std::min(stats_.min_addr, op.addr);
  stats_.max_addr = std::max(stats_.max_addr, op.addr);
  stats_.max_gap = std::max(stats_.max_gap, op.gap);
  // Gaps reach 2^56 per op, so the sum can exceed 64 bits: saturate.
  const auto gap = static_cast<std::uint64_t>(op.gap);
  stats_.total_gap = stats_.total_gap > ~gap ? ~std::uint64_t{0}
                                             : stats_.total_gap + gap;
  lines_.insert(op.addr >> 6);
}

TraceStats TraceStatsAccumulator::stats() const {
  TraceStats out = stats_;
  out.distinct_lines = static_cast<std::int64_t>(lines_.size());
  return out;
}

TraceStats compute_trace_stats(const core::Trace& trace) {
  TraceStatsAccumulator acc;
  for (const core::MemOp& op : trace) {
    acc.add(op);
  }
  return acc.stats();
}

std::vector<CorpusEntry> make_demo_corpus(int accesses) {
  PSLLC_CONFIG_CHECK(accesses >= 1 && accesses <= 10'000'000,
                     "demo corpus needs accesses in [1, 1e7], got "
                         << accesses);
  std::vector<CorpusEntry> corpus;

  // Hot pointer chase: a 64-line working set walked `accesses` times —
  // maximally replacement-hostile ordering.
  corpus.push_back(
      {"chase_hot", make_pointer_chase_trace(0, 64, accesses, 101)});

  // Cold strided scan: every access a new line, reads only.
  corpus.push_back({"stride_scan",
                    make_strided_trace(0, 64, accesses, 1)});

  // Uniform random over 8 KiB with think time between accesses.
  RandomWorkloadOptions gap_options;
  gap_options.range_bytes = 8192;
  gap_options.accesses = accesses;
  gap_options.write_fraction = 0.25;
  gap_options.gap = 8;
  corpus.push_back(
      {"uniform_gap", make_uniform_random_trace(0, gap_options, 202)});

  // Wide uniform random: 64 KiB footprint, mostly reads, back to back.
  RandomWorkloadOptions wide_options;
  wide_options.range_bytes = 65536;
  wide_options.accesses = accesses;
  wide_options.write_fraction = 0.1;
  corpus.push_back(
      {"uniform_wide", make_uniform_random_trace(0, wide_options, 303)});

  // Entry order is name order, matching load_corpus_dir on the emitted
  // files.
  return corpus;
}

}  // namespace psllc::sim
