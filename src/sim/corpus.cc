#include "sim/corpus.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/assert.h"
#include "common/string_util.h"
#include "sim/batch.h"
#include "sim/replay.h"
#include "sim/trace_io.h"
#include "sim/workload.h"
#include "trace/binary_io.h"

namespace psllc::sim {

const CorpusCell& CorpusResult::cell(int entry_index,
                                     int config_index) const {
  PSLLC_ASSERT(entry_index >= 0 &&
                   entry_index < static_cast<int>(names.size()),
               "corpus entry index " << entry_index);
  PSLLC_ASSERT(config_index >= 0 &&
                   config_index < static_cast<int>(configs.size()),
               "corpus config index " << config_index);
  return cells[static_cast<std::size_t>(entry_index) * configs.size() +
               static_cast<std::size_t>(config_index)];
}

namespace {

/// Power-of-two window that contains every address of `trace` (plus its
/// line), so shifted copies occupy disjoint footprints. Floors at 4 KiB to
/// keep tiny traces' windows page-aligned.
Addr mirror_window(const std::string& name, const core::Trace& trace) {
  Addr max_addr = 0;
  for (const core::MemOp& op : trace) {
    max_addr = std::max(max_addr, op.addr);
  }
  PSLLC_CONFIG_CHECK(max_addr <= (Addr{1} << 62),
                     "corpus entry '" << name
                         << "': trace addresses reach 0x" << std::hex
                         << max_addr << std::dec
                         << "; mirrored replay cannot shift disjoint "
                            "copies — use solo replay");
  return std::max<Addr>(std::bit_ceil(max_addr + 64), 4096);
}

/// One corpus cell via the shared replay entry point. The entry's trace is
/// handed to sim::replay() as a shared workload — solo replay runs it on
/// core 0 alone; mirrored replay runs one replica per active core, shifted
/// by `window` — so no per-core trace copies are materialized on the
/// kernel path (the legacy fallback shifts copies exactly as before).
CorpusCell run_corpus_cell(const std::string& name,
                           const SweepConfig& config,
                           const SweepOptions& options,
                           const core::Trace& trace, CorpusReplay replay,
                           Addr window) {
  core::ExperimentSetup setup =
      core::make_paper_setup(config.notation, config.active_cores);
  setup.config.dram = options.dram;
  setup.config.validate();
  ReplayRequest request;
  request.setup = &setup;
  request.workload.shared = &trace;
  request.workload.replicas =
      replay == CorpusReplay::kSolo ? 1 : config.active_cores;
  request.workload.window = replay == CorpusReplay::kSolo ? 0 : window;
  request.options.max_cycles = options.max_cycles;
  CorpusCell cell;
  cell.trace_name = name;
  cell.config = config;
  cell.metrics = sim::replay(request).metrics;
  cell.ran = true;
  return cell;
}

}  // namespace

CorpusResult run_corpus(const std::vector<CorpusSource>& sources,
                        const std::vector<SweepConfig>& configs,
                        const SweepOptions& options, CorpusReplay replay,
                        const std::vector<bool>* cell_mask) {
  PSLLC_CONFIG_CHECK(!sources.empty(), "corpus run needs >= 1 trace");
  PSLLC_CONFIG_CHECK(!configs.empty(),
                     "corpus run needs >= 1 configuration");
  std::set<std::string> seen;
  for (const CorpusSource& source : sources) {
    PSLLC_CONFIG_CHECK(!source.name.empty(), "corpus entry needs a name");
    PSLLC_CONFIG_CHECK(static_cast<bool>(source.load),
                       "corpus entry '" << source.name
                                        << "' has no loader");
    PSLLC_CONFIG_CHECK(seen.insert(source.name).second,
                       "duplicate corpus entry '" << source.name << "'");
  }
  const std::size_t num_entries = sources.size();
  const std::size_t num_configs = configs.size();
  PSLLC_CONFIG_CHECK(
      cell_mask == nullptr ||
          cell_mask->size() == num_entries * num_configs,
      "corpus cell mask has " << (cell_mask ? cell_mask->size() : 0)
                              << " flags for a grid of "
                              << num_entries * num_configs << " cells");
  const auto cell_owned = [&](std::size_t e, std::size_t c) {
    return cell_mask == nullptr || (*cell_mask)[e * num_configs + c];
  };

  CorpusResult result;
  result.configs = configs;
  result.names.reserve(num_entries);
  for (const CorpusSource& source : sources) {
    result.names.push_back(source.name);
  }
  // Every cell is pre-labelled so masked-out cells still identify
  // themselves (with ran == false and default metrics).
  result.cells.resize(num_entries * num_configs);
  for (std::size_t e = 0; e < num_entries; ++e) {
    for (std::size_t c = 0; c < num_configs; ++c) {
      CorpusCell& cell = result.cells[e * num_configs + c];
      cell.trace_name = sources[e].name;
      cell.config = configs[c];
    }
  }
  result.entry_stats.resize(num_entries);
  result.entry_ran.assign(num_entries, false);

  // The config axis grouped by active core count: one batch job per
  // (entry, core count) loading its own trace and owning one shifted
  // trace set, so even a single-trace corpus parallelizes across the
  // core-count axis while the trace is loaded once per core count, not
  // per cell — and at most `concurrent jobs` entries are ever resident.
  // Every cell writes only its own pre-sized slot, so results stay
  // bit-identical for any thread count and scheduling order.
  struct ConfigGroup {
    int active_cores = 0;
    std::vector<std::size_t> config_indices;
  };
  std::vector<ConfigGroup> groups;
  for (std::size_t c = 0; c < num_configs; ++c) {
    ConfigGroup* group = nullptr;
    for (ConfigGroup& g : groups) {
      if (g.active_cores == configs[c].active_cores) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({configs[c].active_cores, {}});
      group = &groups.back();
    }
    group->config_indices.push_back(c);
  }

  // The first scheduled job of an entry also records the trace stats
  // (single writer per entry_stats slot; the value is identical whichever
  // group computed it).
  std::vector<std::size_t> stats_owner(num_entries, groups.size());

  std::mutex residency_mutex;
  int entries_resident = 0;
  int peak_resident = 0;

  std::vector<BatchJob> jobs;
  jobs.reserve(num_entries * groups.size());
  for (std::size_t e = 0; e < num_entries; ++e) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      std::vector<std::size_t> owned;
      for (const std::size_t c : groups[g].config_indices) {
        if (cell_owned(e, c)) {
          owned.push_back(c);
        }
      }
      if (owned.empty()) {
        continue;
      }
      result.entry_ran[e] = true;
      if (stats_owner[e] == groups.size()) {
        stats_owner[e] = g;
      }
      BatchJob job;
      job.name = groups.size() > 1
                     ? sources[e].name + "@" +
                           std::to_string(groups[g].active_cores) + "c"
                     : sources[e].name;
      job.threads_wanted = 1;
      job.run = [&, e, g, owned = std::move(owned)](
                    int /*threads_granted*/) {
        const ConfigGroup& group = groups[g];
        // Counted from before the load starts: a trace being materialized
        // is already resident memory, which is exactly what the peak
        // metric exists to bound.
        {
          const std::lock_guard<std::mutex> lock(residency_mutex);
          ++entries_resident;
          peak_resident = std::max(peak_resident, entries_resident);
        }
        const core::Trace trace = sources[e].load();
        if (stats_owner[e] == g) {
          result.entry_stats[e] = compute_trace_stats(trace);
        }
        Addr window = 0;
        if (replay == CorpusReplay::kMirrored && group.active_cores > 1) {
          window = mirror_window(sources[e].name, trace);
        }
        for (const std::size_t c : owned) {
          result.cells[e * num_configs + c] = run_corpus_cell(
              sources[e].name, configs[c], options, trace, replay, window);
        }
        {
          const std::lock_guard<std::mutex> lock(residency_mutex);
          --entries_resident;
        }
      };
      jobs.push_back(std::move(job));
    }
  }
  PSLLC_CONFIG_CHECK(!jobs.empty(),
                     "corpus cell mask excludes every cell of the grid");

  BatchOptions batch;
  batch.threads = options.threads;
  batch.max_concurrent_jobs =
      std::max(1, std::min(resolve_thread_budget(options.threads),
                           static_cast<int>(jobs.size())));
  const BatchReport report = run_batch(std::move(jobs), batch);
  PSLLC_CONFIG_CHECK(report.all_ok(),
                     "corpus run failed:\n" << report.error_summary());
  result.peak_entries_resident = peak_resident;
  return result;
}

CorpusResult run_corpus(const std::vector<CorpusEntry>& entries,
                        const std::vector<SweepConfig>& configs,
                        const SweepOptions& options, CorpusReplay replay,
                        const std::vector<bool>* cell_mask) {
  std::vector<CorpusSource> sources;
  sources.reserve(entries.size());
  for (const CorpusEntry& entry : entries) {
    sources.push_back({entry.name, [&entry] { return entry.trace; }});
  }
  return run_corpus(sources, configs, options, replay, cell_mask);
}

std::vector<CorpusSource> corpus_dir_sources(
    const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir)) {
    throw std::runtime_error("corpus path " + dir.string() +
                             " is not a directory");
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    if (iequals(ext, ".trace") ||
        trace::has_binary_trace_extension(entry.path().string())) {
      files.push_back(entry.path());
    }
  }
  PSLLC_CONFIG_CHECK(!files.empty(), "corpus directory "
                                         << dir.string()
                                         << " holds no .trace/.pslt files");
  std::sort(files.begin(), files.end(),
            [](const std::filesystem::path& a,
               const std::filesystem::path& b) {
              return a.stem().string() < b.stem().string();
            });
  std::vector<CorpusSource> sources;
  sources.reserve(files.size());
  for (const std::filesystem::path& file : files) {
    CorpusSource source;
    source.name = file.stem().string();
    PSLLC_CONFIG_CHECK(sources.empty() ||
                           sources.back().name != source.name,
                       "corpus directory "
                           << dir.string() << ": two trace files share the "
                           << "stem '" << source.name << "'");
    source.load = [file] { return read_trace_file(file.string()); };
    sources.push_back(std::move(source));
  }
  return sources;
}

std::vector<CorpusEntry> load_corpus_dir(const std::filesystem::path& dir) {
  std::vector<CorpusEntry> corpus;
  for (const CorpusSource& source : corpus_dir_sources(dir)) {
    corpus.push_back({source.name, source.load()});
  }
  return corpus;
}

void TraceStatsAccumulator::add(const core::MemOp& op) {
  if (stats_.ops == 0) {
    stats_.min_addr = op.addr;
  }
  ++stats_.ops;
  stats_.reads += op.type == AccessType::kRead ? 1 : 0;
  stats_.writes += op.type == AccessType::kWrite ? 1 : 0;
  stats_.ifetches += op.type == AccessType::kIfetch ? 1 : 0;
  stats_.min_addr = std::min(stats_.min_addr, op.addr);
  stats_.max_addr = std::max(stats_.max_addr, op.addr);
  stats_.max_gap = std::max(stats_.max_gap, op.gap);
  // Gaps reach 2^56 per op, so the sum can exceed 64 bits: saturate.
  const auto gap = static_cast<std::uint64_t>(op.gap);
  stats_.total_gap = stats_.total_gap > ~gap ? ~std::uint64_t{0}
                                             : stats_.total_gap + gap;
  lines_.insert(op.addr >> 6);
}

TraceStats TraceStatsAccumulator::stats() const {
  TraceStats out = stats_;
  out.distinct_lines = static_cast<std::int64_t>(lines_.size());
  return out;
}

TraceStats compute_trace_stats(const core::Trace& trace) {
  TraceStatsAccumulator acc;
  for (const core::MemOp& op : trace) {
    acc.add(op);
  }
  return acc.stats();
}

std::vector<CorpusSource> demo_corpus_sources(int accesses) {
  PSLLC_CONFIG_CHECK(accesses >= 1 && accesses <= 10'000'000,
                     "demo corpus needs accesses in [1, 1e7], got "
                         << accesses);
  std::vector<CorpusSource> sources;

  // Hot pointer chase: a 64-line working set walked `accesses` times —
  // maximally replacement-hostile ordering.
  sources.push_back({"chase_hot", [accesses] {
                       return make_pointer_chase_trace(0, 64, accesses,
                                                       101);
                     }});

  // Cold strided scan: every access a new line, reads only.
  sources.push_back({"stride_scan", [accesses] {
                       return make_strided_trace(0, 64, accesses, 1);
                     }});

  // Uniform random over 8 KiB with think time between accesses.
  sources.push_back({"uniform_gap", [accesses] {
                       RandomWorkloadOptions gap_options;
                       gap_options.range_bytes = 8192;
                       gap_options.accesses = accesses;
                       gap_options.write_fraction = 0.25;
                       gap_options.gap = 8;
                       return make_uniform_random_trace(0, gap_options,
                                                        202);
                     }});

  // Wide uniform random: 64 KiB footprint, mostly reads, back to back.
  sources.push_back({"uniform_wide", [accesses] {
                       RandomWorkloadOptions wide_options;
                       wide_options.range_bytes = 65536;
                       wide_options.accesses = accesses;
                       wide_options.write_fraction = 0.1;
                       return make_uniform_random_trace(0, wide_options,
                                                        303);
                     }});

  // Entry order is name order, matching corpus_dir_sources on the emitted
  // files.
  return sources;
}

std::vector<CorpusEntry> make_demo_corpus(int accesses) {
  std::vector<CorpusEntry> corpus;
  for (const CorpusSource& source : demo_corpus_sources(accesses)) {
    corpus.push_back({source.name, source.load()});
  }
  return corpus;
}

}  // namespace psllc::sim
