// Trace-corpus runner: replays a set of recorded traces (a directory of
// .trace/.pslt files or the built-in demo corpus) across a grid of
// partition configurations, scheduling the (trace x config) cells through
// sim::run_batch. This is the recorded-workload counterpart of run_sweep,
// which generates its workloads internally; both take their execution
// knobs (dram backend, horizon, thread budget) from SweepOptions so
// benches configure one options struct for either path.
//
// Corpora are streamed per entry: run_corpus takes lazy CorpusSources and
// each batch job loads its own trace inside the job, so at most
// `concurrent jobs` entries are resident at once (reported as
// CorpusResult::peak_entries_resident) instead of the whole corpus. An
// optional cell mask restricts execution to a subset of the grid — the
// execution half of the cross-process work-unit protocol (sim/shard.h).
#ifndef PSLLC_SIM_CORPUS_H_
#define PSLLC_SIM_CORPUS_H_

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/mem_op.h"
#include "sim/experiment.h"

namespace psllc::sim {

/// One corpus workload: a name (the file stem for directory corpora) and
/// the recorded access stream.
struct CorpusEntry {
  std::string name;
  core::Trace trace;
};

/// A lazily loadable corpus workload. `load` is invoked inside the batch
/// job(s) that replay the entry (possibly once per active-core-count
/// group, concurrently) and must return the same trace every call.
struct CorpusSource {
  std::string name;
  std::function<core::Trace()> load;
};

/// How a single-stream corpus entry populates a multi-core system.
enum class CorpusReplay {
  /// The trace runs on core 0; the other cores stay idle. Safe for any
  /// address range, but exercises no inter-core contention.
  kSolo,
  /// Every active core replays the trace, with core i's copy shifted into
  /// its own power-of-two address window (disjoint footprints, like the
  /// paper's Figure 8 workloads). Requires the shifted addresses to fit
  /// the 64-bit address space.
  kMirrored,
};

/// One (trace, configuration) cell.
struct CorpusCell {
  std::string trace_name;
  SweepConfig config;
  RunMetrics metrics;
  /// False when the cell was excluded by the cell mask (its metrics are
  /// default-constructed) — partial grids of a sharded run.
  bool ran = false;
};

/// Op-mix / footprint summary of one trace, shared by the corpus runner's
/// corpus_traces series and `trace_convert --stats`.
struct TraceStats {
  std::int64_t ops = 0;
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t ifetches = 0;
  Addr min_addr = 0;  ///< 0 when the trace is empty
  Addr max_addr = 0;
  Cycle max_gap = 0;
  std::uint64_t total_gap = 0;  ///< saturates at UINT64_MAX
  std::int64_t distinct_lines = 0;  ///< 64 B cache lines touched
};

struct CorpusResult {
  std::vector<std::string> names;  ///< entry order of the run
  std::vector<SweepConfig> configs;
  /// cells[e * configs.size() + c]
  std::vector<CorpusCell> cells;
  /// Per-entry stats, computed while the entry was resident; meaningful
  /// only where entry_ran[e] (default-constructed otherwise).
  std::vector<TraceStats> entry_stats;
  /// entry_ran[e]: the entry had at least one executed cell (always true
  /// without a cell mask).
  std::vector<bool> entry_ran;
  /// Most entries concurrently loaded at any point of the run — bounded by
  /// the batch concurrency, not the corpus size (per-entry streaming).
  int peak_entries_resident = 0;

  [[nodiscard]] const CorpusCell& cell(int entry_index,
                                       int config_index) const;
};

/// Runs every source against every configuration. Uses, from `options`:
/// `dram` (memory backend per cell), `max_cycles` (horizon) and `threads`
/// (forwarded into the run_batch budget). The grid is scheduled as one
/// single-threaded job per (entry, active-core count) — each job loads
/// the entry, owns one shifted trace set and runs that core count's
/// configs serially — so even a one-trace corpus parallelizes across the
/// core-count axis while at most `threads` entries are ever resident.
/// `cell_mask`, when given, must have entries.size() * configs.size()
/// flags in cell order (e * configs.size() + c); cells with a false flag
/// are not executed (CorpusCell::ran == false) and entries with no owned
/// cell are never loaded. The workload-generation fields (seed, ranges,
/// accesses) are ignored — the corpus IS the workload. Results are
/// deterministic and independent of the thread count. Throws ConfigError
/// on an empty/duplicate-name corpus or when a cell fails.
[[nodiscard]] CorpusResult run_corpus(const std::vector<CorpusSource>& sources,
                                      const std::vector<SweepConfig>& configs,
                                      const SweepOptions& options,
                                      CorpusReplay replay =
                                          CorpusReplay::kMirrored,
                                      const std::vector<bool>* cell_mask =
                                          nullptr);

/// Convenience overload over pre-materialized entries (which must outlive
/// the call); jobs copy from `entries` instead of loading from disk.
[[nodiscard]] CorpusResult run_corpus(const std::vector<CorpusEntry>& entries,
                                      const std::vector<SweepConfig>& configs,
                                      const SweepOptions& options,
                                      CorpusReplay replay =
                                          CorpusReplay::kMirrored,
                                      const std::vector<bool>* cell_mask =
                                          nullptr);

/// Scans every "*.trace" (text) and "*.pslt" (binary) file directly under
/// `dir` (extensions matched case-insensitively), sorted by file stem; the
/// stem becomes the source name and loading is deferred to the returned
/// closures, so a corpus directory of any size costs one directory scan
/// here. Throws ConfigError when the directory holds no trace files or
/// two files share a stem, std::runtime_error when `dir` is not a
/// directory.
[[nodiscard]] std::vector<CorpusSource> corpus_dir_sources(
    const std::filesystem::path& dir);

/// corpus_dir_sources with every trace materialized immediately.
[[nodiscard]] std::vector<CorpusEntry> load_corpus_dir(
    const std::filesystem::path& dir);

/// Lazy sources for the deterministic built-in demo corpus (pointer
/// chase, strided scan, and two uniform-random mixes), sized by
/// `accesses` per entry. Used by bench/corpus_runner when no corpus
/// directory is given and emitted as files by `trace_convert --demo`, so
/// the file pipeline can be checked against the in-memory workloads bit
/// for bit.
[[nodiscard]] std::vector<CorpusSource> demo_corpus_sources(int accesses);

/// demo_corpus_sources with every trace materialized immediately.
[[nodiscard]] std::vector<CorpusEntry> make_demo_corpus(int accesses);

/// Streaming accumulator behind compute_trace_stats, usable over any op
/// source — e.g. a trace::MappedTrace decoded record by record, so
/// inspecting a multi-GiB binary file never materializes a core::Trace.
class TraceStatsAccumulator {
 public:
  void add(const core::MemOp& op);
  [[nodiscard]] TraceStats stats() const;

 private:
  TraceStats stats_;
  std::unordered_set<LineAddr> lines_;
};

[[nodiscard]] TraceStats compute_trace_stats(const core::Trace& trace);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_CORPUS_H_
