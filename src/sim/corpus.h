// Trace-corpus runner: replays a set of recorded traces (loaded from a
// directory of .trace/.pslt files or generated as the built-in demo
// corpus) across a grid of partition configurations, scheduling the
// (trace x config) cells through sim::run_batch. This is the recorded-
// workload counterpart of run_sweep, which generates its workloads
// internally; both take their execution knobs (dram backend, horizon,
// thread budget) from SweepOptions so benches configure one options
// struct for either path.
#ifndef PSLLC_SIM_CORPUS_H_
#define PSLLC_SIM_CORPUS_H_

#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/mem_op.h"
#include "sim/experiment.h"

namespace psllc::sim {

/// One corpus workload: a name (the file stem for directory corpora) and
/// the recorded access stream.
struct CorpusEntry {
  std::string name;
  core::Trace trace;
};

/// How a single-stream corpus entry populates a multi-core system.
enum class CorpusReplay {
  /// The trace runs on core 0; the other cores stay idle. Safe for any
  /// address range, but exercises no inter-core contention.
  kSolo,
  /// Every active core replays the trace, with core i's copy shifted into
  /// its own power-of-two address window (disjoint footprints, like the
  /// paper's Figure 8 workloads). Requires the shifted addresses to fit
  /// the 64-bit address space.
  kMirrored,
};

/// One (trace, configuration) cell.
struct CorpusCell {
  std::string trace_name;
  SweepConfig config;
  RunMetrics metrics;
};

struct CorpusResult {
  std::vector<std::string> names;  ///< entry order of the run
  std::vector<SweepConfig> configs;
  /// cells[e * configs.size() + c]
  std::vector<CorpusCell> cells;

  [[nodiscard]] const CorpusCell& cell(int entry_index,
                                       int config_index) const;
};

/// Runs every entry against every configuration. Uses, from `options`:
/// `dram` (memory backend per cell), `max_cycles` (horizon) and `threads`
/// (forwarded into the run_batch budget). The grid is scheduled as one
/// single-threaded job per (entry, active-core count) — each job owns one
/// shifted trace set and runs that core count's configs serially — so
/// even a one-trace corpus parallelizes across the core-count axis. The
/// workload-generation fields (seed, ranges, accesses) are ignored — the
/// corpus IS the workload. Results are deterministic and independent of
/// the thread count. Throws ConfigError on an empty/duplicate-name corpus
/// or when a cell fails.
[[nodiscard]] CorpusResult run_corpus(const std::vector<CorpusEntry>& entries,
                                      const std::vector<SweepConfig>& configs,
                                      const SweepOptions& options,
                                      CorpusReplay replay =
                                          CorpusReplay::kMirrored);

/// Loads every "*.trace" (text) and "*.pslt" (binary) file directly under
/// `dir` (extensions matched case-insensitively), sorted by file stem; the
/// stem becomes the entry name. The whole corpus is materialized in RAM —
/// size corpora to memory accordingly; per-entry streaming (loading each
/// entry inside its batch job) is the planned next step for corpora that
/// exceed it. Throws ConfigError when the directory holds no trace files
/// or two files share a stem, std::runtime_error when `dir` is not a
/// directory.
[[nodiscard]] std::vector<CorpusEntry> load_corpus_dir(
    const std::filesystem::path& dir);

/// The deterministic built-in demo corpus (pointer chase, strided scan,
/// and two uniform-random mixes), sized by `accesses` per entry. Used by
/// bench/corpus_runner when no corpus directory is given and emitted as
/// files by `trace_convert --demo`, so the file pipeline can be checked
/// against the in-memory workloads bit for bit.
[[nodiscard]] std::vector<CorpusEntry> make_demo_corpus(int accesses);

/// Op-mix / footprint summary of one trace, shared by the corpus runner's
/// corpus_traces series and `trace_convert --stats`.
struct TraceStats {
  std::int64_t ops = 0;
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t ifetches = 0;
  Addr min_addr = 0;  ///< 0 when the trace is empty
  Addr max_addr = 0;
  Cycle max_gap = 0;
  std::uint64_t total_gap = 0;  ///< saturates at UINT64_MAX
  std::int64_t distinct_lines = 0;  ///< 64 B cache lines touched
};

/// Streaming accumulator behind compute_trace_stats, usable over any op
/// source — e.g. a trace::MappedTrace decoded record by record, so
/// inspecting a multi-GiB binary file never materializes a core::Trace.
class TraceStatsAccumulator {
 public:
  void add(const core::MemOp& op);
  [[nodiscard]] TraceStats stats() const;

 private:
  TraceStats stats_;
  std::unordered_set<LineAddr> lines_;
};

[[nodiscard]] TraceStats compute_trace_stats(const core::Trace& trace);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_CORPUS_H_
