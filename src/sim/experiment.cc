#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/assert.h"
#include "core/wcl_analysis.h"
#include "sim/replay.h"

namespace psllc::sim {

const SweepCell& SweepResult::cell(int range_index, int config_index) const {
  PSLLC_ASSERT(range_index >= 0 &&
                   range_index < static_cast<int>(ranges.size()),
               "range index " << range_index);
  PSLLC_ASSERT(config_index >= 0 &&
                   config_index < static_cast<int>(configs.size()),
               "config index " << config_index);
  return cells[static_cast<std::size_t>(range_index) * configs.size() +
               static_cast<std::size_t>(config_index)];
}

namespace {

// Computes one grid cell through the shared replay entry point. Every cell
// builds its own engine state and its own traces, so cells share no mutable
// state and can run on any thread.
SweepCell run_cell(const SweepConfig& config, std::int64_t range,
                   const SweepOptions& options) {
  RandomWorkloadOptions workload;
  workload.range_bytes = range;
  workload.accesses = options.accesses_per_core;
  workload.write_fraction = options.write_fraction;
  // Trace identity: (seed, core, range) only — identical addresses for
  // every configuration, as the paper requires.
  const std::vector<core::Trace> traces = make_disjoint_random_workload(
      config.active_cores, workload, options.seed);
  core::ExperimentSetup setup =
      core::make_paper_setup(config.notation, config.active_cores);
  setup.config.dram = options.dram;
  setup.config.validate();
  ReplayRequest request;
  request.setup = &setup;
  request.workload.per_core = &traces;
  request.options.max_cycles = options.max_cycles;
  SweepCell cell;
  cell.config = config;
  cell.range_bytes = range;
  cell.metrics = replay(request).metrics;
  return cell;
}

}  // namespace

SweepResult run_sweep(const std::vector<SweepConfig>& configs,
                      const SweepOptions& options) {
  PSLLC_CONFIG_CHECK(!configs.empty(), "sweep needs >=1 configuration");
  PSLLC_CONFIG_CHECK(!options.address_ranges.empty(),
                     "sweep needs >=1 address range");
  PSLLC_CONFIG_CHECK(options.threads >= 0,
                     "threads must be >= 0, got " << options.threads);
  SweepResult result;
  result.configs = configs;
  result.ranges = options.address_ranges;

  const std::size_t total = configs.size() * options.address_ranges.size();
  result.cells.resize(total);

  // Cell index in row-major (range, config) order, matching
  // SweepResult::cell — each worker writes only its own slot, so the result
  // layout (and every byte of the rendered tables) is independent of thread
  // count and completion order.
  const auto compute = [&](std::size_t index) {
    const std::size_t r = index / configs.size();
    const std::size_t c = index % configs.size();
    result.cells[index] =
        run_cell(configs[c], options.address_ranges[r], options);
  };

  std::size_t worker_count =
      options.threads > 0
          ? static_cast<std::size_t>(options.threads)
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  worker_count = std::min(worker_count, total);

  if (worker_count <= 1) {
    for (std::size_t index = 0; index < total; ++index) {
      compute(index);
    }
    return result;
  }

  std::atomic<std::size_t> next{0};
  // On error the sweep fails fast: unclaimed cells are skipped. Among the
  // cells that did throw, the lowest index wins, so the serial path and the
  // pool agree whenever only one cell is faulty.
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::size_t error_index = total;
  std::exception_ptr error;
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&] {
      for (std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
           index < total && !failed.load(std::memory_order_relaxed);
           index = next.fetch_add(1, std::memory_order_relaxed)) {
        try {
          compute(index);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (index < error_index) {
            error_index = index;
            error = std::current_exception();
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return result;
}

namespace {

std::vector<std::string> header_for(const SweepResult& result,
                                    const std::string& first_column) {
  std::vector<std::string> header{first_column};
  for (const SweepConfig& config : result.configs) {
    header.push_back(config.notation);
  }
  return header;
}

}  // namespace

Table wcl_table(const SweepResult& result) {
  Table table(header_for(result, "range_bytes"));
  for (int r = 0; r < static_cast<int>(result.ranges.size()); ++r) {
    std::vector<std::string> row{std::to_string(result.ranges[
        static_cast<std::size_t>(r)])};
    for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
      const SweepCell& cell = result.cell(r, c);
      row.push_back(cell.metrics.completed
                        ? std::to_string(cell.metrics.observed_wcl)
                        : "DNF");
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> bound_row{"analytical_WCL"};
  for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
    bound_row.push_back(
        std::to_string(result.cell(0, c).metrics.analytical_wcl));
  }
  table.add_row(std::move(bound_row));
  return table;
}

Table exec_time_table(const SweepResult& result) {
  Table table(header_for(result, "range_bytes"));
  for (int r = 0; r < static_cast<int>(result.ranges.size()); ++r) {
    std::vector<std::string> row{std::to_string(result.ranges[
        static_cast<std::size_t>(r)])};
    for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
      const SweepCell& cell = result.cell(r, c);
      row.push_back(cell.metrics.completed
                        ? std::to_string(cell.metrics.makespan)
                        : "DNF");
    }
    table.add_row(std::move(row));
  }
  return table;
}

namespace {

/// Columns of a grid series: exact range_bytes plus one timing column per
/// configuration.
std::vector<results::Column> grid_columns(const SweepResult& result) {
  std::vector<results::Column> columns;
  columns.push_back({"range_bytes", results::ColumnType::kInt,
                     results::ColumnKind::kExact, "bytes"});
  for (const SweepConfig& config : result.configs) {
    columns.push_back({config.notation, results::ColumnType::kInt,
                       results::ColumnKind::kTiming, "cycles"});
  }
  return columns;
}

results::Series grid_series(const SweepResult& result, std::string name,
                            Cycle RunMetrics::* metric) {
  results::Series series(std::move(name), grid_columns(result));
  for (int r = 0; r < static_cast<int>(result.ranges.size()); ++r) {
    std::vector<results::Value> row;
    row.push_back(results::Value::of_int(
        result.ranges[static_cast<std::size_t>(r)]));
    for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
      const RunMetrics& m = result.cell(r, c).metrics;
      row.push_back(results::Value::of_cycles(m.*metric, m.completed));
    }
    series.add_row(std::move(row));
  }
  return series;
}

}  // namespace

results::Series observed_wcl_series(const SweepResult& result) {
  return grid_series(result, "observed_wcl", &RunMetrics::observed_wcl);
}

results::Series exec_time_series(const SweepResult& result) {
  return grid_series(result, "exec_time", &RunMetrics::makespan);
}

results::Series analytical_wcl_series(const SweepResult& result) {
  results::Series series(
      "analytical_wcl",
      {{"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"wcl_bound", results::ColumnType::kInt, results::ColumnKind::kExact,
        "cycles"}});
  for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
    series.add_row({results::Value::of_text(
                        result.configs[static_cast<std::size_t>(c)].notation),
                    results::Value::of_int(
                        result.cell(0, c).metrics.analytical_wcl)});
  }
  return series;
}

results::Series speedup_series(
    const SweepResult& result,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  results::Series series(
      "speedup",
      {{"config", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"baseline", results::ColumnType::kText, results::ColumnKind::kExact,
        ""},
       {"mean_speedup", results::ColumnType::kReal,
        results::ColumnKind::kTiming, "ratio"}});
  for (const auto& [numerator, denominator] : pairs) {
    series.add_row({results::Value::of_text(numerator),
                    results::Value::of_text(denominator),
                    results::Value::of_real(
                        mean_speedup(result, numerator, denominator))});
  }
  return series;
}

double mean_speedup(const SweepResult& result, const std::string& numerator,
                    const std::string& denominator) {
  int num_index = -1;
  int den_index = -1;
  for (int c = 0; c < static_cast<int>(result.configs.size()); ++c) {
    if (result.configs[static_cast<std::size_t>(c)].notation == numerator) {
      num_index = c;
    }
    if (result.configs[static_cast<std::size_t>(c)].notation == denominator) {
      den_index = c;
    }
  }
  PSLLC_CONFIG_CHECK(num_index >= 0, "unknown config " << numerator);
  PSLLC_CONFIG_CHECK(den_index >= 0, "unknown config " << denominator);
  double sum = 0;
  int counted = 0;
  for (int r = 0; r < static_cast<int>(result.ranges.size()); ++r) {
    const RunMetrics& num = result.cell(r, num_index).metrics;
    const RunMetrics& den = result.cell(r, den_index).metrics;
    if (!num.completed || !den.completed || num.makespan <= 0) {
      continue;
    }
    // Speedup of `numerator` over `denominator`: t_den / t_num.
    sum += static_cast<double>(den.makespan) /
           static_cast<double>(num.makespan);
    ++counted;
  }
  PSLLC_CONFIG_CHECK(counted > 0, "no comparable completed runs");
  return sum / counted;
}

}  // namespace psllc::sim
