// Sweep harness regenerating the paper's evaluation figures: a grid of
// (partition configuration x address range) cells, with the same per-core
// traces replayed against every configuration (paper Section 5).
#ifndef PSLLC_SIM_EXPERIMENT_H_
#define PSLLC_SIM_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "mem/dram.h"
#include "results/result_store.h"
#include "sim/runner.h"
#include "sim/workload.h"

namespace psllc::sim {

/// One configuration column of a sweep.
struct SweepConfig {
  std::string notation;  ///< e.g. "SS(1,2,4)"
  int active_cores = 4;
};

struct SweepOptions {
  /// The paper's x-axis: 1 KiB .. 256 KiB.
  std::vector<std::int64_t> address_ranges = {1024,  2048,   4096,
                                              8192,  16384,  32768,
                                              65536, 131072, 262144};
  int accesses_per_core = 20000;
  double write_fraction = 0.25;
  std::uint64_t seed = 42;
  Cycle max_cycles = 2'000'000'000;
  /// Memory backend behind the LLC for every cell (default: the paper's
  /// fixed-latency model). The trace grid is backend-independent, so sweeps
  /// over `dram.backend` replay identical addresses per cell.
  mem::DramConfig dram;
  /// Worker threads for the sweep grid. Each cell builds its own
  /// core::System, so cells are embarrassingly parallel; results are
  /// bit-identical to the serial path regardless of thread count.
  /// 0 = std::thread::hardware_concurrency(), 1 = serial.
  int threads = 0;
};

/// All metrics of one sweep cell.
struct SweepCell {
  SweepConfig config;
  std::int64_t range_bytes = 0;
  RunMetrics metrics;
};

struct SweepResult {
  std::vector<SweepConfig> configs;
  std::vector<std::int64_t> ranges;
  /// cells[r * configs.size() + c]
  std::vector<SweepCell> cells;

  [[nodiscard]] const SweepCell& cell(int range_index, int config_index) const;
};

/// Runs the full grid. Traces depend only on (seed, core, range), so every
/// configuration sees identical addresses.
[[nodiscard]] SweepResult run_sweep(const std::vector<SweepConfig>& configs,
                                    const SweepOptions& options);

/// Figure 7 rendering: one row per address range, one column per config
/// with the observed WCL in cycles, plus a final analytical-bound row.
[[nodiscard]] Table wcl_table(const SweepResult& result);

/// Figure 8 rendering: execution time (makespan cycles) per range/config.
[[nodiscard]] Table exec_time_table(const SweepResult& result);

/// Mean speedup of configuration `numerator` over `denominator` (ratios of
/// makespans averaged across ranges; ranges where either run failed to
/// complete are skipped). Mirrors the paper's "average speedup of X×".
[[nodiscard]] double mean_speedup(const SweepResult& result,
                                  const std::string& numerator,
                                  const std::string& denominator);

/// Result-store renderings of a sweep grid. Observed WCL and makespan are
/// timing-derived columns (diffed with tolerance, DNF -> null); the
/// analytical bounds are exact columns that must never drift.
[[nodiscard]] results::Series observed_wcl_series(const SweepResult& result);
[[nodiscard]] results::Series exec_time_series(const SweepResult& result);
[[nodiscard]] results::Series analytical_wcl_series(const SweepResult& result);

/// One row of mean speedups per (numerator, baseline) pair, as the paper's
/// "SS achieves an average speedup of X x" quotes.
[[nodiscard]] results::Series speedup_series(
    const SweepResult& result,
    const std::vector<std::pair<std::string, std::string>>& pairs);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_EXPERIMENT_H_
