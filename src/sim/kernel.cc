// See kernel.h for the design contract. The kernel body lives in
// sim/replay_kernel.h (shared verbatim with the parallel engine in
// sim/parallel_replay.cc) and mirrors core::System::step_slot /
// TraceCore::run_until statement for statement — any edit there must keep
// the differential battery (tests/test_kernel.cc, tests/test_parallel_replay.cc)
// and the golden gates bit-identical against the legacy engine.
#include "sim/kernel.h"

#include "common/assert.h"
#include "mem/memory_backend.h"
#include "sim/replay_kernel.h"

namespace psllc::sim {

namespace {

template <typename Backend>
RunMetrics run_with(const ReplayRequest& request) {
  detail::ReplayKernel<Backend> kernel(*request.setup);
  kernel.set_workload(request.workload);
  return kernel.run(request.options);
}

}  // namespace

RunMetrics run_kernel(const ReplayRequest& request) {
  PSLLC_ASSERT(kernel_eligible(request),
               "run_kernel called with a kernel-ineligible request");
  switch (request.setup->config.dram.backend) {
    case mem::MemoryBackendKind::kFixedLatency:
      return run_with<mem::FixedLatencyBackend>(request);
    case mem::MemoryBackendKind::kBankRow:
      return run_with<mem::BankRowBackend>(request);
    case mem::MemoryBackendKind::kWriteQueue:
      return run_with<mem::WriteQueueBackend>(request);
  }
  PSLLC_ASSERT(false, "unknown memory backend kind "
                          << static_cast<int>(request.setup->config.dram.backend));
  return {};
}

}  // namespace psllc::sim
