// Tight replay kernel: the hot path behind sim::replay().
//
// The legacy core::System walks every TDM slot, calling run_until on every
// core each slot and checking all_done between slots. The kernel replays
// the same model event-style: it computes the exact next slot that carries
// a bus action (an eligible PRB/PWB message, or a message a still-running
// lane is provably about to enqueue), runs lanes forward only as far as the
// no-overshoot bound allows, and executes action slots one by one with the
// identical owner-pick / LLC / tracker sequence as System::step_slot. Idle
// slots are skipped outright — which is sound because PendingBuffers::pick
// leaves the round-robin preference untouched when nothing is eligible.
//
// State is struct-of-arrays: per-lane cursors, program counters, ready
// times and block flags live in flat vectors (no per-op allocation, no
// std::function, no virtual core objects). The memory backend is selected
// once per cell and the LLC is instantiated against the concrete `final`
// backend type (llc::BasicPartitionedLlc<Backend>), so DRAM service calls
// devirtualize and inline; the virtual mem::MemoryBackend interface remains
// the cold-path/conformance surface used by core::System.
//
// The kernel must be bit-identical to the legacy engine for every metric in
// RunMetrics. Anything it cannot reproduce exactly is declared ineligible
// in sim::kernel_eligible and falls back to legacy.
#ifndef PSLLC_SIM_KERNEL_H_
#define PSLLC_SIM_KERNEL_H_

#include "sim/replay.h"

namespace psllc::sim {

/// Replays a kernel-eligible request. Precondition: kernel_eligible(request)
/// (replay() enforces this; calling it directly with an ineligible request
/// is an assertion failure).
[[nodiscard]] RunMetrics run_kernel(const ReplayRequest& request);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_KERNEL_H_
