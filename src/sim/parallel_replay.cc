// See parallel_replay.h for the protocol contract. The replay body itself
// is sim/replay_kernel.h — shared with the serial engine, which is what
// makes "parallel == serial" a structural property rather than a hope.
#include "sim/parallel_replay.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "llc/partition.h"
#include "mem/memory_backend.h"
#include "sim/replay_kernel.h"

namespace psllc::sim {

namespace {

/// True when every lane's replay is provably independent of every other
/// lane's, so per-lane solo replays compose into exact boundary states:
///  * per-core workload (shared sources alias one op stream);
///  * static partition program (mode switches couple lanes through drains);
///  * fixed-latency DRAM (bank-row / write-queue backends carry dynamic
///    state that interleaves across lanes);
///  * single-sharer, set-disjoint partitions (no shared LLC sets, no
///    cross-core back-invalidations);
///  * pairwise disjoint per-lane line ranges (no directory/set aliasing
///    even across partitions).
/// TDM arbitration needs no check: a lane's requests are presented in its
/// own slots at times fixed by its own timeline alone.
bool compose_eligible(const ReplayRequest& request) {
  const core::ExperimentSetup& setup = *request.setup;
  if (request.workload.per_core == nullptr) {
    return false;
  }
  if (setup.program.num_modes() != 1) {
    return false;
  }
  if (setup.config.dram.backend != mem::MemoryBackendKind::kFixedLatency) {
    return false;
  }
  const llc::PartitionMap& map = setup.program.initial();
  for (int p = 0; p < map.num_partitions(); ++p) {
    if (map.sharers(p).size() > 1) {
      return false;
    }
    const llc::PartitionSpec& a = map.spec(p);
    for (int q = p + 1; q < map.num_partitions(); ++q) {
      const llc::PartitionSpec& b = map.spec(q);
      if (a.first_set < b.first_set + b.num_sets &&
          b.first_set < a.first_set + a.num_sets) {
        return false;
      }
    }
  }
  const std::vector<core::Trace>& traces = *request.workload.per_core;
  std::vector<std::pair<LineAddr, LineAddr>> ranges;  // [min_line, max_line]
  for (const core::Trace& trace : traces) {
    if (trace.empty()) {
      continue;
    }
    LineAddr lo = std::numeric_limits<LineAddr>::max();
    LineAddr hi = 0;
    for (const core::MemOp& op : trace) {
      const LineAddr line = setup.config.private_caches.l2.line_of(op.addr);
      lo = std::min(lo, line);
      hi = std::max(hi, line);
    }
    ranges.emplace_back(lo, hi);
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    for (std::size_t j = i + 1; j < ranges.size(); ++j) {
      if (ranges[i].first <= ranges[j].second &&
          ranges[j].first <= ranges[i].second) {
        return false;
      }
    }
  }
  return true;
}

template <typename Backend>
RunMetrics run_parallel_with(const ReplayRequest& request, int threads) {
  using Kernel = detail::ReplayKernel<Backend>;
  using KState = typename Kernel::State;
  const core::ExperimentSetup& setup = *request.setup;

  // One kernel per segment, constructed and started once; rounds reuse them
  // via restore(). The first also fixes the horizon.
  std::vector<std::unique_ptr<Kernel>> kernels;
  kernels.push_back(std::make_unique<Kernel>(setup));
  kernels[0]->set_workload(request.workload);
  kernels[0]->start(request.options);
  const std::int64_t horizon = kernels[0]->horizon();
  const std::int64_t T =
      horizon > 0 ? std::min<std::int64_t>(threads, horizon) : 1;
  for (std::int64_t i = 1; i < T; ++i) {
    kernels.push_back(std::make_unique<Kernel>(setup));
    kernels.back()->set_workload(request.workload);
    kernels.back()->start(request.options);
  }

  // Slot-aligned segment boundaries, strictly increasing (T <= horizon).
  std::vector<std::int64_t> b(static_cast<std::size_t>(T) + 1, 0);
  for (std::int64_t i = 1; i < T; ++i) {
    b[static_cast<std::size_t>(i)] = horizon * i / T;
  }
  b[static_cast<std::size_t>(T)] = horizon;

  const auto fresh = std::make_unique<KState>(kernels[0]->snapshot());
  std::vector<std::unique_ptr<KState>> inputs(static_cast<std::size_t>(T));
  std::vector<std::unique_ptr<KState>> outputs(static_cast<std::size_t>(T));
  inputs[0] = std::make_unique<KState>(*fresh);

  // Boundary guesses for segments 1..T-1: exact composed states when the
  // lanes are provably independent, cold (initial-state) guesses otherwise.
  bool composed = false;
  if (T > 1 && compose_eligible(request)) {
    const std::vector<core::Trace>& traces = *request.workload.per_core;
    const int lanes = static_cast<int>(traces.size());
    // solo[lane][i] = lane's state at boundary b[i], i in 1..T-1.
    std::vector<std::vector<std::unique_ptr<KState>>> solo(
        static_cast<std::size_t>(lanes));
    std::vector<std::exception_ptr> solo_errors(
        static_cast<std::size_t>(lanes));
    for (int wave = 0; wave < lanes; wave += threads) {
      std::vector<std::thread> workers;
      const int wave_end = std::min(lanes, wave + threads);
      for (int lane = wave; lane < wave_end; ++lane) {
        if (traces[static_cast<std::size_t>(lane)].empty()) {
          continue;  // an idle lane contributes nothing beyond fresh state
        }
        workers.emplace_back([&, lane] {
          try {
            Kernel kernel(setup);
            kernel.set_workload_solo(request.workload, lane);
            kernel.start(request.options);
            auto& states = solo[static_cast<std::size_t>(lane)];
            states.resize(static_cast<std::size_t>(T));
            for (std::int64_t i = 1; i < T; ++i) {
              kernel.run_span(b[static_cast<std::size_t>(i)]);
              states[static_cast<std::size_t>(i)] =
                  std::make_unique<KState>(kernel.snapshot());
            }
          } catch (...) {
            solo_errors[static_cast<std::size_t>(lane)] =
                std::current_exception();
          }
        });
      }
      for (std::thread& worker : workers) {
        worker.join();
      }
    }
    for (int lane = 0; lane < lanes; ++lane) {
      if (solo_errors[static_cast<std::size_t>(lane)]) {
        std::rethrow_exception(solo_errors[static_cast<std::size_t>(lane)]);
      }
    }
    for (std::int64_t i = 1; i < T; ++i) {
      auto guess = std::make_unique<KState>(*fresh);
      for (int lane = 0; lane < lanes; ++lane) {
        const auto& states = solo[static_cast<std::size_t>(lane)];
        if (states.empty()) {
          continue;
        }
        const KState& s = *states[static_cast<std::size_t>(i)];
        const std::size_t l = static_cast<std::size_t>(lane);
        guess->pc[l] = s.pc[l];
        guess->next_ready[l] = s.next_ready[l];
        guess->finish_time[l] = s.finish_time[l];
        guess->done_slot[l] = s.done_slot[l];
        guess->gap_applied[l] = s.gap_applied[l];
        guess->blocked[l] = s.blocked[l];
        guess->out_addr[l] = s.out_addr[l];
        guess->out_type[l] = s.out_type[l];
        guess->caches[l] = s.caches[l];
        guess->buffers[l] = s.buffers[l];
        guess->tracker.absorb_solo(s.tracker);
        guess->llc.adopt_solo_lane(s.llc, CoreId{lane});
        guess->memory.absorb_solo_counters(s.memory);
        guess->cur_slot = std::max(guess->cur_slot, s.cur_slot);
        guess->last_action_slot =
            std::max(guess->last_action_slot, s.last_action_slot);
      }
      inputs[static_cast<std::size_t>(i)] = std::move(guess);
    }
    composed = true;
  }
  if (!composed) {
    for (std::int64_t i = 1; i < T; ++i) {
      inputs[static_cast<std::size_t>(i)] = std::make_unique<KState>(*fresh);
    }
  }

  // Reconciliation rounds: replay every invalidated segment concurrently,
  // then a serial deterministic sweep promotes each segment whose input no
  // longer matches its predecessor's output. Segment 0's input is exact, so
  // the exact prefix grows by >= 1 segment per round; segment i therefore
  // runs at most i + 1 <= T <= cell_threads times.
  std::vector<char> needs_run(static_cast<std::size_t>(T), 1);
  std::vector<std::int64_t> exec_count(static_cast<std::size_t>(T), 0);
  for (std::int64_t round = 0;; ++round) {
    PSLLC_ASSERT(round <= T, "reconciliation failed to reach a fixpoint in "
                                 << T << " rounds");
    std::vector<std::thread> workers;
    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(T));
    for (std::int64_t i = 0; i < T; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      if (needs_run[si] == 0) {
        continue;
      }
      ++exec_count[si];
      workers.emplace_back([&, i, si] {
        try {
          kernels[si]->restore(*inputs[si]);
          kernels[si]->run_span(b[static_cast<std::size_t>(i) + 1]);
          outputs[si] = std::make_unique<KState>(kernels[si]->snapshot());
        } catch (...) {
          errors[si] = std::current_exception();
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
    for (std::int64_t i = 0; i < T; ++i) {
      if (errors[static_cast<std::size_t>(i)]) {
        std::rethrow_exception(errors[static_cast<std::size_t>(i)]);
      }
    }
    bool changed = false;
    std::fill(needs_run.begin(), needs_run.end(), 0);
    for (std::int64_t i = 1; i < T; ++i) {
      const std::size_t si = static_cast<std::size_t>(i);
      if (!Kernel::states_equal(*inputs[si], *outputs[si - 1])) {
        inputs[si] = std::make_unique<KState>(*outputs[si - 1]);
        needs_run[si] = 1;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }

  std::int64_t total_executions = 0;
  for (std::int64_t i = 0; i < T; ++i) {
    const std::int64_t count = exec_count[static_cast<std::size_t>(i)];
    total_executions += count;
    PSLLC_AUDIT(count <= threads,
                "segment " << i << " replayed " << count
                           << " times with cell_threads=" << threads);
  }

  kernels[static_cast<std::size_t>(T) - 1]->restore(
      *outputs[static_cast<std::size_t>(T) - 1]);
  RunMetrics metrics = kernels[static_cast<std::size_t>(T) - 1]->finalize();
  metrics.parallel_segments = T;
  metrics.parallel_reexecutions = total_executions - T;
  return metrics;
}

}  // namespace

RunMetrics run_parallel(const ReplayRequest& request, int cell_threads) {
  PSLLC_ASSERT(parallel_eligible(request),
               "run_parallel called with a parallel-ineligible request");
  PSLLC_ASSERT(cell_threads >= 1,
               "run_parallel needs cell_threads >= 1, got " << cell_threads);
  switch (request.setup->config.dram.backend) {
    case mem::MemoryBackendKind::kFixedLatency:
      return run_parallel_with<mem::FixedLatencyBackend>(request,
                                                         cell_threads);
    case mem::MemoryBackendKind::kBankRow:
      return run_parallel_with<mem::BankRowBackend>(request, cell_threads);
    case mem::MemoryBackendKind::kWriteQueue:
      return run_parallel_with<mem::WriteQueueBackend>(request, cell_threads);
  }
  PSLLC_ASSERT(false, "unknown memory backend kind "
                          << static_cast<int>(request.setup->config.dram.backend));
  return {};
}

}  // namespace psllc::sim
