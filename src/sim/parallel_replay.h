// Parallel intra-cell replay: speculative horizon splitting with
// deterministic reconciliation.
//
// The horizon is cut into slot-aligned segments. Each segment replays on
// its own kernel from a speculative boundary state; a serial reconciliation
// sweep then compares each segment's input against its predecessor's output
// (observational state equality) and re-executes invalidated segments until
// fixpoint. Segment 0 starts from the exact initial state, so the exact
// prefix grows by at least one segment per round and the sweep terminates
// within `segments` rounds — and never re-executes a segment more than
// `cell_threads` times (PSLLC_AUDIT contract).
//
// Boundary guesses: for fully independent lanes (per-core workload, static
// single-sharer set-disjoint partitions, fixed-latency DRAM, data-disjoint
// traces) the engine first replays each lane solo and composes exact
// boundary states, converging in one verification round — this is the
// speedup regime. Any other eligible cell falls back to cold guesses, which
// converge serially (correct, no speedup).
//
// The result is bit-identical to the serial kernel (and hence the legacy
// engine) for every RunMetrics field except the parallel_* diagnostics —
// enforced by tests/test_parallel_replay.cc.
#ifndef PSLLC_SIM_PARALLEL_REPLAY_H_
#define PSLLC_SIM_PARALLEL_REPLAY_H_

#include "sim/replay.h"

namespace psllc::sim {

/// Replays a parallel-eligible request with `cell_threads` workers (>= 1;
/// 1 still exercises the segmented machinery with a single segment).
/// Precondition: parallel_eligible(request) — replay() enforces this.
[[nodiscard]] RunMetrics run_parallel(const ReplayRequest& request,
                                      int cell_threads);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_PARALLEL_REPLAY_H_
