#include "sim/replay.h"

#include <cstdlib>
#include <limits>
#include <string>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "core/system.h"
#include "sim/kernel.h"
#include "sim/parallel_replay.h"

namespace psllc::sim {

namespace {

void validate_request(const ReplayRequest& request) {
  PSLLC_ASSERT(request.setup != nullptr, "replay request needs a setup");
  const int num_cores = request.setup->config.num_cores;
  const ReplayWorkload& w = request.workload;
  const int sources = (w.per_core != nullptr ? 1 : 0) +
                      (w.shared != nullptr ? 1 : 0) +
                      (w.shared_view != nullptr ? 1 : 0);
  PSLLC_CONFIG_CHECK(
      sources == 1,
      "replay workload must set exactly one of per_core/shared/shared_view ("
          << sources << " set)");
  if (w.per_core != nullptr) {
    PSLLC_CONFIG_CHECK(
        static_cast<int>(w.per_core->size()) <= num_cores,
        "more traces (" << w.per_core->size() << ") than cores (" << num_cores
                        << ")");
  } else {
    PSLLC_CONFIG_CHECK(w.replicas >= 1 && w.replicas <= num_cores,
                       "replay replicas (" << w.replicas << ") must be in [1, "
                                           << num_cores << "]");
    if (w.replicas > 1) {
      // Half the address space headroom keeps line math overflow-free for
      // every shifted replica (mirrors the old corpus replay_traces check).
      const Addr safe_window = (std::numeric_limits<Addr>::max() / 2) /
                               static_cast<Addr>(w.replicas - 1);
      PSLLC_CONFIG_CHECK(w.window <= safe_window,
                         "replay window 0x"
                             << std::hex << w.window << " overflows across "
                             << std::dec << w.replicas << " replicas");
    }
  }
}

/// The legacy engine: materialize per-core traces and drive a core::System
/// slot by slot. Shared sources are expanded into shifted copies exactly
/// like the corpus runner always did, so the two engines replay
/// byte-identical op streams.
RunMetrics run_legacy(const ReplayRequest& request) {
  const core::ExperimentSetup& setup = *request.setup;
  core::System system(setup);
  const ReplayWorkload& w = request.workload;
  if (w.per_core != nullptr) {
    for (std::size_t c = 0; c < w.per_core->size(); ++c) {
      system.set_trace(CoreId{static_cast<int>(c)}, (*w.per_core)[c]);
    }
  } else {
    const core::Trace materialized =
        w.shared_view != nullptr ? w.shared_view->to_trace() : core::Trace{};
    const core::Trace& base = w.shared != nullptr ? *w.shared : materialized;
    for (int c = 0; c < w.replicas; ++c) {
      const Addr offset = w.window * static_cast<Addr>(c);
      core::Trace shifted;
      shifted.reserve(base.size());
      for (const core::MemOp& op : base) {
        shifted.push_back({op.addr + offset, op.type, op.gap});
      }
      system.set_trace(CoreId{c}, std::move(shifted));
    }
  }
  return run_system(system, setup, request.options);
}

}  // namespace

bool kernel_eligible(const ReplayRequest& request) {
  return request.engine != ReplayEngine::kLegacy && parallel_eligible(request);
}

bool parallel_eligible(const ReplayRequest& request) {
  if (request.setup == nullptr) {
    return false;
  }
  // Record retention exposes the legacy presentation order (record ids are
  // assigned in slot order; the kernel discovers misses in refinement
  // order), so those runs stay on the legacy engine.
  if (request.setup->config.keep_request_records) {
    return false;
  }
  // Debug/trace logging expects the legacy per-slot log stream; the kernel
  // never visits idle slots.
  if (Logger::instance().enabled(LogLevel::kDebug)) {
    return false;
  }
  return true;
}

int effective_cell_threads(const RunOptions& options) {
  if (options.cell_threads >= 1) {
    return options.cell_threads;
  }
  static const int env_threads = [] {
    const char* raw = std::getenv("PSLLC_CELL_THREADS");
    if (raw == nullptr || *raw == '\0') {
      return 1;
    }
    char* end = nullptr;
    const long value = std::strtol(raw, &end, 10);
    PSLLC_CONFIG_CHECK(end != raw && *end == '\0' && value >= 1 &&
                           value <= 1024,
                       "PSLLC_CELL_THREADS must be an integer in [1, 1024], "
                       "got \""
                           << raw << "\"");
    return static_cast<int>(value);
  }();
  return env_threads;
}

ReplayResult replay(const ReplayRequest& request) {
  validate_request(request);
  if (request.engine == ReplayEngine::kParallel) {
    PSLLC_CONFIG_CHECK(parallel_eligible(request),
                       "replay engine forced to parallel, but the request is "
                       "not parallel-eligible");
    return {run_parallel(request, effective_cell_threads(request.options)),
            true};
  }
  if (request.engine == ReplayEngine::kKernel) {
    PSLLC_CONFIG_CHECK(kernel_eligible(request),
                       "replay engine forced to kernel, but the request is "
                       "not kernel-eligible");
    return {run_kernel(request), true};
  }
  if (kernel_eligible(request)) {
    const int threads = effective_cell_threads(request.options);
    if (threads > 1) {
      return {run_parallel(request, threads), true};
    }
    return {run_kernel(request), true};
  }
  return {run_legacy(request), false};
}

}  // namespace psllc::sim
