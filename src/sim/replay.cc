#include "sim/replay.h"

#include <limits>
#include <utility>

#include "common/assert.h"
#include "common/log.h"
#include "core/system.h"
#include "sim/kernel.h"

namespace psllc::sim {

namespace {

void validate_request(const ReplayRequest& request) {
  PSLLC_ASSERT(request.setup != nullptr, "replay request needs a setup");
  const int num_cores = request.setup->config.num_cores;
  const ReplayWorkload& w = request.workload;
  const int sources = (w.per_core != nullptr ? 1 : 0) +
                      (w.shared != nullptr ? 1 : 0) +
                      (w.shared_view != nullptr ? 1 : 0);
  PSLLC_CONFIG_CHECK(
      sources == 1,
      "replay workload must set exactly one of per_core/shared/shared_view ("
          << sources << " set)");
  if (w.per_core != nullptr) {
    PSLLC_CONFIG_CHECK(
        static_cast<int>(w.per_core->size()) <= num_cores,
        "more traces (" << w.per_core->size() << ") than cores (" << num_cores
                        << ")");
  } else {
    PSLLC_CONFIG_CHECK(w.replicas >= 1 && w.replicas <= num_cores,
                       "replay replicas (" << w.replicas << ") must be in [1, "
                                           << num_cores << "]");
    if (w.replicas > 1) {
      // Half the address space headroom keeps line math overflow-free for
      // every shifted replica (mirrors the old corpus replay_traces check).
      const Addr safe_window = (std::numeric_limits<Addr>::max() / 2) /
                               static_cast<Addr>(w.replicas - 1);
      PSLLC_CONFIG_CHECK(w.window <= safe_window,
                         "replay window 0x"
                             << std::hex << w.window << " overflows across "
                             << std::dec << w.replicas << " replicas");
    }
  }
}

/// The legacy engine: materialize per-core traces and drive a core::System
/// slot by slot. Shared sources are expanded into shifted copies exactly
/// like the corpus runner always did, so the two engines replay
/// byte-identical op streams.
RunMetrics run_legacy(const ReplayRequest& request) {
  const core::ExperimentSetup& setup = *request.setup;
  core::System system(setup);
  const ReplayWorkload& w = request.workload;
  if (w.per_core != nullptr) {
    for (std::size_t c = 0; c < w.per_core->size(); ++c) {
      system.set_trace(CoreId{static_cast<int>(c)}, (*w.per_core)[c]);
    }
  } else {
    const core::Trace materialized =
        w.shared_view != nullptr ? w.shared_view->to_trace() : core::Trace{};
    const core::Trace& base = w.shared != nullptr ? *w.shared : materialized;
    for (int c = 0; c < w.replicas; ++c) {
      const Addr offset = w.window * static_cast<Addr>(c);
      core::Trace shifted;
      shifted.reserve(base.size());
      for (const core::MemOp& op : base) {
        shifted.push_back({op.addr + offset, op.type, op.gap});
      }
      system.set_trace(CoreId{c}, std::move(shifted));
    }
  }
  return run_system(system, setup, request.options);
}

}  // namespace

bool kernel_eligible(const ReplayRequest& request) {
  if (request.engine == ReplayEngine::kLegacy) {
    return false;
  }
  if (request.setup == nullptr) {
    return false;
  }
  // Record retention exposes the legacy presentation order (record ids are
  // assigned in slot order; the kernel discovers misses in refinement
  // order), so those runs stay on the legacy engine.
  if (request.setup->config.keep_request_records) {
    return false;
  }
  // Debug/trace logging expects the legacy per-slot log stream; the kernel
  // never visits idle slots.
  if (Logger::instance().enabled(LogLevel::kDebug)) {
    return false;
  }
  return true;
}

ReplayResult replay(const ReplayRequest& request) {
  validate_request(request);
  if (request.engine == ReplayEngine::kKernel) {
    PSLLC_CONFIG_CHECK(kernel_eligible(request),
                       "replay engine forced to kernel, but the request is "
                       "not kernel-eligible");
    return {run_kernel(request), true};
  }
  if (kernel_eligible(request)) {
    return {run_kernel(request), true};
  }
  return {run_legacy(request), false};
}

}  // namespace psllc::sim
