// The one replay entry point every cell-shaped run goes through.
//
// The sweep grid (run_cell), the shard protocol (cell jobs), and the corpus
// runner used to carry three near-identical "build traces, build a System,
// run, collect metrics" code paths. They now all describe the work as a
// ReplayRequest and call replay(), which routes the cell either through the
// tight struct-of-arrays replay kernel (sim/kernel.h) or through the legacy
// core::System slot loop. Both engines are required to produce bit-identical
// RunMetrics; the kernel is an optimization, never a semantic fork.
#ifndef PSLLC_SIM_REPLAY_H_
#define PSLLC_SIM_REPLAY_H_

#include <cstdint>
#include <vector>

#include "core/system_config.h"
#include "sim/runner.h"
#include "trace/mapped_trace.h"

namespace psllc::sim {

/// Which engine replays the cell.
enum class ReplayEngine : std::uint8_t {
  kAuto,    ///< kernel (parallel when cell_threads > 1) when eligible,
            ///< legacy otherwise (the default)
  kKernel,  ///< force the serial kernel (throws if not eligible)
  kLegacy,  ///< force the legacy core::System slot loop
  kParallel,  ///< force the parallel engine (throws if not eligible)
};

[[nodiscard]] constexpr const char* to_string(ReplayEngine e) {
  switch (e) {
    case ReplayEngine::kAuto: return "auto";
    case ReplayEngine::kKernel: return "kernel";
    case ReplayEngine::kLegacy: return "legacy";
    case ReplayEngine::kParallel: return "parallel";
  }
  return "?";
}

/// What each core replays. Exactly one source must be set:
///  * per_core — one trace per core (sweep cells), padded with idle cores;
///  * shared — one materialized trace replayed on cores [0, replicas) with
///    per-core address offset c * window (corpus solo/mirrored replay);
///  * shared_view — as `shared`, but decoded straight off a mapped .pslt
///    view in batches, with the offset applied at decode time (no
///    materialized copies).
/// All pointers are borrowed; they must outlive the replay() call.
struct ReplayWorkload {
  const std::vector<core::Trace>* per_core = nullptr;
  const core::Trace* shared = nullptr;
  const trace::MappedTrace* shared_view = nullptr;
  int replicas = 1;  ///< cores replaying a shared source
  Addr window = 0;   ///< per-replica address shift (0 = overlapped)
};

/// One cell of replay work: a system shape, a workload, and run options.
struct ReplayRequest {
  const core::ExperimentSetup* setup = nullptr;  ///< borrowed, required
  ReplayWorkload workload;
  RunOptions options;
  ReplayEngine engine = ReplayEngine::kAuto;
};

struct ReplayResult {
  RunMetrics metrics;
  bool used_kernel = false;  ///< which engine actually ran
};

/// True when `request` can take the kernel fast path. The kernel refuses
/// cells that need legacy-only observability: keep_request_records (record
/// ids depend on the legacy slot-by-slot presentation order) and debug/trace
/// logging (the kernel skips idle slots, so it cannot reproduce the legacy
/// per-slot log stream).
[[nodiscard]] bool kernel_eligible(const ReplayRequest& request);

/// True when `request` can take the parallel engine: the same observability
/// restrictions as kernel_eligible (the parallel engine IS the kernel, run
/// per segment), independent of the requested engine.
[[nodiscard]] bool parallel_eligible(const ReplayRequest& request);

/// Worker-thread count the parallel engine would use for `options`:
/// options.cell_threads when >= 1, otherwise the PSLLC_CELL_THREADS
/// environment variable (read once per process, default 1). Throws
/// ConfigError on a malformed or non-positive environment value.
[[nodiscard]] int effective_cell_threads(const RunOptions& options);

/// Replays the cell. Engine choice per `request.engine`; the returned
/// metrics are bit-identical between engines by contract (enforced by the
/// differential battery in tests/test_kernel.cc and the golden gates).
[[nodiscard]] ReplayResult replay(const ReplayRequest& request);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_REPLAY_H_
