// Internal shared implementation of the struct-of-arrays replay kernel.
//
// kernel.cc (the serial engine) and parallel_replay.cc (the speculative
// horizon-splitting engine) both include this header; keeping one body is
// what keeps the two engines bit-identical by construction. Everything here
// lives in psllc::sim::detail and is NOT part of the public sim API — use
// sim::replay() / sim::run_kernel() / sim::run_parallel().
//
// On top of the original single-shot run() the kernel exposes a resumable
// span interface for the parallel engine:
//  * start(options)        — fixes the horizon, resets the slot clock;
//  * run_span(stop)        — replays up to (not including) slot `stop` and
//                            settles every lane to the span boundary;
//  * finalize()            — exit determination + metric fill;
//  * snapshot()/restore()  — value-copy of all replay state at a boundary;
//  * states_equal()        — observational equality between two snapshots.
//
// Span-splitting is exact: advance_lane is a resumable monotone fold (two
// steps compose to one), settling to stop*W is a prefix of what the next
// executed slot's advance would do, and the refinement's no-overshoot bound
// guarantees no bus action or pinned transition slot below `stop` remains
// when a span returns. The only state the split perturbs is request-id
// assignment order — ids are bookkeeping handles, excluded from
// states_equal and never observable in RunMetrics.
#ifndef PSLLC_SIM_REPLAY_KERNEL_H_
#define PSLLC_SIM_REPLAY_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "bus/message.h"
#include "bus/pending_buffers.h"
#include "bus/tdm_schedule.h"
#include "common/assert.h"
#include "common/rng.h"
#include "core/request_tracker.h"
#include "core/wcl_analysis.h"
#include "llc/llc.h"
#include "mem/memory_backend.h"
#include "mem/private_cache.h"
#include "sim/replay.h"
#include "trace/mapped_trace.h"

namespace psllc::sim::detail {

constexpr std::int64_t kNoSlot = std::numeric_limits<std::int64_t>::max();

/// Records decoded per MappedTrace batch. Large enough to amortize the
/// per-batch call, small enough to stay resident in L1d (4096 * 24 B).
constexpr std::uint64_t kChunkOps = 4096;

/// First slot index whose start cycle is >= `t` (slot k spans
/// [k*W, (k+1)*W)). Messages enqueued at `t` are pick-eligible from the
/// first slot start at or after `t`.
[[nodiscard]] inline std::int64_t first_slot_at_or_after(Cycle t,
                                                         Cycle slot_width) {
  return t > 0 ? (t + slot_width - 1) / slot_width : 0;
}

/// Read cursor over one lane's op stream. Either borrows a materialized
/// trace (per-core / shared workloads, address offset applied per access)
/// or decodes .pslt records in batches straight off the mapped view into a
/// reused chunk buffer (offset applied at decode). No per-op allocation:
/// the chunk is reserved once and recycled.
class LaneCursor {
 public:
  void init_direct(const core::Trace& trace, Addr offset) {
    direct_ = trace.data();
    size_ = trace.size();
    offset_ = offset;
  }

  void init_view(const trace::MappedTrace& view, Addr offset) {
    view_ = &view;
    size_ = view.size();
    offset_ = offset;
    chunk_.reserve(static_cast<std::size_t>(std::min(size_, kChunkOps)));
  }

  [[nodiscard]] std::uint64_t size() const { return size_; }

  [[nodiscard]] core::MemOp at(std::uint64_t pc) {
    if (direct_ != nullptr) {
      core::MemOp op = direct_[pc];
      op.addr += offset_;
      return op;
    }
    if (pc < chunk_begin_ || pc >= chunk_end_) {
      refill(pc);
    }
    return chunk_[static_cast<std::size_t>(pc - chunk_begin_)];
  }

 private:
  void refill(std::uint64_t pc) {
    chunk_begin_ = pc;
    chunk_end_ = std::min(pc + kChunkOps, size_);
    chunk_.resize(static_cast<std::size_t>(chunk_end_ - chunk_begin_));
    view_->decode_batch(chunk_begin_, chunk_end_ - chunk_begin_, offset_,
                        chunk_.data());
  }

  const core::MemOp* direct_ = nullptr;
  const trace::MappedTrace* view_ = nullptr;
  Addr offset_ = 0;
  std::uint64_t size_ = 0;
  std::vector<core::MemOp> chunk_;
  std::uint64_t chunk_begin_ = 0;
  std::uint64_t chunk_end_ = 0;  ///< chunk covers [chunk_begin_, chunk_end_)
};

template <typename Backend>
class ReplayKernel {
 public:
  /// All mutable replay state at a span boundary. Copyable (the backend's
  /// copy constructor is the clone path), deliberately NOT copy-assignable
  /// (MemoryBackend deletes assignment); the parallel driver holds
  /// snapshots behind unique_ptr and copy-constructs. The embedded LLC's
  /// memory pointer is stale inside a State — restore() rebinds it.
  ///
  /// Excluded on purpose: the lane cursors (immutable trace views, refilled
  /// from `pc` on demand), `lane_size_` (workload-derived constant), and
  /// the `lb_` refinement cache (restore() invalidates it).
  struct State {
    std::vector<std::uint64_t> pc;
    std::vector<Cycle> next_ready;
    std::vector<Cycle> finish_time;
    std::vector<std::int64_t> done_slot;
    std::vector<unsigned char> gap_applied;
    std::vector<unsigned char> blocked;
    std::vector<Addr> out_addr;
    std::vector<AccessType> out_type;
    std::vector<mem::PrivateCacheHierarchy> caches;
    std::vector<bus::PendingBuffers> buffers;
    core::RequestTracker tracker;
    Backend memory;
    llc::BasicPartitionedLlc<Backend> llc;
    Cycle observed_transient_wcl = kNoCycle;
    std::int64_t cur_slot = 0;
    std::int64_t last_action_slot = -1;
  };

  explicit ReplayKernel(const core::ExperimentSetup& setup)
      : setup_(setup),
        config_(setup.config),
        schedule_(config_.make_schedule()),
        memory_(std::in_place, config_.dram),
        llc_(config_.llc, setup.program, config_.mode, config_.num_cores,
             *memory_),
        tracker_(config_.num_cores, /*keep_records=*/false) {
    config_.validate();
    llc_.program().validate(config_.num_cores);
    const int n = config_.num_cores;
    const std::size_t count = static_cast<std::size_t>(n);
    // Dense (core, phase) -> slots-until-next-owned table so the hot
    // message_slot path costs one modulo instead of TdmSchedule's
    // scan-with-modulo over the period. Every core owns at least one slot
    // per period (validated by the schedule builders), so the scan below
    // terminates within one period.
    period_ = static_cast<std::int64_t>(schedule_.slots_per_period());
    next_owned_delta_.assign(count * static_cast<std::size_t>(period_), 0);
    for (int c = 0; c < n; ++c) {
      for (std::int64_t p = 0; p < period_; ++p) {
        std::int64_t d = 0;
        while (schedule_.owner_of_slot(p + d).value != c) {
          ++d;
        }
        next_owned_delta_[static_cast<std::size_t>(c * period_ + p)] = d;
      }
    }
    cursors_.resize(count);
    pc_.assign(count, 0);
    lane_size_.assign(count, 0);
    lb_.assign(count, 0);
    lb_valid_.assign(count, 0);
    next_ready_.assign(count, 0);
    finish_time_.assign(count, 0);
    done_slot_.assign(count, 0);
    gap_applied_.assign(count, 0);
    blocked_.assign(count, 0);
    out_addr_.assign(count, 0);
    out_type_.assign(count, AccessType::kRead);
    caches_.reserve(count);
    buffers_.reserve(count);
    for (int c = 0; c < n; ++c) {
      caches_.emplace_back(
          config_.private_caches,
          mix_seed(config_.seed, static_cast<std::uint64_t>(c), 0xc04e));
      buffers_.emplace_back(config_.pwb_capacity);
    }
  }

  void set_workload(const ReplayWorkload& workload) {
    const int n = config_.num_cores;
    for (int c = 0; c < n; ++c) {
      const std::size_t l = static_cast<std::size_t>(c);
      if (workload.per_core != nullptr) {
        if (l < workload.per_core->size()) {
          cursors_[l].init_direct((*workload.per_core)[l], 0);
        }
      } else if (c < workload.replicas) {
        const Addr offset = workload.window * static_cast<Addr>(c);
        if (workload.shared != nullptr) {
          cursors_[l].init_direct(*workload.shared, offset);
        } else {
          cursors_[l].init_view(*workload.shared_view, offset);
        }
      }
      lane_size_[l] = cursors_[l].size();
      // An empty lane is trace-done from cycle 0: the legacy loop observes
      // it before slot 0, so its contribution to the exit slot is 0.
      done_slot_[l] = 0;
    }
  }

  /// Installs only `lane`'s trace (every other lane idles). Used by the
  /// parallel engine's solo pre-pass for compose-eligible workloads. The
  /// tracker gets a per-lane id namespace so composed states never hold two
  /// in-flight records with the same id.
  void set_workload_solo(const ReplayWorkload& workload, int lane) {
    PSLLC_ASSERT(workload.per_core != nullptr,
                 "solo replay needs a per-core workload");
    const int n = config_.num_cores;
    for (int c = 0; c < n; ++c) {
      const std::size_t l = static_cast<std::size_t>(c);
      if (c == lane && l < workload.per_core->size()) {
        cursors_[l].init_direct((*workload.per_core)[l], 0);
      }
      lane_size_[l] = cursors_[l].size();
      done_slot_[l] = 0;
    }
    tracker_.set_id_base(1 +
                         ((static_cast<std::uint64_t>(lane) + 1) << 32));
  }

  /// Fixes the replay horizon and resets the slot clock to 0.
  void start(const RunOptions& options) {
    const Cycle W = config_.slot_width;
    horizon_ = options.max_cycles > 0 ? (options.max_cycles + W - 1) / W : 0;
    // Deepest run_until limit the legacy loop ever issues: the start of
    // the last slot inside the horizon. Lanes must never run past it.
    deepest_ = horizon_ > 0 ? (horizon_ - 1) * W : 0;
    cur_slot_ = 0;
    last_action_slot_ = -1;
  }

  [[nodiscard]] std::int64_t horizon() const { return horizon_; }

  /// Single-shot serial replay — the original kernel entry point.
  RunMetrics run(const RunOptions& options) {
    start(options);
    run_span(horizon_);
    return finalize();
  }

  /// Replays every slot below `stop` (<= horizon), then settles all lanes
  /// to the span boundary: stop*W for an interior boundary, the legacy
  /// loop's deepest limit for the final span. Resumable: successive calls
  /// with increasing stops produce the same state as one call with the
  /// last stop — advance_lane is a resumable monotone fold, and the
  /// refinement invariant guarantees no action below a returned span's
  /// `stop` is ever discovered later.
  void run_span(std::int64_t stop) {
    PSLLC_ASSERT(stop <= horizon_, "span stop " << stop << " beyond horizon "
                                                << horizon_);
    if (horizon_ == 0) {
      return;
    }
    const Cycle W = config_.slot_width;
    const int n = config_.num_cores;
    const Cycle settle = stop >= horizon_ ? deepest_ : stop * W;
    for (;;) {
      // 0. Partition-mode transitions pin slots the idle-skip must not
      //    jump: while a transition drains, every slot pumps it (legacy
      //    executes every slot), and the first slot at or after the next
      //    trigger epoch is where the mode switch fires. `fslot` is the
      //    earliest such pinned slot (kNoSlot for static programs).
      std::int64_t fslot = kNoSlot;
      if (llc_.transition_active()) {
        fslot = cur_slot_;
      } else {
        const Cycle epoch = llc_.next_transition_epoch();
        if (epoch != kNoCycle) {
          fslot = std::max(cur_slot_, first_slot_at_or_after(epoch, W));
        }
      }
      // 1. Earliest slot in which an already-buffered PRB/PWB message is
      //    pick-eligible (exact: enqueue times and slot ownership are
      //    both known).
      std::int64_t action = kNoSlot;
      for (int l = 0; l < n; ++l) {
        const bus::PendingBuffers& buf = buffers_[static_cast<std::size_t>(l)];
        const bool has_request = buf.has_request();
        const bool has_writeback = buf.has_writeback();
        if (!has_request && !has_writeback) {
          continue;
        }
        Cycle earliest = std::numeric_limits<Cycle>::max();
        if (has_request) {
          earliest = buf.request().enqueued_at;
        }
        if (has_writeback) {
          earliest = std::min(earliest, buf.front_writeback().enqueued_at);
        }
        action = std::min(action, message_slot(l, earliest, cur_slot_));
      }
      // 2. Refinement: a still-running lane could enqueue a miss that
      //    lands in an earlier slot than `action`. Run the lane with the
      //    smallest possible miss slot forward — never past the runner-up
      //    bound, so no lane ever overshoots the slot that ends up being
      //    executed — until every unblocked lane provably cannot act
      //    before `action` (or the span boundary).
      for (;;) {
        // Lanes must never run past a pinned transition slot either: its
        // back-invalidations may evict private lines the lane would
        // otherwise keep hitting.
        const std::int64_t bound = std::min(std::min(action, stop), fslot);
        std::int64_t best = kNoSlot;
        std::int64_t second = kNoSlot;
        int best_lane = -1;
        for (int l = 0; l < n; ++l) {
          const std::size_t s = static_cast<std::size_t>(l);
          if (blocked_[s] != 0 || pc_[s] >= lane_size_[s]) {
            continue;
          }
          // A cached bound stays exact until the lane's replay state
          // mutates (advance_lane/respond clear lb_valid_) or cur_slot
          // overtakes it: for cur' >= cur with lb >= cur', no slot of the
          // lane exists in [cur, lb), hence none in [cur', lb) either.
          if (lb_valid_[s] == 0 || lb_[s] < cur_slot_) {
            lb_[s] = lower_bound_slot(l, cur_slot_);
            lb_valid_[s] = 1;
          }
          const std::int64_t slot = lb_[s];
          if (slot < best) {
            second = best;
            best = slot;
            best_lane = l;
          } else if (slot < second) {
            second = slot;
          }
        }
        if (best_lane < 0 || best >= bound) {
          break;
        }
        const std::int64_t limit_slot = std::min(bound, second);
        const Cycle limit = limit_slot >= stop ? settle : limit_slot * W;
        advance_lane(best_lane, limit);
        if (blocked_[static_cast<std::size_t>(best_lane)] != 0) {
          const Cycle enq = buffers_[static_cast<std::size_t>(best_lane)]
                                .request()
                                .enqueued_at;
          action = std::min(action, message_slot(best_lane, enq, cur_slot_));
        }
      }
      if (std::min(action, fslot) >= stop) {
        break;
      }
      if (fslot < action) {
        // 2b. A pinned transition slot precedes the next bus action.
        // Execute it only if the legacy loop would still be running
        // there: advance lanes to its boundary (exactly what
        // execute_slot would do) and replicate the `while (!all_done())`
        // exit — traces finished and buffers drained earlier means
        // legacy stopped before the trigger, mid-schedule or even
        // mid-drain, and so must we.
        const Cycle fstart = schedule_.slot_start(fslot);
        for (int l = 0; l < n; ++l) {
          advance_lane(l, fstart);
        }
        bool running = false;
        std::int64_t exit_slot = last_action_slot_ + 1;
        for (int l = 0; l < n && !running; ++l) {
          const std::size_t s = static_cast<std::size_t>(l);
          if (blocked_[s] != 0 || pc_[s] < lane_size_[s] ||
              buffers_[s].has_request() || buffers_[s].has_writeback()) {
            running = true;
          } else {
            exit_slot = std::max(exit_slot, done_slot_[s]);
          }
        }
        if (!running && exit_slot <= fslot) {
          break;
        }
        execute_slot(fslot);
        last_action_slot_ = fslot;
        cur_slot_ = fslot + 1;
        continue;
      }
      // 3. Execute the action slot exactly like System::step_slot.
      execute_slot(action);
      last_action_slot_ = action;
      cur_slot_ = action + 1;
    }
    // Settle: finish the remaining local work up to the span boundary (a
    // lane may still block here; its request lands beyond the boundary).
    // For the final span this is the legacy loop's deepest limit; for an
    // interior boundary it is a prefix of the advance the next span's
    // first executed slot would perform anyway.
    for (int l = 0; l < n; ++l) {
      advance_lane(l, settle);
    }
  }

  /// Exit determination + metric fill, replicating the legacy `while
  /// (!all_done() && now_ < max_cycles)` loop: all_done first becomes
  /// observable at the slot boundary after the last lane finished / last
  /// message drained.
  [[nodiscard]] RunMetrics finalize() const {
    const Cycle W = config_.slot_width;
    const int n = config_.num_cores;
    bool drained = true;
    std::int64_t exit_slot = last_action_slot_ + 1;
    for (int l = 0; l < n && drained; ++l) {
      const std::size_t s = static_cast<std::size_t>(l);
      if (blocked_[s] != 0 || pc_[s] < lane_size_[s] ||
          buffers_[s].has_request() || buffers_[s].has_writeback()) {
        drained = false;
      } else {
        exit_slot = std::max(exit_slot, done_slot_[s]);
      }
    }
    const bool completed = drained && exit_slot <= horizon_;
    const Cycle end_cycle = completed ? exit_slot * W : horizon_ * W;
    return fill_metrics(completed, end_cycle);
  }

  [[nodiscard]] State snapshot() const {
    return State{pc_,
                 next_ready_,
                 finish_time_,
                 done_slot_,
                 gap_applied_,
                 blocked_,
                 out_addr_,
                 out_type_,
                 caches_,
                 buffers_,
                 tracker_,
                 *memory_,
                 llc_,
                 observed_transient_wcl_,
                 cur_slot_,
                 last_action_slot_};
  }

  void restore(const State& s) {
    pc_ = s.pc;
    next_ready_ = s.next_ready;
    finish_time_ = s.finish_time;
    done_slot_ = s.done_slot;
    gap_applied_ = s.gap_applied;
    blocked_ = s.blocked;
    out_addr_ = s.out_addr;
    out_type_ = s.out_type;
    caches_ = s.caches;
    buffers_ = s.buffers;
    tracker_ = s.tracker;
    // The backend deletes copy assignment; re-emplace and repoint the LLC
    // at the fresh copy (the snapshot's embedded pointer is stale).
    memory_.emplace(s.memory);
    llc_ = s.llc;
    llc_.rebind_memory(*memory_);
    observed_transient_wcl_ = s.observed_transient_wcl;
    cur_slot_ = s.cur_slot;
    last_action_slot_ = s.last_action_slot;
    std::fill(lb_valid_.begin(), lb_valid_.end(), 0);
  }

  /// Observational equality between two snapshots: everything that can
  /// influence future replay behavior or final metrics. Request ids (and
  /// the tracker's id counter) are excluded — they are handles, unique
  /// within a kernel, and never surface in RunMetrics.
  [[nodiscard]] static bool states_equal(const State& a, const State& b) {
    if (a.pc != b.pc || a.next_ready != b.next_ready ||
        a.finish_time != b.finish_time || a.done_slot != b.done_slot ||
        a.gap_applied != b.gap_applied || a.blocked != b.blocked ||
        a.out_addr != b.out_addr || a.out_type != b.out_type ||
        a.observed_transient_wcl != b.observed_transient_wcl ||
        a.cur_slot != b.cur_slot ||
        a.last_action_slot != b.last_action_slot ||
        a.caches.size() != b.caches.size() ||
        a.buffers.size() != b.buffers.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.caches.size(); ++i) {
      if (!a.caches[i].same_state(b.caches[i])) {
        return false;
      }
    }
    for (std::size_t i = 0; i < a.buffers.size(); ++i) {
      if (!a.buffers[i].same_state(b.buffers[i])) {
        return false;
      }
    }
    return a.tracker.same_state(b.tracker) && a.memory.same_state(b.memory) &&
           a.llc.same_state(b.llc);
  }

  [[nodiscard]] const core::ExperimentSetup& setup() const { return setup_; }
  [[nodiscard]] const core::SystemConfig& config() const { return config_; }

 private:
  /// First slot >= cur_slot owned by lane `l` whose start is at or after
  /// `enqueued_at` — the exact slot in which the message becomes
  /// pick-eligible.
  [[nodiscard]] std::int64_t message_slot(int l, Cycle enqueued_at,
                                          std::int64_t cur_slot) const {
    const std::int64_t from =
        std::max(cur_slot,
                 first_slot_at_or_after(enqueued_at, config_.slot_width));
    return from + next_owned_delta_[static_cast<std::size_t>(
                      l * period_ + from % period_)];
  }

  /// Lower bound on the slot in which lane `l`'s *next* LLC request could
  /// be presented: even if the very next op misses, its request is enqueued
  /// no earlier than next_ready + pending gap + L1 + L2 tag walks, and
  /// every hit in between only pushes that later.
  [[nodiscard]] std::int64_t lower_bound_slot(int l, std::int64_t cur_slot) {
    const std::size_t s = static_cast<std::size_t>(l);
    const core::MemOp op = cursors_[s].at(pc_[s]);
    const Cycle gap = gap_applied_[s] != 0 ? 0 : op.gap;
    const Cycle earliest_issue = next_ready_[s] + gap +
                                 config_.private_caches.l1_hit_latency +
                                 config_.private_caches.l2_hit_latency;
    return message_slot(l, earliest_issue, cur_slot);
  }

  /// TraceCore::run_until on flat lane state.
  void advance_lane(int l, Cycle limit) {
    const std::size_t s = static_cast<std::size_t>(l);
    if (blocked_[s] != 0) {
      return;
    }
    const Cycle l1_latency = config_.private_caches.l1_hit_latency;
    const Cycle l2_latency = config_.private_caches.l2_hit_latency;
    const std::uint64_t size = lane_size_[s];
    LaneCursor& cursor = cursors_[s];
    mem::PrivateCacheHierarchy& caches = caches_[s];
    std::uint64_t pc = pc_[s];
    Cycle next_ready = next_ready_[s];
    const std::uint64_t entry_pc = pc;
    const Cycle entry_next_ready = next_ready;
    const unsigned char entry_gap_applied = gap_applied_[s];
    while (pc < size) {
      const core::MemOp op = cursor.at(pc);
      if (gap_applied_[s] == 0) {
        next_ready += op.gap;
        gap_applied_[s] = 1;
      }
      if (next_ready >= limit) {
        break;  // nothing more can start before the slot boundary
      }
      const Cycle start = next_ready;
      const mem::HitLevel level = caches.access(op.addr, op.type);
      if (level == mem::HitLevel::kL1) {
        next_ready += l1_latency;
      } else if (level == mem::HitLevel::kL2) {
        next_ready += l1_latency + l2_latency;
      } else {
        const Cycle issue = next_ready + l1_latency + l2_latency;
        const LineAddr line = config_.private_caches.l2.line_of(op.addr);
        const std::uint64_t id =
            tracker_.begin(CoreId{l}, line, op.type, issue);
        bus::BusMessage msg;
        msg.kind = bus::MessageKind::kRequest;
        msg.source = CoreId{l};
        msg.line = line;
        msg.access = op.type;
        msg.request_id = id;
        msg.enqueued_at = issue;
        buffers_[s].set_request(msg);
        out_addr_[s] = op.addr;
        out_type_[s] = op.type;
        blocked_[s] = 1;
        break;
      }
      ++pc;
      gap_applied_[s] = 0;
      if (pc == size) {
        finish_time_[s] = next_ready;
        // The legacy loop consumes this op while executing the slot that
        // contains `start`, so all_done is first observable one slot after
        // that one.
        done_slot_[s] = start / config_.slot_width + 2;
      }
    }
    pc_[s] = pc;
    next_ready_[s] = next_ready;
    if (pc != entry_pc || next_ready != entry_next_ready ||
        gap_applied_[s] != entry_gap_applied) {
      lb_valid_[s] = 0;
    }
  }

  /// System::step_slot for the one slot `slot` (which carries an action).
  void execute_slot(std::int64_t slot) {
    const Cycle slot_start = schedule_.slot_start(slot);
    const int n = config_.num_cores;
    for (int l = 0; l < n; ++l) {
      advance_lane(l, slot_start);
    }
    // Mirror of System::step_slot step 1b: fire/pump mode transitions at
    // the slot boundary before the owner pick.
    for (const auto& binval : llc_.advance_transition(slot_start)) {
      deliver_back_invalidation(binval, slot_start);
    }
    const CoreId owner = schedule_.owner_of_slot(slot);
    const std::size_t o = static_cast<std::size_t>(owner.value);
    switch (buffers_[o].pick(slot_start)) {
      case bus::PendingBuffers::Pick::kNone:
        break;
      case bus::PendingBuffers::Pick::kRequest: {
        const bus::BusMessage& msg = buffers_[o].request();
        const std::uint64_t request_id = msg.request_id;
        const LineAddr line = msg.line;
        tracker_.on_presented(request_id, slot_start);
        const llc::RequestOutcome outcome =
            llc_.handle_request(owner, line, slot_start, msg.access);
        if (outcome.back_invalidation) {
          deliver_back_invalidation(*outcome.back_invalidation, slot_start);
        }
        if (outcome.completed()) {
          const Cycle completion = slot_start + config_.slot_width;
          bool recovered_dirty = false;
          if (const auto cancelled = buffers_[o].cancel_writeback(line)) {
            recovered_dirty = cancelled->carries_dirty_data;
          }
          const std::optional<mem::Evicted> victim =
              respond(owner.value, slot, completion, recovered_dirty);
          const Cycle first_presented =
              tracker_.inflight(owner).first_presented;
          if (llc_.overlaps_transition(first_presented, completion)) {
            const Cycle latency = completion - first_presented;
            if (observed_transient_wcl_ == kNoCycle ||
                latency > observed_transient_wcl_) {
              observed_transient_wcl_ = latency;
            }
          }
          tracker_.on_completed(request_id, completion);
          if (victim) {
            handle_private_victim(owner, *victim, completion);
          }
        }
        break;
      }
      case bus::PendingBuffers::Pick::kWriteBack: {
        const bus::BusMessage msg = buffers_[o].pop_writeback();
        tracker_.on_writeback_sent(owner);
        (void)llc_.handle_writeback(owner, msg.line, msg.carries_dirty_data,
                                    msg.frees_llc_entry, slot_start);
        break;
      }
    }
  }

  /// TraceCore::on_response on flat lane state; `slot` is the serving slot.
  std::optional<mem::Evicted> respond(int l, std::int64_t slot,
                                      Cycle completion, bool recovered_dirty) {
    const std::size_t s = static_cast<std::size_t>(l);
    PSLLC_ASSERT(blocked_[s] != 0,
                 "lane " << l << " got a response without a request");
    const bool write = is_write(out_type_[s]) || recovered_dirty;
    std::optional<mem::Evicted> victim =
        caches_[s].fill(out_addr_[s], out_type_[s], write);
    blocked_[s] = 0;
    buffers_[s].clear_request();
    next_ready_[s] = completion;
    ++pc_[s];
    gap_applied_[s] = 0;
    lb_valid_[s] = 0;
    if (pc_[s] == lane_size_[s]) {
      finish_time_[s] = completion;
      done_slot_[s] = slot + 1;
    }
    return victim;
  }

  /// System::deliver_back_invalidation on flat lane state.
  void deliver_back_invalidation(const llc::BackInvalidation& binval,
                                 Cycle slot_start) {
    for (CoreId owner : binval.owners) {
      const std::size_t o = static_cast<std::size_t>(owner.value);
      const mem::ForcedEviction evicted = caches_[o].force_evict(binval.line);
      if (evicted.was_present) {
        PSLLC_ASSERT(!buffers_[o].has_writeback_for(binval.line),
                     "core holds line 0x" << std::hex << binval.line
                                          << " while its write-back is queued");
        if (evicted.was_dirty || config_.llc.clean_back_inval_costs_slot) {
          bus::BusMessage wb;
          wb.kind = bus::MessageKind::kWriteBack;
          wb.source = owner;
          wb.line = binval.line;
          wb.carries_dirty_data = evicted.was_dirty;
          wb.frees_llc_entry = true;
          wb.enqueued_at = slot_start;
          buffers_[o].push_writeback(wb);
        } else {
          (void)llc_.ack_back_invalidation_silent(owner, binval.line,
                                                  slot_start);
        }
      } else if (buffers_[o].has_writeback_for(binval.line)) {
        const bool upgraded =
            buffers_[o].upgrade_writeback_to_forced(binval.line);
        PSLLC_ASSERT(upgraded, "upgrade failed despite queued write-back");
      } else {
        PSLLC_ASSERT(false, "directory lists " << to_string(owner)
                                               << " for line 0x" << std::hex
                                               << binval.line
                                               << " but the core has neither "
                                                  "the line nor a write-back");
      }
    }
  }

  /// System::handle_private_victim on flat lane state.
  void handle_private_victim(CoreId owner, const mem::Evicted& victim,
                             Cycle completion) {
    if (victim.dirty) {
      bus::BusMessage wb;
      wb.kind = bus::MessageKind::kWriteBack;
      wb.source = owner;
      wb.line = victim.line;
      wb.carries_dirty_data = true;
      wb.frees_llc_entry = false;
      wb.enqueued_at = completion;
      buffers_[static_cast<std::size_t>(owner.value)].push_writeback(wb);
    } else {
      llc_.notify_silent_eviction(owner, victim.line);
    }
  }

  /// run_system's metric fill, field for field.
  [[nodiscard]] RunMetrics fill_metrics(bool completed, Cycle end_cycle) const {
    RunMetrics metrics;
    metrics.completed = completed;
    metrics.end_cycle = end_cycle;
    metrics.analytical_wcl = core::analytical_wcl_cycles(setup_, CoreId{0});
    metrics.transient_analytical_wcl =
        core::transient_wcl_cycles(setup_, CoreId{0});
    metrics.observed_transient_wcl = observed_transient_wcl_;
    metrics.llc_requests = tracker_.completed_requests();
    metrics.observed_wcl =
        tracker_.completed_requests() > 0 ? tracker_.max_service_latency() : 0;
    const int n = config_.num_cores;
    metrics.per_core_finish.reserve(static_cast<std::size_t>(n));
    Cycle makespan = 0;
    for (int l = 0; l < n; ++l) {
      const std::size_t s = static_cast<std::size_t>(l);
      const bool trace_done = blocked_[s] == 0 && pc_[s] >= lane_size_[s];
      metrics.per_core_finish.push_back(trace_done ? finish_time_[s]
                                                   : kNoCycle);
      metrics.per_core_l1_hits.push_back(caches_[s].l1_hits());
      metrics.per_core_l2_hits.push_back(caches_[s].l2_hits());
      metrics.per_core_misses.push_back(caches_[s].misses());
      makespan = std::max(makespan, finish_time_[s]);
    }
    if (completed) {
      metrics.makespan = makespan;
    }
    metrics.llc_stats = llc_.stats();
    metrics.memory = memory_->counters();
    metrics.dram_reads = metrics.memory.reads;
    metrics.dram_writes = metrics.memory.writes;
    return metrics;
  }

  const core::ExperimentSetup& setup_;
  const core::SystemConfig& config_;
  bus::TdmSchedule schedule_;
  /// Held in an optional so restore() can re-emplace: the backend models
  /// delete copy assignment (clone-by-copy-construction only).
  std::optional<Backend> memory_;
  llc::BasicPartitionedLlc<Backend> llc_;
  core::RequestTracker tracker_;
  Cycle observed_transient_wcl_ = kNoCycle;

  // Span bookkeeping (fixed by start(), advanced by run_span()).
  std::int64_t horizon_ = 0;
  Cycle deepest_ = 0;
  std::int64_t cur_slot_ = 0;
  std::int64_t last_action_slot_ = -1;

  // Hot-path TDM geometry: delta to the next slot owned by a core, indexed
  // by core * period + (slot % period). Built once in the constructor.
  std::int64_t period_ = 0;
  std::vector<std::int64_t> next_owned_delta_;

  // Struct-of-arrays lane state (one entry per core).
  std::vector<LaneCursor> cursors_;
  std::vector<std::uint64_t> pc_;
  std::vector<std::uint64_t> lane_size_;
  std::vector<std::int64_t> lb_;  ///< cached lower_bound_slot per lane
  std::vector<unsigned char> lb_valid_;
  std::vector<Cycle> next_ready_;
  std::vector<Cycle> finish_time_;
  std::vector<std::int64_t> done_slot_;  ///< slot where all_done sees the lane
  std::vector<unsigned char> gap_applied_;
  std::vector<unsigned char> blocked_;
  std::vector<Addr> out_addr_;          ///< outstanding request address
  std::vector<AccessType> out_type_;    ///< outstanding request access type
  std::vector<mem::PrivateCacheHierarchy> caches_;
  std::vector<bus::PendingBuffers> buffers_;
};

}  // namespace psllc::sim::detail

#endif  // PSLLC_SIM_REPLAY_KERNEL_H_
