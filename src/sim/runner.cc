#include "sim/runner.h"

#include "common/assert.h"
#include "core/wcl_analysis.h"
#include "sim/replay.h"

namespace psllc::sim {

RunMetrics run_experiment(const core::ExperimentSetup& setup,
                          const std::vector<core::Trace>& traces,
                          const RunOptions& options) {
  ReplayRequest request;
  request.setup = &setup;
  request.workload.per_core = &traces;
  request.options = options;
  return replay(request).metrics;
}

RunMetrics run_system(core::System& system,
                      const core::ExperimentSetup& setup,
                      const RunOptions& options) {
  const core::RunResult result = system.run(options.max_cycles);

  RunMetrics metrics;
  metrics.completed = result.all_done;
  metrics.end_cycle = result.end_cycle;
  metrics.analytical_wcl = core::analytical_wcl_cycles(setup, CoreId{0});
  metrics.transient_analytical_wcl =
      core::transient_wcl_cycles(setup, CoreId{0});
  metrics.observed_transient_wcl = system.observed_transient_wcl();
  const core::RequestTracker& tracker = system.tracker();
  metrics.llc_requests = tracker.completed_requests();
  metrics.observed_wcl =
      tracker.completed_requests() > 0 ? tracker.max_service_latency() : 0;
  const int cores = system.config().num_cores;
  metrics.per_core_finish.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    const core::TraceCore& core_ref = system.core(CoreId{c});
    metrics.per_core_finish.push_back(
        core_ref.trace_done() ? core_ref.finish_time() : kNoCycle);
    metrics.per_core_l1_hits.push_back(core_ref.caches().l1_hits());
    metrics.per_core_l2_hits.push_back(core_ref.caches().l2_hits());
    metrics.per_core_misses.push_back(core_ref.caches().misses());
  }
  if (metrics.completed) {
    metrics.makespan = system.makespan();
  }
  metrics.llc_stats = system.llc().stats();
  metrics.memory = system.memory().counters();
  metrics.dram_reads = metrics.memory.reads;
  metrics.dram_writes = metrics.memory.writes;
  return metrics;
}

}  // namespace psllc::sim
