// One-shot experiment runner: builds a System from an ExperimentSetup,
// installs traces, runs to completion, and gathers the metrics the paper's
// evaluation reports.
#ifndef PSLLC_SIM_RUNNER_H_
#define PSLLC_SIM_RUNNER_H_

#include <cstdint>
#include <vector>

#include "core/system.h"
#include "core/system_config.h"
#include "mem/memory_backend.h"

namespace psllc::sim {

struct RunMetrics {
  bool completed = false;   ///< all traces finished within the horizon
  Cycle end_cycle = 0;      ///< simulated time consumed
  Cycle makespan = 0;       ///< max per-core trace finish time (Figure 8)
  Cycle observed_wcl = 0;   ///< max service latency over all requests (Fig 7)
  Cycle analytical_wcl = 0; ///< bound from core/wcl_analysis for core 0
  /// Max service latency over requests in flight across a partition-mode
  /// transition window; kNoCycle when none overlapped (always for static
  /// programs).
  Cycle observed_transient_wcl = kNoCycle;
  /// Transient bound (core/wcl_analysis transient_wcl_cycles) for core 0;
  /// equals analytical_wcl for static programs.
  Cycle transient_analytical_wcl = 0;
  std::int64_t llc_requests = 0;  ///< completed LLC requests
  std::vector<Cycle> per_core_finish;
  std::vector<std::int64_t> per_core_l1_hits;
  std::vector<std::int64_t> per_core_l2_hits;
  std::vector<std::int64_t> per_core_misses;
  llc::PartitionedLlc::Stats llc_stats;
  /// Full counter set of the memory backend (row hits/misses, write-queue
  /// depth/stalls, worst observed access latency, ...).
  mem::MemoryCounters memory;
  std::int64_t dram_reads = 0;   ///< == memory.reads
  std::int64_t dram_writes = 0;  ///< == memory.writes
  // --- parallel replay diagnostics (0 for the serial engines) ---
  /// Horizon segments the parallel engine split the run into.
  std::int64_t parallel_segments = 0;
  /// Segment re-executions the reconciliation sweep needed beyond the first
  /// pass (0 when every speculative boundary guess was exact).
  std::int64_t parallel_reexecutions = 0;
};

struct RunOptions {
  /// Safety horizon; a run that does not finish within it reports
  /// completed == false (used deliberately by the unbounded scenario).
  Cycle max_cycles = 2'000'000'000;
  /// Worker threads for the parallel replay engine. 0 (the default) defers
  /// to the PSLLC_CELL_THREADS environment variable (itself defaulting to
  /// 1); >= 1 is an explicit count. 1 replays serially. Only consulted when
  /// the engine is kAuto or kParallel — kKernel/kLegacy always run serial,
  /// so forced-engine timings stay comparable.
  int cell_threads = 0;
};

/// Runs `traces` (one per core, padded with empty traces) built from
/// `setup`. Thin wrapper over sim::replay() with a per-core workload and
/// automatic engine choice — takes the replay kernel when eligible, the
/// legacy System loop otherwise (see sim/replay.h).
[[nodiscard]] RunMetrics run_experiment(const core::ExperimentSetup& setup,
                                        const std::vector<core::Trace>& traces,
                                        const RunOptions& options = {});

/// As above, but against an already-constructed system (traces installed by
/// the caller); `analytical_wcl` is filled from `setup`.
[[nodiscard]] RunMetrics run_system(core::System& system,
                                    const core::ExperimentSetup& setup,
                                    const RunOptions& options = {});

}  // namespace psllc::sim

#endif  // PSLLC_SIM_RUNNER_H_
