#include "sim/shard.h"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"

namespace psllc::sim {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string content_id(std::string_view key) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::uint64_t hash = fnv1a64(key);
  std::string id(16, '0');
  for (int nibble = 0; nibble < 16; ++nibble) {
    id[static_cast<std::size_t>(nibble)] =
        kHex[(hash >> (60 - 4 * nibble)) & 0xF];
  }
  return id;
}

void ShardSpec::validate() const {
  PSLLC_CONFIG_CHECK(count >= 1, "shard count must be >= 1, got " << count);
  PSLLC_CONFIG_CHECK(index >= 0 && index < count,
                     "shard index " << index << " out of range [0, " << count
                                    << ")");
}

bool ShardSpec::owns(std::size_t ordinal) const {
  return static_cast<int>(ordinal % static_cast<std::size_t>(count)) == index;
}

std::string WorkUnit::label() const {
  return cell.empty() ? bench : bench + ":" + cell;
}

namespace {

/// '|' separates key fields, so embedded separators must be escaped for
/// the content address to be injective ("a|b"+"c" must not collide with
/// "a"+"b|c").
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '|' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

}  // namespace

ShardPlan::ShardPlan(std::string grid,
                     std::vector<std::pair<std::string, std::string>> params,
                     int shard_count)
    : grid_(std::move(grid)),
      params_(std::move(params)),
      shard_count_(shard_count) {
  PSLLC_CONFIG_CHECK(!grid_.empty(), "shard plan needs a grid name");
  PSLLC_CONFIG_CHECK(shard_count_ >= 1,
                     "shard plan needs shard_count >= 1, got "
                         << shard_count_);
  append_escaped(key_prefix_, grid_);
  key_prefix_.push_back('|');
  for (const auto& [key, value] : params_) {
    append_escaped(key_prefix_, key);
    key_prefix_.push_back('=');
    append_escaped(key_prefix_, value);
    key_prefix_.push_back('|');
  }
}

std::size_t ShardPlan::add_unit(const std::string& bench,
                                const std::string& cell) {
  PSLLC_CONFIG_CHECK(!bench.empty(), "work unit needs a bench name");
  std::string key = key_prefix_;
  append_escaped(key, bench);
  key.push_back('|');
  append_escaped(key, cell);
  WorkUnit unit{content_id(key), bench, cell};
  PSLLC_CONFIG_CHECK(unit_ids_.insert(unit.id).second,
                     "duplicate work unit " << unit.label() << " (id "
                                            << unit.id << ")");
  units_.push_back(std::move(unit));
  return units_.size() - 1;
}

int ShardPlan::shard_of(std::size_t ordinal) const {
  PSLLC_ASSERT(ordinal < units_.size(),
               "unit ordinal " << ordinal << " out of range");
  return static_cast<int>(ordinal % static_cast<std::size_t>(shard_count_));
}

std::vector<std::size_t> ShardPlan::owned_ordinals(
    const ShardSpec& spec) const {
  spec.validate();
  PSLLC_CONFIG_CHECK(spec.count == shard_count_,
                     "shard spec has count " << spec.count
                                             << " but the plan was built for "
                                             << shard_count_ << " shards");
  std::vector<std::size_t> owned;
  for (std::size_t ordinal = 0; ordinal < units_.size(); ++ordinal) {
    if (spec.owns(ordinal)) {
      owned.push_back(ordinal);
    }
  }
  return owned;
}

std::string ShardPlan::content_hash() const {
  std::string key = key_prefix_;
  key += "shards=" + std::to_string(shard_count_);
  for (const WorkUnit& unit : units_) {
    key.push_back('|');
    key += unit.id;
  }
  return content_id(key);
}

results::Json ShardPlan::to_json() const {
  results::Json json = results::Json::make_object();
  json.set("schema_version", results::Json::make_int(1));
  json.set("kind", results::Json::make_string("psllc-shard-manifest"));
  json.set("grid", results::Json::make_string(grid_));
  results::Json params = results::Json::make_object();
  for (const auto& [key, value] : params_) {
    params.set(key, results::Json::make_string(value));
  }
  json.set("params", std::move(params));
  json.set("shard_count", results::Json::make_int(shard_count_));
  json.set("content_hash", results::Json::make_string(content_hash()));
  results::Json units = results::Json::make_array();
  for (std::size_t ordinal = 0; ordinal < units_.size(); ++ordinal) {
    const WorkUnit& unit = units_[ordinal];
    results::Json u = results::Json::make_object();
    u.set("id", results::Json::make_string(unit.id));
    u.set("bench", results::Json::make_string(unit.bench));
    u.set("cell", results::Json::make_string(unit.cell));
    u.set("shard", results::Json::make_int(shard_of(ordinal)));
    units.push_back(std::move(u));
  }
  json.set("units", std::move(units));
  return json;
}

ShardPlan ShardPlan::from_json(const results::Json& json) {
  PSLLC_CONFIG_CHECK(json.at("schema_version").as_int() == 1,
                     "unsupported shard manifest schema version "
                         << json.at("schema_version").as_int());
  PSLLC_CONFIG_CHECK(json.at("kind").as_string() == "psllc-shard-manifest",
                     "not a shard manifest (kind '"
                         << json.at("kind").as_string() << "')");
  std::vector<std::pair<std::string, std::string>> params;
  for (const auto& [key, value] : json.at("params").members()) {
    params.emplace_back(key, value.as_string());
  }
  ShardPlan plan(json.at("grid").as_string(), std::move(params),
                 static_cast<int>(json.at("shard_count").as_int()));
  for (const results::Json& u : json.at("units").as_array()) {
    const std::size_t ordinal =
        plan.add_unit(u.at("bench").as_string(), u.at("cell").as_string());
    // IDs are recomputed from content, so a manifest edited by hand (or
    // from a different build of the planner) is rejected instead of
    // silently re-addressed.
    PSLLC_CONFIG_CHECK(
        plan.units_[ordinal].id == u.at("id").as_string(),
        "shard manifest unit " << plan.units_[ordinal].label()
                               << ": stored id " << u.at("id").as_string()
                               << " does not match recomputed id "
                               << plan.units_[ordinal].id);
    PSLLC_CONFIG_CHECK(plan.shard_of(ordinal) ==
                           static_cast<int>(u.at("shard").as_int()),
                       "shard manifest unit "
                           << plan.units_[ordinal].label()
                           << ": stored shard assignment disagrees with "
                              "round-robin ordinal assignment");
  }
  PSLLC_CONFIG_CHECK(
      plan.content_hash() == json.at("content_hash").as_string(),
      "shard manifest content hash mismatch (stored "
          << json.at("content_hash").as_string() << ", recomputed "
          << plan.content_hash() << ")");
  return plan;
}

void ShardPlan::write(const std::filesystem::path& path) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  // Temp-then-rename keeps the manifest atomic: shards launched in
  // parallel write byte-identical content, and a reader never sees a
  // partially written file. The temp name must be unique per writer
  // (pid + counter) — a shared temp path would let two concurrent shards
  // truncate each other mid-write.
  static std::atomic<unsigned> write_serial{0};
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(write_serial.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open " + tmp.string() +
                               " for writing");
    }
    out << to_json().dump();
    out.flush();
    if (!out) {
      throw std::runtime_error("write failed for " + tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

ShardPlan ShardPlan::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open shard manifest " + path.string());
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return from_json(results::Json::parse(oss.str()));
}

void ShardPlan::write_or_verify(const std::filesystem::path& path) const {
  if (!std::filesystem::exists(path)) {
    write(path);
    return;
  }
  const ShardPlan existing = load(path);
  PSLLC_CONFIG_CHECK(
      existing.content_hash() == content_hash(),
      "manifest " << path.string()
                  << " describes a different grid (content hash "
                  << existing.content_hash() << ", this run computes "
                  << content_hash()
                  << "); delete it or fix the run flags");
}

}  // namespace psllc::sim
