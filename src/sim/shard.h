// Work-unit protocol for sharding a sweep/corpus grid across processes
// (and machines). A ShardPlan deterministically enumerates the grid into
// WorkUnits with stable, content-addressed IDs: every shard of a run
// recomputes the identical plan from the same flags, so a crashed shard
// can be re-run in isolation and re-merged. The plan serializes as a JSON
// manifest describing the grid and the shard assignment; partial result
// stores reference it (by content hash) through shard.* provenance params
// in RunMeta, and tools/results_merge joins them back into one artifact
// bit-identical to an unsharded run (see src/results/merge.h).
#ifndef PSLLC_SIM_SHARD_H_
#define PSLLC_SIM_SHARD_H_

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "results/json.h"

namespace psllc::sim {

/// FNV-1a 64-bit hash — the content address of a work unit. Stable across
/// platforms and runs (pure function of the bytes).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// 16-hex-digit rendering of fnv1a64, the wire form of unit IDs.
[[nodiscard]] std::string content_id(std::string_view key);

/// Which shard of how many this process is. count == 1 with index == 0 is
/// a valid single-shard "sharded" run (useful for protocol tests).
struct ShardSpec {
  int index = 0;
  int count = 1;

  void validate() const;  ///< throws ConfigError unless 0 <= index < count
  /// Round-robin ownership of plan ordinal `ordinal`.
  [[nodiscard]] bool owns(std::size_t ordinal) const;
};

/// One schedulable cell of the grid. `cell` is the human-readable cell key
/// within the bench ("chase_hot|SS(32,2,2)"); empty for whole-bench units
/// (run_all shards at bench granularity).
struct WorkUnit {
  std::string id;     ///< content_id over grid name, params, bench, cell
  std::string bench;  ///< result-store directory the unit contributes to
  std::string cell;

  /// "bench" or "bench:cell" — the name used in error messages.
  [[nodiscard]] std::string label() const;
};

/// Deterministic enumeration of a grid into work units plus the shard
/// assignment (unit ordinal i belongs to shard i % shard_count). Build it
/// by adding units in the serial execution/emission order of the grid —
/// row ordinals of merged series follow that order.
class ShardPlan {
 public:
  /// `grid` names the planner ("run_all", "corpus_runner"); `params` are
  /// the grid parameters that determine unit content (profile, corpus,
  /// replay, ...) and are folded into every unit ID.
  ShardPlan(std::string grid,
            std::vector<std::pair<std::string, std::string>> params,
            int shard_count);

  /// Appends the unit for (bench, cell) and returns its ordinal. Throws
  /// ConfigError on a duplicate cell (identical content ID).
  std::size_t add_unit(const std::string& bench, const std::string& cell);

  [[nodiscard]] const std::string& grid() const { return grid_; }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  params() const {
    return params_;
  }
  [[nodiscard]] int shard_count() const { return shard_count_; }
  [[nodiscard]] const std::vector<WorkUnit>& units() const { return units_; }
  [[nodiscard]] int shard_of(std::size_t ordinal) const;

  /// Ordinals owned by `spec`, in plan order. Throws ConfigError when
  /// spec.count disagrees with the plan's shard_count.
  [[nodiscard]] std::vector<std::size_t> owned_ordinals(
      const ShardSpec& spec) const;

  /// Content hash binding partial stores to this manifest: folds the grid
  /// name, params, shard count and every unit ID.
  [[nodiscard]] std::string content_hash() const;

  [[nodiscard]] results::Json to_json() const;
  [[nodiscard]] static ShardPlan from_json(const results::Json& json);

  /// Atomic manifest write (temp file + rename), so concurrent shards
  /// re-emitting the identical manifest never expose a torn file.
  void write(const std::filesystem::path& path) const;
  [[nodiscard]] static ShardPlan load(const std::filesystem::path& path);

  /// The --manifest contract of sharded drivers: if `path` exists, load it
  /// and require the same content hash (a crashed shard re-run against a
  /// stale manifest must refuse, not silently recompute); otherwise write
  /// the manifest there.
  void write_or_verify(const std::filesystem::path& path) const;

 private:
  std::string grid_;
  std::vector<std::pair<std::string, std::string>> params_;
  int shard_count_ = 1;
  std::string key_prefix_;  ///< "grid|k=v|...|" folded into unit IDs
  std::vector<WorkUnit> units_;
  std::unordered_set<std::string> unit_ids_;  ///< duplicate detection
};

}  // namespace psllc::sim

#endif  // PSLLC_SIM_SHARD_H_
