#include "sim/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/assert.h"
#include "common/string_util.h"

namespace psllc::sim {

core::Trace read_trace(std::istream& input) {
  core::Trace trace;
  std::string raw;
  int line_number = 0;
  while (std::getline(input, raw)) {
    ++line_number;
    std::string_view line = trim(raw);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) {
      continue;
    }
    std::istringstream fields{std::string(line)};
    std::string op;
    std::string addr_text;
    fields >> op >> addr_text;
    PSLLC_CONFIG_CHECK(!op.empty() && !addr_text.empty(),
                       "trace line " << line_number << ": malformed entry");
    core::MemOp entry;
    if (iequals(op, "R")) {
      entry.type = AccessType::kRead;
    } else if (iequals(op, "W")) {
      entry.type = AccessType::kWrite;
    } else if (iequals(op, "I")) {
      entry.type = AccessType::kIfetch;
    } else {
      PSLLC_CONFIG_CHECK(false, "trace line " << line_number
                                              << ": unknown op '" << op
                                              << "'");
    }
    const auto addr = parse_u64(addr_text);
    PSLLC_CONFIG_CHECK(addr.has_value(), "trace line "
                                             << line_number
                                             << ": bad address '"
                                             << addr_text << "'");
    entry.addr = *addr;
    std::string gap_text;
    if (fields >> gap_text) {
      const auto gap = parse_i64(gap_text);
      PSLLC_CONFIG_CHECK(gap.has_value() && *gap >= 0,
                         "trace line " << line_number << ": bad gap '"
                                       << gap_text << "'");
      entry.gap = *gap;
      std::string extra;
      PSLLC_CONFIG_CHECK(!(fields >> extra), "trace line "
                                                 << line_number
                                                 << ": trailing tokens");
    }
    trace.push_back(entry);
  }
  return trace;
}

core::Trace read_trace_file(const std::string& path) {
  std::ifstream input(path);
  if (!input) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  return read_trace(input);
}

void write_trace(std::ostream& output, const core::Trace& trace) {
  for (const core::MemOp& op : trace) {
    output << to_string(op.type) << " 0x" << std::hex << op.addr << std::dec;
    if (op.gap != 0) {
      output << ' ' << op.gap;
    }
    output << '\n';
  }
}

void write_trace_file(const std::string& path, const core::Trace& trace) {
  std::ofstream output(path);
  if (!output) {
    throw std::runtime_error("cannot open trace file for writing: " + path);
  }
  write_trace(output, trace);
  if (!output) {
    throw std::runtime_error("error writing trace file: " + path);
  }
}

}  // namespace psllc::sim
