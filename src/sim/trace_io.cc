#include "sim/trace_io.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string_view>

#include "common/assert.h"
#include "common/string_util.h"
#include "trace/binary_io.h"

namespace psllc::sim {

namespace {

/// Pops the next whitespace-delimited token off `line` without
/// allocating. Delimits on any isspace character, matching the stream
/// extraction the tokenizer replaced.
std::string_view next_token(std::string_view& line) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  std::size_t begin = 0;
  while (begin < line.size() && is_space(line[begin])) {
    ++begin;
  }
  std::size_t end = begin;
  while (end < line.size() && !is_space(line[end])) {
    ++end;
  }
  const std::string_view token = line.substr(begin, end - begin);
  line.remove_prefix(end);
  return token;
}

}  // namespace

core::Trace read_trace(std::istream& input) {
  core::Trace trace;
  std::string raw;
  // Lines are tokenized as string_views into the getline buffer — no
  // per-line stream or string allocations — and counted in 64 bits so
  // multi-GiB corpora keep accurate diagnostics.
  std::uint64_t line_number = 0;
  while (std::getline(input, raw)) {
    ++line_number;
    std::string_view line = trim(raw);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) {
      continue;
    }
    const std::string_view op = next_token(line);
    const std::string_view addr_text = next_token(line);
    PSLLC_CONFIG_CHECK(!op.empty() && !addr_text.empty(),
                       "trace line " << line_number << ": malformed entry");
    core::MemOp entry;
    if (iequals(op, "R")) {
      entry.type = AccessType::kRead;
    } else if (iequals(op, "W")) {
      entry.type = AccessType::kWrite;
    } else if (iequals(op, "I")) {
      entry.type = AccessType::kIfetch;
    } else {
      PSLLC_CONFIG_CHECK(false, "trace line " << line_number
                                              << ": unknown op '" << op
                                              << "'");
    }
    const auto addr = parse_u64(addr_text);
    PSLLC_CONFIG_CHECK(addr.has_value(), "trace line "
                                             << line_number
                                             << ": bad address '"
                                             << addr_text << "'");
    entry.addr = *addr;
    if (const std::string_view gap_text = next_token(line);
        !gap_text.empty()) {
      const auto gap = parse_i64(gap_text);
      PSLLC_CONFIG_CHECK(gap.has_value() && *gap >= 0,
                         "trace line " << line_number << ": bad gap '"
                                       << gap_text << "'");
      entry.gap = *gap;
      PSLLC_CONFIG_CHECK(next_token(line).empty(),
                         "trace line " << line_number
                                       << ": trailing tokens");
    }
    trace.push_back(entry);
  }
  return trace;
}

core::Trace read_trace_file(const std::string& path) {
  if (trace::has_binary_trace_extension(path)) {
    return trace::read_trace_binary_file(path);
  }
  std::ifstream input(path);
  if (!input) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  return read_trace(input);
}

namespace {

/// The text grammar cannot express a negative gap (the parser rejects
/// it). Both writers validate the whole trace BEFORE touching the output:
/// text files carry no op count, so a partial (or truncated-then-
/// abandoned) file would later read back as a silently shorter trace.
void check_text_representable(const core::Trace& trace) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    PSLLC_CONFIG_CHECK(trace[i].gap >= 0,
                       "trace op " << i << ": negative gap " << trace[i].gap
                                   << " is not representable");
  }
}

/// Emits the text lines of a pre-validated trace.
void emit_trace_text(std::ostream& output, const core::Trace& trace) {
  for (const core::MemOp& op : trace) {
    output << to_string(op.type) << " 0x" << std::hex << op.addr << std::dec;
    if (op.gap != 0) {
      output << ' ' << op.gap;
    }
    output << '\n';
  }
}

}  // namespace

void write_trace(std::ostream& output, const core::Trace& trace) {
  check_text_representable(trace);
  emit_trace_text(output, trace);
}

void write_trace_file(const std::string& path, const core::Trace& trace) {
  if (trace::has_binary_trace_extension(path)) {
    trace::write_trace_binary_file(path, trace);
    return;
  }
  // Validate before opening: constructing the ofstream truncates an
  // existing file, which must not happen for a trace that cannot be
  // written.
  check_text_representable(trace);
  std::ofstream output(path);
  if (!output) {
    throw std::runtime_error("cannot open trace file for writing: " + path);
  }
  emit_trace_text(output, trace);
  if (!output) {
    throw std::runtime_error("error writing trace file: " + path);
  }
}

}  // namespace psllc::sim
