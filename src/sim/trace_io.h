// Text trace format, one access per line:
//   <R|W|I> <address> [gap]
// where address is decimal or 0x-hex and gap is an optional think time in
// cycles. '#' starts a comment; blank lines (and CRLF endings) are ignored.
//
// The file-level entry points dispatch on extension: a ".pslt" path is the
// binary format of src/trace (mmap-backed reads, fixed-width records);
// anything else is this text format. `tools/trace_convert` converts
// between the two.
#ifndef PSLLC_SIM_TRACE_IO_H_
#define PSLLC_SIM_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "core/mem_op.h"

namespace psllc::sim {

/// Parses a trace from `input`. Throws ConfigError with the offending line
/// number on malformed input.
[[nodiscard]] core::Trace read_trace(std::istream& input);

/// Loads a trace file, dispatching on extension (".pslt" = binary, else
/// text). Throws std::runtime_error when unreadable.
[[nodiscard]] core::Trace read_trace_file(const std::string& path);

/// Writes the text representation. Throws ConfigError on an op the text
/// grammar cannot express (negative gap).
void write_trace(std::ostream& output, const core::Trace& trace);
/// Writes `path`, dispatching on extension like read_trace_file.
void write_trace_file(const std::string& path, const core::Trace& trace);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_TRACE_IO_H_
