// Text trace format, one access per line:
//   <R|W|I> <address> [gap]
// where address is decimal or 0x-hex and gap is an optional think time in
// cycles. '#' starts a comment; blank lines are ignored.
#ifndef PSLLC_SIM_TRACE_IO_H_
#define PSLLC_SIM_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "core/mem_op.h"

namespace psllc::sim {

/// Parses a trace from `input`. Throws ConfigError with the offending line
/// number on malformed input.
[[nodiscard]] core::Trace read_trace(std::istream& input);

/// Loads a trace file. Throws std::runtime_error when unreadable.
[[nodiscard]] core::Trace read_trace_file(const std::string& path);

/// Writes the text representation.
void write_trace(std::ostream& output, const core::Trace& trace);
void write_trace_file(const std::string& path, const core::Trace& trace);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_TRACE_IO_H_
