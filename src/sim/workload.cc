#include "sim/workload.h"

#include <numeric>

#include "common/assert.h"
#include "common/rng.h"

namespace psllc::sim {

namespace {
constexpr int kLineBytes = 64;
}

core::Trace make_uniform_random_trace(Addr base,
                                      const RandomWorkloadOptions& options,
                                      std::uint64_t seed) {
  PSLLC_CONFIG_CHECK(options.range_bytes >= kLineBytes,
                     "range must hold at least one line");
  PSLLC_CONFIG_CHECK(options.accesses > 0, "need >=1 access");
  PSLLC_CONFIG_CHECK(options.write_fraction >= 0.0 &&
                         options.write_fraction <= 1.0,
                     "write fraction must be in [0,1]");
  Rng rng(seed);
  core::Trace trace;
  trace.reserve(static_cast<std::size_t>(options.accesses));
  const auto range = static_cast<std::uint64_t>(options.range_bytes);
  for (int i = 0; i < options.accesses; ++i) {
    Addr offset = rng.next_below(range);
    if (options.line_aligned) {
      offset &= ~static_cast<Addr>(kLineBytes - 1);
    }
    const AccessType type = rng.next_bool(options.write_fraction)
                                ? AccessType::kWrite
                                : AccessType::kRead;
    trace.push_back(core::MemOp{base + offset, type, options.gap});
  }
  return trace;
}

std::vector<core::Trace> make_disjoint_random_workload(
    int num_cores, const RandomWorkloadOptions& options, std::uint64_t seed) {
  PSLLC_CONFIG_CHECK(num_cores > 0, "need >=1 core");
  std::vector<core::Trace> traces;
  traces.reserve(static_cast<std::size_t>(num_cores));
  for (int c = 0; c < num_cores; ++c) {
    const Addr base =
        static_cast<Addr>(c) * static_cast<Addr>(options.range_bytes);
    // Stream identity: (seed, core, range) — independent of the cache
    // configuration, as the paper requires.
    const std::uint64_t stream = mix_seed(
        seed, static_cast<std::uint64_t>(c),
        static_cast<std::uint64_t>(options.range_bytes));
    traces.push_back(make_uniform_random_trace(base, options, stream));
  }
  return traces;
}

core::Trace make_strided_trace(Addr base, std::int64_t stride, int count,
                               int repeat) {
  PSLLC_CONFIG_CHECK(count > 0 && repeat > 0, "need positive count/repeat");
  core::Trace trace;
  trace.reserve(static_cast<std::size_t>(count) *
                static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    for (int i = 0; i < count; ++i) {
      trace.push_back(core::MemOp{
          base + static_cast<Addr>(i) * static_cast<Addr>(stride),
          AccessType::kRead, 0});
    }
  }
  return trace;
}

core::Trace make_pointer_chase_trace(Addr base, int nodes, int steps,
                                     std::uint64_t seed) {
  PSLLC_CONFIG_CHECK(nodes > 1, "pointer chase needs >=2 nodes");
  PSLLC_CONFIG_CHECK(steps > 0, "need >=1 step");
  // Sattolo's algorithm: a uniformly random single-cycle permutation.
  std::vector<int> next(static_cast<std::size_t>(nodes));
  std::iota(next.begin(), next.end(), 0);
  Rng rng(seed);
  for (int i = nodes - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(i)));
    std::swap(next[static_cast<std::size_t>(i)],
              next[static_cast<std::size_t>(j)]);
  }
  core::Trace trace;
  trace.reserve(static_cast<std::size_t>(steps));
  int node = 0;
  for (int s = 0; s < steps; ++s) {
    trace.push_back(core::MemOp{
        base + static_cast<Addr>(node) * kLineBytes, AccessType::kRead, 0});
    node = next[static_cast<std::size_t>(node)];
  }
  return trace;
}

}  // namespace psllc::sim
