// Synthetic workload generators (paper Section 5, "Workload generation").
//
// The paper uses memory requests to uniformly random addresses within an
// address range, with disjoint ranges per core, and stresses that "for a
// certain address range, a core issues the same memory addresses across
// different partitioned configurations" — achieved here by seeding each
// (seed, core, range) stream independently of the cache configuration.
#ifndef PSLLC_SIM_WORKLOAD_H_
#define PSLLC_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/mem_op.h"

namespace psllc::sim {

struct RandomWorkloadOptions {
  std::int64_t range_bytes = 4096;  ///< addresses drawn from [base, base+range)
  int accesses = 10000;
  double write_fraction = 0.25;  ///< probability an access is a store
  Cycle gap = 0;                 ///< think time between accesses
  bool line_aligned = true;      ///< draw line-granular addresses
};

/// Uniform-random trace within [base, base + range_bytes).
[[nodiscard]] core::Trace make_uniform_random_trace(
    Addr base, const RandomWorkloadOptions& options, std::uint64_t seed);

/// Per-core disjoint random traces: core i draws from the contiguous range
/// [i * range_bytes, (i+1) * range_bytes) — disjoint ranges that tile the
/// address space, so when the summed ranges fit a shared partition the
/// cores' lines map to disjoint sets (the paper's Figure 8 "execution time
/// is the same while the address range fits" behaviour). Streams depend
/// only on (seed, core, range) so every partitioned configuration sees
/// identical addresses.
[[nodiscard]] std::vector<core::Trace> make_disjoint_random_workload(
    int num_cores, const RandomWorkloadOptions& options, std::uint64_t seed);

/// Sequential strided trace: base, base+stride, ... (count accesses),
/// repeated cyclically when `repeat` > 1. Reads only.
[[nodiscard]] core::Trace make_strided_trace(Addr base, std::int64_t stride,
                                             int count, int repeat = 1);

/// Pointer-chase trace: a random permutation cycle over `nodes` lines
/// starting at `base`, walked `steps` times — maximally cache-unfriendly
/// ordering with a working set of `nodes` lines.
[[nodiscard]] core::Trace make_pointer_chase_trace(Addr base, int nodes,
                                                   int steps,
                                                   std::uint64_t seed);

}  // namespace psllc::sim

#endif  // PSLLC_SIM_WORKLOAD_H_
