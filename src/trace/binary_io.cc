#include "trace/binary_io.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "common/assert.h"
#include "common/string_util.h"
#include "trace/format.h"
#include "trace/mapped_trace.h"

namespace psllc::trace {

bool has_binary_trace_extension(std::string_view path) {
  const std::string_view ext = kBinaryTraceExtension;
  return path.size() >= ext.size() &&
         iequals(path.substr(path.size() - ext.size()), ext);
}

int pick_addr_width_bits(const core::Trace& trace) {
  for (const core::MemOp& op : trace) {
    if ((op.addr >> 32) != 0) {
      return 64;
    }
  }
  return 32;
}

namespace {

int resolve_addr_width(const core::Trace& trace,
                       const BinaryWriteOptions& options) {
  PSLLC_CONFIG_CHECK(options.addr_width_bits == 0 ||
                         options.addr_width_bits == 32 ||
                         options.addr_width_bits == 64,
                     "binary trace: address width must be 0 (auto), 32 or "
                     "64, got "
                         << options.addr_width_bits);
  return options.addr_width_bits != 0 ? options.addr_width_bits
                                      : pick_addr_width_bits(trace);
}

/// Validates every op up front: once the header is out, an encode failure
/// would abandon a partial stream (and the file writer truncates the
/// destination on open, so it must know the trace is writable first).
void check_trace_representable(const core::Trace& trace,
                               int addr_width_bits) {
  for (const core::MemOp& op : trace) {
    check_record_representable(op, addr_width_bits);
  }
}

/// Emits header + records of a pre-validated trace.
void emit_trace_binary(std::ostream& output, const core::Trace& trace,
                       int addr_width_bits) {
  TraceHeader header;
  header.addr_width_bits = addr_width_bits;
  header.op_count = trace.size();
  std::array<unsigned char, kHeaderBytes> header_bytes{};
  encode_header(header, header_bytes.data());
  output.write(reinterpret_cast<const char*>(header_bytes.data()),
               static_cast<std::streamsize>(header_bytes.size()));

  // Records are staged through a fixed buffer so multi-GiB traces never
  // materialize a second in-memory copy.
  const std::size_t stride = record_bytes(addr_width_bits);
  constexpr std::size_t kChunkRecords = 4096;
  std::vector<unsigned char> chunk(kChunkRecords * stride);
  std::size_t filled = 0;
  for (const core::MemOp& op : trace) {
    encode_record(op, addr_width_bits, chunk.data() + filled);
    filled += stride;
    if (filled == chunk.size()) {
      output.write(reinterpret_cast<const char*>(chunk.data()),
                   static_cast<std::streamsize>(filled));
      filled = 0;
    }
  }
  if (filled > 0) {
    output.write(reinterpret_cast<const char*>(chunk.data()),
                 static_cast<std::streamsize>(filled));
  }
}

}  // namespace

void write_trace_binary(std::ostream& output, const core::Trace& trace,
                        const BinaryWriteOptions& options) {
  const int width = resolve_addr_width(trace, options);
  check_trace_representable(trace, width);
  emit_trace_binary(output, trace, width);
}

void write_trace_binary_file(const std::string& path,
                             const core::Trace& trace,
                             const BinaryWriteOptions& options) {
  // Opening truncates an existing file, so validate first: a trace the
  // format cannot express must leave the destination untouched.
  const int width = resolve_addr_width(trace, options);
  check_trace_representable(trace, width);
  std::ofstream output(path, std::ios::binary | std::ios::trunc);
  if (!output) {
    throw std::runtime_error("cannot open trace file for writing: " + path);
  }
  emit_trace_binary(output, trace, width);
  output.flush();
  if (!output) {
    throw std::runtime_error("error writing trace file: " + path);
  }
}

core::Trace read_trace_binary(std::istream& input) {
  std::array<unsigned char, kHeaderBytes> header_bytes{};
  input.read(reinterpret_cast<char*>(header_bytes.data()),
             static_cast<std::streamsize>(header_bytes.size()));
  const TraceHeader header = decode_header(
      header_bytes.data(), static_cast<std::size_t>(input.gcount()));

  const std::size_t stride = record_bytes(header.addr_width_bits);
  core::Trace out;
  // The header's count is untrusted until the records actually arrive:
  // cap the up-front reservation so a corrupt count fails through the
  // truncation check below (ConfigError), not an allocation failure.
  out.reserve(std::min<std::uint64_t>(header.op_count, 1 << 20));
  constexpr std::size_t kChunkRecords = 4096;
  std::vector<unsigned char> chunk(kChunkRecords * stride);
  std::uint64_t decoded = 0;
  while (decoded < header.op_count) {
    const std::uint64_t want =
        std::min<std::uint64_t>(kChunkRecords, header.op_count - decoded);
    input.read(reinterpret_cast<char*>(chunk.data()),
               static_cast<std::streamsize>(want * stride));
    const auto got = static_cast<std::uint64_t>(input.gcount());
    PSLLC_CONFIG_CHECK(got == want * stride,
                       "binary trace: truncated record payload (record "
                           << (decoded + got / stride) << " of "
                           << header.op_count << ")");
    for (std::uint64_t i = 0; i < want; ++i) {
      out.push_back(
          decode_record(chunk.data() + i * stride, header.addr_width_bits,
                        decoded + i));
    }
    decoded += want;
  }
  // A well-formed stream ends exactly after the last record.
  PSLLC_CONFIG_CHECK(input.peek() == std::char_traits<char>::eof(),
                     "binary trace: trailing bytes after the last record");
  return out;
}

core::Trace read_trace_binary_file(const std::string& path) {
  return MappedTrace(path).to_trace();
}

}  // namespace psllc::trace
