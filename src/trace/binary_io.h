// Streaming writer/reader for the PSLT binary trace format (trace/format.h).
// The writer is the only producer; the reader here is the std::istream
// fallback for non-seekable sources — files should go through
// trace::MappedTrace (used by read_trace_binary_file) for zero-copy access.
#ifndef PSLLC_TRACE_BINARY_IO_H_
#define PSLLC_TRACE_BINARY_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/mem_op.h"

namespace psllc::trace {

struct BinaryWriteOptions {
  /// Record address width in bits: 32, 64, or 0 to pick automatically
  /// (32-bit records when every address fits, else 64-bit).
  // psllc-lint: allow(TRC-001: writer API option, not an on-disk layout)
  int addr_width_bits = 0;
};

/// True when `path` names a PSLT file by extension (".pslt").
[[nodiscard]] bool has_binary_trace_extension(std::string_view path);

/// Smallest supported record width that represents every address of
/// `trace` (32 or 64).
[[nodiscard]] int pick_addr_width_bits(const core::Trace& trace);

/// Serializes `trace`. Throws ConfigError when an op is unrepresentable
/// (negative gap, gap >= 2^56, address wider than a forced 32-bit width).
void write_trace_binary(std::ostream& output, const core::Trace& trace,
                        const BinaryWriteOptions& options = {});
void write_trace_binary_file(const std::string& path,
                             const core::Trace& trace,
                             const BinaryWriteOptions& options = {});

/// Streaming decode of a whole PSLT stream. Throws ConfigError on malformed
/// input (bad magic/version/width, truncated header or records).
[[nodiscard]] core::Trace read_trace_binary(std::istream& input);

/// File decode: mmap-backed via MappedTrace, falling back to buffered
/// reads when mapping is unavailable. Throws std::runtime_error when the
/// file cannot be opened, ConfigError when its contents are malformed.
[[nodiscard]] core::Trace read_trace_binary_file(const std::string& path);

}  // namespace psllc::trace

#endif  // PSLLC_TRACE_BINARY_IO_H_
