// Binary trace format v1 ("PSLT"), the at-scale companion of the text
// format in sim/trace_io.h. Little-endian on every host, fixed-width
// records, so a file can be mmap'd and decoded in place (trace/mapped_trace.h)
// or streamed (trace/binary_io.h).
//
// Layout:
//   header (24 bytes)
//     [0..3]   magic "PSLT"
//     [4..5]   u16 format version (= 1)
//     [6]      u8 address width in bits: 32 or 64 (selects the record size)
//     [7]      u8 reserved, must be 0
//     [8..15]  u64 op count
//     [16..23] u64 reserved, must be 0
//   records (op count x record_bytes(addr_width))
//     addr          u32 or u64 per the header's address width
//     gap_and_type  u64 = (gap << 8) | type   (type: 0=R, 1=W, 2=I)
//
// The packing bounds gap to [0, 2^56) cycles — over a year of simulated
// time at any clock — and is validated on encode, so every well-formed
// file round-trips bit-identically through core::Trace.
#ifndef PSLLC_TRACE_FORMAT_H_
#define PSLLC_TRACE_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "common/assert.h"
#include "core/mem_op.h"

namespace psllc::trace {

inline constexpr unsigned char kMagic[4] = {'P', 'S', 'L', 'T'};
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
/// Largest gap the packed record can carry.
inline constexpr Cycle kMaxGap = (std::int64_t{1} << 56) - 1;
/// Canonical file extension dispatched to this format by
/// sim::read_trace_file / sim::write_trace_file.
inline constexpr char kBinaryTraceExtension[] = ".pslt";

/// Decoded header fields (magic and reserved bytes are validated away).
struct TraceHeader {
  std::uint16_t version = kFormatVersion;
  std::int32_t addr_width_bits = 64;  ///< 32 or 64
  std::uint64_t op_count = 0;
};

/// Record size selected by the header's address width.
[[nodiscard]] constexpr std::size_t record_bytes(int addr_width_bits) {
  return static_cast<std::size_t>(addr_width_bits / 8) + 8;
}

// --- little-endian scalar codecs ---------------------------------------------

inline void store_le(std::uint64_t v, int bytes, unsigned char* out) {
  for (int i = 0; i < bytes; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

[[nodiscard]] inline std::uint64_t load_le(const unsigned char* in,
                                           int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

// --- header codec ------------------------------------------------------------

inline void encode_header(const TraceHeader& header, unsigned char* out) {
  PSLLC_CONFIG_CHECK(
      header.addr_width_bits == 32 || header.addr_width_bits == 64,
      "binary trace: address width must be 32 or 64 bits, got "
          << header.addr_width_bits);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    out[i] = kMagic[i];
  }
  store_le(header.version, 2, out + 4);
  out[6] = static_cast<unsigned char>(header.addr_width_bits);
  out[7] = 0;
  store_le(header.op_count, 8, out + 8);
  store_le(0, 8, out + 16);
}

/// Validates and decodes a header. `available` is the number of bytes the
/// caller actually has; throws ConfigError naming the defect (bad magic,
/// truncated header, unsupported version, bad address width).
[[nodiscard]] inline TraceHeader decode_header(const unsigned char* in,
                                               std::size_t available) {
  PSLLC_CONFIG_CHECK(available >= kHeaderBytes,
                     "binary trace: truncated header (" << available << " of "
                                                        << kHeaderBytes
                                                        << " bytes)");
  PSLLC_CONFIG_CHECK(in[0] == kMagic[0] && in[1] == kMagic[1] &&
                         in[2] == kMagic[2] && in[3] == kMagic[3],
                     "binary trace: bad magic (not a PSLT file)");
  TraceHeader header;
  header.version = static_cast<std::uint16_t>(load_le(in + 4, 2));
  PSLLC_CONFIG_CHECK(header.version == kFormatVersion,
                     "binary trace: unsupported format version "
                         << header.version << " (reader supports "
                         << kFormatVersion << ")");
  header.addr_width_bits = in[6];
  PSLLC_CONFIG_CHECK(
      header.addr_width_bits == 32 || header.addr_width_bits == 64,
      "binary trace: bad address width " << header.addr_width_bits
                                         << " (expected 32 or 64)");
  PSLLC_CONFIG_CHECK(in[7] == 0, "binary trace: nonzero reserved byte");
  header.op_count = load_le(in + 8, 8);
  PSLLC_CONFIG_CHECK(load_le(in + 16, 8) == 0,
                     "binary trace: nonzero reserved field");
  return header;
}

// --- record codec ------------------------------------------------------------

[[nodiscard]] constexpr std::uint8_t encode_access_type(AccessType type) {
  switch (type) {
    case AccessType::kRead:
      return 0;
    case AccessType::kWrite:
      return 1;
    case AccessType::kIfetch:
      return 2;
  }
  return 0xFF;
}

/// Throws ConfigError when `op` is not representable in the format:
/// negative or > kMaxGap gap, address wider than the chosen width, or an
/// out-of-range access type. Writers run this over the whole trace BEFORE
/// emitting any byte, so a failed write never truncates or corrupts an
/// existing file.
inline void check_record_representable(const core::MemOp& op,
                                       int addr_width_bits) {
  PSLLC_CONFIG_CHECK(encode_access_type(op.type) <= 2,
                     "binary trace: unencodable access type");
  PSLLC_CONFIG_CHECK(op.gap >= 0 && op.gap <= kMaxGap,
                     "binary trace: gap " << op.gap
                                          << " outside [0, 2^56) cycles");
  PSLLC_CONFIG_CHECK(
      addr_width_bits == 64 || (op.addr >> addr_width_bits) == 0,
      "binary trace: address 0x" << std::hex << op.addr << std::dec
                                 << " does not fit " << addr_width_bits
                                 << "-bit records");
}

/// Encodes one op (validated via check_record_representable).
inline void encode_record(const core::MemOp& op, int addr_width_bits,
                          unsigned char* out) {
  check_record_representable(op, addr_width_bits);
  const int addr_bytes = addr_width_bits / 8;
  store_le(op.addr, addr_bytes, out);
  store_le((static_cast<std::uint64_t>(op.gap) << 8) |
               encode_access_type(op.type),
           8, out + addr_bytes);
}

/// Decodes one record. Throws ConfigError on an out-of-range type byte.
[[nodiscard]] inline core::MemOp decode_record(const unsigned char* in,
                                               int addr_width_bits,
                                               std::uint64_t index) {
  const int addr_bytes = addr_width_bits / 8;
  core::MemOp op;
  op.addr = load_le(in, addr_bytes);
  const std::uint64_t meta = load_le(in + addr_bytes, 8);
  const std::uint8_t type = static_cast<std::uint8_t>(meta & 0xFF);
  PSLLC_CONFIG_CHECK(type <= 2, "binary trace: record "
                                    << index << ": bad access type byte "
                                    << static_cast<int>(type));
  op.type = type == 0   ? AccessType::kRead
            : type == 1 ? AccessType::kWrite
                        : AccessType::kIfetch;
  op.gap = static_cast<Cycle>(meta >> 8);
  return op;
}

}  // namespace psllc::trace

#endif  // PSLLC_TRACE_FORMAT_H_
