#include "trace/mapped_trace.h"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/assert.h"

#if defined(__unix__) || defined(__APPLE__)
#define PSLLC_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PSLLC_TRACE_HAVE_MMAP 0
#endif

namespace psllc::trace {

namespace {

/// Whole-file read for the no-mmap path.
std::vector<unsigned char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) {
    throw std::runtime_error("cannot size trace file: " + path);
  }
  in.seekg(0, std::ios::beg);
  std::vector<unsigned char> bytes(static_cast<std::size_t>(end));
  if (!bytes.empty() &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()))) {
    throw std::runtime_error("error reading trace file: " + path);
  }
  return bytes;
}

}  // namespace

MappedTrace::MappedTrace(const std::string& path) {
#if PSLLC_TRACE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) == 0 && st.st_size > 0 && S_ISREG(st.st_mode)) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      data_ = static_cast<const unsigned char*>(map);
      bytes_ = static_cast<std::size_t>(st.st_size);
      mapped_ = true;
    }
  }
  ::close(fd);
#endif
  if (!mapped_) {
    fallback_ = read_all(path);
    data_ = fallback_.data();
    bytes_ = fallback_.size();
  }

  try {
    header_ = decode_header(data_, bytes_);
    record_bytes_ = record_bytes(header_.addr_width_bits);
    const std::uint64_t payload = bytes_ - kHeaderBytes;
    PSLLC_CONFIG_CHECK(
        header_.op_count <= payload / record_bytes_ &&
            payload == header_.op_count * record_bytes_,
        "binary trace: truncated or oversized record payload ("
            << payload << " bytes for " << header_.op_count << " records of "
            << record_bytes_ << " bytes): " << path);
  } catch (...) {
    unmap();
    throw;
  }
}

MappedTrace::~MappedTrace() { unmap(); }

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : data_(other.data_),
      bytes_(other.bytes_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)),
      header_(other.header_),
      record_bytes_(other.record_bytes_) {
  if (!mapped_) {
    data_ = fallback_.empty() ? nullptr : fallback_.data();
  }
  other.data_ = nullptr;
  other.bytes_ = 0;
  other.mapped_ = false;
}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = other.data_;
    bytes_ = other.bytes_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    header_ = other.header_;
    record_bytes_ = other.record_bytes_;
    if (!mapped_) {
      data_ = fallback_.empty() ? nullptr : fallback_.data();
    }
    other.data_ = nullptr;
    other.bytes_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MappedTrace::unmap() noexcept {
#if PSLLC_TRACE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), bytes_);
  }
#endif
  data_ = nullptr;
  bytes_ = 0;
  mapped_ = false;
  fallback_.clear();
}

core::MemOp MappedTrace::operator[](std::uint64_t index) const {
  PSLLC_ASSERT(index < header_.op_count,
               "trace record index " << index << " out of range "
                                     << header_.op_count);
  return decode_record(data_ + kHeaderBytes + index * record_bytes_,
                       header_.addr_width_bits, index);
}

void MappedTrace::decode_batch(std::uint64_t first, std::uint64_t count,
                               Addr addr_offset, core::MemOp* out) const {
  PSLLC_ASSERT(first <= header_.op_count && count <= header_.op_count - first,
               "trace batch [" << first << ", " << first + count
                              << ") out of range " << header_.op_count);
  const unsigned char* record = data_ + kHeaderBytes + first * record_bytes_;
  for (std::uint64_t i = 0; i < count; ++i, record += record_bytes_) {
    out[i] = decode_record(record, header_.addr_width_bits, first + i);
    out[i].addr += addr_offset;
  }
}

core::Trace MappedTrace::to_trace() const {
  core::Trace out;
  out.reserve(header_.op_count);
  for (std::uint64_t i = 0; i < header_.op_count; ++i) {
    out.push_back((*this)[i]);
  }
  return out;
}

}  // namespace psllc::trace
