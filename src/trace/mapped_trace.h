// Zero-copy view of a binary (.pslt) trace file. The file is mmap'd
// read-only and records are decoded in place on access, so opening and
// validating a multi-GiB corpus entry costs one mmap (shared page cache
// across processes), not a parse pass or a heap image. Consumers that
// feed core::System still materialize a core::Trace via to_trace() —
// the simulator replays std::vector traces — so the zero-copy win today
// is in open/validate/inspect paths; keeping the replay itself on the
// view is future work. When mmap is unavailable (non-POSIX host, or an
// mmap failure on a regular file) the file is read into an owned buffer
// instead — same interface, one copy. Non-seekable sources (pipes, FIFOs)
// are out of scope here; feed them to trace::read_trace_binary.
#ifndef PSLLC_TRACE_MAPPED_TRACE_H_
#define PSLLC_TRACE_MAPPED_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/mem_op.h"
#include "trace/format.h"

namespace psllc::trace {

class MappedTrace {
 public:
  /// Opens and validates `path`. Throws std::runtime_error when the file
  /// cannot be opened and ConfigError when its contents are malformed
  /// (bad magic, version, truncation).
  explicit MappedTrace(const std::string& path);
  ~MappedTrace();

  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  [[nodiscard]] const TraceHeader& header() const { return header_; }
  /// Number of records.
  [[nodiscard]] std::uint64_t size() const { return header_.op_count; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// True when the view is backed by mmap (false: owned-buffer fallback).
  [[nodiscard]] bool mapped() const { return mapped_; }

  /// Decodes record `index` straight from the mapped bytes.
  [[nodiscard]] core::MemOp operator[](std::uint64_t index) const;

  /// Decodes `count` records starting at `first` into `out` (which must
  /// hold `count` ops), adding `addr_offset` to every address. One call per
  /// replay-kernel chunk amortizes the per-record call overhead while the
  /// bytes stay on the mapped view.
  void decode_batch(std::uint64_t first, std::uint64_t count,
                    Addr addr_offset, core::MemOp* out) const;

  /// Materializes the whole file as a core::Trace.
  [[nodiscard]] core::Trace to_trace() const;

 private:
  void unmap() noexcept;

  const unsigned char* data_ = nullptr;  ///< full file, header included
  std::size_t bytes_ = 0;
  bool mapped_ = false;
  std::vector<unsigned char> fallback_;  ///< owns the bytes when !mapped_
  TraceHeader header_;
  std::size_t record_bytes_ = 0;
};

}  // namespace psllc::trace

#endif  // PSLLC_TRACE_MAPPED_TRACE_H_
