// Fixture: CFG-001 — config/POD struct fields without initializers. A
// default-constructed config with indeterminate fields is a latent source
// of run-to-run divergence (and UB once read).
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct SweepConfig {
  int num_cores;             // LINT-EXPECT: CFG-001
  std::int64_t horizon;      // LINT-EXPECT: CFG-001
  bool verbose;              // LINT-EXPECT: CFG-001
  double miss_ratio;         // LINT-EXPECT: CFG-001
  const char* label;         // LINT-EXPECT: CFG-001
  std::string name;          // non-scalar: default ctor, not flagged
  std::vector<int> ways;     // non-scalar: default ctor, not flagged
};

// Every field initialized: nothing to flag.
struct GoodConfig {
  int num_cores = 4;
  std::int64_t horizon = 0;
  bool verbose = false;
};

// A user-declared constructor takes over initialization; the member-line
// heuristic would be wrong here, so the rule stays quiet.
struct CtorConfig {
  CtorConfig() : num_cores(1), horizon(0) {}
  int num_cores;
  std::int64_t horizon;
};

}  // namespace fixture
