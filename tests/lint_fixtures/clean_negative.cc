// Fixture: negative case — deterministic idioms the linter must NOT flag,
// plus one real violation that is suppressed with a reason. A scan of this
// file must report zero unsuppressed findings.
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Ordered containers iterate deterministically.
double emit_ordered(const std::map<std::string, double>& rows) {
  double total = 0.0;
  for (const auto& [name, value] : rows) {
    total += value;
  }
  return total;
}

int ordered_first(const std::set<int>& lines) { return *lines.begin(); }

// Unordered lookup (no iteration) is fine.
bool has_line(const std::unordered_map<std::uint64_t, int>& index,
              std::uint64_t line) {
  return index.find(line) != index.end();
}

// Fully initialized config struct.
struct CleanConfig {
  int num_cores = 4;
  std::int64_t horizon = 1000;
  bool verbose = false;
};

// Fixed-width record layout.
struct CleanRecord {
  std::uint64_t addr = 0;
  std::uint32_t gap = 0;
  std::uint8_t kind = 0;
};

// A genuine DET-001 hit, suppressed with a reason: counting elements does
// not depend on iteration order.
int count_even(const std::unordered_map<int, int>& hits) {
  int n = 0;
  // psllc-lint: allow(DET-001: order-independent count, result is a sum)
  for (const auto& [key, value] : hits) {
    n += (value % 2 == 0) ? 1 : 0;
  }
  return n;
}

}  // namespace fixture
