// Fixture: DET-001 — iteration over unordered containers. Each violating
// line carries a "LINT-EXPECT: <rule>" marker; tests/test_lint.cc compares
// the scanner's findings against these markers. This file is never
// compiled — it only has to look like the real thing to the lexer.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct SeriesSink {
  void add_row(double value);
};

double emit_counts(const std::unordered_map<std::string, int>& hits,
                   SeriesSink& sink) {
  double total = 0;
  for (const auto& [name, count] : hits) {  // LINT-EXPECT: DET-001
    sink.add_row(count);
  }
  return total;
}

int first_line(const std::unordered_set<int>& lines) {
  return *lines.begin();  // LINT-EXPECT: DET-001
}

using LineSet = std::unordered_set<long long>;

int alias_iteration(const LineSet& touched) {
  int n = 0;
  for (long long line : touched) {  // LINT-EXPECT: DET-001
    n += static_cast<int>(line & 1);
  }
  return n;
}

}  // namespace fixture
