// Fixture: DET-002 — banned nondeterminism sources. Simulator results must
// be a pure function of the config and seed; wall-clock time, libc rand,
// hardware entropy, and pointer-value ordering all break replay.
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <map>
#include <random>
#include <set>

namespace fixture {

int libc_random_draw() {
  std::srand(42);                    // LINT-EXPECT: DET-002
  return std::rand();                // LINT-EXPECT: DET-002
}

std::uint64_t entropy_seed() {
  std::random_device dev;            // LINT-EXPECT: DET-002
  return dev();
}

std::int64_t wall_clock_seed() {
  return std::time(nullptr);         // LINT-EXPECT: DET-002
}

struct Node {
  int payload = 0;
};

using NodeOrder = std::set<Node*, std::less<Node*>>;  // LINT-EXPECT: DET-002

std::size_t pointer_identity(const Node* node) {
  return std::hash<const Node*>{}(node);  // LINT-EXPECT: DET-002
}

std::uintptr_t pointer_key(const Node* node) {
  return reinterpret_cast<std::uintptr_t>(node);  // LINT-EXPECT: DET-002
}

}  // namespace fixture
