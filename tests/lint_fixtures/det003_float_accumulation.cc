// Fixture: DET-003 — floating-point accumulation in unordered iteration
// order. FP addition is not associative, so summing over an unordered
// container yields run-to-run differences in the low bits.
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

double unordered_sum(const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& [name, weight] : weights) {  // LINT-EXPECT: DET-001
    total += weight;  // LINT-EXPECT: DET-003
  }
  return total;
}

float nested_accumulate(
    const std::unordered_map<int, std::vector<float>>& buckets) {
  float acc = 0.0F;
  for (const auto& [key, values] : buckets) {  // LINT-EXPECT: DET-001
    for (float value : values) {
      acc += value;  // LINT-EXPECT: DET-003
    }
  }
  return acc;
}

// Ordered iteration is fine: accumulation over a vector is deterministic.
double ordered_sum(const std::vector<double>& values) {
  double total = 0.0;
  for (double value : values) {
    total += value;
  }
  return total;
}

}  // namespace fixture
