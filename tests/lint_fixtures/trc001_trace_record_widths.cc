// Fixture: TRC-001 — non-fixed-width integers in trace-format records.
// Structs whose names end in Record or Header describe on-disk layout;
// `int`/`long`/`size_t` members make the format ABI-dependent.
#include <cstddef>
#include <cstdint>

namespace fixture {

struct SampleRecord {
  std::uint64_t addr = 0;
  int gap = 0;            // LINT-EXPECT: TRC-001
  unsigned flags = 0;     // LINT-EXPECT: TRC-001
  long sequence = 0;      // LINT-EXPECT: TRC-001
  std::uint8_t kind = 0;
};

struct SampleHeader {
  std::uint32_t magic = 0;
  std::size_t record_count = 0;  // LINT-EXPECT: TRC-001
  std::uint16_t version = 0;
};

// Not a Record/Header and not under src/trace/: plain ints are fine here.
struct RuntimeCounters {
  int hits = 0;
  long misses = 0;
};

}  // namespace fixture
