// Tests for the adversarial trace search: spec identity, manifest and
// trace-generation determinism, the attack-pattern character (conflict
// focus, storm working sets, burst phasing), search invariance across
// thread counts and shard layouts, and the near-miss promotion round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "sim/adversary.h"
#include "sim/corpus.h"
#include "sim/replay.h"

namespace psllc::sim {
namespace {

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Small but non-trivial search: 2 kinds x 2 configs, one climb round.
AdversaryOptions small_options() {
  AdversaryOptions options;
  options.kinds = {AttackKind::kConflictStride, AttackKind::kSlotBurst};
  options.configs = {{"SS(32,2,2)", 2}, {"P(8,2)", 2}};
  options.seed = 7;
  options.ops_per_core = 200;
  options.rounds = 1;
  options.survivors = 1;
  options.mutants = 2;
  return options;
}

void expect_traces_equal(const core::Trace& a, const core::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr) << "op " << i;
    EXPECT_EQ(a[i].type, b[i].type) << "op " << i;
    EXPECT_EQ(a[i].gap, b[i].gap) << "op " << i;
  }
}

void expect_cells_identical(const AdversaryTrack& a,
                            const AdversaryTrack& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size()) << track_key(a.kind, a.config);
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const AdversaryCell& ca = a.cells[i];
    const AdversaryCell& cb = b.cells[i];
    EXPECT_EQ(ca.spec.key(), cb.spec.key()) << "cell " << i;
    EXPECT_EQ(ca.round, cb.round) << "cell " << i;
    EXPECT_EQ(ca.metrics.completed, cb.metrics.completed) << "cell " << i;
    EXPECT_EQ(ca.metrics.observed_wcl, cb.metrics.observed_wcl)
        << "cell " << i;
    EXPECT_EQ(ca.metrics.makespan, cb.metrics.makespan) << "cell " << i;
    EXPECT_EQ(ca.metrics.analytical_wcl, cb.metrics.analytical_wcl)
        << "cell " << i;
    EXPECT_EQ(ca.metrics.llc_requests, cb.metrics.llc_requests)
        << "cell " << i;
    EXPECT_EQ(ca.slack, cb.slack) << "cell " << i;
    EXPECT_EQ(ca.violation, cb.violation) << "cell " << i;
    EXPECT_EQ(ca.near_miss, cb.near_miss) << "cell " << i;
  }
}

TEST(AttackSpec, ContentAddressedIdentity) {
  AttackSpec spec;
  EXPECT_EQ(spec.key(), AttackSpec{}.key());
  EXPECT_EQ(spec.id(), AttackSpec{}.id());
  EXPECT_EQ(spec.id().size(), 16u);
  for (const char c : spec.id()) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << spec.id();
  }
  // Every field participates in the key, even ones irrelevant to the kind:
  // the ID is a total function of the record.
  AttackSpec other = spec;
  other.burst_len += 1;
  EXPECT_NE(other.key(), spec.key());
  EXPECT_NE(other.id(), spec.id());
  other = spec;
  other.seed += 1;
  EXPECT_NE(other.id(), spec.id());
  EXPECT_THROW(
      []() {
        AttackSpec bad;
        bad.write_fraction = 1.5;
        bad.validate();
      }(),
      ConfigError);
}

TEST(AttackSpec, KindNamesRoundTrip) {
  for (const AttackKind kind : all_attack_kinds()) {
    EXPECT_EQ(attack_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_EQ(attack_kind_from_string("STORM"), AttackKind::kWritebackStorm);
  EXPECT_THROW((void)attack_kind_from_string("benign"), ConfigError);
}

TEST(AttackSpec, SeedManifestIsDeterministicAndDistinct) {
  for (const AttackKind kind : all_attack_kinds()) {
    const auto a = seed_manifest(kind, 42, 500);
    const auto b = seed_manifest(kind, 42, 500);
    ASSERT_EQ(a.size(), static_cast<std::size_t>(kManifestSpecs));
    std::set<std::string> ids;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, kind);
      EXPECT_EQ(a[i].ops_per_core, 500);
      EXPECT_EQ(a[i].key(), b[i].key());
      ids.insert(a[i].id());
    }
    EXPECT_EQ(ids.size(), a.size()) << "manifest specs must be distinct";
    // A different base seed moves every stream seed (and thus every ID).
    const auto c = seed_manifest(kind, 43, 500);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NE(a[i].id(), c[i].id());
    }
  }
}

TEST(AttackSpec, MutationRedrawsSeedDeterministically) {
  const AttackSpec parent = seed_manifest(AttackKind::kSlotBurst, 1, 300)[0];
  Rng rng_a(99);
  Rng rng_b(99);
  const AttackSpec ma = mutate_spec(parent, rng_a);
  const AttackSpec mb = mutate_spec(parent, rng_b);
  EXPECT_EQ(ma.key(), mb.key());
  EXPECT_NE(ma.id(), parent.id());
  EXPECT_EQ(ma.kind, parent.kind);
}

TEST(AttackTrace, GenerationIsPureAndSized) {
  for (const AttackKind kind : all_attack_kinds()) {
    for (const AttackSpec& spec : seed_manifest(kind, 11, 250)) {
      const SweepConfig config{"SS(32,2,2)", 2};
      const core::ExperimentSetup setup = make_cell_setup(spec, config);
      const core::Trace once = make_attack_trace(spec, setup, CoreId{0});
      const core::Trace again = make_attack_trace(spec, setup, CoreId{0});
      ASSERT_EQ(once.size(), 250u) << spec.key();
      expect_traces_equal(once, again);
      // Distinct cores draw distinct streams over distinct regions.
      const core::Trace peer = make_attack_trace(spec, setup, CoreId{1});
      EXPECT_NE(once[0].addr, peer[0].addr) << spec.key();
    }
  }
}

TEST(AttackTrace, ConflictStrideFocusesTargetSetsBeyondAssociativity) {
  AttackSpec spec;
  spec.kind = AttackKind::kConflictStride;
  spec.ops_per_core = 600;
  spec.target_sets = 2;
  spec.edge_sets = true;
  const SweepConfig config{"SS(32,2,2)", 2};
  const core::ExperimentSetup setup = make_cell_setup(spec, config);
  const llc::PartitionSpec& part =
      setup.partitions().spec(setup.partitions().partition_of(CoreId{0}));
  const core::Trace trace = make_attack_trace(spec, setup, CoreId{0});
  std::set<int> sets;
  std::set<Addr> lines;
  for (const core::MemOp& op : trace) {
    sets.insert(part.map_set(op.addr / 64));
    lines.insert(op.addr / 64);
  }
  // Every access lands in one of the requested edge sets...
  EXPECT_EQ(sets.size(), 2u);
  EXPECT_TRUE(sets.contains(part.first_set));
  EXPECT_TRUE(sets.contains(part.first_set + part.num_sets - 1));
  // ...with more distinct lines than the partition rectangle holds in
  // those sets, so the pattern cannot settle into cache residency.
  EXPECT_GT(lines.size(),
            static_cast<std::size_t>(2 * part.num_ways));
}

TEST(AttackTrace, WritebackStormExceedsCachesAndWritesHard) {
  AttackSpec spec;
  spec.kind = AttackKind::kWritebackStorm;
  spec.ops_per_core = 800;
  spec.depth_factor = 2;
  spec.write_fraction = 1.0;
  const SweepConfig config{"P(8,2)", 2};
  const core::ExperimentSetup setup = make_cell_setup(spec, config);
  const core::Trace trace = make_attack_trace(spec, setup, CoreId{0});
  std::set<Addr> lines;
  int writes = 0;
  for (const core::MemOp& op : trace) {
    lines.insert(op.addr / 64);
    writes += op.type == AccessType::kWrite ? 1 : 0;
  }
  EXPECT_EQ(writes, 800);
  // Working set strictly larger than the private L2, so the sweep keeps
  // evicting dirty lines instead of hitting privately.
  EXPECT_GT(lines.size(),
            static_cast<std::size_t>(
                setup.config.private_caches.l2.capacity_lines()));
}

TEST(AttackTrace, SlotBurstsArePhasedPerCoreInSlotWidths) {
  AttackSpec spec;
  spec.kind = AttackKind::kSlotBurst;
  spec.ops_per_core = 64;
  spec.burst_len = 8;
  spec.idle_slots = 3;
  spec.phase_stride = 1;
  const SweepConfig config{"SS(32,2,2)", 2};
  const core::ExperimentSetup setup = make_cell_setup(spec, config);
  const Cycle slot = setup.config.slot_width;
  const core::Trace t0 = make_attack_trace(spec, setup, CoreId{0});
  const core::Trace t1 = make_attack_trace(spec, setup, CoreId{1});
  EXPECT_EQ(t0[0].gap, 0);
  EXPECT_EQ(t1[0].gap, slot) << "core 1 must start one slot later";
  for (std::size_t i = 1; i < t0.size(); ++i) {
    const Cycle want = i % 8 == 0 ? 3 * slot : 0;
    EXPECT_EQ(t0[i].gap, want) << "op " << i;
  }
}

TEST(AdversarySearch, ValidatesOptionsAndMask) {
  AdversaryOptions options = small_options();
  options.configs.clear();
  EXPECT_THROW((void)run_adversary_search(options), ConfigError);
  options = small_options();
  const std::vector<bool> short_mask(1, true);
  EXPECT_THROW((void)run_adversary_search(options, &short_mask),
               ConfigError);
}

TEST(AdversarySearch, HoldsBoundAndFillsEveryTrack) {
  const AdversaryOptions options = small_options();
  const AdversaryResult result = run_adversary_search(options);
  ASSERT_EQ(result.tracks.size(),
            options.kinds.size() * options.configs.size());
  EXPECT_EQ(result.violations, 0)
      << "adversarial workloads must stay under the analytical WCL";
  for (const AdversaryTrack& track : result.tracks) {
    EXPECT_TRUE(track.ran);
    ASSERT_EQ(track.cells.size(),
              static_cast<std::size_t>(options.cells_per_track()));
    EXPECT_GE(track.min_slack, 0.0);
    EXPECT_LE(track.min_slack, 1.0);
    std::set<std::string> ids;
    for (const AdversaryCell& cell : track.cells) {
      EXPECT_TRUE(cell.metrics.completed);
      EXPECT_GT(cell.metrics.analytical_wcl, 0);
      EXPECT_LE(cell.metrics.observed_wcl, cell.metrics.analytical_wcl);
      ids.insert(cell.spec.id());
    }
    EXPECT_EQ(ids.size(), track.cells.size())
        << "hill-climb cells must be content-distinct";
  }
}

TEST(AdversarySearch, BitIdenticalAcrossThreadCounts) {
  AdversaryOptions serial = small_options();
  serial.threads = 1;
  AdversaryOptions parallel = small_options();
  parallel.threads = 4;
  const AdversaryResult a = run_adversary_search(serial);
  const AdversaryResult b = run_adversary_search(parallel);
  ASSERT_EQ(a.tracks.size(), b.tracks.size());
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.near_misses, b.near_misses);
  for (std::size_t t = 0; t < a.tracks.size(); ++t) {
    expect_cells_identical(a.tracks[t], b.tracks[t]);
  }
}

TEST(AdversarySearch, ShardedTracksStitchBitIdentical) {
  const AdversaryOptions options = small_options();
  const AdversaryResult whole = run_adversary_search(options);
  const std::size_t num_tracks = whole.tracks.size();
  for (const int shard_count : {1, 2, 3}) {
    std::vector<AdversaryTrack> stitched(num_tracks);
    for (int shard = 0; shard < shard_count; ++shard) {
      std::vector<bool> mask(num_tracks, false);
      for (std::size_t ordinal = 0; ordinal < num_tracks; ++ordinal) {
        mask[ordinal] =
            static_cast<int>(ordinal) % shard_count == shard;
      }
      const AdversaryResult part = run_adversary_search(options, &mask);
      ASSERT_EQ(part.tracks.size(), num_tracks);
      for (std::size_t ordinal = 0; ordinal < num_tracks; ++ordinal) {
        EXPECT_EQ(part.tracks[ordinal].ran, mask[ordinal]);
        if (mask[ordinal]) {
          stitched[ordinal] = part.tracks[ordinal];
        }
      }
    }
    for (std::size_t ordinal = 0; ordinal < num_tracks; ++ordinal) {
      ASSERT_TRUE(stitched[ordinal].ran) << "shards must cover all tracks";
      expect_cells_identical(whole.tracks[ordinal], stitched[ordinal]);
    }
  }
}

TEST(AdversarySearch, PromotionRoundTripsThroughTheCorpusLoader) {
  AdversaryOptions options = small_options();
  options.kinds = {AttackKind::kConflictStride};
  options.configs = {{"P(8,2)", 2}};
  const AdversaryResult result = run_adversary_search(options);
  const AdversaryTrack& track = result.tracks.front();
  const AdversaryCell* worst = &track.cells.front();
  for (const AdversaryCell& cell : track.cells) {
    if (cell.slack < worst->slack) {
      worst = &cell;
    }
  }

  const auto dir = fresh_dir("psllc_adversary_promo");
  const auto path = promote_cell(*worst, dir);
  EXPECT_EQ(path.filename().string(),
            "adv_conflict_" + worst->spec.id() + ".pslt");
  // Promoting the same cell twice dedups on the content-addressed stem.
  EXPECT_EQ(promote_cell(*worst, dir), path);

  const auto corpus = load_corpus_dir(dir);
  ASSERT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.front().name, path.stem().string());
  expect_traces_equal(corpus.front().trace, cua_trace(*worst));

  // The reloaded trace, substituted for the regenerated core-0 trace,
  // replays to the metrics the search recorded — the binary encode/decode
  // preserved the workload, not just its op count.
  const core::ExperimentSetup setup =
      make_cell_setup(worst->spec, worst->config);
  std::vector<core::Trace> traces;
  traces.push_back(corpus.front().trace);
  for (int c = 1; c < worst->config.active_cores; ++c) {
    traces.push_back(make_attack_trace(worst->spec, setup, CoreId{c}));
  }
  ReplayRequest request;
  request.setup = &setup;
  request.workload.per_core = &traces;
  request.options.max_cycles = options.max_cycles;
  const RunMetrics replayed = replay(request).metrics;
  EXPECT_EQ(replayed.completed, worst->metrics.completed);
  EXPECT_EQ(replayed.observed_wcl, worst->metrics.observed_wcl);
  EXPECT_EQ(replayed.makespan, worst->metrics.makespan);
  EXPECT_EQ(replayed.analytical_wcl, worst->metrics.analytical_wcl);
  EXPECT_EQ(replayed.llc_requests, worst->metrics.llc_requests);
}

}  // namespace
}  // namespace psllc::sim
