// Tests for the batched multi-sweep scheduler: budget accounting,
// outcome ordering, fail-fast error aggregation, and equivalence of the
// batched and standalone sweep paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/assert.h"
#include "sim/batch.h"
#include "sim/experiment.h"

namespace psllc::sim {
namespace {

TEST(Batch, RunsEveryJobAndKeepsInputOrder) {
  std::vector<int> grants(3, 0);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(BatchJob{
        "job" + std::to_string(i), 0,
        [&grants, i](int threads) { grants[static_cast<std::size_t>(i)] = threads; }});
  }
  BatchOptions options;
  options.threads = 4;
  const BatchReport report = run_batch(std::move(jobs), options);
  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_TRUE(report.all_ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(report.jobs[static_cast<std::size_t>(i)].name,
              "job" + std::to_string(i));
    EXPECT_EQ(report.jobs[static_cast<std::size_t>(i)].state, JobState::kOk);
    // --jobs defaults to 1, so every job gets the whole budget.
    EXPECT_EQ(grants[static_cast<std::size_t>(i)], 4);
    EXPECT_EQ(report.jobs[static_cast<std::size_t>(i)].threads, 4);
  }
}

TEST(Batch, SharedBudgetIsNeverOversubscribed) {
  constexpr int kBudget = 4;
  std::atomic<int> in_use{0};
  std::atomic<int> max_in_use{0};
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(BatchJob{
        "job" + std::to_string(i), 2, [&](int threads) {
          const int now = in_use.fetch_add(threads) + threads;
          int seen = max_in_use.load();
          while (now > seen && !max_in_use.compare_exchange_weak(seen, now)) {
          }
          in_use.fetch_sub(threads);
        }});
  }
  BatchOptions options;
  options.threads = kBudget;
  options.max_concurrent_jobs = 8;
  const BatchReport report = run_batch(std::move(jobs), options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_LE(max_in_use.load(), kBudget);
  for (const JobOutcome& job : report.jobs) {
    EXPECT_GE(job.threads, 1);
    EXPECT_LE(job.threads, 2);
  }
}

TEST(Batch, TakeEverythingJobsStillOverlapWhenJobsSlotsAllow) {
  // Two jobs that each block until the other has started: only an actual
  // overlap (fair-share grants instead of first-job-takes-all) lets the
  // batch finish. A wrong scheduler deadlocks until the rendezvous timeout
  // and fails the EXPECT below.
  std::mutex mutex;
  std::condition_variable both_started;
  int started = 0;
  bool overlapped = true;
  const auto rendezvous = [&](int) {
    std::unique_lock<std::mutex> lock(mutex);
    ++started;
    both_started.notify_all();
    overlapped =
        both_started.wait_for(lock, std::chrono::seconds(30),
                              [&] { return started == 2; }) &&
        overlapped;
  };
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{"left", 0, rendezvous});
  jobs.push_back(BatchJob{"right", 0, rendezvous});
  BatchOptions options;
  options.threads = 2;
  options.max_concurrent_jobs = 2;
  const BatchReport report = run_batch(std::move(jobs), options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_TRUE(overlapped);
  // Fair share: neither take-everything job got the whole budget.
  EXPECT_EQ(report.jobs[0].threads, 1);
  EXPECT_EQ(report.jobs[1].threads, 1);
}

TEST(Batch, FailFastSkipsLaterJobsAndAggregatesErrors) {
  int ran_after_failure = 0;
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{"ok", 0, [](int) {}});
  jobs.push_back(BatchJob{"boom", 0, [](int) {
                            throw std::runtime_error("cell 3 exploded");
                          }});
  jobs.push_back(
      BatchJob{"late", 0, [&](int) { ++ran_after_failure; }});
  BatchOptions options;
  options.threads = 2;
  const BatchReport report = run_batch(std::move(jobs), options);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.jobs[0].state, JobState::kOk);
  EXPECT_EQ(report.jobs[1].state, JobState::kFailed);
  EXPECT_EQ(report.jobs[1].error, "cell 3 exploded");
  EXPECT_EQ(report.jobs[2].state, JobState::kSkipped);
  EXPECT_EQ(ran_after_failure, 0);
  EXPECT_NE(report.error_summary().find("boom: cell 3 exploded"),
            std::string::npos);
}

TEST(Batch, KeepGoingRunsEverythingDespiteFailures) {
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{"boom", 0, [](int) {
                            throw std::runtime_error("first failure");
                          }});
  jobs.push_back(BatchJob{"survivor", 0, [](int) {}});
  BatchOptions options;
  options.threads = 1;
  options.fail_fast = false;
  const BatchReport report = run_batch(std::move(jobs), options);
  EXPECT_EQ(report.jobs[0].state, JobState::kFailed);
  EXPECT_EQ(report.jobs[1].state, JobState::kOk);
  EXPECT_EQ(report.count(JobState::kSkipped), 0);
}

TEST(Batch, EmitsProgressLinesForEveryJob) {
  std::mutex mutex;
  std::vector<std::string> lines;
  BatchOptions options;
  options.threads = 1;
  options.progress = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex);
    lines.push_back(line);
  };
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{"a", 0, [](int) {}});
  jobs.push_back(BatchJob{"b", 0, [](int) {
                            throw std::runtime_error("nope");
                          }});
  const BatchReport report = run_batch(std::move(jobs), options);
  EXPECT_FALSE(report.all_ok());
  ASSERT_EQ(lines.size(), 4u);  // run/done for a, run/FAIL for b
  EXPECT_NE(lines[0].find("run  a"), std::string::npos);
  EXPECT_NE(lines[1].find("done a"), std::string::npos);
  EXPECT_NE(lines[2].find("run  b"), std::string::npos);
  EXPECT_NE(lines[3].find("FAIL b"), std::string::npos);
}

TEST(Batch, RejectsInvalidOptionsAndJobs) {
  BatchOptions bad_jobs;
  bad_jobs.max_concurrent_jobs = 0;
  EXPECT_THROW(
      { auto r = run_batch({BatchJob{"a", 0, [](int) {}}}, bad_jobs); },
      ConfigError);
  EXPECT_THROW({ auto r = run_batch({BatchJob{"", 0, [](int) {}}}); },
               ConfigError);
  EXPECT_THROW({ auto r = run_batch({BatchJob{"a", 0, nullptr}}); },
               ConfigError);
}

// The acceptance property behind run_all: a sweep scheduled through the
// batch pool produces results identical to the same sweep run serially.
TEST(Batch, BatchedSweepMatchesSerialSweep) {
  const std::vector<SweepConfig> configs = {{"SS(1,2,2)", 2}, {"P(1,2)", 2}};
  SweepOptions serial_options;
  serial_options.address_ranges = {1024, 4096};
  serial_options.accesses_per_core = 400;
  serial_options.threads = 1;
  const SweepResult serial = run_sweep(configs, serial_options);

  results::Series batched_series(
      "empty", {{"x", results::ColumnType::kInt, results::ColumnKind::kExact,
                 ""}});
  std::vector<BatchJob> jobs;
  jobs.push_back(BatchJob{"sweep", 0, [&](int threads) {
                            SweepOptions options = serial_options;
                            options.threads = threads;
                            batched_series =
                                observed_wcl_series(run_sweep(configs, options));
                          }});
  BatchOptions batch;
  batch.threads = 3;
  const BatchReport report = run_batch(std::move(jobs), batch);
  ASSERT_TRUE(report.all_ok());
  const results::Series reference = observed_wcl_series(serial);
  EXPECT_EQ(batched_series.columns(), reference.columns());
  EXPECT_EQ(batched_series.rows(), reference.rows());
  EXPECT_EQ(batched_series.to_csv(), reference.to_csv());
}

}  // namespace
}  // namespace psllc::sim
