// Tests for the TDM schedule (distance calculus, Definition 4.2 /
// Corollary 4.3) and the PRB/PWB round-robin arbitration.
#include <gtest/gtest.h>

#include "bus/pending_buffers.h"
#include "bus/tdm_schedule.h"
#include "common/assert.h"

namespace psllc::bus {
namespace {

// --- schedules ---------------------------------------------------------------

TEST(TdmSchedule, OneSlotBuilderProperties) {
  const auto schedule = TdmSchedule::one_slot(4, 50);
  EXPECT_TRUE(schedule.is_one_slot_tdm());
  EXPECT_EQ(schedule.slots_per_period(), 4);
  EXPECT_EQ(schedule.period_cycles(), 200);
  EXPECT_EQ(schedule.num_cores(), 4);
  EXPECT_EQ(schedule.owner_of_slot(0), CoreId{0});
  EXPECT_EQ(schedule.owner_of_slot(5), CoreId{1});  // wraps
}

TEST(TdmSchedule, WeightedBuilder) {
  const auto schedule = TdmSchedule::weighted({1, 2}, 50);
  EXPECT_FALSE(schedule.is_one_slot_tdm());
  EXPECT_EQ(schedule.slots_per_period(), 3);
  EXPECT_EQ(schedule.owner_of_slot(1), CoreId{1});
  EXPECT_EQ(schedule.owner_of_slot(2), CoreId{1});
}

TEST(TdmSchedule, RejectsCoreWithNoSlot) {
  // Core 1 missing (ids must be dense).
  EXPECT_THROW(TdmSchedule::from_slots({CoreId{0}, CoreId{2}}, 50),
               ConfigError);
  EXPECT_THROW(TdmSchedule::one_slot(0, 50), ConfigError);
  EXPECT_THROW(TdmSchedule::one_slot(2, 0), ConfigError);
}

TEST(TdmSchedule, SlotTimingHelpers) {
  const auto schedule = TdmSchedule::one_slot(2, 100);
  EXPECT_EQ(schedule.slot_at(0), 0);
  EXPECT_EQ(schedule.slot_at(99), 0);
  EXPECT_EQ(schedule.slot_at(100), 1);
  EXPECT_EQ(schedule.slot_start(3), 300);
  EXPECT_EQ(schedule.next_slot_of(CoreId{1}, 0), 1);
  EXPECT_EQ(schedule.next_slot_of(CoreId{0}, 1), 2);
  EXPECT_EQ(schedule.next_slot_of(CoreId{0}, 2), 2);
}

// --- distance (Definition 4.2) -----------------------------------------------

TEST(TdmSchedule, PaperDistanceExamples) {
  // Figure 3: schedule {cua, c2, c3, c4}; d_{c3->cua} = 2, d_{c4->cua} = 1.
  const auto schedule = TdmSchedule::one_slot(4, 50);
  const CoreId cua{0};
  EXPECT_EQ(schedule.distance(CoreId{2}, cua), 2);
  EXPECT_EQ(schedule.distance(CoreId{3}, cua), 1);
  // Figure 4: d_{c2->c1} = 3.
  EXPECT_EQ(schedule.distance(CoreId{1}, cua), 3);
  // Maximal distance n for the core itself.
  EXPECT_EQ(schedule.distance(cua, cua), 4);
}

TEST(TdmSchedule, DistanceRequiresOneSlotTdm) {
  const auto schedule = TdmSchedule::weighted({1, 2}, 50);
  EXPECT_THROW((void)schedule.distance(CoreId{0}, CoreId{1}), AssertionError);
}

// Corollary 4.3 as a property over all N and core pairs.
class DistanceBounds : public ::testing::TestWithParam<int> {};

TEST_P(DistanceBounds, WithinOneToN) {
  const int n = GetParam();
  const auto schedule = TdmSchedule::one_slot(n, 50);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const int d = schedule.distance(CoreId{i}, CoreId{j});
      EXPECT_GE(d, 1);
      EXPECT_LE(d, n);
      if (i == j) {
        EXPECT_EQ(d, n);
      }
    }
  }
  // Distances from a fixed core to all others are a permutation of 1..N.
  for (int i = 0; i < n; ++i) {
    std::vector<bool> seen(static_cast<std::size_t>(n) + 1, false);
    for (int j = 0; j < n; ++j) {
      seen[static_cast<std::size_t>(
          schedule.distance(CoreId{i}, CoreId{j}))] = true;
    }
    for (int d = 1; d <= n; ++d) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(d)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(N, DistanceBounds, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(TdmSchedule, SharerDistanceRanksWithinSubset) {
  const auto schedule = TdmSchedule::one_slot(4, 50);
  // Sharers {c0, c2}: from c2 to c0 is 1 sharer-step; c0 to itself is 2.
  const std::vector<CoreId> sharers{CoreId{0}, CoreId{2}};
  EXPECT_EQ(schedule.sharer_distance(CoreId{2}, CoreId{0}, sharers), 1);
  EXPECT_EQ(schedule.sharer_distance(CoreId{0}, CoreId{2}, sharers), 1);
  EXPECT_EQ(schedule.sharer_distance(CoreId{0}, CoreId{0}, sharers), 2);
  // With all cores sharing, sharer distance equals Definition 4.2 distance.
  const std::vector<CoreId> all{CoreId{0}, CoreId{1}, CoreId{2}, CoreId{3}};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(schedule.sharer_distance(CoreId{i}, CoreId{j}, all),
                schedule.distance(CoreId{i}, CoreId{j}));
    }
  }
}

// --- PRB / PWB ------------------------------------------------------------------

BusMessage request_msg(LineAddr line, Cycle at) {
  BusMessage msg;
  msg.kind = MessageKind::kRequest;
  msg.source = CoreId{0};
  msg.line = line;
  msg.enqueued_at = at;
  return msg;
}

BusMessage wb_msg(LineAddr line, Cycle at, bool frees = false) {
  BusMessage msg;
  msg.kind = MessageKind::kWriteBack;
  msg.source = CoreId{0};
  msg.line = line;
  msg.enqueued_at = at;
  msg.frees_llc_entry = frees;
  return msg;
}

TEST(PendingBuffers, SingleOutstandingRequestEnforced) {
  PendingBuffers buffers(4);
  buffers.set_request(request_msg(0x1, 0));
  EXPECT_THROW(buffers.set_request(request_msg(0x2, 0)), AssertionError);
  buffers.clear_request();
  EXPECT_THROW(buffers.clear_request(), AssertionError);
}

TEST(PendingBuffers, PickAlternatesUnderBacklog) {
  PendingBuffers buffers(4);
  buffers.set_request(request_msg(0x1, 0));
  buffers.push_writeback(wb_msg(0x2, 0));
  buffers.push_writeback(wb_msg(0x3, 0));
  // Default preference: request first, then strict alternation.
  EXPECT_EQ(buffers.pick(100), PendingBuffers::Pick::kRequest);
  EXPECT_EQ(buffers.pick(100), PendingBuffers::Pick::kWriteBack);
  buffers.pop_writeback();
  EXPECT_EQ(buffers.pick(100), PendingBuffers::Pick::kRequest);
  EXPECT_EQ(buffers.pick(100), PendingBuffers::Pick::kWriteBack);
}

TEST(PendingBuffers, SoleSourceYieldsPreferenceToOther) {
  PendingBuffers buffers(4);
  buffers.set_request(request_msg(0x1, 0));
  EXPECT_EQ(buffers.pick(100), PendingBuffers::Pick::kRequest);
  // A write-back arriving now wins the next tie (the private-partition
  // critical path relies on this).
  buffers.push_writeback(wb_msg(0x2, 50));
  EXPECT_EQ(buffers.pick(100), PendingBuffers::Pick::kWriteBack);
}

TEST(PendingBuffers, EligibilityByEnqueueTime) {
  PendingBuffers buffers(4);
  buffers.set_request(request_msg(0x1, 120));
  EXPECT_EQ(buffers.pick(100), PendingBuffers::Pick::kNone);
  EXPECT_EQ(buffers.pick(120), PendingBuffers::Pick::kRequest);
  PendingBuffers wb_only(4);
  wb_only.push_writeback(wb_msg(0x2, 130));
  EXPECT_EQ(wb_only.pick(100), PendingBuffers::Pick::kNone);
  EXPECT_EQ(wb_only.pick(150), PendingBuffers::Pick::kWriteBack);
}

TEST(PendingBuffers, UpgradeToForced) {
  PendingBuffers buffers(4);
  buffers.push_writeback(wb_msg(0x5, 0));
  EXPECT_TRUE(buffers.has_writeback_for(0x5));
  EXPECT_TRUE(buffers.upgrade_writeback_to_forced(0x5));
  EXPECT_FALSE(buffers.upgrade_writeback_to_forced(0x9));
  const BusMessage msg = buffers.pop_writeback();
  EXPECT_TRUE(msg.frees_llc_entry);
}

TEST(PendingBuffers, CancelOnlyVoluntaryWritebacks) {
  PendingBuffers buffers(4);
  buffers.push_writeback(wb_msg(0x5, 0, /*frees=*/true));
  EXPECT_FALSE(buffers.cancel_writeback(0x5).has_value())
      << "freeing write-backs must not be cancellable";
  PendingBuffers voluntary(4);
  voluntary.push_writeback(wb_msg(0x6, 0));
  const auto cancelled = voluntary.cancel_writeback(0x6);
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->line, 0x6u);
  EXPECT_FALSE(voluntary.has_writeback());
}

TEST(PendingBuffers, RejectsDuplicateWriteback) {
  PendingBuffers buffers(4);
  buffers.push_writeback(wb_msg(0x5, 0));
  EXPECT_THROW(buffers.push_writeback(wb_msg(0x5, 10)), AssertionError);
}

TEST(PendingBuffers, PwbCapacityEnforced) {
  PendingBuffers buffers(2);
  buffers.push_writeback(wb_msg(0x1, 0));
  buffers.push_writeback(wb_msg(0x2, 0));
  EXPECT_THROW(buffers.push_writeback(wb_msg(0x3, 0)), AssertionError);
}

}  // namespace
}  // namespace psllc::bus
