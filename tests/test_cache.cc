// Tests for cache_set and set_assoc_cache: lookup, fill/evict, dirtiness,
// and geometry validation.
#include <gtest/gtest.h>

#include "common/assert.h"
#include "mem/cache_set.h"
#include "mem/set_assoc_cache.h"

namespace psllc::mem {
namespace {

CacheSet make_set(int ways) {
  return CacheSet(ways, make_replacement_policy(ReplacementKind::kLru, ways));
}

// --- CacheSet ----------------------------------------------------------------

TEST(CacheSet, InsertFindInvalidate) {
  CacheSet set = make_set(2);
  EXPECT_EQ(set.find(0x10), -1);
  EXPECT_EQ(set.find_free(), 0);
  set.insert(0x10, 0, LineState::kClean);
  EXPECT_EQ(set.find(0x10), 0);
  EXPECT_EQ(set.valid_count(), 1);
  const LineMeta old = set.invalidate(0);
  EXPECT_EQ(old.line, 0x10u);
  EXPECT_EQ(set.find(0x10), -1);
}

TEST(CacheSet, RejectsDuplicateLine) {
  CacheSet set = make_set(2);
  set.insert(0x10, 0, LineState::kClean);
  EXPECT_THROW(set.insert(0x10, 1, LineState::kClean), AssertionError);
}

TEST(CacheSet, RejectsInsertIntoOccupiedWay) {
  CacheSet set = make_set(2);
  set.insert(0x10, 0, LineState::kClean);
  EXPECT_THROW(set.insert(0x20, 0, LineState::kClean), AssertionError);
}

TEST(CacheSet, DirtyTransitions) {
  CacheSet set = make_set(1);
  set.insert(0x1, 0, LineState::kClean);
  EXPECT_FALSE(set.way(0).dirty());
  set.mark_dirty(0);
  EXPECT_TRUE(set.way(0).dirty());
  set.mark_clean(0);
  EXPECT_FALSE(set.way(0).dirty());
}

TEST(CacheSet, VictimMaskRejectsInvalidWays) {
  CacheSet set = make_set(2);
  set.insert(0x1, 0, LineState::kClean);
  std::vector<bool> eligible{true, true};  // way 1 is invalid
  EXPECT_THROW((void)set.select_victim(eligible), AssertionError);
}

TEST(CacheSet, CopyGetsIndependentPolicy) {
  CacheSet a = make_set(2);
  a.insert(0x1, 0, LineState::kClean);
  a.insert(0x2, 1, LineState::kClean);
  CacheSet b = a;
  a.touch(0);  // a's LRU = way 1; b's LRU unchanged = way 0
  EXPECT_EQ(a.select_victim_any(), 1);
  EXPECT_EQ(b.select_victim_any(), 0);
}

// --- SetAssocCache --------------------------------------------------------------

TEST(SetAssocCache, GeometryValidation) {
  EXPECT_THROW(SetAssocCache({0, 2, 64}, ReplacementKind::kLru), ConfigError);
  EXPECT_THROW(SetAssocCache({2, 0, 64}, ReplacementKind::kLru), ConfigError);
  EXPECT_THROW(SetAssocCache({2, 2, 48}, ReplacementKind::kLru), ConfigError);
}

TEST(SetAssocCache, HitUpdatesStateAndStats) {
  SetAssocCache cache({4, 2, 64}, ReplacementKind::kLru);
  EXPECT_FALSE(cache.access(0x10, false));
  cache.fill(0x10, false);
  EXPECT_TRUE(cache.access(0x10, false));
  EXPECT_FALSE(cache.is_dirty(0x10));
  EXPECT_TRUE(cache.access(0x10, true));
  EXPECT_TRUE(cache.is_dirty(0x10));
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(SetAssocCache, FillEvictsLruWhenFull) {
  SetAssocCache cache({1, 2, 64}, ReplacementKind::kLru);
  cache.fill(0x1, false);
  cache.fill(0x2, true);
  const auto victim = cache.fill(0x3, false);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 0x1u);
  EXPECT_FALSE(victim->dirty);
  EXPECT_FALSE(cache.contains(0x1));
  EXPECT_TRUE(cache.contains(0x2));
  EXPECT_TRUE(cache.contains(0x3));
}

TEST(SetAssocCache, FillReportsDirtyVictim) {
  SetAssocCache cache({1, 1, 64}, ReplacementKind::kLru);
  cache.fill(0x1, true);
  const auto victim = cache.fill(0x2, false);
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(victim->dirty);
}

TEST(SetAssocCache, RemoveReturnsMetadata) {
  SetAssocCache cache({2, 2, 64}, ReplacementKind::kLru);
  cache.fill(0x4, true);
  const auto removed = cache.remove(0x4);
  ASSERT_TRUE(removed.has_value());
  EXPECT_TRUE(removed->dirty);
  EXPECT_FALSE(cache.remove(0x4).has_value());
}

TEST(SetAssocCache, SetMappingIsModulo) {
  SetAssocCache cache({4, 1, 64}, ReplacementKind::kLru);
  // Lines 0 and 4 share set 0 (1 way): second fill evicts the first.
  cache.fill(0, false);
  const auto victim = cache.fill(4, false);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 0u);
  // Line 1 (set 1) coexists.
  cache.fill(1, false);
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(1));
}

TEST(SetAssocCache, ResidentLinesAndValidCount) {
  SetAssocCache cache({4, 2, 64}, ReplacementKind::kLru);
  cache.fill(0x11, false);
  cache.fill(0x22, false);
  EXPECT_EQ(cache.valid_lines(), 2);
  const auto lines = cache.resident_lines();
  EXPECT_EQ(lines.size(), 2u);
}

TEST(SetAssocCache, LineOfUsesLineSize) {
  CacheGeometry geometry{4, 2, 64};
  EXPECT_EQ(geometry.line_of(0), 0u);
  EXPECT_EQ(geometry.line_of(63), 0u);
  EXPECT_EQ(geometry.line_of(64), 1u);
  EXPECT_EQ(geometry.line_of(0x1000), 0x40u);
  CacheGeometry wide{4, 2, 128};
  EXPECT_EQ(wide.line_of(255), 1u);
}

// --- parameterized: geometry sweep ------------------------------------------------

class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheGeometrySweep, CapacityNeverExceeded) {
  const auto [sets, ways] = GetParam();
  SetAssocCache cache({sets, ways, 64}, ReplacementKind::kLru);
  for (LineAddr line = 0; line < 1000; ++line) {
    if (!cache.access(line, false)) {
      cache.fill(line, false);
    }
    ASSERT_LE(cache.valid_lines(), sets * ways);
  }
  EXPECT_EQ(cache.valid_lines(), sets * ways);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CacheGeometrySweep,
                         ::testing::Combine(::testing::Values(1, 2, 16, 32),
                                            ::testing::Values(1, 2, 4, 16)),
                         [](const auto& info) {
                           return "s" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_w" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace psllc::mem
