// Tests for the shared CLI parsing primitives (tools/cli.h): the argv
// cursor's flag/positional classification, flag-value consumption, and the
// validated numeric parsers — including the parse-time rejection of
// non-finite reals ("inf" would otherwise sail through from_chars and only
// explode much later, inside the result store).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/assert.h"
#include "tools/cli.h"

namespace psllc::cli {
namespace {

/// argv scaffold owning its strings (argv[0] is the binary name).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "test_bin");
    pointers_.reserve(strings_.size());
    for (std::string& text : strings_) {
      pointers_.push_back(text.data());
    }
  }
  [[nodiscard]] int argc() const {
    return static_cast<int>(pointers_.size());
  }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

bool classifies_as_flag(const std::string& arg) {
  Argv argv({arg});
  return ArgCursor("test_bin", argv.argc(), argv.argv()).is_flag();
}

TEST(ArgCursor, FlagClassification) {
  EXPECT_TRUE(classifies_as_flag("--threads"));
  EXPECT_TRUE(classifies_as_flag("-h"));
  EXPECT_TRUE(classifies_as_flag("--"));
  // A lone "-" is the conventional stdin placeholder and negative numbers
  // are values, not flags — neither may trip the unknown-flag path.
  EXPECT_FALSE(classifies_as_flag("-"));
  EXPECT_FALSE(classifies_as_flag("-5"));
  EXPECT_FALSE(classifies_as_flag("-0.25"));
  EXPECT_FALSE(classifies_as_flag("positional"));
}

TEST(ArgCursor, WalksFlagsAndValues) {
  Argv argv({"--ops", "500", "trailing"});
  ArgCursor args("test_bin", argv.argc(), argv.argv());
  ASSERT_FALSE(args.done());
  EXPECT_EQ(args.arg(), "--ops");
  EXPECT_FALSE(args.is_help());
  EXPECT_STREQ(args.value(), "500");
  ASSERT_FALSE(args.done());
  EXPECT_EQ(args.arg(), "trailing");
  EXPECT_FALSE(args.is_flag());
  args.advance();
  EXPECT_TRUE(args.done());
}

TEST(ArgCursor, MissingValueThrowsNamingTheFlag) {
  Argv argv({"--seed"});
  ArgCursor args("test_bin", argv.argc(), argv.argv());
  try {
    (void)args.value();
    FAIL() << "value() must throw when argv ends";
  } catch (const ConfigError& e) {
    EXPECT_EQ(std::string(e.what()), "--seed needs a value");
  }
  Argv argv2({"--promote"});
  ArgCursor args2("test_bin", argv2.argc(), argv2.argv());
  try {
    (void)args2.value("a directory");
    FAIL() << "value(what) must throw when argv ends";
  } catch (const ConfigError& e) {
    EXPECT_EQ(std::string(e.what()), "--promote needs a directory");
  }
}

TEST(ParseIntIn, EnforcesRangeAndFormat) {
  EXPECT_EQ(parse_int_in("42", "--n", 0, 100), 42);
  EXPECT_EQ(parse_int_in("-3", "--n", -10, 10), -3);
  EXPECT_THROW((void)parse_int_in("101", "--n", 0, 100), ConfigError);
  EXPECT_THROW((void)parse_int_in("4x", "--n", 0, 100), ConfigError);
  EXPECT_THROW((void)parse_int_in("", "--n", 0, 100), ConfigError);
  try {
    (void)parse_int_in("bogus", "cores", 1, 1024);
    FAIL() << "must throw";
  } catch (const ConfigError& e) {
    EXPECT_EQ(std::string(e.what()),
              "cores needs an integer in [1, 1024], got 'bogus'");
  }
}

TEST(ParseNonnegReal, AcceptsFiniteNonnegatives) {
  EXPECT_EQ(parse_nonneg_real("0", "--t"), 0.0);
  EXPECT_EQ(parse_nonneg_real("1.5", "--t"), 1.5);
  EXPECT_EQ(parse_nonneg_real("1e3", "--t"), 1000.0);
}

TEST(ParseNonnegReal, RejectsNonFiniteAtParseTime) {
  // std::from_chars's general format parses all of these as valid doubles;
  // the parser must still refuse them with the standard wording.
  for (const char* text :
       {"inf", "INF", "infinity", "nan", "nan(ind)", "-inf"}) {
    try {
      (void)parse_nonneg_real(text, "--threshold");
      FAIL() << "'" << text << "' must be rejected";
    } catch (const ConfigError& e) {
      EXPECT_EQ(std::string(e.what()),
                std::string("bad --threshold '") + text + "'");
    }
  }
  EXPECT_THROW((void)parse_nonneg_real("-0.5", "--t"), ConfigError);
  EXPECT_THROW((void)parse_nonneg_real("1.5extra", "--t"), ConfigError);
  EXPECT_THROW((void)parse_nonneg_real("", "--t"), ConfigError);
}

}  // namespace
}  // namespace psllc::cli
