// Unit tests for the common substrate: types, RNG, stats, tables, queues,
// strings.
#include <gtest/gtest.h>

#include <set>

#include "common/assert.h"
#include "common/fixed_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/types.h"

namespace psllc {
namespace {

// --- types -----------------------------------------------------------------

TEST(Types, CoreIdComparisonAndValidity) {
  EXPECT_FALSE(kNoCore.valid());
  EXPECT_TRUE(CoreId{0}.valid());
  EXPECT_LT(CoreId{1}, CoreId{2});
  EXPECT_EQ(CoreId{3}, CoreId{3});
  EXPECT_EQ(to_string(CoreId{2}), "c2");
  EXPECT_EQ(to_string(kNoCore), "c?");
}

TEST(Types, AccessTypeHelpers) {
  EXPECT_TRUE(is_write(AccessType::kWrite));
  EXPECT_FALSE(is_write(AccessType::kRead));
  EXPECT_FALSE(is_write(AccessType::kIfetch));
}

TEST(Types, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(64), 6);
  EXPECT_EQ(log2_exact(1), 0);
}

// --- assertions ------------------------------------------------------------

TEST(Assert, ThrowsAssertionErrorWithContext) {
  try {
    PSLLC_ASSERT(1 == 2, "value was " << 42);
    FAIL() << "assert did not throw";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Assert, ConfigCheckThrowsConfigError) {
  EXPECT_THROW(PSLLC_CONFIG_CHECK(false, "bad config"), ConfigError);
}

// PSLLC_AUDIT evaluates (and can throw) only in audit builds; elsewhere the
// condition must not even be evaluated.
TEST(Assert, AuditMatchesBuildMode) {
  int evaluations = 0;
  auto probe = [&evaluations]() {
    ++evaluations;
    return true;
  };
  PSLLC_AUDIT(probe(), "side-effect probe");
  EXPECT_EQ(evaluations, audit_enabled() ? 1 : 0);
  if (audit_enabled()) {
    EXPECT_THROW(PSLLC_AUDIT(false, "audit fires in audit builds"),
                 AssertionError);
  } else {
    EXPECT_NO_THROW(PSLLC_AUDIT(false, "compiled out"));
  }
}

// --- RNG --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(rng.next_below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo = hit_lo || v == -3;
    hit_hi = hit_hi || v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.next_bool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, MixSeedSeparatesStreams) {
  EXPECT_NE(mix_seed(1, 2, 3), mix_seed(1, 2, 4));
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_EQ(mix_seed(1, 2, 3), mix_seed(1, 2, 3));
}

// --- stats -------------------------------------------------------------------

TEST(Summary, TracksMinMaxMeanCount) {
  Summary s;
  for (std::int64_t v : {5, -2, 9, 0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 4);
  EXPECT_EQ(s.min(), -2);
  EXPECT_EQ(s.max(), 9);
  EXPECT_EQ(s.sum(), 12);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Summary, MergeCombines) {
  Summary a;
  a.add(1);
  a.add(5);
  Summary b;
  b.add(-7);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.min(), -7);
  EXPECT_EQ(a.max(), 5);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3);
}

TEST(Summary, EmptyAccessorsThrow) {
  Summary s;
  EXPECT_THROW((void)s.min(), AssertionError);
  EXPECT_THROW((void)s.max(), AssertionError);
  EXPECT_THROW((void)s.mean(), AssertionError);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(100, 10);  // buckets of width 10 + overflow
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(99);
  h.add(100);   // overflow
  h.add(5000);  // overflow
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(9), 1);
  EXPECT_EQ(h.bucket(10), 2);  // overflow bucket
  EXPECT_EQ(h.summary().count(), 6);
  EXPECT_EQ(h.summary().max(), 5000);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(1000, 100);
  for (int i = 0; i < 1000; ++i) {
    h.add(i);
  }
  EXPECT_NEAR(static_cast<double>(h.approx_quantile(0.5)), 500.0, 20.0);
  EXPECT_NEAR(static_cast<double>(h.approx_quantile(0.99)), 990.0, 20.0);
}

// --- table --------------------------------------------------------------------

TEST(Table, TextRenderingAligns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, RowSizeMismatchAsserts) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), AssertionError);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_cycles(979250), "979,250");
  EXPECT_EQ(format_cycles(-1234), "-1,234");
  EXPECT_EQ(format_cycles(42), "42");
}

// --- fixed queue -----------------------------------------------------------------

TEST(FixedQueue, FifoOrder) {
  FixedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  q.push(4);
  q.push(5);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_EQ(q.pop(), 5);
  EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, CapacityEnforced) {
  FixedQueue<int> q(2);
  q.push(1);
  q.push(2);
  EXPECT_TRUE(q.full());
  EXPECT_THROW(q.push(3), AssertionError);
  EXPECT_EQ(q.pop(), 1);
  q.push(3);  // wraps around
  EXPECT_EQ(q.at(0), 2);
  EXPECT_EQ(q.at(1), 3);
}

TEST(FixedQueue, EraseAtPreservesOrder) {
  FixedQueue<int> q(5);
  for (int i = 1; i <= 5; ++i) {
    q.push(i);
  }
  q.erase_at(2);  // remove 3
  EXPECT_EQ(q.size(), 4);
  EXPECT_EQ(q.at(0), 1);
  EXPECT_EQ(q.at(1), 2);
  EXPECT_EQ(q.at(2), 4);
  EXPECT_EQ(q.at(3), 5);
  q.erase_at(0);  // remove head
  EXPECT_EQ(q.front(), 2);
}

TEST(FixedQueue, FindIf) {
  FixedQueue<int> q(4);
  q.push(10);
  q.push(20);
  EXPECT_EQ(q.find_if([](int v) { return v == 20; }), 1);
  EXPECT_EQ(q.find_if([](int v) { return v == 99; }), -1);
}

TEST(FixedQueue, EmptyAccessorsAssert) {
  FixedQueue<int> q(2);
  EXPECT_THROW(q.pop(), AssertionError);
  EXPECT_THROW((void)q.front(), AssertionError);
  EXPECT_THROW((void)q.at(0), AssertionError);
}

// --- strings -----------------------------------------------------------------------

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
}

TEST(StringUtil, ParseU64DecimalAndHex) {
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("0x2A"), 42u);
  EXPECT_EQ(parse_u64(" 7 "), 7u);
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("0x").has_value());
  EXPECT_FALSE(parse_u64("12z").has_value());
}

TEST(StringUtil, ParseI64) {
  EXPECT_EQ(parse_i64("-5"), -5);
  EXPECT_EQ(parse_i64("123"), 123);
  EXPECT_FALSE(parse_i64("abc").has_value());
}

TEST(StringUtil, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("NSS", "nss"));
  EXPECT_FALSE(iequals("SS", "NSS"));
}

}  // namespace
}  // namespace psllc
