// Tests for the trace-corpus runner: the built-in demo corpus, directory
// loading across both trace formats, the run_corpus grid (bounds,
// determinism across thread counts, replay modes) and its error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/assert.h"
#include "sim/corpus.h"
#include "sim/trace_io.h"

namespace psllc::sim {
namespace {

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void expect_corpora_equal(const std::vector<CorpusEntry>& a,
                          const std::vector<CorpusEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].name, b[e].name);
    ASSERT_EQ(a[e].trace.size(), b[e].trace.size()) << a[e].name;
    for (std::size_t i = 0; i < a[e].trace.size(); ++i) {
      EXPECT_EQ(a[e].trace[i].addr, b[e].trace[i].addr)
          << a[e].name << " op " << i;
      EXPECT_EQ(a[e].trace[i].type, b[e].trace[i].type)
          << a[e].name << " op " << i;
      EXPECT_EQ(a[e].trace[i].gap, b[e].trace[i].gap)
          << a[e].name << " op " << i;
    }
  }
}

TEST(DemoCorpus, DeterministicSortedAndSized) {
  const auto a = make_demo_corpus(200);
  const auto b = make_demo_corpus(200);
  expect_corpora_equal(a, b);
  ASSERT_GE(a.size(), 3u);
  for (std::size_t e = 1; e < a.size(); ++e) {
    EXPECT_LT(a[e - 1].name, a[e].name) << "corpus must be name-sorted";
  }
  for (const CorpusEntry& entry : a) {
    EXPECT_GE(entry.trace.size(), 200u) << entry.name;
  }
  EXPECT_THROW((void)make_demo_corpus(0), ConfigError);
}

TEST(Corpus, DirLoadReproducesBuiltinAcrossBothFormats) {
  const auto builtin = make_demo_corpus(50);
  // Text corpus.
  const auto text_dir = fresh_dir("psllc_corpus_text");
  for (const CorpusEntry& entry : builtin) {
    write_trace_file((text_dir / (entry.name + ".trace")).string(),
                     entry.trace);
  }
  expect_corpora_equal(load_corpus_dir(text_dir), builtin);
  // Binary corpus.
  const auto bin_dir = fresh_dir("psllc_corpus_bin");
  for (const CorpusEntry& entry : builtin) {
    write_trace_file((bin_dir / (entry.name + ".pslt")).string(),
                     entry.trace);
  }
  expect_corpora_equal(load_corpus_dir(bin_dir), builtin);
  // Mixed corpus: loader dispatches per file.
  const auto mixed_dir = fresh_dir("psllc_corpus_mixed");
  for (std::size_t e = 0; e < builtin.size(); ++e) {
    const char* ext = e % 2 == 0 ? ".trace" : ".pslt";
    write_trace_file((mixed_dir / (builtin[e].name + ext)).string(),
                     builtin[e].trace);
  }
  expect_corpora_equal(load_corpus_dir(mixed_dir), builtin);
}

TEST(Corpus, DirLoadErrorPaths) {
  EXPECT_THROW((void)load_corpus_dir(fresh_dir("psllc_corpus_empty")),
               ConfigError);
  EXPECT_THROW(
      (void)load_corpus_dir(std::filesystem::path(::testing::TempDir()) /
                            "psllc_corpus_missing"),
      std::runtime_error);
  // Two formats sharing a stem is ambiguous.
  const auto dup_dir = fresh_dir("psllc_corpus_dup");
  const core::Trace trace{core::MemOp{0x40, AccessType::kRead, 0}};
  write_trace_file((dup_dir / "a.trace").string(), trace);
  write_trace_file((dup_dir / "a.pslt").string(), trace);
  EXPECT_THROW((void)load_corpus_dir(dup_dir), ConfigError);
  // Unrelated files are ignored; trace extensions match case-insensitively.
  const auto noise_dir = fresh_dir("psllc_corpus_noise");
  write_trace_file((noise_dir / "ok.trace").string(), trace);
  write_trace_file((noise_dir / "UPPER.TRACE").string(), trace);
  std::ofstream(noise_dir / "README.md") << "not a trace\n";
  EXPECT_EQ(load_corpus_dir(noise_dir).size(), 2u);
}

TEST(Corpus, RunGridHoldsBoundsAndIsThreadCountInvariant) {
  const auto corpus = make_demo_corpus(80);
  const std::vector<SweepConfig> configs = {{"SS(32,2,2)", 2},
                                            {"P(8,2)", 2}};
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;

  const CorpusResult a = run_corpus(corpus, configs, serial);
  const CorpusResult b = run_corpus(corpus, configs, parallel);

  ASSERT_EQ(a.cells.size(), corpus.size() * configs.size());
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const RunMetrics& ma = a.cells[i].metrics;
    const RunMetrics& mb = b.cells[i].metrics;
    EXPECT_EQ(a.cells[i].trace_name, b.cells[i].trace_name) << "cell " << i;
    EXPECT_TRUE(ma.completed) << "cell " << i;
    EXPECT_LE(ma.observed_wcl, ma.analytical_wcl) << "cell " << i;
    EXPECT_GT(ma.llc_requests, 0) << "cell " << i;
    EXPECT_EQ(ma.makespan, mb.makespan) << "cell " << i;
    EXPECT_EQ(ma.observed_wcl, mb.observed_wcl) << "cell " << i;
    EXPECT_EQ(ma.llc_requests, mb.llc_requests) << "cell " << i;
    EXPECT_EQ(ma.per_core_finish, mb.per_core_finish) << "cell " << i;
  }
  // Mirrored replay engages every active core.
  const RunMetrics& first = a.cell(0, 0).metrics;
  ASSERT_EQ(first.per_core_finish.size(), 2u);
  EXPECT_NE(first.per_core_finish[1], kNoCycle);
}

TEST(Corpus, SoloReplayLeavesOtherCoresIdle) {
  const std::vector<CorpusEntry> corpus = {
      {"only", make_demo_corpus(60).front().trace}};
  const std::vector<SweepConfig> configs = {{"SS(32,2,2)", 2}};
  SweepOptions options;
  options.threads = 1;
  const CorpusResult result =
      run_corpus(corpus, configs, options, CorpusReplay::kSolo);
  const RunMetrics& m = result.cell(0, 0).metrics;
  EXPECT_TRUE(m.completed);
  EXPECT_LE(m.observed_wcl, m.analytical_wcl);
  EXPECT_GT(m.llc_requests, 0);
}

TEST(Corpus, RunRejectsBadInput) {
  const auto corpus = make_demo_corpus(10);
  const std::vector<SweepConfig> configs = {{"SS(32,2,2)", 2}};
  SweepOptions options;
  options.threads = 1;
  EXPECT_THROW((void)run_corpus(std::vector<CorpusEntry>{}, configs,
                                options),
               ConfigError);
  EXPECT_THROW((void)run_corpus(corpus, {}, options), ConfigError);
  std::vector<CorpusEntry> dup = {corpus.front(), corpus.front()};
  EXPECT_THROW((void)run_corpus(dup, configs, options), ConfigError);
  // A bad notation fails the cell; run_corpus surfaces it.
  const std::vector<SweepConfig> bogus = {{"bogus-notation", 2}};
  EXPECT_THROW((void)run_corpus(corpus, bogus, options), ConfigError);
}

TEST(Corpus, StreamingSourcesMatchMaterializedEntries) {
  const auto corpus = make_demo_corpus(80);
  std::vector<CorpusSource> sources = demo_corpus_sources(80);
  const std::vector<SweepConfig> configs = {{"SS(32,2,2)", 2},
                                            {"P(8,2)", 2}};
  SweepOptions options;
  options.threads = 2;
  const CorpusResult via_entries = run_corpus(corpus, configs, options);
  const CorpusResult via_sources = run_corpus(sources, configs, options);
  ASSERT_EQ(via_entries.cells.size(), via_sources.cells.size());
  for (std::size_t i = 0; i < via_entries.cells.size(); ++i) {
    EXPECT_EQ(via_entries.cells[i].trace_name,
              via_sources.cells[i].trace_name);
    EXPECT_TRUE(via_sources.cells[i].ran);
    EXPECT_EQ(via_entries.cells[i].metrics.makespan,
              via_sources.cells[i].metrics.makespan) << "cell " << i;
    EXPECT_EQ(via_entries.cells[i].metrics.observed_wcl,
              via_sources.cells[i].metrics.observed_wcl) << "cell " << i;
  }
  // Per-entry stats come back from the run, computed while the trace was
  // resident.
  ASSERT_EQ(via_sources.entry_stats.size(), corpus.size());
  for (std::size_t e = 0; e < corpus.size(); ++e) {
    EXPECT_TRUE(via_sources.entry_ran[e]);
    const TraceStats expected = compute_trace_stats(corpus[e].trace);
    EXPECT_EQ(via_sources.entry_stats[e].ops, expected.ops);
    EXPECT_EQ(via_sources.entry_stats[e].distinct_lines,
              expected.distinct_lines);
  }
}

TEST(Corpus, PerEntryStreamingBoundsPeakEntriesResident) {
  // 4 entries, one active-core-count group -> 4 jobs. A serial run must
  // only ever hold ONE entry resident (the whole point of per-entry
  // streaming: the corpus is no longer materialized up front), and a
  // 2-thread run at most two.
  const std::vector<SweepConfig> configs = {{"SS(32,2,2)", 2},
                                            {"P(8,2)", 2}};
  SweepOptions serial;
  serial.threads = 1;
  const CorpusResult one =
      run_corpus(demo_corpus_sources(60), configs, serial);
  EXPECT_EQ(one.peak_entries_resident, 1);

  SweepOptions two;
  two.threads = 2;
  const CorpusResult both =
      run_corpus(demo_corpus_sources(60), configs, two);
  EXPECT_GE(both.peak_entries_resident, 1);
  EXPECT_LE(both.peak_entries_resident, 2);
}

TEST(Corpus, CellMaskRunsOnlyOwnedCellsAndNeverLoadsUnownedEntries) {
  const auto corpus = make_demo_corpus(60);
  const std::vector<SweepConfig> configs = {{"SS(32,2,2)", 2},
                                            {"P(8,2)", 2}};
  // Instrumented sources: count how often each entry is loaded.
  auto load_counts =
      std::make_shared<std::vector<std::atomic<int>>>(corpus.size());
  std::vector<CorpusSource> sources;
  for (std::size_t e = 0; e < corpus.size(); ++e) {
    sources.push_back({corpus[e].name, [&corpus, load_counts, e] {
                         ++(*load_counts)[e];
                         return corpus[e].trace;
                       }});
  }
  // Own only entry 0 (both configs) and entry 2 (first config).
  std::vector<bool> mask(corpus.size() * configs.size(), false);
  mask[0] = true;
  mask[1] = true;
  mask[2 * configs.size()] = true;

  SweepOptions options;
  options.threads = 2;
  const CorpusResult partial =
      run_corpus(sources, configs, options, CorpusReplay::kMirrored, &mask);
  const CorpusResult full = run_corpus(corpus, configs, options);

  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_EQ(partial.cells[i].ran, static_cast<bool>(mask[i]))
        << "cell " << i;
    EXPECT_EQ(partial.cells[i].trace_name, full.cells[i].trace_name);
    if (mask[i]) {
      // Owned cells are bit-identical to the full run.
      EXPECT_EQ(partial.cells[i].metrics.makespan,
                full.cells[i].metrics.makespan) << "cell " << i;
      EXPECT_EQ(partial.cells[i].metrics.observed_wcl,
                full.cells[i].metrics.observed_wcl) << "cell " << i;
      EXPECT_EQ(partial.cells[i].metrics.per_core_finish,
                full.cells[i].metrics.per_core_finish) << "cell " << i;
    } else {
      EXPECT_FALSE(partial.cells[i].metrics.completed);
    }
  }
  EXPECT_TRUE(partial.entry_ran[0]);
  EXPECT_FALSE(partial.entry_ran[1]);
  EXPECT_TRUE(partial.entry_ran[2]);
  EXPECT_FALSE(partial.entry_ran[3]);
  EXPECT_EQ(partial.entry_stats[0].ops,
            compute_trace_stats(corpus[0].trace).ops);
  for (std::size_t e = 0; e < corpus.size(); ++e) {
    if (partial.entry_ran[e]) {
      EXPECT_GE((*load_counts)[e].load(), 1) << "entry " << e;
    } else {
      EXPECT_EQ((*load_counts)[e].load(), 0)
          << "masked-out entry " << e << " was loaded";
    }
  }

  // Bad masks: wrong arity, or a mask excluding the whole grid.
  std::vector<bool> short_mask(3, true);
  EXPECT_THROW((void)run_corpus(sources, configs, options,
                                CorpusReplay::kMirrored, &short_mask),
               ConfigError);
  std::vector<bool> empty_mask(corpus.size() * configs.size(), false);
  EXPECT_THROW((void)run_corpus(sources, configs, options,
                                CorpusReplay::kMirrored, &empty_mask),
               ConfigError);
}

TEST(Corpus, MirroredReplayRejectsUnshiftableAddresses) {
  const std::vector<CorpusEntry> corpus = {
      {"wide", core::Trace{core::MemOp{Addr{1} << 63, AccessType::kRead,
                                       0}}}};
  const std::vector<SweepConfig> configs = {{"SS(32,2,2)", 2}};
  SweepOptions options;
  options.threads = 1;
  EXPECT_THROW((void)run_corpus(corpus, configs, options), ConfigError);
}

}  // namespace
}  // namespace psllc::sim
