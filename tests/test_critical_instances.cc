// Integration tests replaying the paper's adversarial scenarios exactly:
// Figure 2 (unbounded WCL), Figure 3 (distance decay), Figure 4 (distance
// increase under cua write-backs).
#include <gtest/gtest.h>

#include "core/critical_instance.h"
#include "core/distance_monitor.h"
#include "core/wcl_analysis.h"

namespace psllc::core {
namespace {

// --- Figure 2: the unbounded scenario --------------------------------------

TEST(UnboundedScenario, BestEffortMultiSlotStarvesCua) {
  auto scenario = make_unbounded_scenario(llc::ContentionMode::kBestEffort,
                                          /*one_slot_tdm=*/false);
  // Run many periods: cua's single request must still be outstanding while
  // the interferer keeps completing accesses.
  scenario.system->run_slots(3000);
  EXPECT_TRUE(scenario.system->core(scenario.cua).blocked())
      << "cua unexpectedly completed under the unbounded scenario";
  EXPECT_EQ(scenario.system->tracker().service_latency(scenario.cua).count(),
            0);
  // The interferer is making progress the whole time (not a deadlock).
  EXPECT_GT(scenario.system->core(scenario.interferer).ops_completed(), 500u);
}

TEST(UnboundedScenario, OneSlotTdmBoundsTheLatency) {
  auto scenario = make_unbounded_scenario(llc::ContentionMode::kBestEffort,
                                          /*one_slot_tdm=*/true);
  scenario.system->run_slots(3000);
  ASSERT_EQ(scenario.system->tracker().service_latency(scenario.cua).count(),
            1);
  // Theorem 4.7 with N = n = 2, w = 2, m = min(64, 2) = 2:
  // ((2+1) * (2*1*2*1) * 2 + 1) * 50 = 25 slots * 50.
  SharedPartitionScenario analysis;
  analysis.total_cores = 2;
  analysis.sharers = 2;
  analysis.partition_sets = 1;
  analysis.partition_ways = 2;
  analysis.cua_capacity_lines = 64;
  EXPECT_LE(scenario.system->tracker().service_latency(scenario.cua).max(),
            wcl_1s_tdm_cycles(analysis));
}

TEST(UnboundedScenario, SetSequencerPreventsStarvationEvenMultiSlot) {
  // Beyond the paper: FIFO ordering alone removes the Section 4.1 scenario.
  auto scenario = make_unbounded_scenario(llc::ContentionMode::kSetSequencer,
                                          /*one_slot_tdm=*/false);
  scenario.system->run_slots(3000);
  EXPECT_EQ(scenario.system->tracker().service_latency(scenario.cua).count(),
            1);
}

// --- Figure 3: distance decay, request eventually completes ----------------

TEST(Fig3Scenario, CuaCompletesAtItsFourthSlot) {
  auto scenario = make_fig3_scenario();
  System& system = *scenario.system;
  const auto result = system.run(/*max_cycles=*/100000);
  ASSERT_TRUE(result.all_done);
  const RequestTracker& tracker = system.tracker();
  ASSERT_EQ(tracker.service_latency(scenario.cua).count(), 1);
  // Completion at the end of cua's 4th slot: 13 slots of service latency.
  EXPECT_EQ(tracker.service_latency(scenario.cua).max(),
            scenario.expected_completion);
}

TEST(Fig3Scenario, SlotBySlotOwnershipMatchesTheFigure) {
  auto scenario = make_fig3_scenario();
  System& system = *scenario.system;
  const llc::PartitionedLlc& llc = system.llc();

  // Lead-in period: requests issue mid-slot and wait for their next slots.
  for (int s = 0; s < scenario.lead_in_slots; ++s) {
    system.step_slot();
  }
  // Figure slot 1 (cua): Req X misses, evicts l1 (owned by c3).
  system.step_slot();
  {
    const int way = llc.find_way(scenario.cua, scenario.l1);
    ASSERT_GE(way, 0);
    const auto entry = llc.entry(0, way);
    EXPECT_TRUE(entry.pending_inval);
    ASSERT_EQ(entry.sharers.size(), 1u);
    EXPECT_EQ(entry.sharers[0], scenario.c3);
  }
  // c2 idle; figure slot 2 (c3): WB l1 frees the entry.
  system.step_slot();
  system.step_slot();
  EXPECT_EQ(llc.find_way(scenario.cua, scenario.l1), -1);
  EXPECT_EQ(llc.free_ways(scenario.cua, scenario.x), 1);
  // Figure slot 3 (c4): Req Y occupies the freed entry (best effort).
  system.step_slot();
  EXPECT_GE(llc.find_way(scenario.c4, scenario.y), 0);
  EXPECT_EQ(llc.free_ways(scenario.cua, scenario.x), 0);
  EXPECT_TRUE(system.core(scenario.cua).blocked());

  // Figure slot 4 (cua): retry evicts l2 (owned by c3).
  system.step_slot();
  {
    const int way = llc.find_way(scenario.cua, scenario.l2);
    ASSERT_GE(way, 0);
    EXPECT_TRUE(llc.entry(0, way).pending_inval);
  }
  // c2 idle; figure slot 5 (c3): WB l2 frees; figure slot 6 (c4): Req Z.
  system.step_slot();
  system.step_slot();
  system.step_slot();
  EXPECT_GE(llc.find_way(scenario.c4, scenario.z), 0);

  // Figure slot 7 (cua): retry evicts Y (owned by c4, LRU of the two).
  system.step_slot();
  {
    const int way = llc.find_way(scenario.c4, scenario.y);
    ASSERT_GE(way, 0);
    EXPECT_TRUE(llc.entry(0, way).pending_inval);
  }
  // c2, c3 idle; figure slot 8 (c4): WB Y (frees).
  system.step_slot();
  system.step_slot();
  system.step_slot();
  EXPECT_EQ(llc.free_ways(scenario.cua, scenario.x), 1);

  // Figure slot 9 (cua): fill + response.
  system.step_slot();
  EXPECT_FALSE(system.core(scenario.cua).blocked());
  EXPECT_GE(llc.find_way(scenario.cua, scenario.x), 0);
  EXPECT_EQ(system.tracker().service_latency(scenario.cua).max(),
            scenario.expected_completion);
}

// --- Figure 4: write-backs by cua increase distance ------------------------

TEST(Fig4Scenario, CuaWriteBackLetsFartherCoreStealAndRaisesDistance) {
  auto scenario = make_fig4_scenario();
  System& system = *scenario.system;
  DistanceMonitor monitor(system, scenario.cua);
  system.add_slot_observer(
      [&monitor](const SlotEvent& event) { monitor.on_slot(event); });
  const llc::PartitionedLlc& llc = system.llc();

  // Lead-in period, then the figure's period t: cua Req X (evict l1),
  // c2 Req Y (evict l2), c3 Req A (evict l owned by cua!), c4 WB l1
  // (frees a set-0 way).
  for (int s = 0; s < scenario.lead_in_slots + 4; ++s) {
    system.step_slot();
  }
  EXPECT_EQ(llc.find_way(scenario.cua, scenario.l1), -1);  // freed
  EXPECT_TRUE(
      system.core(scenario.cua).buffers().has_writeback_for(scenario.l));

  // cua's second presented slot: round-robin picks the forced WB of l —
  // the request cannot complete despite the free entry (the paper's step 5).
  system.step_slot();
  EXPECT_TRUE(system.core(scenario.cua).blocked());
  EXPECT_EQ(llc.find_way(scenario.cua, scenario.l), -1);  // set-1 way freed

  // c2's slot: Req Y occupies the set-0 entry freed by c4 — the core
  // caching that way went from c4 (distance 1) to c2 (distance 3).
  system.step_slot();
  {
    const int way = llc.find_way(scenario.c2, scenario.y);
    ASSERT_GE(way, 0);
    const auto entry = llc.entry(0, way);
    ASSERT_EQ(entry.sharers.size(), 1u);
    EXPECT_EQ(entry.sharers[0], scenario.c2);
    const auto& schedule = system.schedule();
    EXPECT_EQ(schedule.distance(scenario.c4, scenario.cua), 1);
    EXPECT_EQ(schedule.distance(scenario.c2, scenario.cua), 3);
  }

  // c3 Resp A, c4 WB l2 (frees), cua Resp X.
  system.step_slot();
  system.step_slot();
  system.step_slot();
  EXPECT_FALSE(system.core(scenario.cua).blocked());
  EXPECT_EQ(system.tracker().service_latency(scenario.cua).max(),
            scenario.expected_completion);

  // The monitor must have witnessed an increase right after cua's WB and
  // no violation of Lemma 4.4 (no increase without a write-back).
  EXPECT_GE(monitor.increases_after_writeback(), 1);
  EXPECT_TRUE(monitor.violations().empty());
}

}  // namespace
}  // namespace psllc::core
