// Property tests for the paper's observations (Section 4.3) validated by
// the DistanceMonitor on live simulations:
//  * Observation 1 / Lemma 4.4 — no distance increase without a cua
//    write-back (checked for every core as cua, over random conflict-heavy
//    NSS and SS workloads).
//  * Observation 3 / Lemma 4.6 — increases do occur after cua write-backs
//    (witnessed under contention).
#include <gtest/gtest.h>

#include <memory>

#include "core/distance_monitor.h"
#include "core/system.h"
#include "sim/workload.h"

namespace psllc::core {
namespace {

struct MonitorParam {
  std::string notation;
  std::uint64_t seed;
};

class ObservationsHold : public ::testing::TestWithParam<MonitorParam> {};

TEST_P(ObservationsHold, NoDistanceIncreaseWithoutCuaWriteback) {
  const auto& param = GetParam();
  const ExperimentSetup setup = make_paper_setup(param.notation, 4);
  System system(setup);
  std::vector<std::unique_ptr<DistanceMonitor>> monitors;
  for (int c = 0; c < 4; ++c) {
    monitors.push_back(std::make_unique<DistanceMonitor>(system, CoreId{c}));
    DistanceMonitor* monitor = monitors.back().get();
    system.add_slot_observer(
        [monitor](const SlotEvent& event) { monitor->on_slot(event); });
  }
  sim::RandomWorkloadOptions workload;
  workload.range_bytes = 8192;
  workload.accesses = 3000;
  workload.write_fraction = 0.4;
  const auto traces =
      sim::make_disjoint_random_workload(4, workload, param.seed);
  for (int c = 0; c < 4; ++c) {
    system.set_trace(CoreId{c}, traces[static_cast<std::size_t>(c)]);
  }
  const auto result = system.run(500'000'000);
  ASSERT_TRUE(result.all_done);

  std::int64_t total_windows = 0;
  for (int c = 0; c < 4; ++c) {
    const auto& monitor = *monitors[static_cast<std::size_t>(c)];
    EXPECT_TRUE(monitor.violations().empty())
        << "cua=c" << c << ": " << monitor.violations().size()
        << " Lemma 4.4 violations, first at slot start "
        << (monitor.violations().empty()
                ? -1
                : monitor.violations().front().slot_start);
    total_windows += monitor.windows_checked();
  }
  // The property must have been exercised, not vacuously true.
  EXPECT_GT(total_windows, 100);
}

// NSS configurations only: Lemma 4.4 is proven for the plain 1S-TDM
// analysis (no sequencer). Under SS, a free entry legally survives cua's
// slot when cua is not at the head of the set queue, and the head core may
// sit farther in the schedule — the sequencer's FIFO guarantee replaces the
// distance argument there (covered by test_llc's ordering tests).
INSTANTIATE_TEST_SUITE_P(
    Configs, ObservationsHold,
    ::testing::Values(MonitorParam{"NSS(1,2,4)", 1},
                      MonitorParam{"NSS(1,4,4)", 2},
                      MonitorParam{"NSS(2,2,4)", 3},
                      MonitorParam{"NSS(1,2,4)", 4},
                      MonitorParam{"NSS(2,4,4)", 5}),
    [](const ::testing::TestParamInfo<MonitorParam>& info) {
      std::string name = info.param.notation + "_s" +
                         std::to_string(info.param.seed);
      for (char& ch : name) {
        if (ch == '(' || ch == ')' || ch == ',') {
          ch = '_';
        }
      }
      return name;
    });

TEST(Observation3, IncreasesWitnessedUnderBestEffortContention) {
  const ExperimentSetup setup = make_paper_setup("NSS(1,2,4)", 4);
  System system(setup);
  std::vector<std::unique_ptr<DistanceMonitor>> monitors;
  for (int c = 0; c < 4; ++c) {
    monitors.push_back(std::make_unique<DistanceMonitor>(system, CoreId{c}));
    DistanceMonitor* monitor = monitors.back().get();
    system.add_slot_observer(
        [monitor](const SlotEvent& event) { monitor->on_slot(event); });
  }
  sim::RandomWorkloadOptions workload;
  workload.range_bytes = 8192;
  workload.accesses = 5000;
  workload.write_fraction = 0.5;
  const auto traces = sim::make_disjoint_random_workload(4, workload, 17);
  for (int c = 0; c < 4; ++c) {
    system.set_trace(CoreId{c}, traces[static_cast<std::size_t>(c)]);
  }
  ASSERT_TRUE(system.run(500'000'000).all_done);
  std::int64_t witnessed = 0;
  for (const auto& monitor : monitors) {
    witnessed += monitor->increases_after_writeback();
  }
  EXPECT_GT(witnessed, 0)
      << "Observation 3 increases should occur under heavy conflict";
}

}  // namespace
}  // namespace psllc::core
