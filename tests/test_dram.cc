// Memory-backend conformance battery. Every registered backend variant must
// honor the WCL contract of mem/memory_backend.h under randomized address
// streams: no single access above worst_case_latency(), counters that sum
// correctly, row-hit/miss accounting that matches an independent reference
// model, clones that continue bit-identically, and config validation that
// rejects inconsistent parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "mem/memory_backend.h"

namespace psllc::mem {
namespace {

using Variant = BackendVariant;

/// Every variant the conformance battery covers: the registered list (the
/// same one the WCL property grid and the ablation_dram_backend bench
/// sweep) plus boundary configurations worth stressing.
std::vector<Variant> all_variants() {
  std::vector<Variant> variants = registered_backend_variants();

  DramConfig tiny_queue;
  tiny_queue.backend = MemoryBackendKind::kWriteQueue;
  tiny_queue.wq_capacity = 1;
  variants.push_back({"writequeue_tiny", tiny_queue});
  return variants;
}

/// One deterministic access: bursty timestamps (frequently equal `now`, so
/// write-queue back-pressure is actually reachable) over a line space much
/// larger than any row-buffer working set.
struct Access {
  LineAddr line = 0;
  bool is_write = false;
  Cycle now = 0;
};

std::vector<Access> random_stream(std::uint64_t seed, int length) {
  Rng rng(mix_seed(seed, 0xd7a0));
  std::vector<Access> stream;
  stream.reserve(static_cast<std::size_t>(length));
  Cycle now = 0;
  for (int i = 0; i < length; ++i) {
    now += static_cast<Cycle>(rng.next_below(4));  // 0..3: often same cycle
    stream.push_back(Access{rng.next_below(1 << 20), rng.next_bool(0.5), now});
  }
  return stream;
}

Cycle apply(MemoryBackend& backend, const Access& access) {
  return access.is_write ? backend.write(access.line, access.now)
                         : backend.read(access.line, access.now);
}

class BackendConformance : public ::testing::TestWithParam<Variant> {};

TEST_P(BackendConformance, ObservedLatencyNeverExceedsWorstCase) {
  const Variant& variant = GetParam();
  const auto backend = variant.config.make_backend();
  const Cycle worst = backend->worst_case_latency();
  EXPECT_GT(worst, 0);
  // The config-level bound is the backend-supplied one (the value
  // SystemConfig::validate sizes the TDM slot against).
  EXPECT_EQ(variant.config.worst_case_latency(), worst);
  for (const Access& access : random_stream(1, 20000)) {
    const Cycle latency = apply(*backend, access);
    ASSERT_GT(latency, 0);
    ASSERT_LE(latency, worst) << variant.label;
  }
  EXPECT_LE(backend->counters().max_latency, worst);
  // The bound must not drift as state accumulates.
  EXPECT_EQ(backend->worst_case_latency(), worst);
}

TEST_P(BackendConformance, CountersSumCorrectly) {
  const Variant& variant = GetParam();
  const auto backend = variant.config.make_backend();
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  for (const Access& access : random_stream(2, 10000)) {
    (void)apply(*backend, access);
    ++(access.is_write ? writes : reads);
  }
  const MemoryCounters& counters = backend->counters();
  EXPECT_EQ(counters.reads, reads);
  EXPECT_EQ(counters.writes, writes);
  EXPECT_EQ(counters.accesses(), reads + writes);
  switch (variant.config.backend) {
    case MemoryBackendKind::kFixedLatency:
      EXPECT_EQ(counters.row_hits + counters.row_misses, 0);
      EXPECT_EQ(counters.queued_writes, 0);
      break;
    case MemoryBackendKind::kBankRow:
      // Every access resolves to exactly one row-buffer outcome.
      EXPECT_EQ(counters.row_hits + counters.row_misses, reads + writes);
      if (variant.config.page_policy == PagePolicy::kClosedPage) {
        EXPECT_EQ(counters.row_hits, 0);
      }
      break;
    case MemoryBackendKind::kWriteQueue: {
      // No lost write-backs: everything queued either drained or is still
      // buffered, and the buffer never exceeded its physical capacity.
      const auto& queue =
          dynamic_cast<const WriteQueueBackend&>(*backend);
      EXPECT_EQ(counters.queued_writes, writes);
      EXPECT_EQ(counters.drained_writes + queue.pending_queue_depth(),
                counters.queued_writes);
      EXPECT_LE(counters.max_queue_depth, variant.config.wq_capacity);
      break;
    }
  }
}

TEST_P(BackendConformance, CloneContinuesBitIdentically) {
  const Variant& variant = GetParam();
  const auto original = variant.config.make_backend();
  const std::vector<Access> stream = random_stream(3, 4000);
  for (int i = 0; i < 2000; ++i) {
    (void)apply(*original, stream[static_cast<std::size_t>(i)]);
  }
  const auto clone = original->clone();
  EXPECT_EQ(clone->counters().accesses(), original->counters().accesses());
  for (int i = 2000; i < 4000; ++i) {
    const Access& access = stream[static_cast<std::size_t>(i)];
    ASSERT_EQ(apply(*original, access), apply(*clone, access))
        << variant.label << " diverged at access " << i;
  }
  EXPECT_EQ(clone->counters().max_latency, original->counters().max_latency);
  EXPECT_EQ(clone->counters().row_hits, original->counters().row_hits);
  EXPECT_EQ(clone->counters().drained_writes,
            original->counters().drained_writes);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformance, ::testing::ValuesIn(all_variants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      return info.param.label;
    });

// --- bank/row reference model ----------------------------------------------

/// Independent re-derivation of the bank/row mapping and open-row tracking,
/// against which the backend's accounting is checked access by access.
struct ReferenceRowModel {
  explicit ReferenceRowModel(const DramConfig& config) : config(config) {}

  bool access_hits(LineAddr line) {
    if (config.page_policy == PagePolicy::kClosedPage) {
      return false;
    }
    const auto banks = static_cast<LineAddr>(config.num_banks);
    const auto lines_per_row =
        static_cast<LineAddr>(config.row_bytes / config.line_bytes);
    int bank = 0;
    std::int64_t row = 0;
    if (config.bank_mapping == BankMapping::kLineInterleaved) {
      bank = static_cast<int>(line % banks);
      row = static_cast<std::int64_t>((line / banks) / lines_per_row);
    } else {
      bank = static_cast<int>((line / lines_per_row) % banks);
      row = static_cast<std::int64_t>((line / lines_per_row) / banks);
    }
    const auto it = open.find(bank);
    const bool hit = it != open.end() && it->second == row;
    open[bank] = row;
    return hit;
  }

  DramConfig config;
  std::unordered_map<int, std::int64_t> open;
};

class BankRowAccounting : public ::testing::TestWithParam<Variant> {};

TEST_P(BankRowAccounting, MatchesReferenceModel) {
  const Variant& variant = GetParam();
  const auto backend = variant.config.make_backend();
  ReferenceRowModel reference(variant.config);
  std::int64_t expected_hits = 0;
  std::int64_t expected_misses = 0;
  for (const Access& access : random_stream(4, 15000)) {
    const bool hit = reference.access_hits(access.line);
    ++(hit ? expected_hits : expected_misses);
    const Cycle latency = apply(*backend, access);
    const Cycle expected =
        variant.config.page_policy == PagePolicy::kClosedPage
            ? variant.config.closed_page_latency
            : (hit ? variant.config.row_hit_latency
                   : variant.config.row_miss_latency);
    ASSERT_EQ(latency, expected) << variant.label;
  }
  EXPECT_EQ(backend->counters().row_hits, expected_hits);
  EXPECT_EQ(backend->counters().row_misses, expected_misses);
}

INSTANTIATE_TEST_SUITE_P(
    BankRowVariants, BankRowAccounting,
    ::testing::ValuesIn([] {
      std::vector<Variant> bankrow;
      for (const Variant& variant : all_variants()) {
        if (variant.config.backend == MemoryBackendKind::kBankRow) {
          bankrow.push_back(variant);
        }
      }
      return bankrow;
    }()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      return info.param.label;
    });

TEST(BankRowBackend, RowInterleavedKeepsConsecutiveLinesInOneRow) {
  DramConfig config;
  config.backend = MemoryBackendKind::kBankRow;
  config.num_banks = 2;
  config.row_bytes = 2048;
  config.row_hit_latency = 10;
  config.row_miss_latency = 40;
  BankRowBackend backend(config);
  // First access to a row: miss; the second to the same row: hit.
  EXPECT_EQ(backend.read(0, 0), 40);
  EXPECT_EQ(backend.read(1, 10), 10);  // same 2 KiB row
  // A line in a different row of the same bank: miss again.
  const LineAddr far_line = (2048 / 64) * 2;  // skips to the bank's next row
  EXPECT_EQ(backend.read(far_line, 20), 40);
  EXPECT_EQ(backend.counters().row_hits, 1);
  EXPECT_EQ(backend.counters().row_misses, 2);
  EXPECT_EQ(config.worst_case_latency(), 40);
}

TEST(BankRowBackend, LineInterleavedStripesConsecutiveLinesAcrossBanks) {
  DramConfig config;
  config.backend = MemoryBackendKind::kBankRow;
  config.bank_mapping = BankMapping::kLineInterleaved;
  config.num_banks = 4;
  BankRowBackend backend(config);
  // Lines 0..3 land in four different banks: four row activations.
  for (LineAddr line = 0; line < 4; ++line) {
    EXPECT_EQ(backend.bank_of(line), static_cast<int>(line));
    EXPECT_EQ(backend.read(line, static_cast<Cycle>(line)),
              config.row_miss_latency);
  }
  // The next stripe revisits the same (bank, row) pairs: all hits.
  for (LineAddr line = 4; line < 8; ++line) {
    EXPECT_EQ(backend.read(line, static_cast<Cycle>(line)),
              config.row_hit_latency);
  }
  EXPECT_EQ(backend.counters().row_hits, 4);
  EXPECT_EQ(backend.counters().row_misses, 4);
}

TEST(BankRowBackend, ClosedPageIsAccessInvariant) {
  DramConfig config;
  config.backend = MemoryBackendKind::kBankRow;
  config.page_policy = PagePolicy::kClosedPage;
  BankRowBackend backend(config);
  // Even perfectly row-local streams pay the same (lower) activation cost.
  EXPECT_EQ(backend.read(0, 0), config.closed_page_latency);
  EXPECT_EQ(backend.read(0, 5), config.closed_page_latency);
  EXPECT_EQ(backend.read(1, 9), config.closed_page_latency);
  EXPECT_EQ(backend.counters().row_hits, 0);
  EXPECT_EQ(backend.counters().row_misses, 3);
  // Closed page trades row hits for a tighter worst case.
  EXPECT_LT(config.worst_case_latency(), config.row_miss_latency);
  EXPECT_GT(config.worst_case_latency(), config.row_hit_latency);
}

// --- write-queue behavior ---------------------------------------------------

TEST(WriteQueueBackend, WritesTakeTheFastPathWhileQueueHasRoom) {
  DramConfig config;
  config.backend = MemoryBackendKind::kWriteQueue;
  WriteQueueBackend backend(config);
  EXPECT_EQ(backend.write(0x10, 0), config.wq_enqueue_latency);
  EXPECT_EQ(backend.pending_queue_depth(), 1);
  // Reads bypass the queue entirely.
  EXPECT_EQ(backend.read(0x20, 0), config.fixed_latency);
  // After a drain period the buffered write has retired.
  EXPECT_EQ(backend.read(0x30, config.wq_drain_period + 1),
            config.fixed_latency);
  EXPECT_EQ(backend.pending_queue_depth(), 0);
  EXPECT_EQ(backend.counters().drained_writes, 1);
}

TEST(WriteQueueBackend, BackPressureForcesOneSynchronousHeadDrain) {
  DramConfig config;
  config.backend = MemoryBackendKind::kWriteQueue;
  config.wq_capacity = 2;
  WriteQueueBackend backend(config);
  const Cycle stalled = config.fixed_latency + config.wq_enqueue_latency;
  EXPECT_EQ(backend.write(1, 0), config.wq_enqueue_latency);
  EXPECT_EQ(backend.write(2, 0), config.wq_enqueue_latency);
  // Queue full: the third write pays the synchronous head drain — the
  // documented worst-case term, independent of the background drain rate.
  EXPECT_EQ(backend.write(3, 0), stalled);
  EXPECT_EQ(backend.counters().write_stalls, 1);
  EXPECT_EQ(backend.counters().drained_writes, 1);
  EXPECT_EQ(backend.pending_queue_depth(), 2);
  EXPECT_EQ(backend.worst_case_latency(), stalled);
  // Sustained overload (writes every cycle, forever) keeps paying the same
  // bounded premium — the stall never grows with queue history.
  for (Cycle now = 1; now <= 50; ++now) {
    ASSERT_EQ(backend.write(100 + static_cast<LineAddr>(now), now), stalled);
  }
  EXPECT_EQ(backend.counters().write_stalls, 51);
  EXPECT_LE(backend.counters().max_queue_depth, config.wq_capacity);
}

TEST(WriteQueueBackend, NeverLosesWritebacksUnderSaturation) {
  DramConfig config;
  config.backend = MemoryBackendKind::kWriteQueue;
  config.wq_capacity = 3;
  WriteQueueBackend backend(config);
  Rng rng(mix_seed(0xbeef));
  Cycle now = 0;
  std::int64_t writes = 0;
  for (int i = 0; i < 5000; ++i) {
    now += static_cast<Cycle>(rng.next_below(3));  // faster than the drain
    (void)backend.write(static_cast<LineAddr>(i), now);
    ++writes;
    const MemoryCounters& counters = backend.counters();
    ASSERT_EQ(counters.drained_writes + backend.pending_queue_depth(),
              counters.queued_writes);
    ASSERT_LE(backend.pending_queue_depth(), config.wq_capacity);
  }
  EXPECT_EQ(backend.counters().queued_writes, writes);
  EXPECT_LE(backend.counters().max_queue_depth, config.wq_capacity);
  EXPECT_GT(backend.counters().write_stalls, 0);  // saturation was real
}

// --- configuration validation ------------------------------------------------

TEST(DramConfig, ValidationRejectsInconsistentParameters) {
  DramConfig config;
  config.fixed_latency = 0;
  EXPECT_THROW((void)config.make_backend(), ConfigError);
  config = DramConfig{};
  config.line_bytes = 100;  // not a power of two
  EXPECT_THROW((void)config.make_backend(), ConfigError);
  config = DramConfig{};
  config.backend = MemoryBackendKind::kBankRow;
  config.row_bytes = 32;  // smaller than a line
  EXPECT_THROW((void)config.make_backend(), ConfigError);
  config = DramConfig{};
  config.backend = MemoryBackendKind::kBankRow;
  config.row_bytes = 96;  // not a whole number of 64 B lines
  EXPECT_THROW((void)config.make_backend(), ConfigError);
  config = DramConfig{};
  config.backend = MemoryBackendKind::kBankRow;
  config.row_hit_latency = 50;
  config.row_miss_latency = 40;  // hit > miss
  EXPECT_THROW((void)config.make_backend(), ConfigError);
  config = DramConfig{};
  config.backend = MemoryBackendKind::kWriteQueue;
  config.wq_capacity = 0;
  EXPECT_THROW((void)config.make_backend(), ConfigError);
  config = DramConfig{};
  config.backend = MemoryBackendKind::kWriteQueue;
  config.wq_drain_period = 0;
  EXPECT_THROW((void)config.make_backend(), ConfigError);
}

TEST(DramConfig, WorstCaseIsSuppliedByTheSelectedBackend) {
  DramConfig config;
  EXPECT_EQ(config.worst_case_latency(), config.fixed_latency);
  config.backend = MemoryBackendKind::kBankRow;
  EXPECT_EQ(config.worst_case_latency(), config.row_miss_latency);
  config.page_policy = PagePolicy::kClosedPage;
  EXPECT_EQ(config.worst_case_latency(), config.closed_page_latency);
  config.backend = MemoryBackendKind::kWriteQueue;
  EXPECT_EQ(config.worst_case_latency(),
            config.fixed_latency + config.wq_enqueue_latency);
  config.fixed_latency = 100;  // the synchronous-drain term scales with it
  EXPECT_EQ(config.worst_case_latency(), 100 + config.wq_enqueue_latency);
}

TEST(DramConfig, BackendKindNamesRoundTrip) {
  for (const auto kind :
       {MemoryBackendKind::kFixedLatency, MemoryBackendKind::kBankRow,
        MemoryBackendKind::kWriteQueue}) {
    EXPECT_EQ(backend_kind_from_string(to_string(kind)), kind);
    DramConfig config;
    config.backend = kind;
    EXPECT_EQ(config.make_backend()->name(), to_string(kind));
  }
  EXPECT_THROW((void)backend_kind_from_string("sram"), ConfigError);
}

TEST(DramConfig, PolicyAndMappingNamesAreStable) {
  EXPECT_EQ(to_string(PagePolicy::kOpenPage), "open");
  EXPECT_EQ(to_string(PagePolicy::kClosedPage), "closed");
  EXPECT_EQ(to_string(BankMapping::kRowInterleaved), "row-interleaved");
  EXPECT_EQ(to_string(BankMapping::kLineInterleaved), "line-interleaved");
}

}  // namespace
}  // namespace psllc::mem
