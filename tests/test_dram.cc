// DRAM model tests: fixed latency mode and the optional row-buffer mode.
#include <gtest/gtest.h>

#include "common/assert.h"
#include "mem/dram.h"

namespace psllc::mem {
namespace {

TEST(Dram, FixedLatencyMode) {
  DramConfig config;
  config.fixed_latency = 25;
  Dram dram(config);
  EXPECT_EQ(dram.read(0x10), 25);
  EXPECT_EQ(dram.write(0x20), 25);
  EXPECT_EQ(dram.reads(), 1);
  EXPECT_EQ(dram.writes(), 1);
  EXPECT_EQ(config.worst_case_latency(), 25);
}

TEST(Dram, RowBufferHitsAndMisses) {
  DramConfig config;
  config.model_row_buffer = true;
  config.num_banks = 2;
  config.row_bytes = 2048;
  config.row_hit_latency = 10;
  config.row_miss_latency = 40;
  Dram dram(config);
  // First access to a row: miss; the second to the same row: hit.
  EXPECT_EQ(dram.read(0), 40);
  EXPECT_EQ(dram.read(1), 10);  // same 2 KiB row
  // A line in a different row of the same bank: miss again.
  const LineAddr far_line = (2048 / 64) * 2;  // skips to the bank's next row
  EXPECT_EQ(dram.read(far_line), 40);
  EXPECT_EQ(dram.row_hits(), 1);
  EXPECT_EQ(dram.row_misses(), 2);
  EXPECT_EQ(config.worst_case_latency(), 40);
}

TEST(Dram, ConfigValidation) {
  DramConfig config;
  config.fixed_latency = 0;
  EXPECT_THROW(Dram{config}, ConfigError);
  config = DramConfig{};
  config.line_bytes = 100;  // not a power of two
  EXPECT_THROW(Dram{config}, ConfigError);
  config = DramConfig{};
  config.model_row_buffer = true;
  config.row_bytes = 32;  // smaller than a line
  EXPECT_THROW(Dram{config}, ConfigError);
  config = DramConfig{};
  config.model_row_buffer = true;
  config.row_hit_latency = 50;
  config.row_miss_latency = 40;  // hit > miss
  EXPECT_THROW(Dram{config}, ConfigError);
}

}  // namespace
}  // namespace psllc::mem
