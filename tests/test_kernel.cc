// Differential battery for the replay kernel (sim/kernel.h): across a
// randomized (backend variant × partition notation × workload shape) grid,
// the kernel and the legacy core::System slot loop must produce
// bit-identical RunMetrics — every scalar, every per-core vector, every
// LLC and memory counter. Also covers the shared/mirrored and mapped-view
// workloads, eligibility fallbacks (the auto engine must take legacy AND
// still match), and the forced-kernel rejection of ineligible requests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/log.h"
#include "mem/memory_backend.h"
#include "sim/experiment.h"
#include "sim/replay.h"
#include "sim/workload.h"
#include "trace/binary_io.h"
#include "trace/mapped_trace.h"

namespace psllc::sim {
namespace {

void expect_metrics_equal(const RunMetrics& kernel, const RunMetrics& legacy,
                          const std::string& label) {
  EXPECT_EQ(kernel.completed, legacy.completed) << label;
  EXPECT_EQ(kernel.end_cycle, legacy.end_cycle) << label;
  EXPECT_EQ(kernel.makespan, legacy.makespan) << label;
  EXPECT_EQ(kernel.observed_wcl, legacy.observed_wcl) << label;
  EXPECT_EQ(kernel.analytical_wcl, legacy.analytical_wcl) << label;
  EXPECT_EQ(kernel.observed_transient_wcl, legacy.observed_transient_wcl)
      << label;
  EXPECT_EQ(kernel.transient_analytical_wcl, legacy.transient_analytical_wcl)
      << label;
  EXPECT_EQ(kernel.llc_requests, legacy.llc_requests) << label;
  EXPECT_EQ(kernel.per_core_finish, legacy.per_core_finish) << label;
  EXPECT_EQ(kernel.per_core_l1_hits, legacy.per_core_l1_hits) << label;
  EXPECT_EQ(kernel.per_core_l2_hits, legacy.per_core_l2_hits) << label;
  EXPECT_EQ(kernel.per_core_misses, legacy.per_core_misses) << label;
  EXPECT_EQ(kernel.llc_stats.hit_presentations,
            legacy.llc_stats.hit_presentations)
      << label;
  EXPECT_EQ(kernel.llc_stats.blocked_presentations,
            legacy.llc_stats.blocked_presentations)
      << label;
  EXPECT_EQ(kernel.llc_stats.fills, legacy.llc_stats.fills) << label;
  EXPECT_EQ(kernel.llc_stats.evictions_started,
            legacy.llc_stats.evictions_started)
      << label;
  EXPECT_EQ(kernel.llc_stats.immediate_frees, legacy.llc_stats.immediate_frees)
      << label;
  EXPECT_EQ(kernel.llc_stats.voluntary_writebacks,
            legacy.llc_stats.voluntary_writebacks)
      << label;
  EXPECT_EQ(kernel.llc_stats.freeing_writebacks,
            legacy.llc_stats.freeing_writebacks)
      << label;
  EXPECT_EQ(kernel.llc_stats.steals, legacy.llc_stats.steals) << label;
  EXPECT_EQ(kernel.llc_stats.shared_write_flags,
            legacy.llc_stats.shared_write_flags)
      << label;
  EXPECT_EQ(kernel.llc_stats.repartitions, legacy.llc_stats.repartitions)
      << label;
  EXPECT_EQ(kernel.llc_stats.drain_writebacks,
            legacy.llc_stats.drain_writebacks)
      << label;
  EXPECT_EQ(kernel.llc_stats.drain_back_invals,
            legacy.llc_stats.drain_back_invals)
      << label;
  EXPECT_EQ(kernel.memory.reads, legacy.memory.reads) << label;
  EXPECT_EQ(kernel.memory.writes, legacy.memory.writes) << label;
  EXPECT_EQ(kernel.memory.row_hits, legacy.memory.row_hits) << label;
  EXPECT_EQ(kernel.memory.row_misses, legacy.memory.row_misses) << label;
  EXPECT_EQ(kernel.memory.queued_writes, legacy.memory.queued_writes)
      << label;
  EXPECT_EQ(kernel.memory.drained_writes, legacy.memory.drained_writes)
      << label;
  EXPECT_EQ(kernel.memory.write_stalls, legacy.memory.write_stalls) << label;
  EXPECT_EQ(kernel.memory.max_queue_depth, legacy.memory.max_queue_depth)
      << label;
  EXPECT_EQ(kernel.memory.max_latency, legacy.memory.max_latency) << label;
  EXPECT_EQ(kernel.dram_reads, legacy.dram_reads) << label;
  EXPECT_EQ(kernel.dram_writes, legacy.dram_writes) << label;
}

/// Runs `request` once per engine (forced) and checks the engines really
/// were taken; returns {kernel, legacy} metrics.
std::pair<RunMetrics, RunMetrics> run_both(ReplayRequest request,
                                           const std::string& label) {
  request.engine = ReplayEngine::kKernel;
  const ReplayResult kernel = replay(request);
  EXPECT_TRUE(kernel.used_kernel) << label;
  request.engine = ReplayEngine::kLegacy;
  const ReplayResult legacy = replay(request);
  EXPECT_FALSE(legacy.used_kernel) << label;
  return {kernel.metrics, legacy.metrics};
}

/// Workload shapes chosen to stress different kernel regimes: dense
/// LLC-heavy traffic (bus saturated, no slot skipped), cache-resident
/// small footprints (local fast path), think-time gaps (idle-slot
/// skipping), and a write-heavy mix (eviction/write-back traffic).
struct Shape {
  const char* name;
  std::int64_t range_bytes;
  int accesses;
  double write_fraction;
  Cycle gap;
};

constexpr Shape kShapes[] = {
    {"dense", 65536, 1500, 0.4, 0},
    {"resident", 2048, 1500, 0.25, 0},
    {"gappy", 32768, 800, 0.25, 9},
    {"writeheavy", 32768, 1200, 0.9, 0},
};

TEST(KernelDifferential, MatchesLegacyAcrossBackendsNotationsAndShapes) {
  const char* notations[] = {"SS(1,4,4)", "NSS(1,4,4)", "SS(2,2,4)",
                             "NSS(32,2,4)", "P(1,2)"};
  std::uint64_t seed = 555;
  for (const mem::BackendVariant& variant :
       mem::registered_backend_variants()) {
    for (const char* notation : notations) {
      const Shape& shape = kShapes[seed % std::size(kShapes)];
      ++seed;
      RandomWorkloadOptions workload;
      workload.range_bytes = shape.range_bytes;
      workload.accesses = shape.accesses;
      workload.write_fraction = shape.write_fraction;
      workload.gap = shape.gap;
      const std::vector<core::Trace> traces =
          make_disjoint_random_workload(4, workload, seed);
      core::ExperimentSetup setup = core::make_paper_setup(notation, 4);
      setup.config.dram = variant.config;
      setup.config.validate();
      ReplayRequest request;
      request.setup = &setup;
      request.workload.per_core = &traces;
      const std::string label =
          variant.label + " " + notation + " " + shape.name;
      const auto [kernel, legacy] = run_both(request, label);
      expect_metrics_equal(kernel, legacy, label);
      EXPECT_TRUE(legacy.completed) << label;
    }
  }
}

// A horizon shorter than the workload: both engines must agree on the
// incomplete outcome too (end_cycle pinned to the horizon, DNF per-core
// finish markers, identical partial counters).
TEST(KernelDifferential, MatchesLegacyOnTruncatedHorizon) {
  RandomWorkloadOptions workload;
  workload.range_bytes = 65536;
  workload.accesses = 4000;
  const std::vector<core::Trace> traces =
      make_disjoint_random_workload(4, workload, 9001);
  const core::ExperimentSetup setup = core::make_paper_setup("SS(1,4,4)", 4);
  ReplayRequest request;
  request.setup = &setup;
  request.workload.per_core = &traces;
  request.options.max_cycles = 20000;
  const auto [kernel, legacy] = run_both(request, "truncated");
  EXPECT_FALSE(legacy.completed);
  expect_metrics_equal(kernel, legacy, "truncated");
}

// Fewer traces than cores (idle cores) and the empty-trace edge.
TEST(KernelDifferential, MatchesLegacyWithIdleCores) {
  RandomWorkloadOptions workload;
  workload.range_bytes = 16384;
  workload.accesses = 1000;
  std::vector<core::Trace> traces =
      make_disjoint_random_workload(2, workload, 321);
  traces.push_back(core::Trace{});  // explicitly empty third core
  const core::ExperimentSetup setup = core::make_paper_setup("SS(1,4,4)", 4);
  ReplayRequest request;
  request.setup = &setup;
  request.workload.per_core = &traces;
  const auto [kernel, legacy] = run_both(request, "idle cores");
  expect_metrics_equal(kernel, legacy, "idle cores");
}

// Shared-trace replay, solo and mirrored into per-core windows — the
// corpus runner's two workload forms.
TEST(KernelDifferential, MatchesLegacyOnSharedWorkloads) {
  RandomWorkloadOptions workload;
  workload.range_bytes = 16384;
  workload.accesses = 1200;
  workload.write_fraction = 0.5;
  const core::Trace trace = make_uniform_random_trace(0, workload, 777);
  const core::ExperimentSetup setup = core::make_paper_setup("NSS(1,4,4)", 4);
  for (const int replicas : {1, 4}) {
    ReplayRequest request;
    request.setup = &setup;
    request.workload.shared = &trace;
    request.workload.replicas = replicas;
    request.workload.window = replicas > 1 ? Addr{1} << 20 : 0;
    const std::string label = "shared x" + std::to_string(replicas);
    const auto [kernel, legacy] = run_both(request, label);
    expect_metrics_equal(kernel, legacy, label);
  }
}

// The mapped-view workload: the kernel batch-decodes records straight off
// the .pslt mmap; legacy materializes the view. Same metrics either way,
// and identical to replaying the materialized trace.
TEST(KernelDifferential, MatchesLegacyOnMappedView) {
  RandomWorkloadOptions workload;
  workload.range_bytes = 32768;
  workload.accesses = 1500;
  const core::Trace trace = make_uniform_random_trace(0, workload, 4242);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "psllc_kernel_view.pslt";
  trace::write_trace_binary_file(path.string(), trace, {});
  const trace::MappedTrace view(path.string());
  const core::ExperimentSetup setup = core::make_paper_setup("SS(1,4,4)", 4);

  ReplayRequest request;
  request.setup = &setup;
  request.workload.shared_view = &view;
  request.workload.replicas = 4;
  request.workload.window = Addr{1} << 20;
  const auto [kernel, legacy] = run_both(request, "mapped view");
  expect_metrics_equal(kernel, legacy, "mapped view");

  ReplayRequest materialized = request;
  materialized.workload.shared_view = nullptr;
  materialized.workload.shared = &trace;
  materialized.engine = ReplayEngine::kKernel;
  expect_metrics_equal(replay(materialized).metrics, legacy,
                       "view vs materialized");
  std::filesystem::remove(path);
}

ReplayRequest small_request(const core::ExperimentSetup& setup,
                            const std::vector<core::Trace>& traces) {
  ReplayRequest request;
  request.setup = &setup;
  request.workload.per_core = &traces;
  return request;
}

// Eligibility fallbacks: the auto engine must decline the kernel (and the
// result must still match) whenever legacy-only observability is on.
TEST(KernelEligibility, AutoFallsBackAndStillMatches) {
  RandomWorkloadOptions workload;
  workload.range_bytes = 8192;
  workload.accesses = 600;
  const std::vector<core::Trace> traces =
      make_disjoint_random_workload(4, workload, 88);

  // Baseline: eligible, auto takes the kernel.
  core::ExperimentSetup setup = core::make_paper_setup("SS(1,4,4)", 4);
  {
    const ReplayRequest request = small_request(setup, traces);
    EXPECT_TRUE(kernel_eligible(request));
    const ReplayResult result = replay(request);
    EXPECT_TRUE(result.used_kernel);
  }

  // keep_request_records needs the legacy per-slot presentation order.
  core::ExperimentSetup records = setup;
  records.config.keep_request_records = true;
  {
    const ReplayRequest request = small_request(records, traces);
    EXPECT_FALSE(kernel_eligible(request));
    const ReplayResult result = replay(request);
    EXPECT_FALSE(result.used_kernel);
    ReplayRequest forced = request;
    forced.engine = ReplayEngine::kLegacy;
    expect_metrics_equal(result.metrics, replay(forced).metrics,
                         "keep_request_records fallback");
  }

  // Debug logging: the kernel skips idle slots, so it cannot reproduce the
  // per-slot log stream; auto must run legacy.
  const LogLevel saved = Logger::instance().level();
  Logger::instance().set_level(LogLevel::kDebug);
  {
    const ReplayRequest request = small_request(setup, traces);
    EXPECT_FALSE(kernel_eligible(request));
    EXPECT_FALSE(replay(request).used_kernel);
  }
  Logger::instance().set_level(saved);

  // Forced legacy is always honored.
  {
    ReplayRequest request = small_request(setup, traces);
    request.engine = ReplayEngine::kLegacy;
    EXPECT_FALSE(replay(request).used_kernel);
  }
}

TEST(KernelEligibility, ForcedKernelRejectsIneligibleRequest) {
  RandomWorkloadOptions workload;
  workload.accesses = 50;
  const std::vector<core::Trace> traces =
      make_disjoint_random_workload(2, workload, 5);
  core::ExperimentSetup setup = core::make_paper_setup("SS(1,4,4)", 4);
  setup.config.keep_request_records = true;
  ReplayRequest request = small_request(setup, traces);
  request.engine = ReplayEngine::kKernel;
  EXPECT_THROW((void)replay(request), ConfigError);
}

TEST(KernelEligibility, ExactlyOneWorkloadSourceRequired) {
  const core::ExperimentSetup setup = core::make_paper_setup("SS(1,4,4)", 4);
  ReplayRequest request;
  request.setup = &setup;
  EXPECT_THROW((void)replay(request), ConfigError);  // no source at all
  const core::Trace trace{core::MemOp{0, AccessType::kRead, 0}};
  const std::vector<core::Trace> traces{trace};
  request.workload.per_core = &traces;
  request.workload.shared = &trace;
  EXPECT_THROW((void)replay(request), ConfigError);  // two sources
}

// The sweep harness must stay bit-identical across worker-thread counts
// with the kernel on the hot path (cells route through ReplayEngine::kAuto).
TEST(KernelDifferential, SweepDeterministicAcrossThreadCounts) {
  SweepOptions serial;
  serial.address_ranges = {4096, 32768};
  serial.accesses_per_core = 1000;
  serial.seed = 31;
  serial.threads = 1;
  SweepOptions parallel = serial;
  parallel.threads = 4;
  const std::vector<SweepConfig> configs = {{"SS(1,4,4)", 4},
                                            {"NSS(1,4,4)", 4}};
  const SweepResult a = run_sweep(configs, serial);
  const SweepResult b = run_sweep(configs, parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    expect_metrics_equal(a.cells[i].metrics, b.cells[i].metrics,
                         "cell " + std::to_string(i));
  }
}

}  // namespace
}  // namespace psllc::sim
