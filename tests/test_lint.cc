// Tests for the determinism linter (src/lint). The fixtures under
// tests/lint_fixtures/ carry "LINT-EXPECT: <rule>" markers on every line
// that must produce a finding; the tests compare the scanner's output
// against those markers, so expectations live next to the code they pin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"

#ifndef PSLLC_LINT_FIXTURE_DIR
#error "PSLLC_LINT_FIXTURE_DIR must be defined by the build"
#endif

namespace psllc::lint {
namespace {

std::filesystem::path fixture_path(const std::string& name) {
  return std::filesystem::path(PSLLC_LINT_FIXTURE_DIR) / name;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// (line, rule) pairs from "LINT-EXPECT: RULE" markers, 1-based lines.
std::set<std::pair<int, std::string>> expected_markers(
    const std::string& text) {
  std::set<std::pair<int, std::string>> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string tag = "LINT-EXPECT:";
    auto pos = line.find(tag);
    while (pos != std::string::npos) {
      auto start = pos + tag.size();
      while (start < line.size() && line[start] == ' ') ++start;
      std::string rule = line.substr(start, 7);  // "XXX-NNN"
      const bool well_formed =
          rule.size() == 7 && rule[3] == '-' &&
          std::all_of(rule.begin(), rule.begin() + 3,
                      [](unsigned char c) { return std::isupper(c); }) &&
          std::all_of(rule.begin() + 4, rule.end(),
                      [](unsigned char c) { return std::isdigit(c); });
      if (well_formed) out.emplace(lineno, std::move(rule));
      pos = line.find(tag, start);
    }
  }
  return out;
}

// Runs the linter on a fixture and checks findings == markers, both ways.
void check_fixture(const std::string& name) {
  const auto path = fixture_path(name);
  const std::string text = read_file(path);
  const auto expected = expected_markers(text);
  ASSERT_FALSE(expected.empty()) << name << " has no LINT-EXPECT markers";

  std::set<std::pair<int, std::string>> actual;
  for (const Finding& f : lint_source(path.string(), text)) {
    EXPECT_FALSE(f.suppressed) << name << ":" << f.line << " " << f.rule;
    actual.emplace(f.line, f.rule);
  }
  for (const auto& [line, rule] : expected) {
    EXPECT_TRUE(actual.count({line, rule}))
        << name << ":" << line << " expected " << rule << " but it did not "
        << "fire";
  }
  for (const auto& [line, rule] : actual) {
    EXPECT_TRUE(expected.count({line, rule}))
        << name << ":" << line << " unexpected " << rule;
  }
}

TEST(LintFixtures, Det001UnorderedIteration) {
  check_fixture("det001_unordered_iteration.cc");
}

TEST(LintFixtures, Det002BannedSources) {
  check_fixture("det002_banned_sources.cc");
}

TEST(LintFixtures, Det003FloatAccumulation) {
  check_fixture("det003_float_accumulation.cc");
}

TEST(LintFixtures, Cfg001UninitializedConfig) {
  check_fixture("cfg001_uninitialized_config.cc");
}

TEST(LintFixtures, Trc001TraceRecordWidths) {
  check_fixture("trc001_trace_record_widths.cc");
}

// The negative fixture must produce zero unsuppressed findings; its one
// deliberate DET-001 hit must come back suppressed, reason intact.
TEST(LintFixtures, CleanNegativeIsClean) {
  const auto path = fixture_path("clean_negative.cc");
  const auto findings = lint_source(path.string(), read_file(path));
  std::vector<Finding> unsuppressed;
  std::vector<Finding> suppressed;
  for (const Finding& f : findings) {
    (f.suppressed ? suppressed : unsuppressed).push_back(f);
  }
  for (const Finding& f : unsuppressed) {
    ADD_FAILURE() << "unexpected finding " << f.rule << " at line " << f.line
                  << ": " << f.message;
  }
  ASSERT_EQ(suppressed.size(), 1u);
  EXPECT_EQ(suppressed[0].rule, "DET-001");
  EXPECT_NE(suppressed[0].suppress_reason.find("order-independent count"),
            std::string::npos);
}

// --- suppression semantics ---------------------------------------------------

constexpr char kPath[] = "snippet.cc";

TEST(LintSuppression, SameLineDirective) {
  const auto findings = lint_source(
      kPath,
      "#include <cstdlib>\n"
      "int f() { return rand(); }  // psllc-lint: allow(DET-002: test)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].suppress_reason, "test");
}

TEST(LintSuppression, CommentOnlyLineCoversNextLine) {
  const auto findings = lint_source(
      kPath,
      "// psllc-lint: allow(DET-002: fixture seed)\n"
      "int f() { return rand(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(LintSuppression, DirectiveOnCodeLineDoesNotCoverNextLine) {
  const auto findings = lint_source(
      kPath,
      "int g = 0;  // psllc-lint: allow(DET-002: only this line)\n"
      "int f() { return rand(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

TEST(LintSuppression, AllowFileCoversWholeFile) {
  const auto findings = lint_source(
      kPath,
      "// psllc-lint: allow-file(DET-002: generator fixture)\n"
      "int f() { return rand(); }\n"
      "int g() { return rand(); }\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_TRUE(findings[1].suppressed);
}

TEST(LintSuppression, MissingReasonDoesNotSuppress) {
  const auto findings = lint_source(
      kPath,
      "int f() { return rand(); }  // psllc-lint: allow(DET-002:)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

TEST(LintSuppression, WrongRuleDoesNotSuppress) {
  const auto findings = lint_source(
      kPath,
      "int f() { return rand(); }  // psllc-lint: allow(DET-001: wrong)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].suppressed);
}

// --- report plumbing ---------------------------------------------------------

TEST(LintReportTest, CountsAndJsonShape) {
  const std::vector<std::filesystem::path> files = {
      fixture_path("det002_banned_sources.cc"),
      fixture_path("clean_negative.cc"),
  };
  const LintReport report = lint_files(files);
  EXPECT_EQ(report.files_scanned, 2);
  EXPECT_GT(report.unsuppressed_count(), 0);
  EXPECT_EQ(report.suppressed_count(), 1);
  EXPECT_EQ(static_cast<int>(report.findings.size()),
            report.unsuppressed_count() + report.suppressed_count());

  const results::Json doc = results::Json::parse(report.to_json().dump());
  EXPECT_EQ(doc.at("tool").as_string(), "psllc_lint");
  EXPECT_EQ(doc.at("files_scanned").as_int(), 2);
  EXPECT_EQ(doc.at("unsuppressed").as_int(), report.unsuppressed_count());
  EXPECT_EQ(doc.at("suppressed").as_int(), 1);
  EXPECT_EQ(doc.at("rules").as_array().size(), rule_catalog().size());
  const auto& findings = doc.at("findings").as_array();
  ASSERT_EQ(static_cast<int>(findings.size()),
            static_cast<int>(report.findings.size()));
  for (const auto& f : findings) {
    EXPECT_FALSE(f.at("rule").as_string().empty());
    EXPECT_FALSE(f.at("file").as_string().empty());
    EXPECT_GT(f.at("line").as_int(), 0);
    EXPECT_FALSE(f.at("message").as_string().empty());
    if (f.at("suppressed").as_bool()) {
      EXPECT_FALSE(f.at("reason").as_string().empty());
    }
  }
}

TEST(LintReportTest, RuleCatalogIsComplete) {
  std::set<std::string> ids;
  for (const RuleInfo& info : rule_catalog()) {
    ids.insert(info.id);
    EXPECT_NE(info.summary, nullptr);
  }
  const std::set<std::string> expected = {"DET-001", "DET-002", "DET-003",
                                          "CFG-001", "TRC-001"};
  EXPECT_EQ(ids, expected);
}

// Strings and comments must not trip token rules.
TEST(LintEngine, BannedTokensInLiteralsAndCommentsIgnored) {
  const auto findings = lint_source(
      kPath,
      "// rand() and time(nullptr) in a comment\n"
      "const char* kMsg = \"calls rand() and std::random_device\";\n"
      "/* block: srand(1); */\n");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace psllc::lint
