// Tests for the partitioned inclusive LLC: partitions, directory, set
// sequencer, and the PartitionedLlc request/write-back protocol.
#include <gtest/gtest.h>

#include "common/assert.h"
#include "llc/llc.h"

namespace psllc::llc {
namespace {

// --- PartitionSpec / PartitionMap -------------------------------------------

TEST(PartitionSpec, OverlapDetection) {
  const PartitionSpec a{0, 4, 0, 2};
  const PartitionSpec b{4, 4, 0, 2};   // disjoint sets
  const PartitionSpec c{0, 4, 2, 2};   // disjoint ways
  const PartitionSpec d{2, 4, 1, 2};   // overlaps a
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.overlaps(d));
  EXPECT_TRUE(d.overlaps(a));
}

TEST(PartitionSpec, MapSetIsModuloWithinRectangle) {
  const PartitionSpec spec{8, 4, 0, 2};
  EXPECT_EQ(spec.map_set(0), 8);
  EXPECT_EQ(spec.map_set(3), 11);
  EXPECT_EQ(spec.map_set(4), 8);
  EXPECT_EQ(spec.capacity_lines(), 8);
}

TEST(PartitionSpec, ValidatesAgainstGeometry) {
  const mem::CacheGeometry geometry{32, 16, 64};
  EXPECT_NO_THROW((PartitionSpec{0, 32, 0, 16}).validate(geometry));
  EXPECT_THROW((PartitionSpec{0, 33, 0, 16}).validate(geometry), ConfigError);
  EXPECT_THROW((PartitionSpec{0, 32, 15, 2}).validate(geometry), ConfigError);
  EXPECT_THROW((PartitionSpec{0, 0, 0, 1}).validate(geometry), ConfigError);
}

TEST(PartitionMap, RejectsOverlapAndDoubleMembership) {
  const mem::CacheGeometry geometry{32, 16, 64};
  PartitionMap map(geometry);
  map.add_partition(PartitionSpec{0, 4, 0, 4}, {CoreId{0}});
  EXPECT_THROW(map.add_partition(PartitionSpec{2, 4, 2, 4}, {CoreId{1}}),
               ConfigError);
  EXPECT_THROW(map.add_partition(PartitionSpec{8, 4, 0, 4}, {CoreId{0}}),
               ConfigError);
  EXPECT_THROW(
      map.add_partition(PartitionSpec{8, 4, 0, 4}, {CoreId{1}, CoreId{1}}),
      ConfigError);
}

TEST(PartitionMap, LookupAndSharerCounts) {
  const mem::CacheGeometry geometry{32, 16, 64};
  PartitionMap map(geometry);
  const int shared = map.add_partition(PartitionSpec{0, 4, 0, 4},
                                       {CoreId{0}, CoreId{1}});
  const int own = map.add_partition(PartitionSpec{4, 4, 0, 4}, {CoreId{2}});
  EXPECT_EQ(map.partition_of(CoreId{0}), shared);
  EXPECT_EQ(map.partition_of(CoreId{1}), shared);
  EXPECT_EQ(map.partition_of(CoreId{2}), own);
  EXPECT_EQ(map.partition_of(CoreId{3}), -1);
  EXPECT_EQ(map.sharer_count_of(CoreId{0}), 2);
  EXPECT_EQ(map.sharer_count_of(CoreId{2}), 1);
  EXPECT_THROW(map.validate_covers_cores(4), ConfigError);
  EXPECT_NO_THROW(map.validate_covers_cores(3));
}

TEST(PartitionBuilders, PaperNotationShapes) {
  const mem::CacheGeometry geometry{32, 16, 64};
  // P(8,2) x 4 cores: tiled across sets.
  const PartitionMap p = make_private_partitions(geometry, 4, 8, 2);
  EXPECT_EQ(p.num_partitions(), 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(p.sharer_count_of(CoreId{c}), 1);
  }
  EXPECT_EQ(p.spec(0).first_set, 0);
  EXPECT_EQ(p.spec(1).first_set, 8);
  EXPECT_EQ(p.spec(3).first_set, 24);
  // P(1,2) x 4: distinct sets, same ways.
  const PartitionMap tiny = make_private_partitions(geometry, 4, 1, 2);
  EXPECT_EQ(tiny.spec(2).first_set, 2);
  EXPECT_EQ(tiny.spec(2).first_way, 0);
  // SS(32,4,2).
  const PartitionMap shared = make_shared_partition(
      geometry, {CoreId{0}, CoreId{1}}, 32, 4);
  EXPECT_EQ(shared.num_partitions(), 1);
  EXPECT_EQ(shared.sharer_count_of(CoreId{1}), 2);
  // Too many cores to tile: P(32,16) x 2 does not fit.
  EXPECT_THROW(make_private_partitions(geometry, 2, 32, 16), ConfigError);
}

// --- InclusiveDirectory --------------------------------------------------------

TEST(Directory, AddRemoveSharers) {
  InclusiveDirectory directory;
  directory.add_sharer(0x1, CoreId{0});
  directory.add_sharer(0x1, CoreId{2});
  EXPECT_EQ(directory.sharer_count(0x1), 2);
  EXPECT_TRUE(directory.is_shared_by(0x1, CoreId{2}));
  EXPECT_FALSE(directory.is_shared_by(0x1, CoreId{1}));
  EXPECT_TRUE(directory.remove_sharer(0x1, CoreId{0}));
  EXPECT_FALSE(directory.remove_sharer(0x1, CoreId{0}));
  EXPECT_EQ(directory.sharer_count(0x1), 1);
  directory.clear_line(0x1);
  EXPECT_EQ(directory.sharer_count(0x1), 0);
  EXPECT_EQ(directory.tracked_lines(), 0);
}

TEST(Directory, DuplicateAddAsserts) {
  InclusiveDirectory directory;
  directory.add_sharer(0x1, CoreId{0});
  EXPECT_THROW(directory.add_sharer(0x1, CoreId{0}), AssertionError);
}

// --- SetSequencer ----------------------------------------------------------------

TEST(SetSequencer, FifoOrderPerSet) {
  SetSequencer seq(4, 4);
  const SetKey key{0, 5};
  seq.enqueue(key, CoreId{2});
  seq.enqueue(key, CoreId{0});
  seq.enqueue(key, CoreId{3});
  EXPECT_TRUE(seq.is_head(key, CoreId{2}));
  EXPECT_FALSE(seq.is_head(key, CoreId{0}));
  EXPECT_EQ(seq.position(key, CoreId{3}), 2);
  EXPECT_EQ(seq.queue_length(key), 3);
  seq.dequeue_head(key, CoreId{2});
  EXPECT_TRUE(seq.is_head(key, CoreId{0}));
}

TEST(SetSequencer, IndependentQueuesPerSetKey) {
  SetSequencer seq(4, 4);
  const SetKey a{0, 1};
  const SetKey b{0, 2};
  const SetKey c{1, 1};  // same physical set, different partition
  seq.enqueue(a, CoreId{0});
  seq.enqueue(b, CoreId{1});
  seq.enqueue(c, CoreId{2});
  EXPECT_EQ(seq.active_queues(), 3);
  EXPECT_TRUE(seq.is_head(a, CoreId{0}));
  EXPECT_TRUE(seq.is_head(b, CoreId{1}));
  EXPECT_TRUE(seq.is_head(c, CoreId{2}));
}

TEST(SetSequencer, QueueReleasedWhenEmpty) {
  SetSequencer seq(2, 2);
  const SetKey a{0, 1};
  seq.enqueue(a, CoreId{0});
  seq.dequeue_head(a, CoreId{0});
  EXPECT_EQ(seq.active_queues(), 0);
  EXPECT_FALSE(seq.has_queue(a));
  // The released queue is reusable for other sets.
  seq.enqueue(SetKey{0, 2}, CoreId{1});
  seq.enqueue(SetKey{0, 3}, CoreId{0});
  EXPECT_EQ(seq.active_queues(), 2);
}

TEST(SetSequencer, RemoveFromMiddle) {
  SetSequencer seq(2, 4);
  const SetKey key{0, 0};
  seq.enqueue(key, CoreId{0});
  seq.enqueue(key, CoreId{1});
  seq.enqueue(key, CoreId{2});
  seq.remove(key, CoreId{1});
  EXPECT_EQ(seq.queue_length(key), 2);
  EXPECT_TRUE(seq.is_head(key, CoreId{0}));
  EXPECT_EQ(seq.position(key, CoreId{2}), 1);
}

TEST(SetSequencer, HardwareCapacityAsserts) {
  SetSequencer seq(1, 2);
  seq.enqueue(SetKey{0, 0}, CoreId{0});
  // Second distinct set: QLT full.
  EXPECT_THROW(seq.enqueue(SetKey{0, 1}, CoreId{1}), AssertionError);
  // Queue depth full.
  seq.enqueue(SetKey{0, 0}, CoreId{1});
  EXPECT_THROW(seq.enqueue(SetKey{0, 0}, CoreId{2}), AssertionError);
  // Double enqueue of the same core.
  EXPECT_THROW(seq.enqueue(SetKey{0, 0}, CoreId{0}), AssertionError);
  // Dequeue of a non-head core.
  EXPECT_THROW(seq.dequeue_head(SetKey{0, 0}, CoreId{1}), AssertionError);
}

// --- PartitionedLlc ---------------------------------------------------------------

struct LlcHarness {
  LlcConfig config;
  mem::FixedLatencyBackend dram;
  PartitionedLlc llc;

  LlcHarness(ContentionMode mode, int sets, int ways, int sharers,
             LlcConfig base = LlcConfig{})
      : config(base),
        dram(mem::DramConfig{}),
        llc(config, make_map(config, sets, ways, sharers), mode, 4, dram) {}

  static PartitionMap make_map(const LlcConfig& config, int sets, int ways,
                               int sharers) {
    std::vector<CoreId> cores;
    for (int c = 0; c < sharers; ++c) {
      cores.emplace_back(c);
    }
    return make_shared_partition(config.geometry, cores, sets, ways);
  }
};

TEST(PartitionedLlc, MissFillsAndHits) {
  LlcHarness h(ContentionMode::kBestEffort, 4, 2, 2);
  const auto miss = h.llc.handle_request(CoreId{0}, 0x10, 0);
  EXPECT_EQ(miss.status, RequestOutcome::Status::kFilled);
  EXPECT_TRUE(h.llc.directory().is_shared_by(0x10, CoreId{0}));
  const auto hit = h.llc.handle_request(CoreId{0}, 0x10, 50);
  EXPECT_EQ(hit.status, RequestOutcome::Status::kHit);
  EXPECT_EQ(h.llc.stats().fills, 1);
  EXPECT_EQ(h.llc.stats().hit_presentations, 1);
}

TEST(PartitionedLlc, FullSetWithOwnedVictimBlocksAndBackInvalidates) {
  LlcHarness h(ContentionMode::kBestEffort, 1, 2, 2);
  h.llc.preload(0x1, {CoreId{1}}, false);
  h.llc.preload(0x3, {CoreId{1}}, false);
  const auto blocked = h.llc.handle_request(CoreId{0}, 0x5, 0);
  EXPECT_EQ(blocked.status, RequestOutcome::Status::kBlocked);
  ASSERT_TRUE(blocked.back_invalidation.has_value());
  EXPECT_EQ(blocked.back_invalidation->line, 0x1u);  // LRU victim
  ASSERT_EQ(blocked.back_invalidation->owners.size(), 1u);
  EXPECT_EQ(blocked.back_invalidation->owners[0], CoreId{1});
  EXPECT_TRUE(h.llc.has_pending_request(CoreId{0}));
  // Retry before the write-back: still blocked, no *new* eviction (supply
  // covers demand).
  const auto retry = h.llc.handle_request(CoreId{0}, 0x5, 200);
  EXPECT_EQ(retry.status, RequestOutcome::Status::kBlocked);
  EXPECT_FALSE(retry.back_invalidation.has_value());
  // Freeing write-back arrives; the retry now fills.
  const auto wb = h.llc.handle_writeback(CoreId{1}, 0x1, false, true, 250);
  EXPECT_TRUE(wb.freed_entry);
  const auto filled = h.llc.handle_request(CoreId{0}, 0x5, 400);
  EXPECT_EQ(filled.status, RequestOutcome::Status::kFilled);
  EXPECT_FALSE(h.llc.has_pending_request(CoreId{0}));
  h.llc.check_invariants();
}

TEST(PartitionedLlc, UnownedVictimFreesWithinTheSlot) {
  LlcHarness h(ContentionMode::kBestEffort, 1, 2, 2);
  h.llc.preload(0x1, {}, false);  // no private copies
  h.llc.preload(0x3, {}, true);   // dirty, unowned
  const auto outcome = h.llc.handle_request(CoreId{0}, 0x5, 0);
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kFilled)
      << "an unowned victim must not cost extra slots";
  EXPECT_EQ(h.llc.stats().immediate_frees, 1);
}

TEST(PartitionedLlc, SequencerEnforcesArrivalOrder) {
  LlcHarness h(ContentionMode::kSetSequencer, 1, 2, 3);
  h.llc.preload(0x1, {CoreId{2}}, false);
  h.llc.preload(0x3, {CoreId{2}}, false);
  // c0 then c1 block on the same set.
  (void)h.llc.handle_request(CoreId{0}, 0x5, 0);
  (void)h.llc.handle_request(CoreId{1}, 0x7, 50);
  EXPECT_TRUE(h.llc.sequencer().is_head(h.llc.key_for(CoreId{0}, 0x5),
                                        CoreId{0}));
  // The victim's write-back frees an entry; c1 retries first but is not at
  // the head -> still blocked.
  (void)h.llc.handle_writeback(CoreId{2}, 0x1, false, true, 100);
  const auto c1_retry = h.llc.handle_request(CoreId{1}, 0x7, 150);
  EXPECT_EQ(c1_retry.status, RequestOutcome::Status::kBlocked);
  // c0 (head) takes it.
  const auto c0_retry = h.llc.handle_request(CoreId{0}, 0x5, 200);
  EXPECT_EQ(c0_retry.status, RequestOutcome::Status::kFilled);
  // Now c1 is head; the second eviction (triggered at c1's first blocked
  // presentation) eventually frees the other way.
  (void)h.llc.handle_writeback(CoreId{2}, 0x3, false, true, 250);
  const auto c1_fill = h.llc.handle_request(CoreId{1}, 0x7, 300);
  EXPECT_EQ(c1_fill.status, RequestOutcome::Status::kFilled);
  h.llc.check_invariants();
}

TEST(PartitionedLlc, BestEffortAllowsStealAndCountsIt) {
  LlcHarness h(ContentionMode::kBestEffort, 1, 2, 3);
  h.llc.preload(0x1, {CoreId{2}}, false);
  h.llc.preload(0x3, {CoreId{2}}, false);
  (void)h.llc.handle_request(CoreId{0}, 0x5, 0);   // older waiter
  (void)h.llc.handle_request(CoreId{1}, 0x7, 50);  // younger waiter
  (void)h.llc.handle_writeback(CoreId{2}, 0x1, false, true, 100);
  const auto steal = h.llc.handle_request(CoreId{1}, 0x7, 150);
  EXPECT_EQ(steal.status, RequestOutcome::Status::kFilled);
  EXPECT_EQ(h.llc.stats().steals, 1);
}

TEST(PartitionedLlc, VoluntaryWritebackMergesDirtyData) {
  LlcHarness h(ContentionMode::kBestEffort, 4, 2, 2);
  (void)h.llc.handle_request(CoreId{0}, 0x10, 0);
  const auto wb = h.llc.handle_writeback(CoreId{0}, 0x10, true, false, 100);
  EXPECT_FALSE(wb.freed_entry);
  const int way = h.llc.find_way(CoreId{0}, 0x10);
  ASSERT_GE(way, 0);
  const auto entry = h.llc.entry(h.llc.key_for(CoreId{0}, 0x10).physical_set,
                                 way);
  EXPECT_TRUE(entry.dirty);
  EXPECT_TRUE(entry.sharers.empty());
  h.llc.check_invariants();
}

TEST(PartitionedLlc, MultiSharerBackInvalidationNeedsAllAcks) {
  LlcHarness h(ContentionMode::kBestEffort, 1, 2, 3);
  h.llc.preload(0x1, {CoreId{1}, CoreId{2}}, false);
  h.llc.preload(0x3, {CoreId{1}}, false);
  const auto blocked = h.llc.handle_request(CoreId{0}, 0x5, 0);
  ASSERT_TRUE(blocked.back_invalidation.has_value());
  EXPECT_EQ(blocked.back_invalidation->owners.size(), 2u);
  EXPECT_FALSE(
      h.llc.handle_writeback(CoreId{1}, 0x1, false, true, 50).freed_entry);
  EXPECT_TRUE(
      h.llc.handle_writeback(CoreId{2}, 0x1, false, true, 100).freed_entry);
  h.llc.check_invariants();
}

TEST(PartitionedLlc, PendingLineExcludedFromHits) {
  LlcHarness h(ContentionMode::kBestEffort, 1, 2, 3);
  h.llc.preload(0x1, {CoreId{2}}, false);
  h.llc.preload(0x3, {CoreId{2}}, false);
  // c0's miss selects 0x1 as victim (pending invalidation).
  (void)h.llc.handle_request(CoreId{0}, 0x5, 0);
  // c1 requests the very line being evicted: must be treated as a miss.
  const auto outcome = h.llc.handle_request(CoreId{1}, 0x1, 50);
  EXPECT_EQ(outcome.status, RequestOutcome::Status::kBlocked);
  h.llc.check_invariants();
}

TEST(PartitionedLlc, SilentEvictionKeepsLineDropsSharer) {
  LlcHarness h(ContentionMode::kBestEffort, 4, 2, 2);
  (void)h.llc.handle_request(CoreId{0}, 0x10, 0);
  h.llc.notify_silent_eviction(CoreId{0}, 0x10);
  EXPECT_GE(h.llc.find_way(CoreId{0}, 0x10), 0);
  EXPECT_EQ(h.llc.directory().sharer_count(0x10), 0);
  EXPECT_THROW(h.llc.notify_silent_eviction(CoreId{0}, 0x10),
               AssertionError);
}

TEST(PartitionedLlc, RetryWithDifferentLineAsserts) {
  LlcHarness h(ContentionMode::kBestEffort, 1, 1, 2);
  h.llc.preload(0x1, {CoreId{1}}, false);
  (void)h.llc.handle_request(CoreId{0}, 0x3, 0);
  EXPECT_THROW(h.llc.handle_request(CoreId{0}, 0x5, 50), AssertionError);
}

TEST(PartitionedLlc, DropPendingRequestCleansSequencer) {
  LlcHarness h(ContentionMode::kSetSequencer, 1, 1, 2);
  h.llc.preload(0x1, {CoreId{1}}, false);
  (void)h.llc.handle_request(CoreId{0}, 0x3, 0);
  EXPECT_TRUE(h.llc.has_pending_request(CoreId{0}));
  h.llc.drop_pending_request(CoreId{0});
  EXPECT_FALSE(h.llc.has_pending_request(CoreId{0}));
  EXPECT_EQ(h.llc.sequencer().active_queues(), 0);
  h.llc.check_invariants();
}

TEST(PartitionedLlc, RejectsMismatchedPartitionGeometry) {
  LlcConfig config;
  mem::DramConfig dram_config;
  mem::FixedLatencyBackend dram(dram_config);
  PartitionMap map(mem::CacheGeometry{16, 16, 64});  // wrong set count
  map.add_partition(PartitionSpec{0, 1, 0, 1}, {CoreId{0}});
  EXPECT_THROW(
      PartitionedLlc(config, std::move(map), ContentionMode::kBestEffort, 1,
                     dram),
      ConfigError);
}

}  // namespace
}  // namespace psllc::llc
